//! Send-side prioritization with uTCP (paper §4.2, Figure 10).
//!
//! A sender saturates a slow link with bulk messages and occasionally sends
//! an urgent message. With uTCP's unordered send, the urgent write passes the
//! queued bulk data; over standard TCP it waits its turn.
//!
//! Run with: `cargo run --example priority_messaging`

use minion_repro::core::{MinionConfig, UcobsSocket};
use minion_repro::simnet::{Distribution, LinkConfig, SimDuration, SimTime};
use minion_repro::stack::{Sim, SocketAddr};

fn run(use_utcp: bool) -> (f64, f64) {
    let mut sim = Sim::new(3);
    let a = sim.add_host("sender");
    let b = sim.add_host("receiver");
    sim.link(
        a,
        b,
        LinkConfig::new(2_000_000, SimDuration::from_millis(30)),
    );
    let config = if use_utcp {
        MinionConfig::with_utcp()
    } else {
        MinionConfig::without_utcp()
    };
    UcobsSocket::listen(sim.host_mut(b), 7000, &config).unwrap();
    let now = sim.now();
    let mut tx = UcobsSocket::connect(sim.host_mut(a), SocketAddr::new(b, 7000), &config, now);
    sim.run_for(SimDuration::from_millis(200));
    let mut rx = UcobsSocket::accept(sim.host_mut(b), 7000).unwrap();

    let mut sent_at: Vec<(SimTime, bool)> = Vec::new();
    let mut bulk = Distribution::new();
    let mut urgent = Distribution::new();
    let total = 800usize;
    let mut sent = 0usize;
    while bulk.len() + urgent.len() < total {
        let now = sim.now();
        while sent < total && tx.send_buffer_free(sim.host(a)) > 4096 {
            let is_urgent = sent % 100 == 99;
            let mut msg = vec![0u8; 1000];
            msg[..8].copy_from_slice(&(sent as u64).to_be_bytes());
            tx.send(sim.host_mut(a), &msg, if is_urgent { 9 } else { 0 })
                .unwrap();
            sent_at.push((now, is_urgent));
            sent += 1;
        }
        sim.run_for(SimDuration::from_millis(10));
        let now = sim.now();
        for d in rx.recv(sim.host_mut(b)) {
            let id = u64::from_be_bytes(d.payload[..8].try_into().unwrap()) as usize;
            let (t, is_urgent) = sent_at[id];
            let delay = (now - t).as_millis_f64();
            if is_urgent {
                urgent.add(delay)
            } else {
                bulk.add(delay)
            }
        }
    }
    (bulk.mean(), urgent.mean())
}

fn main() {
    let (tcp_bulk, tcp_urgent) = run(false);
    let (utcp_bulk, utcp_urgent) = run(true);
    println!(
        "standard TCP : bulk mean delay {tcp_bulk:7.1} ms, urgent mean delay {tcp_urgent:7.1} ms"
    );
    println!(
        "uTCP         : bulk mean delay {utcp_bulk:7.1} ms, urgent mean delay {utcp_urgent:7.1} ms"
    );
    println!(
        "urgent messages are {:.1}x faster with uTCP's send-queue prioritization",
        tcp_urgent / utcp_urgent
    );
}
