//! A VoIP call over Minion vs standard TCP vs UDP (paper §8.2).
//!
//! A 256 kbps voice stream crosses a congested 3 Mbps path; the example
//! prints latency percentiles, missed playout deadlines, and an estimated
//! quality (MOS) score for each transport.
//!
//! Run with: `cargo run --release --example voip_conference`

use minion_repro::apps::{frame_number, CompetingFlow, VoipReceiver, VoipSource, VoipSourceConfig};
use minion_repro::core::{MinionConfig, MinionTransport, Protocol, UdpShim};
use minion_repro::simnet::{LinkConfig, SimDuration};
use minion_repro::stack::{Sim, SocketAddr};

fn run_call(protocol: Protocol) -> (f64, f64, f64, f64) {
    let mut sim = Sim::new(11);
    let caller = sim.add_host("caller");
    let callee = sim.add_host("callee");
    sim.link(
        caller,
        callee,
        LinkConfig::new(3_000_000, SimDuration::from_millis(30)).with_queue_bytes(48 * 1024),
    );
    let config = MinionConfig::with_utcp();
    let (mut tx, mut rx) = if protocol == Protocol::Udp {
        (
            MinionTransport::Udp(
                UdpShim::bind(sim.host_mut(caller), 0, Some(SocketAddr::new(callee, 9999)))
                    .unwrap(),
            ),
            MinionTransport::Udp(UdpShim::bind(sim.host_mut(callee), 9999, None).unwrap()),
        )
    } else {
        MinionTransport::listen(protocol, sim.host_mut(callee), 9999, &config).unwrap();
        let now = sim.now();
        let tx = MinionTransport::connect(
            protocol,
            sim.host_mut(caller),
            SocketAddr::new(callee, 9999),
            &config,
            now,
        )
        .unwrap();
        sim.run_for(SimDuration::from_millis(300));
        let rx = MinionTransport::accept(protocol, sim.host_mut(callee), 9999, &config).unwrap();
        (tx, rx)
    };

    let source_config = VoipSourceConfig {
        duration: SimDuration::from_secs(30),
        ..Default::default()
    };
    let start = sim.now();
    let mut source = VoipSource::new(source_config.clone(), start);
    let mut receiver = VoipReceiver::new(source_config, SimDuration::from_millis(200), start);
    // Two competing bulk flows congest the path.
    let mut flows: Vec<CompetingFlow> = (0..2)
        .map(|i| CompetingFlow::new(caller, callee, 6000 + i, start))
        .collect();

    let end = start + SimDuration::from_secs(32);
    while sim.now() < end {
        let now = sim.now();
        while let Some((_, frame)) = source.poll(now) {
            let _ = tx.send(sim.host_mut(caller), &frame, 0);
        }
        for d in rx.recv(sim.host_mut(callee)) {
            if frame_number(&d.payload).is_some() {
                receiver.on_frame(&d.payload, now);
            }
        }
        for f in flows.iter_mut() {
            f.tick(&mut sim, now);
        }
        sim.run_for(SimDuration::from_millis(10));
    }
    let report = receiver.report(SimDuration::from_secs(2));
    let mut lat = report.latencies_ms.clone();
    (
        lat.median(),
        lat.quantile(0.95),
        report.miss_fraction * 100.0,
        report.overall_mos,
    )
}

fn main() {
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>8}",
        "transport", "median (ms)", "p95 (ms)", "missed (%)", "MOS"
    );
    for (name, protocol) in [
        ("uCOBS", Protocol::Ucobs),
        ("TCP", Protocol::TcpTlv),
        ("UDP", Protocol::Udp),
    ] {
        let (median, p95, missed, mos) = run_call(protocol);
        println!("{name:<10} {median:>12.1} {p95:>12.1} {missed:>12.1} {mos:>8.2}");
    }
}
