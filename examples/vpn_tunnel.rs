//! Tunneling TCP flows through a Minion-based VPN (paper §8.4).
//!
//! A download and an upload share a VPN tunnel over a residential link
//! (3 Mbps down / 0.5 Mbps up). The original tunnel is an in-order TCP
//! stream; the modified tunnel uses uCOBS with prioritized ACKs.
//!
//! Run with: `cargo run --release --example vpn_tunnel`

use minion_repro::apps::TunnelGateway;
use minion_repro::core::{MinionConfig, MinionTransport, Protocol};
use minion_repro::simnet::{LinkConfig, SimDuration};
use minion_repro::stack::{Sim, SocketAddr};

fn run(protocol: Protocol, prioritize_acks: bool) -> (f64, f64) {
    let mut sim = Sim::new(21);
    let home = sim.add_host("home");
    let vpn = sim.add_host("vpn-server");
    sim.link_asymmetric(
        home,
        vpn,
        LinkConfig::new(500_000, SimDuration::from_millis(30)).with_queue_bytes(24 * 1024),
        LinkConfig::new(3_000_000, SimDuration::from_millis(30)).with_queue_bytes(24 * 1024),
    );
    let config = MinionConfig::with_utcp();
    MinionTransport::listen(protocol, sim.host_mut(vpn), 1194, &config).unwrap();
    let now = sim.now();
    let ct = MinionTransport::connect(
        protocol,
        sim.host_mut(home),
        SocketAddr::new(vpn, 1194),
        &config,
        now,
    )
    .unwrap();
    sim.run_for(SimDuration::from_millis(300));
    let st = MinionTransport::accept(protocol, sim.host_mut(vpn), 1194, &config).unwrap();
    let mut home_gw = TunnelGateway::new(ct, prioritize_acks);
    let mut vpn_gw = TunnelGateway::new(st, prioritize_acks);
    // One tunneled download and one tunneled upload.
    vpn_gw.add_source_flow(1, u64::MAX / 4, sim.now());
    home_gw.add_sink_flow(1);
    home_gw.add_source_flow(2, u64::MAX / 4, sim.now());
    vpn_gw.add_sink_flow(2);

    let start = sim.now();
    let duration = SimDuration::from_secs(30);
    while sim.now() - start < duration {
        let now = sim.now();
        home_gw.tick(sim.host_mut(home), now);
        vpn_gw.tick(sim.host_mut(vpn), now);
        sim.run_for(SimDuration::from_millis(10));
    }
    let secs = (sim.now() - start).as_secs_f64();
    (
        home_gw.sink_received(1) as f64 * 8.0 / secs / 1e6,
        vpn_gw.sink_received(2) as f64 * 8.0 / secs / 1e6,
    )
}

fn main() {
    let (orig_down, orig_up) = run(Protocol::TcpTlv, false);
    let (modi_down, modi_up) = run(Protocol::Ucobs, true);
    println!(
        "original OpenVPN-style tunnel : download {orig_down:5.2} Mbps, upload {orig_up:5.3} Mbps"
    );
    println!(
        "modified (uCOBS + priACKs)    : download {modi_down:5.2} Mbps, upload {modi_up:5.3} Mbps"
    );
    println!("download speedup: {:.2}x", modi_down / orig_down.max(1e-9));
}
