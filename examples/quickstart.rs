//! Quickstart: unordered datagrams over a TCP connection with Minion.
//!
//! Two simulated hosts exchange uCOBS datagrams over a lossy path. Datagrams
//! carried in segments after a loss are delivered immediately (out of
//! order), while standard TCP would have held them back.
//!
//! Run with: `cargo run --example quickstart`

use minion_repro::core::{MinionConfig, UcobsSocket};
use minion_repro::simnet::{LinkConfig, LossConfig, SimDuration};
use minion_repro::stack::{Sim, SocketAddr};

fn main() {
    // 1. Build a two-host topology: 10 Mbps, 60 ms RTT, 1% loss.
    let mut sim = Sim::new(7);
    let alice = sim.add_host("alice");
    let bob = sim.add_host("bob");
    sim.link(
        alice,
        bob,
        LinkConfig::new(10_000_000, SimDuration::from_millis(30))
            .with_loss(LossConfig::Bernoulli { probability: 0.01 }),
    );

    // 2. Open a uCOBS connection (datagrams over TCP/uTCP).
    let config = MinionConfig::with_utcp();
    UcobsSocket::listen(sim.host_mut(bob), 9000, &config).expect("listen");
    let now = sim.now();
    let mut sender = UcobsSocket::connect(
        sim.host_mut(alice),
        SocketAddr::new(bob, 9000),
        &config,
        now,
    );
    sim.run_for(SimDuration::from_millis(200));
    let mut receiver = UcobsSocket::accept(sim.host_mut(bob), 9000).expect("accepted");

    // 3. Send 200 datagrams. Each is padded to ~600 bytes so the stream
    //    spans many segments and the 1% loss reliably leaves a mid-stream
    //    hole for uTCP to deliver around.
    for i in 0..200u32 {
        let payload = format!("datagram number {i:<3} {:=<580}", "");
        sender
            .send_datagram(sim.host_mut(alice), payload.as_bytes())
            .expect("send");
    }

    // 4. Let the simulation run and collect what arrives.
    let mut delivered = 0usize;
    let mut out_of_order = 0usize;
    for _ in 0..50 {
        sim.run_for(SimDuration::from_millis(100));
        for datagram in receiver.recv(sim.host_mut(bob)) {
            delivered += 1;
            if datagram.out_of_order {
                out_of_order += 1;
            }
        }
    }

    println!("delivered {delivered} datagrams, {out_of_order} of them ahead of a stream hole");
    println!(
        "sender overhead ratio: {:.4} (COBS + markers)",
        sender.stats().overhead_ratio()
    );
    println!(
        "receiver stats: {} received, {} out of order, {} duplicates suppressed",
        receiver.stats().datagrams_received,
        receiver.stats().out_of_order_received,
        receiver.stats().duplicates_suppressed
    );
    assert_eq!(delivered, 200, "reliable delivery despite 1% loss");
}
