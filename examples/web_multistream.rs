//! Web page loads: pipelined HTTP/1.1 over TCP vs parallel requests over
//! msTCP (paper §8.5, Figure 13).
//!
//! Run with: `cargo run --release --example web_multistream`

use minion_repro::apps::{generate_trace, load_page_mstcp, load_page_pipelined_tcp};
use minion_repro::simnet::{LinkConfig, SimDuration};
use minion_repro::stack::Sim;

fn main() {
    let trace = generate_trace(6, 99);
    println!(
        "{:<14} {:>6} {:>10} {:>14} {:>14} {:>14} {:>14}",
        "bucket", "reqs", "bytes", "PLT tcp (ms)", "PLT msTCP", "TTFB tcp (ms)", "TTFB msTCP"
    );
    for (i, page) in trace.iter().enumerate() {
        let mut sim = Sim::new(100 + i as u64);
        let client = sim.add_host("browser");
        let server = sim.add_host("webserver");
        sim.link(
            client,
            server,
            LinkConfig::new(1_500_000, SimDuration::from_millis(30)),
        );
        let pipelined = load_page_pipelined_tcp(&mut sim, client, server, page, 8000);

        let mut sim = Sim::new(200 + i as u64);
        let client = sim.add_host("browser");
        let server = sim.add_host("webserver");
        sim.link(
            client,
            server,
            LinkConfig::new(1_500_000, SimDuration::from_millis(30)),
        );
        let mstcp = load_page_mstcp(&mut sim, client, server, page, 8000);

        println!(
            "{:<14} {:>6} {:>10} {:>14.0} {:>14.0} {:>14.0} {:>14.0}",
            page.bucket(),
            page.request_count(),
            page.total_bytes(),
            pipelined.page_load_time.as_millis_f64(),
            mstcp.page_load_time.as_millis_f64(),
            pipelined.mean_first_byte().as_millis_f64(),
            mstcp.mean_first_byte().as_millis_f64(),
        );
    }
}
