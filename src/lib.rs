//! Workspace root crate: re-exports the Minion reproduction crates so that
//! the runnable examples and cross-crate integration tests have a single
//! dependency surface.
pub use minion_apps as apps;
pub use minion_cobs as cobs;
pub use minion_core as core;
pub use minion_crypto as crypto;
pub use minion_engine as engine;
pub use minion_exec as exec;
pub use minion_mstcp as mstcp;
pub use minion_obs as obs;
pub use minion_simnet as simnet;
pub use minion_stack as stack;
pub use minion_tcp as tcp;
pub use minion_testkit as testkit;
pub use minion_tls as tls;
