//! The multi-flow load gate (see `minion_engine`): the scenario-matrix
//! `flows ∈ {1, 64, 1024}` axis, with exactly-once delivery and per-stream
//! order asserted per flow and every cell run twice under its fixed seed to
//! prove byte-identical metrics.

use minion_repro::engine::{verify_load, LoadScenario};
use minion_repro::testkit::{run_matrix, summarize, MatrixSpec};

/// The 1024-flow acceptance scenario: deterministic (same seed ⇒ identical
/// metrics across two runs, asserted inside `verify_load`), exactly-once per
/// flow, and actually concurrent — the engine multiplexes every flow over one
/// shared link.
#[test]
fn one_thousand_flows_deterministic_and_exactly_once() {
    let scenario = LoadScenario::smoke_1k();
    let report = verify_load(&scenario);
    assert_eq!(report.flows, 1024);
    assert_eq!(report.records_delivered, report.records_sent);
    assert_eq!(report.per_flow.len(), 1024);
    assert!(
        report.per_flow.iter().all(|f| f.bytes_delivered > 0),
        "every flow carried payload"
    );
    assert!(report.goodput_bps > 0);
    assert!(
        report.engine.timer_fires > 0,
        "the timer wheel must be doing real work (delayed ACKs at minimum)"
    );
    // The engine never sweeps all flows per event: polls stay proportional
    // to events, not flows × events.
    assert!(
        report.engine.flow_polls < report.engine.events() * 4,
        "flow polls ({}) must scale with events ({}), not with flows × events",
        report.engine.flow_polls,
        report.engine.events()
    );
}

/// The load matrix: flows {1, 64, 1024} × receiver stack × loss, every cell
/// verified twice for determinism by `run_matrix`.
#[test]
fn flows_axis_matrix_is_exactly_once_per_flow() {
    let spec = MatrixSpec::load();
    let cells = spec.cells();
    // 1 protocol × 2 stacks × 2 losses × 3 flow counts.
    assert_eq!(cells.len(), 12);
    let labels: std::collections::BTreeSet<String> = cells.iter().map(|c| c.label()).collect();
    assert_eq!(labels.len(), cells.len(), "matrix cells must be distinct");
    let reports = run_matrix(&cells);
    println!("{}", summarize(&reports));
    for report in &reports {
        assert_eq!(
            report.delivered, report.sent,
            "[{}] every record delivered exactly once",
            report.label
        );
    }
    // Standard receivers never see out-of-order chunks, whatever the scale.
    for (cell, report) in cells.iter().zip(&reports) {
        if cell.receiver_stack == minion_repro::testkit::StackMode::Standard {
            assert_eq!(report.out_of_order, 0, "[{}] in-order only", report.label);
        }
    }
}

/// Loss hits individual flows, not the aggregate: under Bernoulli loss some
/// flows retransmit while (at these rates) most do not, and the harness
/// still reassembles every stream.
#[test]
fn loss_under_load_is_recovered_per_flow() {
    let scenario = LoadScenario {
        flows: 64,
        loss: minion_repro::simnet::LossConfig::Bernoulli { probability: 0.02 },
        ..LoadScenario::default()
    };
    let report = verify_load(&scenario);
    assert_eq!(report.records_delivered, report.records_sent);
    let with_retx = report
        .per_flow
        .iter()
        .filter(|f| f.retransmissions > 0)
        .count();
    assert!(
        with_retx > 0,
        "2% loss across 64 flows must hit at least one flow"
    );
    assert!(
        with_retx < 64,
        "2% loss should not hit every single flow's data"
    );
}
