//! The streaming flight-recorder gate: per-flow delay attribution must
//! actually attribute (the worst flow's tail sits strictly above the
//! global tail under ordered TCP), and the streaming trace sink must keep
//! every lifecycle event of a run that structurally overflows the bounded
//! trace ring.

use minion_repro::engine::{LoadScenario, DEFAULT_TRACE_CAP};

/// The paper's head-of-line-blocking story, per flow: under the canonical
/// ordered-TCP comparison scenario the stalls concentrate on the unlucky
/// flows, so the worst flow's p99 delivery delay strictly exceeds the
/// all-flows p99. This is the acceptance assertion for the `"flow_delay"`
/// section of `BENCH_engine.json` — the bench binary asserts it on every
/// run, and this test pins it in tier-1.
#[test]
fn worst_flow_p99_strictly_exceeds_global_p99_under_ordered_tcp() {
    let report = LoadScenario::obs_comparison(false).run_sharded(2);
    let map = &report.obs.flow_delay;
    let global = &report.obs.delivery_delay;

    // Every flow tracked, every delay sample attributed to its flow.
    assert_eq!(map.len() as u64, report.flows);
    assert_eq!(map.overflow_samples(), 0);
    assert_eq!(map.total_samples(), global.count());

    let top = map.top_k(8);
    assert_eq!(top.len(), 8);
    assert!(
        top[0].1.p99() > global.p99(),
        "worst flow #{} p99 {} ns must strictly exceed the global p99 {} ns",
        top[0].0,
        top[0].1.p99(),
        global.p99()
    );
    // The ranking is what it claims: non-increasing p99 down the list, and
    // every digest stays inside the global envelope.
    for pair in top.windows(2) {
        assert!(pair[0].1.p99() >= pair[1].1.p99(), "top-K sorted by p99");
    }
    for (flow, digest) in &top {
        assert!(
            digest.max() <= global.max(),
            "flow {flow} max exceeds the global max"
        );
        assert!(digest.count() > 0, "flow {flow} has samples");
    }
}

/// The flight-recorder scenario offers more lifecycle events than the
/// trace ring can hold — and with `--trace-stream`, loses none of them:
/// the per-shard spills merge into one `(t_ns, shard)`-ordered JSONL whose
/// event-line count equals the stream's emitted count exactly, closed by a
/// merged trailer. The ring, meanwhile, demonstrably truncated.
#[test]
fn flight_recorder_streams_every_event_past_the_ring_cap() {
    let dir = std::env::temp_dir().join(format!("minion_flight_rec_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("flight.jsonl");
    let scenario = LoadScenario {
        trace_stream: Some(path.display().to_string()),
        ..LoadScenario::flight_recorder(true)
    };
    let report = scenario.run_sharded(4);
    let filter = &report.obs.trace_filter;
    let offered = filter.admitted + filter.suppressed;

    // The run is sized to overflow the ring: record deliveries alone fill
    // it, and SYN/first-byte/FIN/recovery events push past.
    assert!(
        offered > DEFAULT_TRACE_CAP as u64,
        "flight recorder offered {offered} events, ring holds {DEFAULT_TRACE_CAP}"
    );
    assert!(report.obs.trace.dropped() > 0, "the ring truncated");

    // The stream did not: zero drops, every admitted event emitted.
    assert_eq!(report.obs.stream.dropped, 0);
    assert_eq!(report.obs.stream.emitted, filter.admitted);

    // The merged artifact agrees line-for-line: one JSONL line per emitted
    // event in non-decreasing t_ns order, then the merged trailer.
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let (events, trailer) = lines.split_at(lines.len() - 1);
    assert_eq!(events.len() as u64, report.obs.stream.emitted);
    assert!(
        trailer[0].contains("\"summary\":true")
            && trailer[0].contains("\"shards\":8")
            && trailer[0].contains("\"dropped\":0"),
        "merged trailer must close the file: {}",
        trailer[0]
    );
    let mut last_t = 0u64;
    for line in events {
        let t_pos = line.find("\"t_ns\":").expect("event line carries t_ns") + 7;
        let t: u64 = line[t_pos..]
            .split(|c: char| !c.is_ascii_digit())
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(t >= last_t, "merged stream ordered by t_ns");
        last_t = t;
    }
    std::fs::remove_dir_all(&dir).ok();
}
