//! Cross-crate integration tests: whole-system scenarios spanning the
//! simulator, the TCP/uTCP stack, the Minion endpoints, and the application
//! models.

use minion_repro::core::{
    choose_protocol, AppRequirements, MinionConfig, PathCapabilities, Protocol, UcobsSocket,
    UtlsSocket,
};
use minion_repro::simnet::{LinkConfig, LossConfig, NodeId, SimDuration};
use minion_repro::stack::{MiddleboxBehavior, Sim, SocketAddr};
use minion_repro::tcp::SocketOptions;

fn lossy_pair(seed: u64, loss: LossConfig) -> (Sim, NodeId, NodeId) {
    let mut sim = Sim::new(seed);
    let a = sim.add_host("a");
    let b = sim.add_host("b");
    sim.link(
        a,
        b,
        LinkConfig::new(10_000_000, SimDuration::from_millis(30)).with_loss(loss),
    );
    (sim, a, b)
}

/// The Figure 4 scenario: a middlebox re-segments the TCP stream so record
/// boundaries no longer align with segments, and a segment is lost. uCOBS
/// must still deliver every record exactly once, and the records following
/// the loss must not wait for the retransmission.
#[test]
fn ucobs_survives_middlebox_resegmentation_and_loss() {
    let mut sim = Sim::new(4242);
    let sender = sim.add_host("sender");
    let mb = sim.add_middlebox("resegmenter", MiddleboxBehavior::Split { max_payload: 700 });
    let receiver = sim.add_host("receiver");
    sim.link(
        sender,
        mb,
        LinkConfig::new(10_000_000, SimDuration::from_millis(15)),
    );
    sim.link(
        mb,
        receiver,
        LinkConfig::new(10_000_000, SimDuration::from_millis(15))
            .with_loss(LossConfig::Explicit { indices: vec![9] }),
    );
    sim.add_route(sender, receiver, mb);
    sim.add_route(receiver, sender, mb);

    let config = MinionConfig::with_utcp();
    UcobsSocket::listen(sim.host_mut(receiver), 9000, &config).unwrap();
    let now = sim.now();
    let mut tx = UcobsSocket::connect(
        sim.host_mut(sender),
        SocketAddr::new(receiver, 9000),
        &config,
        now,
    );
    sim.run_for(SimDuration::from_millis(200));
    let mut rx = UcobsSocket::accept(sim.host_mut(receiver), 9000).expect("accepted");

    let sent: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i; 900]).collect();
    for d in &sent {
        tx.send_datagram(sim.host_mut(sender), d).unwrap();
    }
    // Early phase: loss not yet repaired, but later records already flow.
    sim.run_for(SimDuration::from_millis(120));
    let early = rx.recv(sim.host_mut(receiver));
    assert!(
        early.iter().any(|d| d.out_of_order),
        "records behind the hole are delivered early despite re-segmentation"
    );
    // Eventually everything arrives exactly once.
    sim.run_for(SimDuration::from_secs(10));
    let late = rx.recv(sim.host_mut(receiver));
    let mut all: Vec<u8> = early
        .iter()
        .chain(late.iter())
        .map(|d| d.payload[0])
        .collect();
    all.sort_unstable();
    assert_eq!(all, (0..40u8).collect::<Vec<u8>>());
    assert!(
        sim.middlebox(mb).stats().splits > 0,
        "the middlebox did re-segment"
    );
}

/// Incremental deployment (§3.3): only one endpoint runs uTCP. The connection
/// still works; upgrading the receiver alone already yields out-of-order
/// delivery for data flowing toward it.
#[test]
fn mixed_utcp_deployment_interoperates() {
    for (sender_opts, receiver_opts, expect_ooo) in [
        (SocketOptions::standard(), SocketOptions::standard(), false),
        (SocketOptions::utcp(), SocketOptions::standard(), false),
        (SocketOptions::standard(), SocketOptions::utcp(), true),
        (SocketOptions::utcp(), SocketOptions::utcp(), true),
    ] {
        let (mut sim, a, b) = lossy_pair(7, LossConfig::Explicit { indices: vec![4] });
        let sender_config = MinionConfig {
            socket_options: sender_opts,
            ..MinionConfig::default()
        };
        let receiver_config = MinionConfig {
            socket_options: receiver_opts,
            ..MinionConfig::default()
        };

        UcobsSocket::listen(sim.host_mut(b), 9000, &receiver_config).unwrap();
        let now = sim.now();
        let mut tx = UcobsSocket::connect(
            sim.host_mut(a),
            SocketAddr::new(b, 9000),
            &sender_config,
            now,
        );
        sim.run_for(SimDuration::from_millis(200));
        let mut rx = UcobsSocket::accept(sim.host_mut(b), 9000).expect("accepted");

        for i in 0..10u8 {
            tx.send(sim.host_mut(a), &vec![i; 1000], 0).unwrap();
        }
        sim.run_for(SimDuration::from_millis(120));
        let early = rx.recv(sim.host_mut(b));
        let saw_ooo = early.iter().any(|d| d.out_of_order);
        assert_eq!(
            saw_ooo, expect_ooo,
            "sender_opts={sender_opts:?} receiver_opts={receiver_opts:?}"
        );
        sim.run_for(SimDuration::from_secs(5));
        let late = rx.recv(sim.host_mut(b));
        assert_eq!(
            early.len() + late.len(),
            10,
            "all datagrams delivered in every mix"
        );
    }
}

/// uTLS end to end over a lossy path: secure datagrams are recovered out of
/// order and every record is delivered exactly once with intact contents.
#[test]
fn utls_end_to_end_over_lossy_path() {
    let (mut sim, a, b) = lossy_pair(99, LossConfig::Bernoulli { probability: 0.01 });
    let config = MinionConfig::with_utcp().with_psk(b"integration-test-key");
    UtlsSocket::listen(sim.host_mut(b), 443, &config).unwrap();
    let now = sim.now();
    let mut tx = UtlsSocket::connect(sim.host_mut(a), SocketAddr::new(b, 443), &config, now);
    sim.run_for(SimDuration::from_millis(150));
    let mut rx = UtlsSocket::accept(sim.host_mut(b), 443, &config).expect("accepted");
    for _ in 0..6 {
        let _ = rx.recv(sim.host_mut(b));
        let _ = tx.recv(sim.host_mut(a));
        sim.run_for(SimDuration::from_millis(100));
    }
    assert!(tx.is_established() && rx.is_established());
    assert!(tx.out_of_order_active());

    let sent: Vec<Vec<u8>> = (0..120u32)
        .map(|i| vec![(i % 251) as u8; 400 + (i as usize * 7) % 800])
        .collect();
    let mut received = Vec::new();
    let mut sent_iter = sent.iter();
    for _ in 0..200 {
        for _ in 0..3 {
            if let Some(d) = sent_iter.next() {
                tx.send_datagram(sim.host_mut(a), d).unwrap();
            }
        }
        sim.run_for(SimDuration::from_millis(50));
        received.extend(rx.recv(sim.host_mut(b)));
        if received.len() == sent.len() {
            break;
        }
    }
    assert_eq!(
        received.len(),
        sent.len(),
        "stats: {:?}",
        rx.receiver_stats()
    );
    // Every payload delivered exactly once, contents intact (MAC-checked).
    let mut got: Vec<&Vec<u8>> = received.iter().map(|d| &d.payload).collect();
    let mut expected: Vec<&Vec<u8>> = sent.iter().collect();
    got.sort();
    expected.sort();
    assert_eq!(got, expected);
}

/// The negotiation helper steers applications to the right Minion protocol,
/// and the chosen protocol actually carries traffic end to end.
#[test]
fn negotiated_protocol_carries_traffic() {
    let app = AppRequirements {
        needs_security: true,
        wants_unordered: true,
        needs_reliability: true,
    };
    let path = PathCapabilities {
        udp_allowed: false,
        tcp_allowed: true,
        requires_tls_appearance: true,
    };
    let protocol = choose_protocol(&app, &path).expect("a protocol fits");
    assert_eq!(protocol, Protocol::Utls);

    let (mut sim, a, b) = lossy_pair(55, LossConfig::None);
    let config = MinionConfig::with_utcp();
    minion_repro::core::MinionTransport::listen(protocol, sim.host_mut(b), 443, &config).unwrap();
    let now = sim.now();
    let mut client = minion_repro::core::MinionTransport::connect(
        protocol,
        sim.host_mut(a),
        SocketAddr::new(b, 443),
        &config,
        now,
    )
    .unwrap();
    sim.run_for(SimDuration::from_millis(200));
    let mut server =
        minion_repro::core::MinionTransport::accept(protocol, sim.host_mut(b), 443, &config)
            .unwrap();
    for _ in 0..5 {
        let _ = server.recv(sim.host_mut(b));
        let _ = client.recv(sim.host_mut(a));
        sim.run_for(SimDuration::from_millis(80));
    }
    client
        .send_datagram(sim.host_mut(a), b"negotiated hello")
        .unwrap();
    sim.run_for(SimDuration::from_millis(300));
    let got = server.recv(sim.host_mut(b));
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].payload, b"negotiated hello");
}
