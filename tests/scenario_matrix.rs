//! The adversarial scenario matrix (see `minion_testkit`): a cross product of
//! loss model × RTT × bottleneck rate × middlebox behaviour × protocol ×
//! receiver stack, with the paper's invariants asserted in every cell and
//! every cell run twice under its fixed seed to prove determinism.

use minion_repro::testkit::{
    run_matrix, summarize, CcAlgorithm, CellSpec, LossAxis, MatrixSpec, MiddleboxAxis,
    PayloadProtocol, StackMode,
};

fn assert_distinct_labels(cells: &[CellSpec]) {
    let labels: std::collections::BTreeSet<String> = cells.iter().map(|c| c.label()).collect();
    assert_eq!(labels.len(), cells.len(), "matrix cells must be distinct");
}

/// The core 24-cell matrix: every protocol (uCOBS, uTLS, msTCP) over both
/// receiver stacks (standard TCP, uTCP) under four loss models (none,
/// Bernoulli 2%, Gilbert–Elliott burst, one deterministic mid-stream drop),
/// all behind a re-segmenting middlebox. Exactly-once delivery, the
/// out-of-order-iff-uTCP rule, per-stream msTCP ordering, and two-run
/// determinism are asserted per cell by `verify_cell`.
#[test]
fn full_protocol_matrix_over_loss_models() {
    let spec = MatrixSpec::default();
    let cells = spec.cells();
    assert!(
        cells.len() >= 24,
        "the tier-1 matrix must cover at least 24 cells"
    );
    assert_distinct_labels(&cells);
    let reports = run_matrix(&cells);
    println!("{}", summarize(&reports));
    assert_eq!(reports.len(), cells.len());
    for report in &reports {
        assert_eq!(
            report.delivered, report.sent,
            "[{}] every datagram delivered exactly once",
            report.label
        );
    }
    // The deterministic-drop uTCP cells must have exercised out-of-order
    // delivery somewhere in the matrix.
    assert!(
        reports.iter().any(|r| r.out_of_order > 0),
        "at least one cell must observe out-of-order delivery"
    );
}

/// RTT (10–300 ms) × middlebox (pass-through, split, coalesce) sweep under a
/// deterministic mid-stream drop with a uTCP receiver: out-of-order delivery
/// is mandatory in every cell regardless of path delay or in-network
/// re-segmentation.
#[test]
fn rtt_and_middlebox_sweep_under_deterministic_loss() {
    let spec = MatrixSpec {
        protocols: vec![PayloadProtocol::Ucobs],
        receiver_stacks: vec![StackMode::Utcp],
        losses: vec![LossAxis::ExplicitHole(8)],
        rtts_ms: vec![10, 100, 300],
        rates_bps: vec![10_000_000],
        middleboxes: vec![
            MiddleboxAxis::PassThrough,
            MiddleboxAxis::Split(700),
            MiddleboxAxis::Coalesce(2800),
        ],
        datagrams: 24,
        datagram_len: 900,
        flows: vec![1],
        ccs: vec![CcAlgorithm::NewReno],
        base_seed: 0x5eed_0002,
    };
    let cells = spec.cells();
    assert_eq!(cells.len(), 9);
    assert_distinct_labels(&cells);
    let reports = run_matrix(&cells);
    println!("{}", summarize(&reports));
    for report in &reports {
        assert!(
            report.out_of_order > 0,
            "[{}] the hole must force out-of-order delivery",
            report.label
        );
    }
}

/// Bottleneck-rate sweep (residential 1.5 Mbps up to fast 50 Mbps) under
/// bursty loss for both uCOBS and uTLS on uTCP.
#[test]
fn bottleneck_rate_sweep_under_bursty_loss() {
    let spec = MatrixSpec {
        protocols: vec![PayloadProtocol::Ucobs, PayloadProtocol::Utls],
        receiver_stacks: vec![StackMode::Utcp],
        losses: vec![LossAxis::Burst],
        rtts_ms: vec![60],
        rates_bps: vec![1_500_000, 10_000_000, 50_000_000],
        middleboxes: vec![MiddleboxAxis::PassThrough],
        datagrams: 24,
        datagram_len: 900,
        flows: vec![1],
        ccs: vec![CcAlgorithm::NewReno],
        base_seed: 0x5eed_0003,
    };
    let cells = spec.cells();
    assert_eq!(cells.len(), 6);
    assert_distinct_labels(&cells);
    let reports = run_matrix(&cells);
    println!("{}", summarize(&reports));
    for report in &reports {
        assert_eq!(
            report.delivered, report.sent,
            "[{}] exactly once",
            report.label
        );
    }
}
