//! Property-based tests over the core data structures and codecs.

use minion_repro::cobs;
use minion_repro::core::FragmentStore;
use minion_repro::crypto;
use minion_repro::tcp::{SackBlock, SeqNum, TcpFlags, TcpOption, TcpSegment};
use minion_repro::tls::{CipherSuite, RecordProtection, CONTENT_APPLICATION_DATA, VERSION_TLS11};
use proptest::prelude::*;

proptest! {
    // Fixed case count (with seeds derived from file + test name) so every
    // CI run generates the identical case sequence; override locally with
    // PROPTEST_CASES. Failures are pinned in proptest-regressions/.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// COBS is a bijection on arbitrary byte strings and never emits the
    /// reserved marker byte.
    #[test]
    fn cobs_roundtrip_and_marker_freedom(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let encoded = cobs::encode(&data);
        prop_assert!(encoded.iter().all(|&b| b != cobs::MARKER));
        prop_assert!(encoded.len() <= cobs::max_encoded_len(data.len()));
        let decoded = cobs::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, data);
    }

    /// Framed records are always recoverable from the full stream, and
    /// concatenations of framed records scan back to the original sequence.
    #[test]
    fn framed_records_scan_back(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..600), 1..12)
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&cobs::frame_datagram(p));
        }
        let scanned = cobs::scan_records(&stream, true);
        let got: Vec<Vec<u8>> = scanned.into_iter().map(|r| r.payload).collect();
        prop_assert_eq!(got, payloads);
    }

    /// The fragment store reassembles an arbitrary permutation of arbitrary
    /// overlapping slices of a stream into exactly the original bytes.
    #[test]
    fn fragment_store_reassembles_any_arrival_order(
        len in 1usize..2000,
        seed in any::<u64>(),
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i * 131 % 251) as u8).collect();
        // Slice the stream into chunks of pseudo-random sizes, then deliver
        // them in a pseudo-random order with some duplicates.
        let mut chunks = Vec::new();
        let mut offset = 0usize;
        let mut state = seed | 1;
        while offset < len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let size = 1 + (state >> 33) as usize % 200;
            let end = (offset + size).min(len);
            chunks.push((offset as u64, data[offset..end].to_vec()));
            offset = end;
        }
        let mut order: Vec<usize> = (0..chunks.len()).collect();
        // Deterministic shuffle.
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(12345);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let mut store = FragmentStore::new();
        for &i in &order {
            let (off, ref chunk) = chunks[i];
            store.insert(off, chunk);
            // Occasionally re-deliver a duplicate.
            if i % 5 == 0 {
                store.insert(off, chunk);
            }
        }
        let frag = store.fragment_at(0).expect("stream head present");
        prop_assert_eq!(frag.offset, 0);
        prop_assert_eq!(frag.data, data);
        prop_assert_eq!(store.fragment_count(), 1);
    }

    /// TCP segments round-trip through their wire encoding for arbitrary
    /// field values.
    #[test]
    fn tcp_segment_roundtrip(
        src in any::<u16>(),
        dst in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        window in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..2000),
        sack_ranges in proptest::collection::vec((any::<u32>(), 1u32..5000), 0..3),
    ) {
        let mut seg = TcpSegment::bare(src, dst, SeqNum::new(seq), SeqNum::new(ack), TcpFlags::ACK);
        seg.window = window;
        seg.payload = payload.into();
        if !sack_ranges.is_empty() {
            let blocks: Vec<SackBlock> = sack_ranges
                .iter()
                .map(|&(start, len)| SackBlock { start: SeqNum::new(start), end: SeqNum::new(start) + len })
                .collect();
            seg.options = vec![TcpOption::SackPermitted, TcpOption::Sack(blocks), TcpOption::Mss(1448)];
        }
        let decoded = TcpSegment::decode(&seg.encode()).unwrap();
        prop_assert_eq!(decoded, seg);
    }

    /// TLS records round-trip under the correct record number and fail under
    /// any other record number (the property uTLS's guess-and-verify relies
    /// on).
    #[test]
    fn tls_record_mac_binds_the_record_number(
        payload in proptest::collection::vec(any::<u8>(), 1..1500),
        record_number in 0u64..1_000_000,
        wrong_delta in 1u64..50,
    ) {
        let enc = *b"prop-test-key-16";
        let mac = [3u8; 32];
        let mut tx = RecordProtection::new(CipherSuite::Aes128CbcExplicitIv, enc, mac, VERSION_TLS11);
        let mut rx = RecordProtection::new(CipherSuite::Aes128CbcExplicitIv, enc, mac, VERSION_TLS11);
        let wire = tx.seal(record_number, CONTENT_APPLICATION_DATA, &payload);
        let header = minion_repro::tls::RecordHeader::decode(&wire).unwrap();
        let body = &wire[minion_repro::tls::RECORD_HEADER_LEN..];
        prop_assert_eq!(rx.open(record_number, &header, body).unwrap(), payload);
        prop_assert!(rx.open(record_number + wrong_delta, &header, body).is_err());
    }

    /// SHA-256 and HMAC are deterministic and input-sensitive.
    #[test]
    fn hashes_are_deterministic_and_sensitive(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        flip in any::<usize>(),
    ) {
        let a = crypto::sha256(&data);
        let b = crypto::sha256(&data);
        prop_assert_eq!(a, b);
        let mut mutated = data.clone();
        let idx = flip % mutated.len();
        mutated[idx] ^= 0x01;
        prop_assert_ne!(crypto::sha256(&mutated), a);
        prop_assert_ne!(
            crypto::hmac_sha256(b"k1", &data),
            crypto::hmac_sha256(b"k2", &data)
        );
    }
}
