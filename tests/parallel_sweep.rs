//! The parallel-sweep determinism gates (see `minion_exec`): the full
//! scenario matrix and the 1024-flow load scenario must produce
//! byte-identical reports at `threads ∈ {1, 2, 8}` — work-stealing
//! parallelism may change wall-clock and scheduling, never a result.

use minion_repro::engine::LoadScenario;
use minion_repro::testkit::{run_matrix_once, summarize, CcAlgorithm, MatrixSpec};

/// The full tier-1 scenario matrix, swept serially and on 2 and 8 workers:
/// every cell report — counters, fingerprints, completion times — must be
/// byte-identical, because each cell owns a seeded world whose seed is a
/// stable hash of its coordinates ("serial == sharded seeds") and reports
/// commit in cell order.
#[test]
fn full_matrix_reports_are_byte_identical_across_thread_counts() {
    let cells = MatrixSpec::default().cells();
    assert!(cells.len() >= 24, "the full matrix");
    let serial = run_matrix_once(&cells, 1);
    println!("{}", summarize(&serial));
    for threads in [2, 8] {
        let parallel = run_matrix_once(&cells, threads);
        assert_eq!(
            parallel, serial,
            "a {threads}-thread sweep diverged from the serial sweep"
        );
    }
}

/// The multi-flow load matrix (`flows ∈ {1, 64, 1024}`) under the same
/// gate: multi-flow cells decompose into fixed 128-flow engine shards, so
/// the sweep's thread count cannot reach their results either.
#[test]
fn load_matrix_reports_are_byte_identical_across_thread_counts() {
    let cells = MatrixSpec::load().cells();
    assert_eq!(cells.len(), 12);
    let serial = run_matrix_once(&cells, 1);
    for threads in [2, 8] {
        let parallel = run_matrix_once(&cells, threads);
        assert_eq!(
            parallel, serial,
            "a {threads}-thread load sweep diverged from the serial sweep"
        );
    }
}

/// The congestion-control axis under the same gate: the load matrix swept
/// once per algorithm (`cc ∈ {newreno, cubic, none}` — a 12-cell sweep per
/// slice, mirroring CI's `sweep_matrix --cc` invocation) must be
/// byte-identical at `threads ∈ {1, 4}`. CUBIC's window arithmetic is
/// integer-only over virtual time and NoCc has no sender state at all, so
/// neither may perturb under parallelism; the slices must also differ from
/// one another (the axis actually reaches the sender).
#[test]
fn cc_slices_are_byte_identical_across_thread_counts_and_distinct() {
    let mut slices = Vec::new();
    for cc in CcAlgorithm::ALL {
        let mut spec = MatrixSpec::load();
        spec.ccs = vec![cc];
        let cells = spec.cells();
        assert_eq!(cells.len(), 12, "one 12-cell sweep per algorithm");
        for cell in &cells {
            assert_eq!(cell.cc, cc);
            if cc == CcAlgorithm::NewReno {
                assert!(
                    !cell.label().contains("/cc="),
                    "default-cc labels stay stable: {}",
                    cell.label()
                );
            } else {
                assert!(
                    cell.label().contains(&format!("/cc={}", cc.label())),
                    "non-default cc must be visible in the label: {}",
                    cell.label()
                );
            }
        }
        let serial = run_matrix_once(&cells, 1);
        let parallel = run_matrix_once(&cells, 4);
        assert_eq!(
            parallel,
            serial,
            "a 4-thread cc={} sweep diverged from the serial sweep",
            cc.label()
        );
        slices.push(serial);
    }
    // The axis reaches the sender: compared label-blind, the slices must
    // not all tell the same story. (Individual cells may coincide — below
    // ssthresh every algorithm slow-starts identically — but across the
    // lossy 1024-flow cells the recovery dynamics have to show.)
    let timings = |reports: &[minion_repro::testkit::CellReport]| {
        reports
            .iter()
            .map(|r| (r.completion_time_us, r.wire_bytes_sent))
            .collect::<Vec<_>>()
    };
    assert_ne!(timings(&slices[0]), timings(&slices[2]), "newreno vs none");
}

/// The 1024-flow acceptance scenario, sharded (8 × 128-flow engines, merged
/// by shard index), at 1, 2, and 8 executor workers: one merged
/// `LoadReport`, byte-identical every time, with every flow delivered
/// exactly once.
#[test]
fn one_k_load_scenario_is_byte_identical_across_thread_counts() {
    let scenario = LoadScenario::smoke_1k();
    assert_eq!(scenario.shard_count(), 8);
    let serial = scenario.run_sharded(1);
    assert_eq!(serial.flows, 1024);
    assert_eq!(serial.records_delivered, serial.records_sent);
    assert_eq!(serial.per_flow.len(), 1024);
    for (i, f) in serial.per_flow.iter().enumerate() {
        assert_eq!(f.flow as usize, i, "per-flow metrics in global flow order");
    }
    for threads in [2, 8] {
        let parallel = scenario.run_sharded(threads);
        assert_eq!(
            parallel, serial,
            "{threads}-thread sharded 1k run diverged from the serial run"
        );
    }
}
