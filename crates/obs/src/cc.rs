//! Per-congestion-control window telemetry.
//!
//! PR 8 made the congestion-control algorithm a scenario axis, but its
//! window dynamics were invisible beyond two goodput numbers. [`CcObs`] is
//! the deterministic recorder that turns them into data: a bounded ring of
//! cwnd/ssthresh trajectory samples on the **virtual clock** plus
//! fixed-slot [`Histogram`]s of the window and of recovery episodes
//! (duration and depth), all merged shard-order like every other obs type
//! so the parallel-sweep byte-identity gate covers them.
//!
//! Recording happens at **window transitions** (recovery entry/exit, RTO,
//! cwnd-changing ACKs), not per-ACK, so the cost is bounded by the event
//! rate and the ring by `cap`. Timestamps are nanoseconds by the crate-wide
//! convention.

use crate::absorb::Absorb;
use crate::hist::Histogram;
use std::collections::VecDeque;

/// Default trajectory-ring capacity per recorder. Connections record a
/// sample per window *transition*, so a lossy flow produces dozens, not
/// millions; merged per-scenario rings keep the tail of the concatenation.
pub const DEFAULT_CC_SAMPLE_CAP: usize = 4096;

/// One cwnd/ssthresh trajectory point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CwndSample {
    /// Timestamp in nanoseconds (virtual on sim, monotonic on os).
    pub t_ns: u64,
    /// Congestion window in bytes at this instant.
    pub cwnd: u64,
    /// Slow-start threshold in bytes at this instant.
    pub ssthresh: u64,
}

impl CwndSample {
    /// One JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_ns\":{},\"cwnd\":{},\"ssthresh\":{}}}",
            self.t_ns, self.cwnd, self.ssthresh
        )
    }
}

/// Deterministic per-algorithm window telemetry: a bounded cwnd/ssthresh
/// trajectory ring plus window / recovery-duration / recovery-depth
/// histograms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CcObs {
    cap: usize,
    samples: VecDeque<CwndSample>,
    recorded: u64,
    dropped: u64,
    cwnd: Histogram,
    recovery_duration: Histogram,
    recovery_depth: Histogram,
}

impl Default for CcObs {
    fn default() -> Self {
        CcObs::new(DEFAULT_CC_SAMPLE_CAP)
    }
}

impl CcObs {
    /// A recorder keeping at most `cap` trajectory samples (`cap == 0`
    /// records histograms only but still counts samples).
    pub fn new(cap: usize) -> Self {
        CcObs {
            cap,
            samples: VecDeque::new(),
            recorded: 0,
            dropped: 0,
            cwnd: Histogram::new(),
            recovery_duration: Histogram::new(),
            recovery_depth: Histogram::new(),
        }
    }

    /// Record a window transition: one trajectory sample (evicting the
    /// oldest if the ring is full) and one cwnd histogram sample.
    pub fn record_window(&mut self, t_ns: u64, cwnd: u64, ssthresh: u64) {
        self.cwnd.record(cwnd);
        self.recorded += 1;
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.samples.len() == self.cap {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(CwndSample {
            t_ns,
            cwnd,
            ssthresh,
        });
    }

    /// Record a completed recovery episode: how long the connection spent
    /// in recovery (entry→exit, ns) and how deep the window cut was
    /// (cwnd-before − ssthresh-after, bytes).
    pub fn record_recovery(&mut self, duration_ns: u64, depth_bytes: u64) {
        self.recovery_duration.record(duration_ns);
        self.recovery_depth.record(depth_bytes);
    }

    /// Record a window cut that has no episode duration — an RTO cut. Feeds
    /// the depth histogram only, so duration quantiles stay episode-scoped.
    pub fn record_cut_depth(&mut self, depth_bytes: u64) {
        self.recovery_depth.record(depth_bytes);
    }

    /// Trajectory samples currently held, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &CwndSample> + '_ {
        self.samples.iter()
    }

    /// Number of trajectory samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the recorder holds no trajectory samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total trajectory samples ever recorded (held + dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Trajectory samples evicted or rejected by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Ring capacity bound.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Histogram of cwnd (bytes) across all recorded transitions.
    pub fn cwnd_hist(&self) -> &Histogram {
        &self.cwnd
    }

    /// Histogram of recovery-episode durations (ns).
    pub fn recovery_duration(&self) -> &Histogram {
        &self.recovery_duration
    }

    /// Histogram of recovery window cuts (bytes).
    pub fn recovery_depth(&self) -> &Histogram {
        &self.recovery_depth
    }
}

impl Absorb for CcObs {
    /// Histograms merge slot-wise (exact); the trajectory ring concatenates
    /// `other`'s stream after `self`'s and keeps the last `cap`, mirroring
    /// [`crate::TraceRing`]. A pristine recorder (nothing ever recorded in
    /// ring *or* histograms) adopts `other` wholesale, capacity included,
    /// so `CcObs::default()` is a true merge identity; all recorders of one
    /// scenario share a capacity, so the non-pristine path never mixes
    /// bounds in practice.
    fn absorb(&mut self, other: &Self) {
        let pristine = self.recorded == 0
            && self.recovery_duration.count() == 0
            && self.recovery_depth.count() == 0;
        if pristine {
            *self = other.clone();
            return;
        }
        self.recorded += other.recorded;
        for s in &other.samples {
            if self.cap == 0 {
                break;
            }
            if self.samples.len() == self.cap {
                self.samples.pop_front();
            }
            self.samples.push_back(*s);
        }
        self.dropped = self.recorded - self.samples.len() as u64;
        self.cwnd.absorb(&other.cwnd);
        self.recovery_duration.absorb(&other.recovery_duration);
        self.recovery_depth.absorb(&other.recovery_depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(cap: usize, base: u64, n: u64) -> CcObs {
        let mut c = CcObs::new(cap);
        for i in 0..n {
            c.record_window(base + i, 10_000 + i, 5_000);
        }
        c
    }

    #[test]
    fn ring_keeps_last_cap_and_counts_drops() {
        let mut c = filled(2, 0, 3);
        c.record_recovery(1_000_000, 7_200);
        assert_eq!(c.len(), 2);
        assert_eq!(c.recorded(), 3);
        assert_eq!(c.dropped(), 1);
        let ts: Vec<u64> = c.samples().map(|s| s.t_ns).collect();
        assert_eq!(ts, vec![1, 2]);
        assert_eq!(c.cwnd_hist().count(), 3, "histogram sees evicted samples");
        assert_eq!(c.recovery_duration().count(), 1);
        assert_eq!(c.recovery_depth().max(), 7_200);
    }

    #[test]
    fn merge_is_associative_and_order_stable() {
        let a = filled(4, 0, 3);
        let b = filled(4, 100, 3);
        let c = filled(4, 200, 3);
        let mut left = a.clone();
        left.absorb(&b);
        left.absorb(&c);
        let mut bc = b.clone();
        bc.absorb(&c);
        let mut right = a.clone();
        right.absorb(&bc);
        assert_eq!(left, right, "associative");
        // last-4 of the 9-sample concatenation — order-stable: shard order,
        // never completion order.
        let ts: Vec<u64> = left.samples().map(|s| s.t_ns).collect();
        assert_eq!(ts, vec![102, 200, 201, 202]);
        assert_eq!(left.recorded(), 9);
        assert_eq!(left.dropped(), 5);
        // the histograms keep every sample regardless of ring eviction
        assert_eq!(left.cwnd_hist().count(), 9);
    }

    #[test]
    fn empty_default_accumulator_is_identity() {
        let mut r = filled(3, 0, 5);
        r.record_recovery(2_000_000, 14_400);
        let mut acc = CcObs::default();
        acc.absorb(&r);
        assert_eq!(acc, r, "pristine ⊕ r == r, capacity included");
        let mut back = r.clone();
        back.absorb(&CcObs::default());
        assert_eq!(back, r, "r ⊕ pristine == r");
        // a recorder with only recovery episodes is not pristine either
        let mut rec_only = CcObs::new(3);
        rec_only.record_recovery(5, 5);
        let mut acc2 = rec_only.clone();
        acc2.absorb(&CcObs::default());
        assert_eq!(acc2, rec_only);
    }

    #[test]
    fn sample_json_is_stable() {
        let s = CwndSample {
            t_ns: 42,
            cwnd: 14_400,
            ssthresh: 7_200,
        };
        assert_eq!(
            s.to_json(),
            "{\"t_ns\":42,\"cwnd\":14400,\"ssthresh\":7200}"
        );
    }
}
