//! The one merge protocol every observability value speaks.
//!
//! Sharded runs produce one value per shard; serial runs produce one value
//! total. The determinism gates require both to report identically, so every
//! mergeable stat implements [`Absorb`] and the scenario layer folds shard
//! values **in shard order**. The trait's laws (checked by tests here and in
//! the consuming crates) are:
//!
//! * **associativity** — `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)`, so a tree-shaped
//!   merge (what a future hierarchical collector might do) agrees with the
//!   left fold the scenario layer does today;
//! * **identity** — `Default::default()` is a left and right identity, so
//!   merge loops can start from a neutral accumulator;
//! * **order-stability** — merging the same multiset of shard values in shard
//!   order always yields the same bytes, regardless of which threads produced
//!   them (a property of the *caller* discipline, but one the tests pin).
//!
//! Commutativity is deliberately **not** required: a trace ring keeps the
//! *last* `cap` events of the concatenated stream, so `a ⊕ b` and `b ⊕ a`
//! legitimately differ. Order comes from shard index, never thread timing.

/// Merge another value of the same shape into `self`.
///
/// See the [module docs](self) for the laws implementations must uphold.
pub trait Absorb {
    /// Fold `other` into `self`, in caller-supplied (shard) order.
    fn absorb(&mut self, other: &Self);
}

/// Fold an ordered sequence of values into one, starting from the identity.
///
/// This is the canonical shard-merge loop: `merge_ordered(shards)` equals
/// `shards[0] ⊕ shards[1] ⊕ …` by the identity law.
pub fn merge_ordered<'a, T, I>(parts: I) -> T
where
    T: Absorb + Default + 'a,
    I: IntoIterator<Item = &'a T>,
{
    let mut acc = T::default();
    for part in parts {
        acc.absorb(part);
    }
    acc
}

impl Absorb for u64 {
    fn absorb(&mut self, other: &Self) {
        *self = self.saturating_add(*other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_ordered_folds_left_from_identity() {
        let parts = [3u64, 4, 5];
        assert_eq!(merge_ordered::<u64, _>(parts.iter()), 12);
        assert_eq!(merge_ordered::<u64, _>(std::iter::empty()), 0);
    }

    #[test]
    fn u64_absorb_saturates() {
        let mut a = u64::MAX - 1;
        a.absorb(&5);
        assert_eq!(a, u64::MAX);
    }
}
