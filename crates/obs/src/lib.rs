//! # minion-obs — deterministic observability primitives
//!
//! The paper's claim is about *latency*: uTCP's unordered delivery removes
//! the head-of-line-blocking delay ordered TCP imposes. Measuring that needs
//! per-record delivery-delay distributions, lifecycle traces, and honest
//! cross-backend counters — not just aggregate goodput. This crate provides
//! the building blocks, with one non-negotiable property: **same-seed sim
//! runs produce byte-identical observability output at any thread count.**
//!
//! The pieces, and how determinism is preserved in each:
//!
//! | type | what it records | merge rule |
//! |---|---|---|
//! | [`Counter`] / [`CounterSet`] | monotone event counts, fixed name slots | slot-wise saturating add |
//! | [`Gauge`] / [`GaugeSet`] | high-water marks | slot-wise max |
//! | [`Histogram`] | two-level (log2 major × 16 linear minor) `u64` samples (ns) | exact slot-wise add |
//! | [`TraceRing`] | last-N lifecycle [`TraceEvent`]s | concatenate in shard order, trim |
//! | [`StreamStats`] | zero-drop [`StreamSink`] accounting | counter addition |
//! | [`FlowDelayMap`] | per-flow [`DelayDigest`] delay digests | key union, digests slot-wise |
//! | [`CcObs`] | cwnd/ssthresh trajectory ring + recovery histograms | ring concat in shard order, histograms slot-wise |
//! | [`PhaseProfile`] | wall-clock time per loop phase | slot-wise add, **excluded from equality** via [`NonDeterministic`] |
//!
//! Everything mergeable implements [`Absorb`]; sharded runs fold per-shard
//! values **in shard index order** (never completion order), which is what
//! makes a 4-thread run report the same bytes as a serial one. Wall-clock
//! phase profiles are the one legitimately non-deterministic piece and are
//! quarantined behind [`NonDeterministic`] so they can never leak into the
//! byte-identity gates.
//!
//! This crate is std-only and dependency-free; it sits below every other
//! crate in the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod absorb;
mod cc;
mod counter;
mod flow_delay;
mod hist;
mod sink;
mod span;
mod trace;

pub use absorb::{merge_ordered, Absorb};
pub use cc::{CcObs, CwndSample, DEFAULT_CC_SAMPLE_CAP};
pub use counter::{Counter, CounterSet, Gauge, GaugeSet};
pub use flow_delay::{
    DelayDigest, FlowDelayMap, DEFAULT_FLOW_DELAY_CAP, DIGEST_SLOTS, DIGEST_SUB_BUCKETS,
};
pub use hist::{Histogram, BUCKETS, SLOTS, SUB_BUCKETS};
pub use sink::{
    merge_stream_files, shard_trailer_json, FilteredSink, MergedStream, StreamSink, StreamStats,
    Tee, TracePredicate, TraceSink, DEFAULT_STREAM_BATCH_BYTES,
};
pub use span::{NonDeterministic, PhaseProfile};
pub use trace::{KindSet, TraceEvent, TraceKind, TraceRing, DEFAULT_TRACE_CAP};
