//! Composable trace sinks: the streaming flight-recorder pipeline.
//!
//! [`TraceRing`] bounds memory by *shedding* — the `{"summary":true,...}`
//! line admits the loss but cannot undo it. This module generalizes event
//! capture behind a [`TraceSink`] trait so the same emission points feed
//! either the ring (bounded, in-memory, merged via `Absorb`) or a
//! [`StreamSink`] that spills every event to a JSONL writer with bounded
//! in-memory batching and **zero-drop** semantics, with composable
//! [`FilteredSink`] predicates (flow × kind) and a [`Tee`] so one run can
//! do both at once.
//!
//! Determinism discipline: sinks themselves may hold OS resources (a spill
//! file), so they never enter the mergeable observability state — only
//! their [`StreamStats`] counters do, and those are pure functions of the
//! event stream. Per-shard spill files are named by **shard index** (not
//! worker thread), and [`merge_stream_files`] k-way-merges them by
//! `(t_ns, shard)` into one ordered JSONL, so the merged artifact is
//! byte-identical at any thread count.
//!
//! Accounting vocabulary, used consistently across the pipeline:
//!
//! | term | meaning |
//! |---|---|
//! | `emitted` | events offered to the sink |
//! | `suppressed` | events a [`FilteredSink`] predicate rejected (intentional) |
//! | `dropped` | events lost to a capacity bound (a ring evicting) |
//! | `kept` | events retained somewhere downstream |
//!
//! Suppression is *not* loss: a filtered dump is complete with respect to
//! its predicate. `dropped > 0` always means the artifact is missing data
//! it was supposed to hold.

use crate::absorb::Absorb;
use crate::trace::{KindSet, TraceEvent, TraceRing};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// In-memory batch bound for [`StreamSink`] (bytes). Events accumulate in
/// a string buffer and hit the writer in batches of roughly this size, so
/// a million-event stream does a few hundred writes, not a million.
pub const DEFAULT_STREAM_BATCH_BYTES: usize = 64 * 1024;

/// Something that accepts a stream of [`TraceEvent`]s with exact
/// accounting.
///
/// Laws every implementation upholds:
/// * `emitted()` counts every `offer` ever made, exactly;
/// * `kept() + dropped() <= emitted()` (the gap, if any, is intentional
///   suppression by a filter);
/// * all three are pure functions of the offered event sequence — no
///   wall-clock, no allocation-dependent behavior — so same-seed runs
///   report identical numbers at any thread count.
pub trait TraceSink {
    /// Offer one event to the sink.
    fn offer(&mut self, ev: &TraceEvent);

    /// Total events ever offered.
    fn emitted(&self) -> u64;

    /// Events lost to a capacity bound (never includes filter
    /// suppression).
    fn dropped(&self) -> u64;

    /// Events retained somewhere downstream.
    fn kept(&self) -> u64 {
        self.emitted().saturating_sub(self.dropped())
    }

    /// Push any buffered state toward durable storage (no-op for
    /// in-memory sinks).
    fn flush(&mut self) {}
}

/// The ring is the original bounded sink: keeps the last `cap`, counts
/// the shed.
impl TraceSink for TraceRing {
    fn offer(&mut self, ev: &TraceEvent) {
        self.push(*ev);
    }

    fn emitted(&self) -> u64 {
        self.recorded()
    }

    fn dropped(&self) -> u64 {
        TraceRing::dropped(self)
    }
}

/// `None` is the null sink: accepts nothing, counts nothing. Lets a
/// pipeline slot be optional (`Tee<TraceRing, Option<StreamSink>>`)
/// without a second code path.
impl<S: TraceSink> TraceSink for Option<S> {
    fn offer(&mut self, ev: &TraceEvent) {
        if let Some(s) = self {
            s.offer(ev);
        }
    }

    fn emitted(&self) -> u64 {
        self.as_ref().map_or(0, |s| s.emitted())
    }

    fn dropped(&self) -> u64 {
        self.as_ref().map_or(0, |s| s.dropped())
    }

    fn kept(&self) -> u64 {
        self.as_ref().map_or(0, |s| s.kept())
    }

    fn flush(&mut self) {
        if let Some(s) = self {
            s.flush();
        }
    }
}

/// Deterministic accounting of a [`StreamSink`] — the only part of a
/// stream that enters mergeable observability state. Counters are pure
/// functions of the event stream (batch boundaries depend only on event
/// bytes), so sharded merges stay byte-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Events written (every offer — streams never drop).
    pub emitted: u64,
    /// Always zero; present so stream accounting reads like ring
    /// accounting.
    pub dropped: u64,
    /// Batch flushes performed (writer syscall pressure, roughly).
    pub flushes: u64,
}

impl Absorb for StreamStats {
    /// Plain counter addition; `Default` (all-zero) is the identity.
    fn absorb(&mut self, other: &Self) {
        self.emitted += other.emitted;
        self.dropped += other.dropped;
        self.flushes += other.flushes;
    }
}

/// A zero-drop JSONL streaming sink: every offered event is serialized
/// into a bounded in-memory batch and written through when the batch
/// fills.
///
/// **Zero-drop is a hard guarantee**: the accounting laws cannot express
/// "the OS lost some suffix of the stream", so a write error panics
/// (with the sink's label) instead of silently dropping. Callers gate
/// obviously-bad destinations at parse time (`validate_out_path`); a
/// panic here means the disk failed mid-run.
pub struct StreamSink {
    writer: Box<dyn Write + Send>,
    label: String,
    batch: String,
    batch_cap: usize,
    stats: StreamStats,
}

impl std::fmt::Debug for StreamSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSink")
            .field("label", &self.label)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl StreamSink {
    /// A sink over an arbitrary writer; `label` names it in panic
    /// messages (a file path, usually).
    pub fn new(writer: Box<dyn Write + Send>, label: impl Into<String>) -> Self {
        StreamSink {
            writer,
            label: label.into(),
            batch: String::new(),
            batch_cap: DEFAULT_STREAM_BATCH_BYTES,
            stats: StreamStats::default(),
        }
    }

    /// Create (truncate) `path` and stream into it.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(StreamSink::new(Box::new(file), path.display().to_string()))
    }

    /// Override the batch bound (tests exercise small batches).
    pub fn with_batch_cap(mut self, cap: usize) -> Self {
        self.batch_cap = cap.max(1);
        self
    }

    /// Accounting so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Append a raw JSONL line (a shard trailer) without counting it as
    /// an event.
    pub fn write_line(&mut self, line: &str) {
        self.batch.push_str(line);
        self.batch.push('\n');
    }

    fn flush_batch(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        if let Err(e) = self.writer.write_all(self.batch.as_bytes()) {
            panic!("trace stream {}: write failed: {e}", self.label);
        }
        self.batch.clear();
        self.stats.flushes += 1;
    }

    /// Flush remaining events plus the writer itself and return the
    /// final accounting. Call exactly once, after the last event.
    pub fn finish(mut self) -> StreamStats {
        self.flush_batch();
        if let Err(e) = self.writer.flush() {
            panic!("trace stream {}: flush failed: {e}", self.label);
        }
        self.stats
    }
}

impl TraceSink for StreamSink {
    fn offer(&mut self, ev: &TraceEvent) {
        self.batch.push_str(&ev.to_json());
        self.batch.push('\n');
        self.stats.emitted += 1;
        if self.batch.len() >= self.batch_cap {
            self.flush_batch();
        }
    }

    fn emitted(&self) -> u64 {
        self.stats.emitted
    }

    fn dropped(&self) -> u64 {
        0
    }

    fn flush(&mut self) {
        self.flush_batch();
    }
}

/// The flow × kind admission predicate shared by `--trace-flow` and
/// `--trace-kind`: an event passes iff it matches the focused flow (if
/// any) **and** its kind is in the set. `Default` passes everything.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TracePredicate {
    /// Admit only this flow's events (`None` = all flows).
    pub flow: Option<u32>,
    /// Admit only these kinds (`KindSet::all()` = no kind filtering).
    pub kinds: KindSet,
}

impl TracePredicate {
    /// Whether `ev` passes both predicates.
    pub fn admits(&self, ev: &TraceEvent) -> bool {
        self.flow.is_none_or(|f| f == ev.flow) && self.kinds.contains(ev.kind)
    }

    /// Whether this predicate admits every event (nothing to do).
    pub fn is_pass_all(&self) -> bool {
        self.flow.is_none() && self.kinds.is_all()
    }
}

/// A sink that applies a [`TracePredicate`] before its inner sink,
/// counting what it suppresses.
///
/// Filters **compose**: `FilteredSink(p, FilteredSink(q, s))` admits
/// exactly the events `p ∧ q` admits, in the same order, regardless of
/// nesting order — the predicate conjunction is commutative even though
/// the suppressed-counts attribute differently (the outer filter sees
/// more).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FilteredSink<S> {
    predicate: TracePredicate,
    admitted: u64,
    suppressed: u64,
    inner: S,
}

impl<S: TraceSink> FilteredSink<S> {
    /// Wrap `inner` behind `predicate`.
    pub fn new(predicate: TracePredicate, inner: S) -> Self {
        FilteredSink {
            predicate,
            admitted: 0,
            suppressed: 0,
            inner,
        }
    }

    /// The admission predicate.
    pub fn predicate(&self) -> TracePredicate {
        self.predicate
    }

    /// Events that passed the predicate (and reached the inner sink).
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Events the predicate rejected.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// The wrapped sink, by reference.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The wrapped sink, by mutable reference.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwrap, discarding the filter accounting.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TraceSink> TraceSink for FilteredSink<S> {
    fn offer(&mut self, ev: &TraceEvent) {
        if self.predicate.admits(ev) {
            self.admitted += 1;
            self.inner.offer(ev);
        } else {
            self.suppressed += 1;
        }
    }

    fn emitted(&self) -> u64 {
        self.admitted + self.suppressed
    }

    /// Loss is whatever the inner sink lost; suppression is not loss.
    fn dropped(&self) -> u64 {
        self.inner.dropped()
    }

    fn kept(&self) -> u64 {
        self.inner.kept()
    }
}

/// Fan one event stream out to two sinks (ring and stream, typically).
///
/// `kept` is the **best** branch's retention: an event survives the tee
/// if *any* branch kept it, so `dropped` is exact whenever one branch is
/// lossless (a [`StreamSink`]) or both branches shed the same oldest
/// prefix. Branches must be fresh (un-offered) when the tee is built —
/// pre-seeded branch counts would skew the max.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Tee<A, B> {
    a: A,
    b: B,
    offered: u64,
}

impl<A: TraceSink, B: TraceSink> Tee<A, B> {
    /// Fan out to `a` and `b` (both must be fresh).
    pub fn new(a: A, b: B) -> Self {
        Tee { a, b, offered: 0 }
    }

    /// First branch, by reference.
    pub fn a(&self) -> &A {
        &self.a
    }

    /// Second branch, by reference.
    pub fn b(&self) -> &B {
        &self.b
    }

    /// Second branch, by mutable reference.
    pub fn b_mut(&mut self) -> &mut B {
        &mut self.b
    }

    /// Split back into the branches.
    pub fn into_parts(self) -> (A, B) {
        (self.a, self.b)
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for Tee<A, B> {
    fn offer(&mut self, ev: &TraceEvent) {
        self.offered += 1;
        self.a.offer(ev);
        self.b.offer(ev);
    }

    fn emitted(&self) -> u64 {
        self.offered
    }

    fn kept(&self) -> u64 {
        self.a.kept().max(self.b.kept()).min(self.offered)
    }

    fn dropped(&self) -> u64 {
        self.offered - self.kept()
    }

    fn flush(&mut self) {
        self.a.flush();
        self.b.flush();
    }
}

/// Compose the per-shard trailer line a streaming shard appends after
/// its last event: stream accounting plus the attached filter's, plus
/// the kind slice, so every spill file is self-describing.
pub fn shard_trailer_json(
    shard: u32,
    stats: &StreamStats,
    admitted: u64,
    suppressed: u64,
    kinds: KindSet,
) -> String {
    format!(
        "{{\"summary\":true,\"stream\":true,\"shard\":{shard},\"emitted\":{},\"dropped\":{},\
         \"admitted\":{admitted},\"suppressed\":{suppressed},\"kinds\":\"{}\"}}",
        stats.emitted,
        stats.dropped,
        kinds.labels()
    )
}

/// Totals of a [`merge_stream_files`] pass — sums of the shard trailers
/// plus the merged event count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MergedStream {
    /// Shard files merged.
    pub shards: u64,
    /// Event lines in the merged output.
    pub events: u64,
    /// Sum of shard `emitted` (equals `events` when every trailer was
    /// present and honest).
    pub emitted: u64,
    /// Sum of shard `dropped` (zero for healthy streams).
    pub dropped: u64,
    /// Sum of shard filter `admitted`.
    pub admitted: u64,
    /// Sum of shard filter `suppressed`.
    pub suppressed: u64,
    /// Kind slice recorded in the shard trailers (first seen).
    pub kinds: String,
}

impl MergedStream {
    /// The merged artifact's trailer line.
    pub fn to_trailer_json(&self) -> String {
        format!(
            "{{\"summary\":true,\"stream\":true,\"shards\":{},\"events\":{},\"emitted\":{},\
             \"dropped\":{},\"admitted\":{},\"suppressed\":{},\"kinds\":\"{}\"}}",
            self.shards,
            self.events,
            self.emitted,
            self.dropped,
            self.admitted,
            self.suppressed,
            self.kinds
        )
    }
}

/// Extract an unsigned integer field from a flat JSONL line (no nesting
/// in trace artifacts, so plain substring scan is exact).
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Extract a string field from a flat JSONL line (values never contain
/// escapes in trace artifacts).
fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Pull the next event line from one shard, folding any trailer lines
/// into the running totals.
fn pull_event(
    lines: &mut io::Lines<BufReader<File>>,
    path: &Path,
    merged: &mut MergedStream,
) -> io::Result<Option<(u64, String)>> {
    for line in lines {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        if line.contains("\"summary\":true") {
            merged.emitted += json_u64(&line, "emitted").unwrap_or(0);
            merged.dropped += json_u64(&line, "dropped").unwrap_or(0);
            merged.admitted += json_u64(&line, "admitted").unwrap_or(0);
            merged.suppressed += json_u64(&line, "suppressed").unwrap_or(0);
            if merged.kinds.is_empty() {
                if let Some(k) = json_str(&line, "kinds") {
                    merged.kinds = k;
                }
            }
            continue;
        }
        let t = json_u64(&line, "t_ns").ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: event line without t_ns: {line}", path.display()),
            )
        })?;
        return Ok(Some((t, line)));
    }
    Ok(None)
}

/// K-way-merge per-shard spill files into one ordered JSONL at
/// `out_path`, ordered by `(t_ns, shard index)` with within-shard order
/// preserved (the heap holds at most one outstanding line per shard).
/// Shard trailers are folded into one merged trailer appended at the
/// end. Because shard files are named by shard index and shard
/// decomposition is thread-count-independent, the merged bytes are
/// identical at any thread count.
///
/// Within-shard `t_ns` monotonicity (guaranteed by the sim's monotone
/// virtual clock) is what makes the global order a true time order;
/// the merge itself is deterministic regardless.
pub fn merge_stream_files(shard_paths: &[PathBuf], out_path: &Path) -> io::Result<MergedStream> {
    let mut merged = MergedStream {
        shards: shard_paths.len() as u64,
        ..MergedStream::default()
    };
    let mut readers = Vec::with_capacity(shard_paths.len());
    for p in shard_paths {
        readers.push(BufReader::new(File::open(p)?).lines());
    }
    let mut out = BufWriter::new(File::create(out_path)?);
    // Min-heap on (t_ns, shard); at most one entry per shard, so the
    // String in the key never tie-breaks (t_ns+shard is unique).
    let mut heap: BinaryHeap<Reverse<(u64, usize, String)>> = BinaryHeap::new();
    for (s, lines) in readers.iter_mut().enumerate() {
        if let Some((t, line)) = pull_event(lines, &shard_paths[s], &mut merged)? {
            heap.push(Reverse((t, s, line)));
        }
    }
    while let Some(Reverse((_, s, line))) = heap.pop() {
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
        merged.events += 1;
        if let Some((t, next)) = pull_event(&mut readers[s], &shard_paths[s], &mut merged)? {
            heap.push(Reverse((t, s, next)));
        }
    }
    out.write_all(merged.to_trailer_json().as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()?;
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceKind;
    use std::sync::{Arc, Mutex};

    fn ev(t: u64, flow: u32, seq: u32, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            t_ns: t,
            flow,
            seq,
            kind,
        }
    }

    /// A writer whose bytes outlive the sink, so tests can read back what
    /// a consumed `StreamSink` wrote.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            ev(10, 0, 0, TraceKind::Syn),
            ev(20, 1, 0, TraceKind::Syn),
            ev(30, 0, 0, TraceKind::FirstByte),
            ev(40, 0, 1, TraceKind::Retransmit),
            ev(50, 1, 2, TraceKind::RtoFired),
            ev(60, 0, 5, TraceKind::RecordDelivered),
            ev(70, 1, 9, TraceKind::Fin),
        ]
    }

    #[test]
    fn ring_and_stream_sinks_see_identical_sequences() {
        // The sink law at the heart of the tentpole: driving the same
        // events through a large-enough ring and a stream yields the same
        // JSONL event lines and the same emitted count.
        let buf = SharedBuf::default();
        let mut ring = TraceRing::new(64);
        let mut stream = StreamSink::new(Box::new(buf.clone()), "test");
        for e in sample_events() {
            TraceSink::offer(&mut ring, &e);
            stream.offer(&e);
        }
        assert_eq!(TraceSink::emitted(&ring), stream.emitted());
        assert_eq!(stream.dropped(), 0);
        let stats = stream.finish();
        assert_eq!(stats.emitted, 7);
        assert_eq!(stats.dropped, 0);
        assert_eq!(buf.contents(), ring.to_jsonl());
    }

    #[test]
    fn stream_batches_by_bytes_and_counts_flushes() {
        let buf = SharedBuf::default();
        let mut stream = StreamSink::new(Box::new(buf.clone()), "test").with_batch_cap(1);
        for e in sample_events() {
            stream.offer(&e);
        }
        // cap 1 → every event forces its own flush.
        assert_eq!(stream.stats().flushes, 7);
        let stats = stream.finish();
        assert_eq!(stats.flushes, 7, "empty tail batch adds no flush");
        assert_eq!(buf.contents().lines().count(), 7);
    }

    #[test]
    fn filtered_sink_composition_is_predicate_conjunction() {
        // flow-then-kind, kind-then-flow, and the combined predicate all
        // admit the same event sequence.
        let flow_p = TracePredicate {
            flow: Some(0),
            kinds: KindSet::all(),
        };
        let kind_p = TracePredicate {
            flow: None,
            kinds: KindSet::of(&[TraceKind::Retransmit, TraceKind::RtoFired]),
        };
        let both = TracePredicate {
            flow: Some(0),
            kinds: KindSet::of(&[TraceKind::Retransmit, TraceKind::RtoFired]),
        };
        let mut fk = FilteredSink::new(flow_p, FilteredSink::new(kind_p, TraceRing::new(64)));
        let mut kf = FilteredSink::new(kind_p, FilteredSink::new(flow_p, TraceRing::new(64)));
        let mut combined = FilteredSink::new(both, TraceRing::new(64));
        for e in sample_events() {
            fk.offer(&e);
            kf.offer(&e);
            combined.offer(&e);
        }
        let seq = |r: &TraceRing| r.to_jsonl();
        assert_eq!(seq(fk.inner().inner()), seq(combined.inner()));
        assert_eq!(seq(kf.inner().inner()), seq(combined.inner()));
        // Only flow-0 retransmit survives the conjunction.
        assert_eq!(combined.admitted(), 1);
        assert_eq!(combined.suppressed(), 6);
        // Nested filters attribute suppression at different layers but
        // agree on the total.
        assert_eq!(
            fk.suppressed() + fk.inner().suppressed(),
            combined.suppressed()
        );
        assert_eq!(
            kf.suppressed() + kf.inner().suppressed(),
            combined.suppressed()
        );
        // Suppression is not loss.
        assert_eq!(combined.dropped(), 0);
        assert_eq!(combined.kept(), 1);
    }

    #[test]
    fn pass_all_predicate_admits_everything() {
        let p = TracePredicate::default();
        assert!(p.is_pass_all());
        let mut f = FilteredSink::new(p, TraceRing::new(64));
        for e in sample_events() {
            f.offer(&e);
        }
        assert_eq!(f.admitted(), 7);
        assert_eq!(f.suppressed(), 0);
        assert!(!TracePredicate {
            flow: Some(3),
            kinds: KindSet::all()
        }
        .is_pass_all());
    }

    #[test]
    fn tee_drop_accounting_is_exact_with_a_lossless_branch() {
        // Ring cap 2 sheds 5 of 7, but the stream branch keeps all 7:
        // nothing is lost from the pipeline.
        let buf = SharedBuf::default();
        let mut tee = Tee::new(
            TraceRing::new(2),
            Some(StreamSink::new(Box::new(buf.clone()), "test")),
        );
        for e in sample_events() {
            tee.offer(&e);
        }
        assert_eq!(tee.emitted(), 7);
        assert_eq!(tee.kept(), 7);
        assert_eq!(tee.dropped(), 0, "stream branch is lossless");
        assert_eq!(tee.a().len(), 2);
        assert_eq!(TraceSink::dropped(tee.a()), 5);

        // Without a stream branch the tee's loss is the ring's loss.
        let mut ring_only: Tee<TraceRing, Option<StreamSink>> = Tee::new(TraceRing::new(2), None);
        for e in sample_events() {
            ring_only.offer(&e);
        }
        assert_eq!(ring_only.emitted(), 7);
        assert_eq!(ring_only.kept(), 2);
        assert_eq!(ring_only.dropped(), 5);
    }

    #[test]
    fn stream_stats_absorb_is_additive_with_zero_identity() {
        let a = StreamStats {
            emitted: 3,
            dropped: 0,
            flushes: 1,
        };
        let b = StreamStats {
            emitted: 4,
            dropped: 0,
            flushes: 2,
        };
        let mut acc = StreamStats::default();
        acc.absorb(&a);
        assert_eq!(acc, a, "zero ⊕ a == a");
        acc.absorb(&b);
        assert_eq!(
            acc,
            StreamStats {
                emitted: 7,
                dropped: 0,
                flushes: 3
            }
        );
    }

    #[test]
    fn shard_trailer_is_self_describing() {
        let stats = StreamStats {
            emitted: 42,
            dropped: 0,
            flushes: 3,
        };
        let kinds = KindSet::of(&[TraceKind::Retransmit, TraceKind::RtoFired]);
        let line = shard_trailer_json(5, &stats, 42, 100, kinds);
        assert!(line.contains("\"summary\":true"));
        assert!(line.contains("\"stream\":true"));
        assert!(line.contains("\"shard\":5"));
        assert!(line.contains("\"emitted\":42"));
        assert!(line.contains("\"dropped\":0"));
        assert!(line.contains("\"admitted\":42"));
        assert!(line.contains("\"suppressed\":100"));
        assert!(line.contains("\"kinds\":\"retransmit,rto\""));
        assert_eq!(json_u64(&line, "emitted"), Some(42));
        assert_eq!(json_str(&line, "kinds").as_deref(), Some("retransmit,rto"));
    }

    #[test]
    fn merge_orders_by_t_ns_then_shard_and_sums_trailers() {
        let dir =
            std::env::temp_dir().join(format!("minion_obs_merge_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Shard 0: t 10, 30, 50. Shard 1: t 20, 30 (tie → shard 0 first).
        let write_shard = |s: u32, events: &[TraceEvent]| -> PathBuf {
            let path = dir.join(format!("stream.shard{s:05}"));
            let mut f = File::create(&path).unwrap();
            for e in events {
                writeln!(f, "{}", e.to_json()).unwrap();
            }
            let stats = StreamStats {
                emitted: events.len() as u64,
                dropped: 0,
                flushes: 1,
            };
            writeln!(
                f,
                "{}",
                shard_trailer_json(s, &stats, events.len() as u64, s as u64, KindSet::all())
            )
            .unwrap();
            path
        };
        let p0 = write_shard(
            0,
            &[
                ev(10, 0, 0, TraceKind::Syn),
                ev(30, 0, 0, TraceKind::FirstByte),
                ev(50, 0, 9, TraceKind::Fin),
            ],
        );
        let p1 = write_shard(
            1,
            &[
                ev(20, 128, 0, TraceKind::Syn),
                ev(30, 128, 0, TraceKind::FirstByte),
            ],
        );
        let out = dir.join("merged.jsonl");
        let merged = merge_stream_files(&[p0, p1], &out).unwrap();
        assert_eq!(merged.shards, 2);
        assert_eq!(merged.events, 5);
        assert_eq!(merged.emitted, 5);
        assert_eq!(merged.dropped, 0);
        assert_eq!(merged.admitted, 5);
        assert_eq!(merged.suppressed, 1, "trailer sums fold across shards");
        let text = std::fs::read_to_string(&out).unwrap();
        let ts: Vec<(u64, u64)> = text
            .lines()
            .filter(|l| !l.contains("\"summary\""))
            .map(|l| (json_u64(l, "t_ns").unwrap(), json_u64(l, "flow").unwrap()))
            .collect();
        assert_eq!(
            ts,
            vec![(10, 0), (20, 128), (30, 0), (30, 128), (50, 0)],
            "ordered by (t_ns, shard)"
        );
        let trailer = text.lines().last().unwrap();
        assert!(trailer.contains("\"shards\":2"));
        assert!(trailer.contains("\"events\":5"));
        assert_eq!(text.lines().count(), 6, "5 events + 1 merged trailer");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_is_deterministic_across_repeats() {
        let dir = std::env::temp_dir().join(format!("minion_obs_merge_det_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut paths = Vec::new();
        for s in 0..4u32 {
            let path = dir.join(format!("d.shard{s:05}"));
            let mut f = File::create(&path).unwrap();
            for i in 0..16u64 {
                writeln!(
                    f,
                    "{}",
                    ev(
                        i * 7 + s as u64,
                        s * 128,
                        i as u32,
                        TraceKind::RecordDelivered
                    )
                    .to_json()
                )
                .unwrap();
            }
            let stats = StreamStats {
                emitted: 16,
                dropped: 0,
                flushes: 1,
            };
            writeln!(
                f,
                "{}",
                shard_trailer_json(s, &stats, 16, 0, KindSet::all())
            )
            .unwrap();
            paths.push(path);
        }
        let out1 = dir.join("m1.jsonl");
        let out2 = dir.join("m2.jsonl");
        merge_stream_files(&paths, &out1).unwrap();
        merge_stream_files(&paths, &out2).unwrap();
        assert_eq!(
            std::fs::read(&out1).unwrap(),
            std::fs::read(&out2).unwrap(),
            "same inputs, same bytes"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
