//! Per-flow delivery-delay attribution: bounded map of compact
//! histogram digests.
//!
//! The global delivery-delay [`Histogram`](crate::Histogram) answers
//! *whether* the tail moved but not *who* moved it — one HoL-blocked flow
//! under ordered TCP is averaged into a thousand healthy ones. A
//! [`FlowDelayMap`] keeps a [`DelayDigest`] per flow — the same two-level
//! (log2 major × linear minor) layout as the global histogram, shrunk to
//! 4 sub-buckets and `u32` slot counts (~1 KiB per flow) so thousands of
//! flows fit — and surfaces the K worst flows by p99, making a tail
//! regression attributable to a flow instead of averaged away.
//!
//! Merge discipline matches the rest of the crate: digests add slot-wise
//! (exact, associative), the map folds per-shard in shard-index order,
//! and a pristine map adopts the other side wholesale so `Default` is a
//! true merge identity. Sharding assigns each flow to exactly one shard,
//! so cross-shard merges union disjoint key sets and the merged map is
//! byte-identical to a serial run's. The map bound only matters when a
//! scenario exceeds [`DEFAULT_FLOW_DELAY_CAP`] flows; samples for flows
//! that don't fit are counted in `overflow_samples`, never silently
//! lost.

use crate::absorb::Absorb;
use std::collections::BTreeMap;

/// Most flows a [`FlowDelayMap`] tracks individually before overflow
/// accounting kicks in (~4 MiB of digests at the cap).
pub const DEFAULT_FLOW_DELAY_CAP: usize = 4096;

/// Log2 major buckets (covers the full `u64` range, like the global
/// histogram).
const DIGEST_BUCKETS: usize = 64;

/// Linear sub-buckets per major bucket — 4 here vs the global
/// histogram's 16: per-flow quantiles tolerate a coarser in-octave
/// resolution (~12% vs ~3%) in exchange for 4× smaller digests.
pub const DIGEST_SUB_BUCKETS: usize = 4;

/// log2 of [`DIGEST_SUB_BUCKETS`].
const DIGEST_SUB_BITS: u32 = 2;

/// Total fixed slots per digest.
pub const DIGEST_SLOTS: usize = DIGEST_BUCKETS * DIGEST_SUB_BUCKETS;

/// Major bucket index of a value: 0 for zero, else `min(63, 64 - clz)`.
fn major_of(value: u64) -> usize {
    if value == 0 {
        return 0;
    }
    ((64 - value.leading_zeros()) as usize).min(DIGEST_BUCKETS - 1)
}

/// Flat slot index under the two-level layout (mirrors `hist::slot_of`
/// with the narrower sub-axis).
fn slot_of(value: u64) -> usize {
    let major = major_of(value);
    if major == 0 {
        return 0;
    }
    let lo = 1u64 << (major - 1);
    let sub = if (major - 1) as u32 <= DIGEST_SUB_BITS {
        // Width ≤ 4: every value has its own exact sub-slot.
        (value - lo) as usize
    } else {
        let shift = (major - 1) as u32 - DIGEST_SUB_BITS;
        (((value - lo) >> shift) as usize).min(DIGEST_SUB_BUCKETS - 1)
    };
    major * DIGEST_SUB_BUCKETS + sub
}

/// Inclusive `[lo, hi]` value bounds of a flat slot.
fn slot_bounds(slot: usize) -> (u64, u64) {
    let major = slot / DIGEST_SUB_BUCKETS;
    let sub = slot % DIGEST_SUB_BUCKETS;
    if major == 0 {
        return (0, 0);
    }
    let lo = 1u64 << (major - 1);
    if (major - 1) as u32 <= DIGEST_SUB_BITS {
        let v = lo + sub as u64;
        (v, v)
    } else if major == DIGEST_BUCKETS - 1 && sub == DIGEST_SUB_BUCKETS - 1 {
        let shift = (major - 1) as u32 - DIGEST_SUB_BITS;
        (lo + ((sub as u64) << shift), u64::MAX)
    } else {
        let shift = (major - 1) as u32 - DIGEST_SUB_BITS;
        let slot_lo = lo + ((sub as u64) << shift);
        (slot_lo, slot_lo + (1u64 << shift) - 1)
    }
}

/// A compact per-flow delay histogram: 64 log2 majors × 4 linear
/// sub-buckets of `u32` counts plus exact count/sum/min/max.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DelayDigest {
    slots: Box<[u32; DIGEST_SLOTS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for DelayDigest {
    fn default() -> Self {
        DelayDigest {
            slots: Box::new([0; DIGEST_SLOTS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl DelayDigest {
    /// A fresh, empty digest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample (nanoseconds, by convention).
    pub fn record(&mut self, value: u64) {
        self.slots[slot_of(value)] = self.slots[slot_of(value)].saturating_add(1);
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 on an empty digest).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Integer mean (0 on an empty digest).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Value at a quantile given in milli-percent (`99_000` = p99).
    /// Same integer-rank + in-slot interpolation scheme as
    /// [`Histogram::quantile_milli`](crate::Histogram::quantile_milli),
    /// clamped to the observed `[min, max]`.
    pub fn quantile_milli(&self, q_milli: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = self
            .count
            .saturating_mul(q_milli)
            .div_ceil(100_000)
            .clamp(1, self.count);
        let mut seen = 0u64;
        for (slot, &n) in self.slots.iter().enumerate() {
            seen += n as u64;
            if seen >= rank {
                let (slot_lo, slot_hi) = slot_bounds(slot);
                let k = rank - (seen - n as u64);
                let span = (slot_hi - slot_lo) as u128;
                let interp = slot_lo + ((span * k as u128) / n as u128) as u64;
                return interp.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Shorthand: median.
    pub fn p50(&self) -> u64 {
        self.quantile_milli(50_000)
    }

    /// Shorthand: p99.
    pub fn p99(&self) -> u64 {
        self.quantile_milli(99_000)
    }
}

impl Absorb for DelayDigest {
    /// Slot-wise addition — exact and associative, like the global
    /// histogram.
    fn absorb(&mut self, other: &Self) {
        for (a, b) in self.slots.iter_mut().zip(other.slots.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A bounded map of per-flow [`DelayDigest`]s keyed by global flow
/// index.
///
/// Samples for flows beyond the bound are tallied in
/// [`overflow_samples`](Self::overflow_samples) rather than silently
/// dropped, so the artifact always discloses its own coverage. Ordered
/// (`BTreeMap`) so iteration — and therefore serialization — is
/// deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowDelayMap {
    cap: usize,
    flows: BTreeMap<u32, DelayDigest>,
    overflow_samples: u64,
}

impl Default for FlowDelayMap {
    fn default() -> Self {
        FlowDelayMap::new(DEFAULT_FLOW_DELAY_CAP)
    }
}

impl FlowDelayMap {
    /// A map tracking at most `cap` distinct flows.
    pub fn new(cap: usize) -> Self {
        FlowDelayMap {
            cap,
            flows: BTreeMap::new(),
            overflow_samples: 0,
        }
    }

    /// Record one delay sample for `flow`. Existing flows always record;
    /// a new flow is admitted only if the map has room, otherwise the
    /// sample lands in the overflow tally.
    pub fn record(&mut self, flow: u32, value: u64) {
        if let Some(d) = self.flows.get_mut(&flow) {
            d.record(value);
        } else if self.flows.len() < self.cap {
            let mut d = DelayDigest::new();
            d.record(value);
            self.flows.insert(flow, d);
        } else {
            self.overflow_samples += 1;
        }
    }

    /// Distinct flows tracked.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether no flow has recorded yet.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// The flow bound.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Samples that arrived for flows beyond the bound.
    pub fn overflow_samples(&self) -> u64 {
        self.overflow_samples
    }

    /// Total samples across all tracked flows (excludes overflow).
    pub fn total_samples(&self) -> u64 {
        self.flows.values().map(|d| d.count()).sum()
    }

    /// One flow's digest, if tracked.
    pub fn get(&self, flow: u32) -> Option<&DelayDigest> {
        self.flows.get(&flow)
    }

    /// All tracked flows in ascending flow order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &DelayDigest)> + '_ {
        self.flows.iter().map(|(&f, d)| (f, d))
    }

    /// The `k` worst flows by p99, ties broken by ascending flow index
    /// (total order → deterministic at any thread count).
    pub fn top_k(&self, k: usize) -> Vec<(u32, &DelayDigest)> {
        let mut rows: Vec<(u32, &DelayDigest)> = self.iter().collect();
        rows.sort_by(|a, b| b.1.p99().cmp(&a.1.p99()).then(a.0.cmp(&b.0)));
        rows.truncate(k);
        rows
    }
}

impl Absorb for FlowDelayMap {
    /// Union the flow sets, digest-adding where keys collide. A pristine
    /// map (nothing recorded, no overflow) adopts `other` wholesale —
    /// capacity included — so `FlowDelayMap::default()` is a true merge
    /// identity. New flows past the bound fold their whole sample count
    /// into the overflow tally. Shards own disjoint flow ranges and all
    /// share one cap, so in practice the merge is an exact disjoint
    /// union; overflow attribution is order-dependent only beyond the
    /// cap, and shard-order folding keeps even that deterministic.
    fn absorb(&mut self, other: &Self) {
        if self.flows.is_empty() && self.overflow_samples == 0 {
            *self = other.clone();
            return;
        }
        for (&flow, digest) in &other.flows {
            if let Some(mine) = self.flows.get_mut(&flow) {
                mine.absorb(digest);
            } else if self.flows.len() < self.cap {
                self.flows.insert(flow, digest.clone());
            } else {
                self.overflow_samples += digest.count();
            }
        }
        self.overflow_samples += other.overflow_samples;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn digest_slots_tile_the_u64_range() {
        assert_eq!(major_of(0), 0);
        assert_eq!(major_of(1), 1);
        assert_eq!(major_of(u64::MAX), 63);
        // Every reachable slot's bounds round-trip through slot_of.
        for slot in 0..DIGEST_SLOTS {
            let major = slot / DIGEST_SUB_BUCKETS;
            let sub = slot % DIGEST_SUB_BUCKETS;
            let reachable = match major {
                0 => sub == 0,
                1..=3 => (sub as u64) < (1u64 << (major - 1)),
                _ => true,
            };
            if !reachable {
                continue;
            }
            let (lo, hi) = slot_bounds(slot);
            assert_eq!(slot_of(lo), slot, "slot {slot} lower bound");
            assert_eq!(slot_of(hi), slot, "slot {slot} upper bound");
        }
        assert_eq!(slot_bounds(DIGEST_SLOTS - 1).1, u64::MAX, "saturation slot");
    }

    #[test]
    fn digest_quantiles_track_the_global_histogram_within_resolution() {
        // Same samples through digest and global histogram: quantiles
        // agree within the digest's coarser in-octave resolution, and
        // min/max/count/mean agree exactly.
        let mut d = DelayDigest::new();
        let mut h = Histogram::new();
        let mut x = 1u64;
        for _ in 0..4096u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = x >> 38;
            d.record(v);
            h.record(v);
        }
        assert_eq!(d.count(), h.count());
        assert_eq!(d.min(), h.min());
        assert_eq!(d.max(), h.max());
        assert_eq!(d.mean(), h.mean());
        for q in [50_000u64, 99_000, 99_900] {
            let dv = d.quantile_milli(q);
            let hv = h.quantile_milli(q);
            // Within one octave's coarser sub-slot (≤ 25% of the value's
            // octave width), both clamped to observed bounds.
            let tolerance = hv / 3 + 1;
            assert!(
                dv.abs_diff(hv) <= tolerance,
                "q={q}: digest {dv} vs histogram {hv}"
            );
        }
    }

    #[test]
    fn map_tracks_flows_up_to_cap_and_tallies_overflow() {
        let mut m = FlowDelayMap::new(2);
        m.record(7, 100);
        m.record(3, 200);
        m.record(9, 300); // no room → overflow
        m.record(7, 400); // existing flow always records
        assert_eq!(m.len(), 2);
        assert_eq!(m.overflow_samples(), 1);
        assert_eq!(m.total_samples(), 3);
        assert_eq!(m.get(7).unwrap().count(), 2);
        assert!(m.get(9).is_none());
        // Iteration is flow-ordered.
        let flows: Vec<u32> = m.iter().map(|(f, _)| f).collect();
        assert_eq!(flows, vec![3, 7]);
    }

    #[test]
    fn top_k_sorts_by_p99_desc_with_flow_tiebreak() {
        let mut m = FlowDelayMap::default();
        // Flow 5: slow tail. Flows 1 and 2: identical distributions
        // (tie → ascending flow index). Flow 8: fast.
        for _ in 0..100 {
            m.record(5, 1_000_000);
            m.record(1, 50_000);
            m.record(2, 50_000);
            m.record(8, 1_000);
        }
        let top = m.top_k(3);
        let flows: Vec<u32> = top.iter().map(|&(f, _)| f).collect();
        assert_eq!(flows, vec![5, 1, 2]);
        assert_eq!(top[0].1.p99(), 1_000_000);
        // Stability: recomputing gives the same order.
        assert_eq!(
            m.top_k(3).iter().map(|&(f, _)| f).collect::<Vec<_>>(),
            flows
        );
        // k beyond the population returns everything.
        assert_eq!(m.top_k(100).len(), 4);
    }

    #[test]
    fn merge_is_exact_disjoint_union_and_pristine_is_identity() {
        // Shard-style: disjoint flow ranges.
        let mut a = FlowDelayMap::default();
        let mut b = FlowDelayMap::default();
        let mut serial = FlowDelayMap::default();
        for i in 0..10u32 {
            let v = (i as u64 + 1) * 1000;
            a.record(i, v);
            serial.record(i, v);
        }
        for i in 128..138u32 {
            let v = (i as u64 + 1) * 500;
            b.record(i, v);
            serial.record(i, v);
        }
        let mut merged = a.clone();
        merged.absorb(&b);
        assert_eq!(merged, serial, "disjoint union is exact");
        // Pristine identity, both sides, capacity included.
        let mut pristine = FlowDelayMap::default();
        pristine.absorb(&merged);
        assert_eq!(pristine, merged);
        let mut back = merged.clone();
        back.absorb(&FlowDelayMap::default());
        assert_eq!(back, merged);
    }

    #[test]
    fn merge_on_shared_keys_adds_digests_exactly() {
        let mut a = FlowDelayMap::default();
        let mut b = FlowDelayMap::default();
        let mut serial = FlowDelayMap::default();
        for v in [100u64, 200, 300] {
            a.record(7, v);
            serial.record(7, v);
        }
        for v in [400u64, 500] {
            b.record(7, v);
            serial.record(7, v);
        }
        let mut merged = a.clone();
        merged.absorb(&b);
        assert_eq!(merged, serial);
        assert_eq!(merged.get(7).unwrap().count(), 5);
        assert_eq!(merged.get(7).unwrap().max(), 500);
    }

    #[test]
    fn merge_past_cap_folds_new_flows_into_overflow() {
        let mut a = FlowDelayMap::new(1);
        a.record(1, 100);
        let mut b = FlowDelayMap::new(1);
        b.record(2, 200);
        b.record(2, 300);
        let mut merged = a.clone();
        merged.absorb(&b);
        assert_eq!(merged.len(), 1);
        assert_eq!(
            merged.overflow_samples(),
            2,
            "flow 2's whole sample count lands in overflow"
        );
    }
}
