//! Two-level HDR histograms with exact, order-independent merge.
//!
//! An HDR-style histogram trades per-bucket resolution for a fixed memory
//! footprint and an *exact* merge: two histograms over the same bucket
//! boundaries combine by slot-wise addition, so sharded runs merge to the
//! byte-identical histogram a serial run would have produced.
//!
//! The layout is two-level: a **log2 major** axis crossed with a **linear
//! minor** axis, HDR-histogram style. 64 major buckets cover the full `u64`
//! range, and each major bucket is split into [`SUB_BUCKETS`] = 16 linear
//! sub-buckets, for [`SLOTS`] = 1024 fixed slots (~8 KiB):
//!
//! * major bucket 0 holds exactly the value `0` (zero-duration samples are
//!   real — a record covered by the same chunk that carried its first byte
//!   has zero delivery delay on the virtual clock);
//! * major bucket `i` (1..=63) holds values in `[2^(i-1), 2^i - 1]`, with
//!   bucket 63 absorbing everything from `2^62` up to and including
//!   `u64::MAX` (saturation, not overflow). Within a major bucket the range
//!   is split into 16 equal linear sub-ranges — for the narrow low buckets
//!   (`i <= 5`, width ≤ 16) every *value* gets its own exact slot.
//!
//! The two-level split bounds the relative quantile error at ~3% (one part
//! in 16 of an octave) instead of the flat layout's ~50% (a whole octave),
//! and [`Histogram::quantile_milli`] linearly interpolates *within* the
//! resolved slot, which is what lets p99/p999 of delivery delay separate
//! ordered TCP from uTCP under loss instead of collapsing into the same
//! power-of-two bound.
//!
//! All samples are recorded in **nanoseconds** regardless of clock source:
//! the sim's virtual clock ticks in microseconds and the OS backend's
//! monotonic clock reports microseconds since transport creation, and both
//! are multiplied out to ns before recording so the `"obs"` sections of the
//! two backends read in the same unit.

use crate::absorb::Absorb;

/// Number of log2 major buckets; covers the full `u64` range (see module
/// docs).
pub const BUCKETS: usize = 64;

/// Linear sub-buckets per major bucket (a power of two).
pub const SUB_BUCKETS: usize = 16;

/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 4;

/// Total fixed slots: [`BUCKETS`] × [`SUB_BUCKETS`].
pub const SLOTS: usize = BUCKETS * SUB_BUCKETS;

/// A fixed-footprint two-level (log2 major × linear minor) histogram of
/// `u64` samples (nanoseconds, by convention).
///
/// The slot array is boxed so embedding a `Histogram` (or several — see
/// `CcObs`) in per-connection state moves a pointer, not 8 KiB.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    slots: Box<[u64; SLOTS]>,
    count: u64,
    /// Saturating sum of all samples (used for the mean, never for
    /// quantiles).
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            slots: Box::new([0; SLOTS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Major bucket index of a value: 0 for zero, else `min(63, 64 - clz(v))`.
fn major_of(value: u64) -> usize {
    if value == 0 {
        return 0;
    }
    ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Flat slot index of a value under the two-level layout.
fn slot_of(value: u64) -> usize {
    let major = major_of(value);
    if major == 0 {
        return 0;
    }
    let lo = 1u64 << (major - 1);
    let sub = if (major - 1) as u32 <= SUB_BITS {
        // Width ≤ 16: every value has its own exact sub-slot.
        (value - lo) as usize
    } else {
        // Width 2^(major-1): 16 equal linear sub-ranges. Only major 63 can
        // exceed sub-index 15 (its range is wider than 2^62); clamp so
        // everything up to u64::MAX saturates into the last slot.
        let shift = (major - 1) as u32 - SUB_BITS;
        (((value - lo) >> shift) as usize).min(SUB_BUCKETS - 1)
    };
    major * SUB_BUCKETS + sub
}

/// Inclusive `[lo, hi]` value bounds of a flat slot.
fn slot_bounds(slot: usize) -> (u64, u64) {
    let major = slot / SUB_BUCKETS;
    let sub = slot % SUB_BUCKETS;
    if major == 0 {
        return (0, 0);
    }
    let lo = 1u64 << (major - 1);
    if (major - 1) as u32 <= SUB_BITS {
        // Exact-value slots (slots past the bucket width are never hit).
        let v = lo + sub as u64;
        (v, v)
    } else if major == BUCKETS - 1 && sub == SUB_BUCKETS - 1 {
        // The saturation slot absorbs everything up to u64::MAX.
        let shift = (major - 1) as u32 - SUB_BITS;
        (lo + ((sub as u64) << shift), u64::MAX)
    } else {
        let shift = (major - 1) as u32 - SUB_BITS;
        let slot_lo = lo + ((sub as u64) << shift);
        (slot_lo, slot_lo + (1u64 << shift) - 1)
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.slots[slot_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 on an empty histogram).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Integer mean of the samples (0 on an empty histogram).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The raw flat slot array, `major * SUB_BUCKETS + sub` order (tests,
    /// serialization).
    pub fn slots(&self) -> &[u64; SLOTS] {
        &self.slots
    }

    /// Value at a quantile given in **milli-percent** (`50_000` = p50,
    /// `99_000` = p99, `99_900` = p999).
    ///
    /// Integer-rank selection (ceil(count·q/100000), clamped into
    /// `[1, count]`) resolves the slot; the return value then **linearly
    /// interpolates** between the slot's inclusive value bounds by the
    /// rank's position among the slot's samples, clamped to the observed
    /// `[min, max]`. Pure integer math (u128 intermediate), so identical on
    /// every platform, and monotone in `q`. Returns 0 on an empty
    /// histogram.
    pub fn quantile_milli(&self, q_milli: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = self
            .count
            .saturating_mul(q_milli)
            .div_ceil(100_000)
            .clamp(1, self.count);
        let mut seen = 0u64;
        for (slot, &n) in self.slots.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (slot_lo, slot_hi) = slot_bounds(slot);
                // Position of the target rank among this slot's n samples,
                // 1-based: k = n yields slot_hi, k = 1 sits near slot_lo.
                let k = rank - (seen - n);
                let span = (slot_hi - slot_lo) as u128;
                let interp = slot_lo + ((span * k as u128) / n as u128) as u64;
                return interp.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Shorthand: median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile_milli(50_000)
    }

    /// Shorthand: p99.
    pub fn p99(&self) -> u64 {
        self.quantile_milli(99_000)
    }

    /// Shorthand: p999.
    pub fn p999(&self) -> u64 {
        self.quantile_milli(99_900)
    }
}

impl Absorb for Histogram {
    fn absorb(&mut self, other: &Self) {
        for (a, b) in self.slots.iter_mut().zip(other.slots.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_duration_samples_land_in_slot_zero() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.slots()[0], 2);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
    }

    #[test]
    fn max_value_saturates_into_top_slot() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 62); // lower edge of the top major bucket
        h.record((1u64 << 62) - 1); // just below → major bucket 62
        assert_eq!(h.slots()[SLOTS - 1], 1, "u64::MAX saturates, no overflow");
        assert_eq!(h.slots()[63 * SUB_BUCKETS], 1, "2^62 → first sub-slot");
        assert_eq!(
            h.slots()[62 * SUB_BUCKETS + SUB_BUCKETS - 1],
            1,
            "2^62 - 1 → last sub-slot of major 62"
        );
        assert_eq!(h.max(), u64::MAX);
        // sum saturates instead of wrapping
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.p999(), u64::MAX);
    }

    #[test]
    fn major_bucket_boundaries_are_exact_powers_of_two() {
        for i in 1..63usize {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(major_of(lo), i, "lower edge of major bucket {i}");
            assert_eq!(major_of(hi), i, "upper edge of major bucket {i}");
            // …and within the bucket the sub-slots tile it exactly: the
            // lower edge is sub 0, the upper edge is sub 15 (or the exact
            // top value for the narrow buckets).
            assert_eq!(slot_of(lo), i * SUB_BUCKETS, "sub 0 at the lower edge");
            let top = slot_of(hi);
            assert_eq!(top / SUB_BUCKETS, i);
            if i > 5 {
                assert_eq!(top % SUB_BUCKETS, SUB_BUCKETS - 1);
            }
        }
        assert_eq!(major_of(0), 0);
        assert_eq!(major_of(1), 1);
        assert_eq!(major_of(u64::MAX), 63);
    }

    #[test]
    fn sub_bucket_boundaries_are_linear_within_a_major_bucket() {
        // Major bucket 10 covers [512, 1023]; sub-width 32.
        for sub in 0..SUB_BUCKETS as u64 {
            let lo = 512 + sub * 32;
            let hi = lo + 31;
            assert_eq!(slot_of(lo), 10 * SUB_BUCKETS + sub as usize);
            assert_eq!(slot_of(hi), 10 * SUB_BUCKETS + sub as usize);
            assert_eq!(slot_bounds(10 * SUB_BUCKETS + sub as usize), (lo, hi));
        }
        // Narrow buckets give every value its own exact slot: major 3 is
        // [4, 7].
        for v in 4..8u64 {
            assert_eq!(slot_bounds(slot_of(v)), (v, v));
        }
        // And every *reachable* slot's bounds round-trip through slot_of.
        // (Major 0 has a single value, and narrow major buckets with width
        // < 16 leave their trailing sub-slots permanently empty.)
        for slot in 0..SLOTS {
            let major = slot / SUB_BUCKETS;
            let sub = slot % SUB_BUCKETS;
            let reachable = match major {
                0 => sub == 0,
                1..=5 => (sub as u64) < (1u64 << (major - 1)),
                _ => true,
            };
            if !reachable {
                continue;
            }
            let (lo, hi) = slot_bounds(slot);
            assert_eq!(slot_of(lo), slot, "slot {slot} lower bound");
            assert_eq!(slot_of(hi), slot, "slot {slot} upper bound");
        }
    }

    #[test]
    fn empty_merge_is_identity_both_sides() {
        let mut h = Histogram::new();
        for v in [0u64, 7, 700, 70_000, u64::MAX] {
            h.record(v);
        }
        let mut left = Histogram::new();
        left.absorb(&h);
        assert_eq!(left, h, "empty ⊕ h == h");
        let mut right = h.clone();
        right.absorb(&Histogram::new());
        assert_eq!(right, h, "h ⊕ empty == h");
        // and min() of an empty histogram reads 0, not the u64::MAX sentinel
        assert_eq!(Histogram::new().min(), 0);
        assert_eq!(Histogram::new().quantile_milli(99_000), 0);
    }

    #[test]
    fn merge_is_associative_and_exact() {
        let mk = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = mk(&[1, 2, 3]);
        let b = mk(&[0, 1 << 20, u64::MAX]);
        let c = mk(&[42; 5]);
        let mut left = a.clone();
        left.absorb(&b);
        left.absorb(&c);
        let mut bc = b.clone();
        bc.absorb(&c);
        let mut right = a.clone();
        right.absorb(&bc);
        assert_eq!(left, right);
        // exactness: merged equals recording everything into one histogram
        let all = mk(&[1, 2, 3, 0, 1 << 20, u64::MAX, 42, 42, 42, 42, 42]);
        assert_eq!(left, all);
    }

    #[test]
    fn quantiles_use_integer_rank_math() {
        let mut h = Histogram::new();
        // 100 samples of 1, 1 sample of 1000 → p50 picks rank 50 (value 1),
        // p999 picks rank 101 (the 1000 sample — its slot holds exactly one
        // sample, so interpolation returns the slot's upper bound clamped to
        // the observed max).
        for _ in 0..100 {
            h.record(1);
        }
        h.record(1000);
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p999(), 1000);
        let expected_mean = (100u64 + 1000) / h.count();
        assert_eq!(h.mean(), expected_mean);
    }

    #[test]
    fn interpolated_quantiles_resolve_within_an_octave() {
        // The flat 64-bucket layout collapsed everything in [2^19, 2^20)
        // to the same upper bound. Two populations inside one octave must
        // now produce different p99s.
        let mut low = Histogram::new();
        let mut high = Histogram::new();
        for _ in 0..1000 {
            low.record(550_000); // ~2^19.07
            high.record(980_000); // ~2^19.9, same major bucket
        }
        assert_eq!(major_of(550_000), major_of(980_000), "same octave");
        assert!(
            low.p99() < high.p99(),
            "sub-bucket resolution separates {} vs {}",
            low.p99(),
            high.p99()
        );
        // Interpolation clamps to observed bounds: a single-value
        // population reports that value at every quantile.
        assert_eq!(low.p50(), 550_000);
        assert_eq!(low.p999(), 550_000);
    }

    #[test]
    fn interpolated_quantiles_are_monotone_in_q() {
        let mut h = Histogram::new();
        // A spread population across several octaves plus in-octave spread.
        let mut x = 1u64;
        for i in 0..4096u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record((x >> 40) + i);
        }
        let mut last = 0u64;
        for q in (0..=100_000u64).step_by(250) {
            let v = h.quantile_milli(q);
            assert!(
                v >= last,
                "quantile must be monotone: q={q} gave {v} after {last}"
            );
            last = v;
        }
        assert_eq!(h.quantile_milli(100_000), h.max());
        assert!(h.quantile_milli(0) >= h.min());
    }

    #[test]
    fn sim_and_os_clock_units_normalize_to_nanoseconds() {
        // Both backends hand the recorder microseconds; the scenario layer
        // multiplies by 1_000 before recording. A 40ms sim RTT and a 40ms
        // wall-clock interval must land in the same slot.
        let sim_us: u64 = 40_000; // virtual µs
        let os_us: u64 = 40_000; // monotonic µs since transport creation
        let mut sim = Histogram::new();
        let mut os = Histogram::new();
        sim.record(sim_us * 1_000);
        os.record(os_us * 1_000);
        assert_eq!(sim.slots(), os.slots());
        assert_eq!(slot_of(40_000_000), slot_of(sim_us * 1_000));
    }
}
