//! Log2-bucketed histograms with exact, order-independent merge.
//!
//! An HDR-style histogram trades per-bucket resolution for a fixed memory
//! footprint and an *exact* merge: two histograms over the same bucket
//! boundaries combine by slot-wise addition, so sharded runs merge to the
//! byte-identical histogram a serial run would have produced. 64 buckets
//! cover the full `u64` range:
//!
//! * bucket 0 holds exactly the value `0` (zero-duration samples are real —
//!   a record covered by the same chunk that carried its first byte has zero
//!   delivery delay on the virtual clock);
//! * bucket `i` (1..=63) holds values in `[2^(i-1), 2^i - 1]`, with bucket
//!   63 absorbing everything from `2^62` up to and including `u64::MAX`
//!   (saturation, not overflow).
//!
//! All samples are recorded in **nanoseconds** regardless of clock source:
//! the sim's virtual clock ticks in microseconds and the OS backend's
//! monotonic clock reports microseconds since transport creation, and both
//! are multiplied out to ns before recording so the `"obs"` sections of the
//! two backends read in the same unit.

use crate::absorb::Absorb;

/// Number of buckets; covers the full `u64` range (see module docs).
pub const BUCKETS: usize = 64;

/// A fixed-footprint log2 histogram of `u64` samples (nanoseconds, by
/// convention).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    /// Saturating sum of all samples (used for the mean, never for
    /// quantiles).
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index of a value: 0 for zero, else `min(63, 64 - clz(v))`.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        return 0;
    }
    ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of a bucket (the quantile representative).
fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        63 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 on an empty histogram).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Integer mean of the samples (0 on an empty histogram).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The raw bucket slots (tests, serialization).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Value at a quantile given in **milli-percent** (`50_000` = p50,
    /// `99_000` = p99, `99_900` = p999). Returns the inclusive upper bound
    /// of the bucket holding the sample of that rank, clamped to the
    /// observed max — pure integer math, so identical on every platform.
    /// Returns 0 on an empty histogram.
    pub fn quantile_milli(&self, q_milli: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the target sample, 1-based, ceil(count * q / 100_000),
        // clamped into [1, count].
        let rank = self
            .count
            .saturating_mul(q_milli)
            .div_ceil(100_000)
            .clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Shorthand: median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile_milli(50_000)
    }

    /// Shorthand: p99.
    pub fn p99(&self) -> u64 {
        self.quantile_milli(99_000)
    }

    /// Shorthand: p999.
    pub fn p999(&self) -> u64 {
        self.quantile_milli(99_900)
    }
}

impl Absorb for Histogram {
    fn absorb(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_duration_samples_land_in_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
    }

    #[test]
    fn max_value_saturates_into_top_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 62); // lower edge of the top bucket
        h.record((1u64 << 62) - 1); // just below → bucket 62
        assert_eq!(h.buckets()[63], 2);
        assert_eq!(h.buckets()[62], 1);
        assert_eq!(h.max(), u64::MAX);
        // sum saturates instead of wrapping
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.p999(), u64::MAX);
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        for i in 1..63usize {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(bucket_of(lo), i, "lower edge of bucket {i}");
            assert_eq!(bucket_of(hi), i, "upper edge of bucket {i}");
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn empty_merge_is_identity_both_sides() {
        let mut h = Histogram::new();
        for v in [0u64, 7, 700, 70_000, u64::MAX] {
            h.record(v);
        }
        let mut left = Histogram::new();
        left.absorb(&h);
        assert_eq!(left, h, "empty ⊕ h == h");
        let mut right = h.clone();
        right.absorb(&Histogram::new());
        assert_eq!(right, h, "h ⊕ empty == h");
        // and min() of an empty histogram reads 0, not the u64::MAX sentinel
        assert_eq!(Histogram::new().min(), 0);
        assert_eq!(Histogram::new().quantile_milli(99_000), 0);
    }

    #[test]
    fn merge_is_associative_and_exact() {
        let mk = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = mk(&[1, 2, 3]);
        let b = mk(&[0, 1 << 20, u64::MAX]);
        let c = mk(&[42; 5]);
        let mut left = a.clone();
        left.absorb(&b);
        left.absorb(&c);
        let mut bc = b.clone();
        bc.absorb(&c);
        let mut right = a.clone();
        right.absorb(&bc);
        assert_eq!(left, right);
        // exactness: merged equals recording everything into one histogram
        let all = mk(&[1, 2, 3, 0, 1 << 20, u64::MAX, 42, 42, 42, 42, 42]);
        assert_eq!(left, all);
    }

    #[test]
    fn quantiles_use_integer_rank_math() {
        let mut h = Histogram::new();
        // 100 samples of 1, 1 sample of 1000 → p50 in bucket 1, p999 in
        // bucket of 1000 (bucket 10, upper bound 1023, clamped to max 1000).
        for _ in 0..100 {
            h.record(1);
        }
        h.record(1000);
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p999(), 1000);
        let expected_mean = (100u64 + 1000) / h.count();
        assert_eq!(h.mean(), expected_mean);
    }

    #[test]
    fn sim_and_os_clock_units_normalize_to_nanoseconds() {
        // Both backends hand the recorder microseconds; the scenario layer
        // multiplies by 1_000 before recording. A 40ms sim RTT and a 40ms
        // wall-clock interval must land in the same bucket.
        let sim_us: u64 = 40_000; // virtual µs
        let os_us: u64 = 40_000; // monotonic µs since transport creation
        let mut sim = Histogram::new();
        let mut os = Histogram::new();
        sim.record(sim_us * 1_000);
        os.record(os_us * 1_000);
        assert_eq!(sim.buckets(), os.buckets());
        assert_eq!(bucket_of(40_000_000), bucket_of(sim_us * 1_000));
    }
}
