//! Bounded ring-buffer trace recorder for per-flow lifecycle events.
//!
//! NS-2-style simulators owe much of their usefulness to trace-file
//! discipline: every interesting transition lands in an ordered, replayable
//! stream. [`TraceRing`] is the deterministic analogue — a bounded ring of
//! [`TraceEvent`]s (flow, seq, kind, timestamp) that keeps the **last**
//! `cap` events and counts what it had to drop. Merge concatenates streams
//! in shard order and re-trims to `cap`; because "last `cap` of a
//! concatenation" only depends on the concatenation, the merge is
//! associative and a sharded run's ring is byte-identical to the serial
//! run's.
//!
//! Events carry nanosecond timestamps from the backend clock (virtual for
//! sim — hence fully deterministic — monotonic for os).

use crate::absorb::Absorb;
use std::collections::VecDeque;

/// Default ring capacity: enough for full lifecycle coverage of the
/// obs comparison scenarios without unbounded memory on million-flow runs.
pub const DEFAULT_TRACE_CAP: usize = 65_536;

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceKind {
    /// Client initiated the connection (SYN sent).
    Syn,
    /// First payload byte of the flow was delivered to the application.
    FirstByte,
    /// A record became fully deliverable to the application.
    RecordDelivered,
    /// Sender retransmitted a data segment.
    Retransmit,
    /// Sender's retransmission timeout fired.
    RtoFired,
    /// Flow finished (orderly close requested).
    Fin,
}

impl TraceKind {
    /// Every kind, in declaration order — the one canonical list. CLI
    /// parsing, `KindSet::all`, and error messages all derive from it, so a
    /// new kind added here is automatically parseable and listed.
    pub const ALL: [TraceKind; 6] = [
        TraceKind::Syn,
        TraceKind::FirstByte,
        TraceKind::RecordDelivered,
        TraceKind::Retransmit,
        TraceKind::RtoFired,
        TraceKind::Fin,
    ];

    /// Stable lowercase tag used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Syn => "syn",
            TraceKind::FirstByte => "first_byte",
            TraceKind::RecordDelivered => "record",
            TraceKind::Retransmit => "retransmit",
            TraceKind::RtoFired => "rto",
            TraceKind::Fin => "fin",
        }
    }

    /// The comma-joined list of valid tags (error messages, usage strings).
    pub fn valid_tags() -> String {
        TraceKind::ALL
            .iter()
            .map(|k| k.as_str())
            .collect::<Vec<_>>()
            .join("|")
    }
}

impl std::str::FromStr for TraceKind {
    type Err = String;

    /// Parse a JSONL tag back into its kind, naming every valid tag on
    /// failure (the canonical parse `--trace-kind` and tests share).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let tag = s.trim();
        TraceKind::ALL
            .iter()
            .copied()
            .find(|k| k.as_str() == tag)
            .ok_or_else(|| {
                format!(
                    "unknown trace kind {tag:?} (valid kinds: {})",
                    TraceKind::valid_tags()
                )
            })
    }
}

/// A set of [`TraceKind`]s, used as the kind-predicate of trace filtering
/// (`--trace-kind retransmit,rto` slices the event stream by class the way
/// `--trace-flow` slices it by flow).
///
/// `Default` is the **full** set — "no kind filtering" — so a pristine
/// filter admits everything, mirroring `flow: None`.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct KindSet(u8);

impl Default for KindSet {
    fn default() -> Self {
        KindSet::all()
    }
}

impl KindSet {
    /// The set containing every kind.
    pub fn all() -> Self {
        let mut s = KindSet::empty();
        for k in TraceKind::ALL {
            s.insert(k);
        }
        s
    }

    /// The empty set (admits nothing).
    pub fn empty() -> Self {
        KindSet(0)
    }

    /// The set containing exactly `kinds`.
    pub fn of(kinds: &[TraceKind]) -> Self {
        let mut s = KindSet::empty();
        for &k in kinds {
            s.insert(k);
        }
        s
    }

    /// Add a kind.
    pub fn insert(&mut self, kind: TraceKind) {
        self.0 |= 1u8 << (kind as u8);
    }

    /// Whether `kind` is in the set.
    pub fn contains(self, kind: TraceKind) -> bool {
        self.0 & (1u8 << (kind as u8)) != 0
    }

    /// Whether every kind is in the set (no kind filtering).
    pub fn is_all(self) -> bool {
        self == KindSet::all()
    }

    /// Number of kinds in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set admits nothing.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Comma-joined tags of the contained kinds, in declaration order
    /// (stable — used in stream trailers so artifacts are self-describing).
    pub fn labels(self) -> String {
        TraceKind::ALL
            .iter()
            .copied()
            .filter(|&k| self.contains(k))
            .map(|k| k.as_str())
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl std::fmt::Debug for KindSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KindSet({})", self.labels())
    }
}

/// One traced transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Timestamp in nanoseconds (virtual on sim, monotonic on os).
    pub t_ns: u64,
    /// Global flow index within the scenario.
    pub flow: u32,
    /// Sequence within the flow: record index for record-scoped kinds,
    /// running per-flow event count otherwise.
    pub seq: u32,
    /// What happened.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// One JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_ns\":{},\"flow\":{},\"seq\":{},\"kind\":\"{}\"}}",
            self.t_ns,
            self.flow,
            self.seq,
            self.kind.as_str()
        )
    }
}

/// A bounded ring of the most recent [`TraceEvent`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRing {
    cap: usize,
    events: VecDeque<TraceEvent>,
    recorded: u64,
    dropped: u64,
}

impl Default for TraceRing {
    fn default() -> Self {
        TraceRing::new(DEFAULT_TRACE_CAP)
    }
}

impl TraceRing {
    /// A ring keeping at most `cap` events (`cap == 0` records nothing but
    /// still counts).
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap,
            events: VecDeque::new(),
            recorded: 0,
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest if full.
    pub fn push(&mut self, ev: TraceEvent) {
        self.recorded += 1;
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever pushed (held + dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted or rejected by the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Capacity bound.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Serialize the held events as JSONL (one event per line, trailing
    /// newline after the last line; empty string when empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// [`Self::to_jsonl`] followed by one summary line carrying the ring's
    /// accounting, so dump consumers can *see* truncation: the merge keeps
    /// the last `cap` of the shard-order concatenation, silently shedding
    /// the earliest events of the earliest shards, and `dropped > 0` is the
    /// only evidence. The summary line is distinguishable from events by
    /// its `"summary"` key (events carry `"kind"`).
    ///
    /// `admitted`/`suppressed` are the attached filter's accounting (what
    /// passed / what the flow- and kind-predicates rejected before the
    /// ring), so a filtered dump is self-describing about its coverage:
    /// `recorded == admitted`, and `admitted + suppressed` is the full
    /// event stream the run produced. The ring-local keys (`recorded`,
    /// `held`, `dropped`, `cap`) keep their historical meaning.
    pub fn to_jsonl_with_summary(&self, admitted: u64, suppressed: u64) -> String {
        let mut out = self.to_jsonl();
        out.push_str(&format!(
            "{{\"summary\":true,\"recorded\":{},\"held\":{},\"dropped\":{},\"cap\":{},\
             \"admitted\":{admitted},\"suppressed\":{suppressed}}}\n",
            self.recorded,
            self.events.len(),
            self.dropped,
            self.cap
        ));
        out
    }
}

impl Absorb for TraceRing {
    /// Concatenate `other`'s stream after `self`'s and keep the last `cap`
    /// of the result. A pristine ring (nothing ever recorded) adopts `other`
    /// wholesale, capacity included, so `TraceRing::default()` is a true
    /// merge identity; all shards of one scenario share a capacity, so the
    /// non-pristine path never mixes bounds in practice.
    fn absorb(&mut self, other: &Self) {
        if self.recorded == 0 {
            *self = other.clone();
            return;
        }
        self.recorded += other.recorded;
        for ev in &other.events {
            if self.cap == 0 {
                break;
            }
            if self.events.len() == self.cap {
                self.events.pop_front();
            }
            self.events.push_back(*ev);
        }
        self.dropped = self.recorded - self.events.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, flow: u32, seq: u32, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            t_ns: t,
            flow,
            seq,
            kind,
        }
    }

    #[test]
    fn ring_keeps_last_cap_and_counts_drops() {
        let mut r = TraceRing::new(2);
        r.push(ev(1, 0, 0, TraceKind::Syn));
        r.push(ev(2, 0, 0, TraceKind::FirstByte));
        r.push(ev(3, 0, 0, TraceKind::Fin));
        assert_eq!(r.len(), 2);
        assert_eq!(r.recorded(), 3);
        assert_eq!(r.dropped(), 1);
        let kinds: Vec<_> = r.events().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![TraceKind::FirstByte, TraceKind::Fin]);
    }

    #[test]
    fn jsonl_kinds_are_stable_tags() {
        let mut r = TraceRing::new(8);
        r.push(ev(10, 3, 1, TraceKind::RtoFired));
        r.push(ev(11, 3, 2, TraceKind::Retransmit));
        let out = r.to_jsonl();
        assert_eq!(
            out,
            "{\"t_ns\":10,\"flow\":3,\"seq\":1,\"kind\":\"rto\"}\n{\"t_ns\":11,\"flow\":3,\"seq\":2,\"kind\":\"retransmit\"}\n"
        );
    }

    #[test]
    fn merge_is_concatenation_trimmed_to_cap_and_associative() {
        let mk = |base: u64, n: u64| {
            let mut r = TraceRing::new(4);
            for i in 0..n {
                r.push(ev(base + i, 0, i as u32, TraceKind::RecordDelivered));
            }
            r
        };
        let a = mk(0, 3);
        let b = mk(100, 3);
        let c = mk(200, 3);
        let mut left = a.clone();
        left.absorb(&b);
        left.absorb(&c);
        let mut bc = b.clone();
        bc.absorb(&c);
        let mut right = a.clone();
        right.absorb(&bc);
        assert_eq!(left, right, "associative");
        // last-4 of the 9-event concatenation
        let ts: Vec<u64> = left.events().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![102, 200, 201, 202]);
        assert_eq!(left.recorded(), 9);
        assert_eq!(left.dropped(), 5);
    }

    #[test]
    fn kind_from_str_round_trips_and_names_valid_kinds_on_failure() {
        for kind in TraceKind::ALL {
            assert_eq!(kind.as_str().parse::<TraceKind>().unwrap(), kind);
        }
        assert_eq!(" rto ".parse::<TraceKind>().unwrap(), TraceKind::RtoFired);
        let err = "warble".parse::<TraceKind>().unwrap_err();
        assert!(err.contains("unknown trace kind \"warble\""), "{err}");
        for kind in TraceKind::ALL {
            assert!(
                err.contains(kind.as_str()),
                "error must list {kind:?}: {err}"
            );
        }
    }

    #[test]
    fn kind_sets_are_bitmasks_with_stable_labels() {
        let all = KindSet::all();
        assert!(all.is_all());
        assert_eq!(all.len(), TraceKind::ALL.len());
        assert_eq!(KindSet::default(), all, "default admits everything");
        let slice = KindSet::of(&[TraceKind::RtoFired, TraceKind::Retransmit]);
        assert!(slice.contains(TraceKind::Retransmit));
        assert!(slice.contains(TraceKind::RtoFired));
        assert!(!slice.contains(TraceKind::Syn));
        assert!(!slice.is_all());
        assert_eq!(slice.len(), 2);
        // Labels come out in declaration order, not insertion order.
        assert_eq!(slice.labels(), "retransmit,rto");
        assert_eq!(format!("{slice:?}"), "KindSet(retransmit,rto)");
        assert!(KindSet::empty().is_empty());
        assert_eq!(KindSet::empty().labels(), "");
    }

    #[test]
    fn summary_line_carries_ring_and_filter_accounting() {
        let mut r = TraceRing::new(1);
        r.push(ev(1, 0, 0, TraceKind::Syn));
        r.push(ev(2, 0, 0, TraceKind::Fin));
        let out = r.to_jsonl_with_summary(2, 5);
        let summary = out.lines().last().unwrap();
        // Historical ring-local keys stay (CI greps depend on them)...
        assert!(summary.contains("\"recorded\":2"), "{summary}");
        assert!(summary.contains("\"held\":1"), "{summary}");
        assert!(summary.contains("\"dropped\":1"), "{summary}");
        assert!(summary.contains("\"cap\":1"), "{summary}");
        // ...and the attached filter's accounting rides along.
        assert!(summary.contains("\"admitted\":2"), "{summary}");
        assert!(summary.contains("\"suppressed\":5"), "{summary}");
    }

    #[test]
    fn empty_default_accumulator_is_identity() {
        let mut r = TraceRing::new(3);
        for i in 0..5 {
            r.push(ev(i, 1, i as u32, TraceKind::Retransmit));
        }
        let mut acc = TraceRing::default();
        acc.absorb(&r);
        assert_eq!(acc, r, "pristine ⊕ r == r, capacity included");
        let mut back = r.clone();
        back.absorb(&TraceRing::default());
        assert_eq!(back, r, "r ⊕ pristine == r");
    }
}
