//! Fixed-slot counter and gauge registries.
//!
//! Dynamic metric registries (name → atomic, behind a lock) would make
//! report contents depend on *which* code paths ran first — a determinism
//! hazard. Here the name list is a `&'static [&'static str]` fixed at the
//! instrumentation site, every shard carries the full slot array (untouched
//! slots read 0), and merge is slot-wise: counters add, gauges take the max.
//! Serial and sharded runs therefore produce byte-identical registries.

use crate::absorb::Absorb;

/// A monotonically increasing event count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Add one.
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Add `n`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl Absorb for Counter {
    fn absorb(&mut self, other: &Self) {
        self.0 = self.0.saturating_add(other.0);
    }
}

/// A high-water-mark style instantaneous value; merge keeps the maximum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Gauge(pub u64);

impl Gauge {
    /// Record an observation; the gauge keeps the largest seen.
    pub fn observe(&mut self, v: u64) {
        self.0 = self.0.max(v);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl Absorb for Gauge {
    fn absorb(&mut self, other: &Self) {
        self.0 = self.0.max(other.0);
    }
}

/// A named, fixed-slot array of [`Counter`]s.
///
/// `Default` produces the *empty* registry (no names); absorbing into an
/// empty registry adopts the other side's name list, so `merge_ordered`
/// works without knowing the schema up front. Absorbing two registries with
/// different name lists is a programming error and panics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterSet {
    names: &'static [&'static str],
    slots: Vec<u64>,
}

impl CounterSet {
    /// A registry over a fixed name list, all slots zero.
    pub fn new(names: &'static [&'static str]) -> Self {
        CounterSet {
            names,
            slots: vec![0; names.len()],
        }
    }

    /// The slot names.
    pub fn names(&self) -> &'static [&'static str] {
        self.names
    }

    /// Add `n` to slot `idx`.
    pub fn add(&mut self, idx: usize, n: u64) {
        self.slots[idx] = self.slots[idx].saturating_add(n);
    }

    /// Add one to slot `idx`.
    pub fn inc(&mut self, idx: usize) {
        self.add(idx, 1);
    }

    /// Value of slot `idx` (0 if the registry is empty).
    pub fn get(&self, idx: usize) -> u64 {
        self.slots.get(idx).copied().unwrap_or(0)
    }

    /// `(name, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.names.iter().copied().zip(self.slots.iter().copied())
    }
}

impl Absorb for CounterSet {
    fn absorb(&mut self, other: &Self) {
        if other.names.is_empty() {
            return;
        }
        if self.names.is_empty() {
            *self = other.clone();
            return;
        }
        assert_eq!(
            self.names, other.names,
            "CounterSet merge across different registries"
        );
        for (a, b) in self.slots.iter_mut().zip(other.slots.iter()) {
            *a = a.saturating_add(*b);
        }
    }
}

/// A named, fixed-slot array of [`Gauge`]s (max-merged).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GaugeSet {
    names: &'static [&'static str],
    slots: Vec<u64>,
}

impl GaugeSet {
    /// A registry over a fixed name list, all slots zero.
    pub fn new(names: &'static [&'static str]) -> Self {
        GaugeSet {
            names,
            slots: vec![0; names.len()],
        }
    }

    /// The slot names.
    pub fn names(&self) -> &'static [&'static str] {
        self.names
    }

    /// Record an observation on slot `idx`; the slot keeps the max.
    pub fn observe(&mut self, idx: usize, v: u64) {
        self.slots[idx] = self.slots[idx].max(v);
    }

    /// Value of slot `idx` (0 if the registry is empty).
    pub fn get(&self, idx: usize) -> u64 {
        self.slots.get(idx).copied().unwrap_or(0)
    }

    /// `(name, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.names.iter().copied().zip(self.slots.iter().copied())
    }
}

impl Absorb for GaugeSet {
    fn absorb(&mut self, other: &Self) {
        if other.names.is_empty() {
            return;
        }
        if self.names.is_empty() {
            *self = other.clone();
            return;
        }
        assert_eq!(
            self.names, other.names,
            "GaugeSet merge across different registries"
        );
        for (a, b) in self.slots.iter_mut().zip(other.slots.iter()) {
            *a = (*a).max(*b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absorb::merge_ordered;

    static NAMES: &[&str] = &["records_enqueued", "records_delivered", "rto_fires"];

    fn set(a: u64, b: u64, c: u64) -> CounterSet {
        let mut s = CounterSet::new(NAMES);
        s.add(0, a);
        s.add(1, b);
        s.add(2, c);
        s
    }

    #[test]
    fn counters_add_gauges_max() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        let mut c2 = Counter(10);
        c2.absorb(&c);
        assert_eq!(c2.get(), 15);

        let mut g = Gauge::default();
        g.observe(7);
        g.observe(3);
        let mut g2 = Gauge(5);
        g2.absorb(&g);
        assert_eq!(g2.get(), 7);
    }

    #[test]
    fn empty_registry_adopts_and_is_identity() {
        let s = set(1, 2, 3);
        let mut acc = CounterSet::default();
        acc.absorb(&s);
        assert_eq!(acc, s, "empty ⊕ s == s");
        let mut back = s.clone();
        back.absorb(&CounterSet::default());
        assert_eq!(back, s, "s ⊕ empty == s");
    }

    #[test]
    fn counter_set_merge_is_associative_and_order_stable() {
        let parts = [set(1, 0, 2), set(0, 5, 1), set(3, 3, 3)];
        let mut left = parts[0].clone();
        left.absorb(&parts[1]);
        left.absorb(&parts[2]);
        let mut bc = parts[1].clone();
        bc.absorb(&parts[2]);
        let mut right = parts[0].clone();
        right.absorb(&bc);
        assert_eq!(left, right, "associative");
        // merging the same shard slice twice yields the same bytes
        assert_eq!(
            merge_ordered::<CounterSet, _>(parts.iter()),
            merge_ordered::<CounterSet, _>(parts.iter()),
            "order-stable"
        );
        assert_eq!(left.get(0), 4);
        assert_eq!(left.get(1), 8);
        assert_eq!(left.get(2), 6);
    }

    #[test]
    fn gauge_set_keeps_per_slot_max() {
        static G: &[&str] = &["ring_high_water"];
        let mut a = GaugeSet::new(G);
        a.observe(0, 10);
        let mut b = GaugeSet::new(G);
        b.observe(0, 4);
        a.absorb(&b);
        assert_eq!(a.get(0), 10);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![("ring_high_water", 10)]);
    }

    #[test]
    #[should_panic(expected = "different registries")]
    fn mismatched_registries_panic() {
        static OTHER: &[&str] = &["something_else"];
        let mut a = set(1, 1, 1);
        a.absorb(&CounterSet::new(OTHER));
    }
}
