//! Span-style phase profiling: where did the wall clock go?
//!
//! A [`PhaseProfile`] is a fixed-slot registry of `(nanos, entries)` pairs —
//! one slot per named phase of a loop (engine dispatch, exec steal/park,
//! osnet `epoll_wait` batches). Callers bracket the phase with
//! [`std::time::Instant`] and feed the elapsed nanoseconds in; the profile
//! surfaces per-phase totals and milli-percent shares.
//!
//! Phase timings are **wall-clock** and therefore *not* deterministic —
//! they vary run to run even on the sim backend. They must never leak into
//! the byte-identity gates, so reports carry them inside
//! [`NonDeterministic`], a wrapper whose `PartialEq` always answers `true`:
//! the surrounding report keeps its derived equality over everything that
//! *is* deterministic, while the profile rides along for humans.

use crate::absorb::Absorb;

/// Fixed-slot per-phase time accounting (see module docs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    names: &'static [&'static str],
    nanos: Vec<u64>,
    entries: Vec<u64>,
}

impl PhaseProfile {
    /// A profile over a fixed phase-name list, all slots zero.
    pub fn new(names: &'static [&'static str]) -> Self {
        PhaseProfile {
            names,
            nanos: vec![0; names.len()],
            entries: vec![0; names.len()],
        }
    }

    /// The phase names.
    pub fn names(&self) -> &'static [&'static str] {
        self.names
    }

    /// Credit `nanos` of elapsed time (one entry) to phase `idx`.
    pub fn add(&mut self, idx: usize, nanos: u64) {
        self.nanos[idx] = self.nanos[idx].saturating_add(nanos);
        self.entries[idx] += 1;
    }

    /// Total nanoseconds credited to phase `idx` (0 if out of range).
    pub fn nanos(&self, idx: usize) -> u64 {
        self.nanos.get(idx).copied().unwrap_or(0)
    }

    /// Times phase `idx` was entered (0 if out of range).
    pub fn entries(&self, idx: usize) -> u64 {
        self.entries.get(idx).copied().unwrap_or(0)
    }

    /// Sum of all phase times.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().fold(0u64, |a, &n| a.saturating_add(n))
    }

    /// Share of phase `idx` in milli-percent of the total (`100_000` =
    /// 100%); 0 when nothing has been recorded.
    pub fn percent_milli(&self, idx: usize) -> u64 {
        self.nanos(idx)
            .saturating_mul(100_000)
            .checked_div(self.total_nanos())
            .unwrap_or(0)
    }

    /// `(name, nanos, entries)` triples in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64, u64)> + '_ {
        self.names
            .iter()
            .copied()
            .zip(self.nanos.iter().copied())
            .zip(self.entries.iter().copied())
            .map(|((n, t), e)| (n, t, e))
    }
}

impl Absorb for PhaseProfile {
    fn absorb(&mut self, other: &Self) {
        if other.names.is_empty() {
            return;
        }
        if self.names.is_empty() {
            *self = other.clone();
            return;
        }
        assert_eq!(
            self.names, other.names,
            "PhaseProfile merge across different phase lists"
        );
        for (a, b) in self.nanos.iter_mut().zip(other.nanos.iter()) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.entries.iter_mut().zip(other.entries.iter()) {
            *a += *b;
        }
    }
}

/// A value excluded from equality: `PartialEq` always answers `true`.
///
/// Deterministic reports (`LoadReport` and friends) derive `PartialEq`/`Eq`
/// and are byte-compared by the parallel-sweep gates. Wall-clock phase
/// profiles would break that, so they travel inside this wrapper — visible
/// in `Debug` output and accessors, invisible to `==`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NonDeterministic<T>(pub T);

impl<T> NonDeterministic<T> {
    /// Borrow the wrapped value.
    pub fn get(&self) -> &T {
        &self.0
    }

    /// Mutably borrow the wrapped value.
    pub fn get_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T> PartialEq for NonDeterministic<T> {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl<T> Eq for NonDeterministic<T> {}

impl<T: Absorb> Absorb for NonDeterministic<T> {
    fn absorb(&mut self, other: &Self) {
        self.0.absorb(&other.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static PHASES: &[&str] = &["dispatch", "timers", "flush"];

    #[test]
    fn profile_accumulates_and_shares_sum_to_whole() {
        let mut p = PhaseProfile::new(PHASES);
        p.add(0, 600);
        p.add(1, 300);
        p.add(2, 100);
        p.add(0, 0); // zero-length span still counts an entry
        assert_eq!(p.total_nanos(), 1000);
        assert_eq!(p.percent_milli(0), 60_000);
        assert_eq!(p.percent_milli(1), 30_000);
        assert_eq!(p.percent_milli(2), 10_000);
        assert_eq!(p.entries(0), 2);
        assert_eq!(
            p.iter().collect::<Vec<_>>(),
            vec![("dispatch", 600, 2), ("timers", 300, 1), ("flush", 100, 1)]
        );
    }

    #[test]
    fn profile_merge_is_associative_with_empty_identity() {
        let mk = |a: u64, b: u64| {
            let mut p = PhaseProfile::new(PHASES);
            p.add(0, a);
            p.add(1, b);
            p
        };
        let (a, b, c) = (mk(1, 2), mk(10, 20), mk(100, 200));
        let mut left = a.clone();
        left.absorb(&b);
        left.absorb(&c);
        let mut bc = b.clone();
        bc.absorb(&c);
        let mut right = a.clone();
        right.absorb(&bc);
        assert_eq!(left, right);
        let mut id = PhaseProfile::default();
        id.absorb(&a);
        assert_eq!(id, a);
    }

    #[test]
    fn non_deterministic_is_always_equal_but_visible() {
        let a = NonDeterministic(PhaseProfile::new(PHASES));
        let mut bp = PhaseProfile::new(PHASES);
        bp.add(0, 42);
        let b = NonDeterministic(bp);
        assert_eq!(a, b, "equality ignores the payload");
        assert_eq!(b.get().nanos(0), 42, "the payload is still readable");
    }
}
