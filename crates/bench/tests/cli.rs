//! CLI contract tests for the bench binaries: bad output paths must fail
//! fast (before any bench work runs) with a message that names the flag
//! and the missing directory — not a bare `io::Error` panic after minutes
//! of simulation.

use std::process::Command;

/// Run `load_engine` with `args` and return (success, stderr).
fn run_load_engine(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_load_engine"))
        .args(args)
        .output()
        .expect("spawn load_engine");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn out_into_missing_directory_fails_with_a_clear_error() {
    let (ok, stderr) = run_load_engine(&[
        "--flows",
        "1",
        "--out",
        "/no-such-bench-dir-7f3a/BENCH_engine.json",
    ]);
    assert!(!ok, "a missing --out directory must fail the run");
    assert!(
        stderr.contains("--out") && stderr.contains("does not exist"),
        "error must name the flag and the missing directory, got:\n{stderr}"
    );
    assert!(
        stderr.contains("/no-such-bench-dir-7f3a"),
        "error must echo the offending path, got:\n{stderr}"
    );
}

#[test]
fn trace_out_into_missing_directory_fails_with_a_clear_error() {
    let (ok, stderr) = run_load_engine(&[
        "--flows",
        "1",
        "--trace-out",
        "/no-such-trace-dir-7f3a/trace.jsonl",
    ]);
    assert!(!ok, "a missing --trace-out directory must fail the run");
    assert!(
        stderr.contains("--trace-out") && stderr.contains("does not exist"),
        "error must name the flag and the missing directory, got:\n{stderr}"
    );
}

#[test]
fn trace_stream_into_missing_directory_fails_with_a_clear_error() {
    // The stream path also names the mid-run per-shard spill files, so a
    // typo'd directory must fail at parse time — before the 1024-flow
    // flight-recorder run, and before any shard tries to create its spill.
    let (ok, stderr) = run_load_engine(&[
        "--flows",
        "1",
        "--trace-stream",
        "/no-such-stream-dir-7f3a/trace.jsonl",
    ]);
    assert!(!ok, "a missing --trace-stream directory must fail the run");
    assert!(
        stderr.contains("--trace-stream") && stderr.contains("does not exist"),
        "error must name the flag and the missing directory, got:\n{stderr}"
    );
    assert!(
        stderr.contains("/no-such-stream-dir-7f3a"),
        "error must echo the offending path, got:\n{stderr}"
    );
}

#[test]
fn unknown_trace_kinds_fail_at_parse_time_with_the_valid_list() {
    let (ok, stderr) = run_load_engine(&["--flows", "1", "--trace-kind", "retransmit,handshake"]);
    assert!(!ok, "an unknown --trace-kind entry must fail the run");
    assert!(
        stderr.contains("--trace-kind")
            && stderr.contains("unknown trace kind \"handshake\"")
            && stderr.contains("valid kinds: syn|first_byte|record|retransmit|rto|fin"),
        "error must name the flag, the bad kind, and every valid kind, got:\n{stderr}"
    );
}

#[test]
fn unknown_flags_fail_with_usage() {
    let (ok, stderr) = run_load_engine(&["--no-such-flag"]);
    assert!(!ok);
    assert!(
        stderr.contains("usage:"),
        "unknown flags must print usage, got:\n{stderr}"
    );
}
