//! `cargo bench --bench figures` regenerates every table and figure of the
//! paper's evaluation at quick scale and prints the data series.
use minion_bench::{
    fig05, fig06, fig10, fig13, table1, voip_experiments, vpn_experiments, DEFAULT_SEED,
};
use minion_simnet::SimDuration;
use std::time::Instant;

fn timed(name: &str, f: impl FnOnce() -> minion_simnet::Table) {
    let start = Instant::now();
    let table = f();
    println!("{}", table.to_text());
    println!(
        "[{name} regenerated in {:.1}s]\n",
        start.elapsed().as_secs_f64()
    );
}

fn main() {
    let seed = DEFAULT_SEED;
    // Figure-regeneration sizes are kept small so `cargo bench` stays fast;
    // the src/bin binaries honour MINION_FULL=1 for larger runs.
    timed("figure 5", || {
        fig05::to_table(&fig05::run(&fig05::paper_message_sizes(), 600_000, seed))
    });
    timed("figure 6a", || {
        fig06::run_fig6a(&[0.01, 0.02], 400_000, seed)
    });
    timed("figure 6b", || {
        fig06::run_fig6b(&[0.01, 0.02], 400_000, seed)
    });
    timed("figure 7", || {
        voip_experiments::run_fig7(SimDuration::from_secs(20), seed)
    });
    timed("figure 8", || {
        voip_experiments::run_fig8(SimDuration::from_secs(20), seed)
    });
    timed("figure 9", || voip_experiments::run_fig9(2, seed));
    timed("figure 10", || fig10::run(800, seed));
    timed("figure 11", || {
        vpn_experiments::run_fig11(&[0, 2, 4], SimDuration::from_secs(15), seed)
    });
    timed("figure 12", || {
        vpn_experiments::run_fig12(SimDuration::from_secs(15), seed)
    });
    timed("figure 13", || fig13::to_table(&fig13::run_trace(6, seed)));
    timed("table 1", table1::run);
}
