//! Criterion microbenchmarks of the data-path hot spots: COBS encoding and
//! record scanning, TLS record protection, uTLS out-of-order recovery, and
//! TCP segment serialization. These quantify the per-byte costs behind the
//! Figure 6 CPU numbers.
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use minion_cobs::{decode, encode, frame_datagram, scan_records};
use minion_crypto::{hmac_sha256, sha256};
use minion_tcp::{SeqNum, TcpFlags, TcpSegment};
use minion_tls::{
    CipherSuite, RecordProtection, UtlsReceiver, CONTENT_APPLICATION_DATA, VERSION_TLS11,
};
use std::time::Duration;

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 % 256) as u8).collect()
}

fn bench_cobs(c: &mut Criterion) {
    let mut group = c.benchmark_group("cobs");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let data = payload(1400);
    group.throughput(Throughput::Bytes(1400));
    group.bench_function("encode_1400B", |b| {
        b.iter(|| encode(std::hint::black_box(&data)))
    });
    let encoded = encode(&data);
    group.bench_function("decode_1400B", |b| {
        b.iter(|| decode(std::hint::black_box(&encoded)))
    });
    // Record scanning over a 20-record fragment.
    let mut stream = Vec::new();
    for _ in 0..20 {
        stream.extend_from_slice(&frame_datagram(&data));
    }
    group.throughput(Throughput::Bytes(stream.len() as u64));
    group.bench_function("scan_20_records", |b| {
        b.iter(|| scan_records(std::hint::black_box(&stream), true))
    });
    group.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let data = payload(1400);
    group.throughput(Throughput::Bytes(1400));
    group.bench_function("sha256_1400B", |b| {
        b.iter(|| sha256(std::hint::black_box(&data)))
    });
    group.bench_function("hmac_sha256_1400B", |b| {
        b.iter(|| hmac_sha256(b"key", std::hint::black_box(&data)))
    });
    group.finish();
}

fn bench_tls(c: &mut Criterion) {
    let mut group = c.benchmark_group("tls");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let data = payload(1400);
    let keys = (*b"0123456789abcdef", [7u8; 32]);
    group.throughput(Throughput::Bytes(1400));
    group.bench_function("seal_record_1400B", |b| {
        let mut tx = RecordProtection::new(
            CipherSuite::Aes128CbcExplicitIv,
            keys.0,
            keys.1,
            VERSION_TLS11,
        );
        let mut n = 0u64;
        b.iter(|| {
            let wire = tx.seal(n, CONTENT_APPLICATION_DATA, std::hint::black_box(&data));
            n += 1;
            wire
        })
    });
    // uTLS out-of-order recovery of a record after a hole.
    group.bench_function("utls_recover_after_hole", |b| {
        let mut tx = RecordProtection::new(
            CipherSuite::Aes128CbcExplicitIv,
            keys.0,
            keys.1,
            VERSION_TLS11,
        );
        let rx_prot = RecordProtection::new(
            CipherSuite::Aes128CbcExplicitIv,
            keys.0,
            keys.1,
            VERSION_TLS11,
        );
        let wires: Vec<Vec<u8>> = (0..4u64)
            .map(|n| tx.seal(n, CONTENT_APPLICATION_DATA, &data))
            .collect();
        let offset1 = wires[0].len() as u64;
        let offset3 = (wires[0].len() + wires[1].len() + wires[2].len()) as u64;
        b.iter(|| {
            let mut rx = UtlsReceiver::new(rx_prot.clone(), 8);
            rx.on_fragment(0, &wires[0]);
            let _ = offset1;
            rx.on_fragment(offset3, std::hint::black_box(&wires[3]))
        })
    });
    group.finish();
}

fn bench_tcp(c: &mut Criterion) {
    let mut group = c.benchmark_group("tcp");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let mut seg = TcpSegment::bare(443, 50000, SeqNum(123456), SeqNum(654321), TcpFlags::ACK);
    seg.payload = bytes::Bytes::from(payload(1400));
    group.throughput(Throughput::Bytes(1400));
    group.bench_function("segment_encode_1400B", |b| {
        b.iter(|| std::hint::black_box(&seg).encode())
    });
    let wire = seg.encode();
    group.bench_function("segment_decode_1400B", |b| {
        b.iter(|| TcpSegment::decode(std::hint::black_box(&wire)))
    });
    group.finish();
}

criterion_group!(benches, bench_cobs, bench_crypto, bench_tls, bench_tcp);
criterion_main!(benches);
