//! Minimal shared flag parsing for the bench binaries (`load_engine`,
//! `sweep_matrix`): `--flag value` pairs with count / count-list values.
//! One definition so the binaries validate identically and cannot drift.

/// The process's flag arguments (everything after the binary name).
pub struct CliArgs {
    iter: std::vec::IntoIter<String>,
    usage: &'static str,
}

impl CliArgs {
    /// Capture `std::env::args()`, remembering `usage` for error messages.
    pub fn new(usage: &'static str) -> Self {
        CliArgs {
            iter: std::env::args().skip(1).collect::<Vec<_>>().into_iter(),
            usage,
        }
    }

    /// The next flag, if any.
    pub fn next_flag(&mut self) -> Option<String> {
        self.iter.next()
    }

    /// The value following `flag`; panics (with usage) if it is missing.
    pub fn value(&mut self, flag: &str) -> String {
        self.iter
            .next()
            .unwrap_or_else(|| panic!("{flag} requires a value\nusage: {}", self.usage))
    }

    /// Panic (with usage) over an unrecognised flag.
    pub fn unknown(&self, flag: &str) -> ! {
        panic!("unknown argument {flag:?}\nusage: {}", self.usage)
    }
}

/// Parse a positive integer flag value.
pub fn parse_count(raw: &str, flag: &str) -> usize {
    let n = raw
        .trim()
        .parse::<usize>()
        .unwrap_or_else(|_| panic!("{flag} takes positive integers, got {raw:?}"));
    assert!(n >= 1, "{flag} takes positive integers, got {raw:?}");
    n
}

/// Parse a non-empty comma-separated list of positive integers.
pub fn parse_count_list(raw: &str, flag: &str) -> Vec<usize> {
    let list: Vec<usize> = raw.split(',').map(|s| parse_count(s, flag)).collect();
    assert!(!list.is_empty(), "{flag} needs at least one entry");
    list
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_lists_parse_and_validate() {
        assert_eq!(parse_count_list("1,64, 1024", "--flows"), vec![1, 64, 1024]);
        assert_eq!(parse_count("8", "--threads"), 8);
    }

    #[test]
    #[should_panic(expected = "--threads takes positive integers")]
    fn zero_counts_are_rejected() {
        parse_count("0", "--threads");
    }

    #[test]
    #[should_panic(expected = "--flows takes positive integers")]
    fn junk_entries_are_rejected() {
        parse_count_list("1,banana", "--flows");
    }
}
