//! Minimal shared flag parsing for the bench binaries (`load_engine`,
//! `sweep_matrix`): `--flag value` pairs with count / count-list values.
//! One definition so the binaries validate identically and cannot drift.

/// The process's flag arguments (everything after the binary name).
pub struct CliArgs {
    iter: std::vec::IntoIter<String>,
    usage: &'static str,
}

impl CliArgs {
    /// Capture `std::env::args()`, remembering `usage` for error messages.
    pub fn new(usage: &'static str) -> Self {
        CliArgs {
            iter: std::env::args().skip(1).collect::<Vec<_>>().into_iter(),
            usage,
        }
    }

    /// The next flag, if any.
    pub fn next_flag(&mut self) -> Option<String> {
        self.iter.next()
    }

    /// The value following `flag`; panics (with usage) if it is missing.
    pub fn value(&mut self, flag: &str) -> String {
        self.iter
            .next()
            .unwrap_or_else(|| panic!("{flag} requires a value\nusage: {}", self.usage))
    }

    /// Panic (with usage) over an unrecognised flag.
    pub fn unknown(&self, flag: &str) -> ! {
        panic!("unknown argument {flag:?}\nusage: {}", self.usage)
    }
}

/// Which transport backend a bench binary drives: the deterministic
/// simulator or real kernel sockets over loopback (`minion-osnet`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// The deterministic simulator (byte-identical reports).
    #[default]
    Sim,
    /// Kernel TCP over loopback via the epoll reactor (liveness/goodput
    /// gates, no determinism promise).
    Os,
}

impl Backend {
    /// The tag used in labels and JSON (`"sim"` / `"os"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Os => "os",
        }
    }
}

/// Parse a `--backend` value.
pub fn parse_backend(raw: &str) -> Backend {
    match raw.trim() {
        "sim" => Backend::Sim,
        "os" => Backend::Os,
        other => panic!("--backend takes sim|os, got {other:?}"),
    }
}

/// Reject flag combinations the chosen backend cannot honour. Today that
/// is exactly one: `--threads` with the OS backend (the shard decomposition
/// and work-stealing executor drive *simulated* engines; sharding is
/// sim-only for now).
pub fn validate_backend(backend: Backend, threads_requested: bool) {
    assert!(
        !(backend == Backend::Os && threads_requested),
        "--threads cannot be combined with --backend os: sharding is sim-only for now"
    );
}

/// Parse a positive integer flag value.
pub fn parse_count(raw: &str, flag: &str) -> usize {
    let n = raw
        .trim()
        .parse::<usize>()
        .unwrap_or_else(|_| panic!("{flag} takes positive integers, got {raw:?}"));
    assert!(n >= 1, "{flag} takes positive integers, got {raw:?}");
    n
}

/// Parse a non-empty comma-separated list of positive integers.
pub fn parse_count_list(raw: &str, flag: &str) -> Vec<usize> {
    let list: Vec<usize> = raw.split(',').map(|s| parse_count(s, flag)).collect();
    assert!(!list.is_empty(), "{flag} needs at least one entry");
    list
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_lists_parse_and_validate() {
        assert_eq!(parse_count_list("1,64, 1024", "--flows"), vec![1, 64, 1024]);
        assert_eq!(parse_count("8", "--threads"), 8);
    }

    #[test]
    #[should_panic(expected = "--threads takes positive integers")]
    fn zero_counts_are_rejected() {
        parse_count("0", "--threads");
    }

    #[test]
    #[should_panic(expected = "--flows takes positive integers")]
    fn junk_entries_are_rejected() {
        parse_count_list("1,banana", "--flows");
    }

    #[test]
    fn backends_parse() {
        assert_eq!(parse_backend("sim"), Backend::Sim);
        assert_eq!(parse_backend(" os "), Backend::Os);
        assert_eq!(Backend::Os.as_str(), "os");
    }

    #[test]
    #[should_panic(expected = "--backend takes sim|os")]
    fn unknown_backends_are_rejected() {
        parse_backend("dpdk");
    }

    #[test]
    #[should_panic(expected = "sharding is sim-only for now")]
    fn threads_with_os_backend_is_rejected() {
        validate_backend(Backend::Os, true);
    }

    #[test]
    fn threads_with_sim_backend_is_fine() {
        validate_backend(Backend::Sim, true);
        validate_backend(Backend::Os, false);
    }
}
