//! Minimal shared flag parsing for the bench binaries (`load_engine`,
//! `sweep_matrix`): `--flag value` pairs with count / count-list values.
//! One definition so the binaries validate identically and cannot drift.

/// The process's flag arguments (everything after the binary name).
pub struct CliArgs {
    iter: std::vec::IntoIter<String>,
    usage: &'static str,
}

impl CliArgs {
    /// Capture `std::env::args()`, remembering `usage` for error messages.
    pub fn new(usage: &'static str) -> Self {
        CliArgs {
            iter: std::env::args().skip(1).collect::<Vec<_>>().into_iter(),
            usage,
        }
    }

    /// The next flag, if any.
    pub fn next_flag(&mut self) -> Option<String> {
        self.iter.next()
    }

    /// The value following `flag`; panics (with usage) if it is missing.
    pub fn value(&mut self, flag: &str) -> String {
        self.iter
            .next()
            .unwrap_or_else(|| panic!("{flag} requires a value\nusage: {}", self.usage))
    }

    /// Panic (with usage) over an unrecognised flag.
    pub fn unknown(&self, flag: &str) -> ! {
        panic!("unknown argument {flag:?}\nusage: {}", self.usage)
    }
}

/// Which transport backend a bench binary drives: the deterministic
/// simulator or real kernel sockets over loopback (`minion-osnet`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// The deterministic simulator (byte-identical reports).
    #[default]
    Sim,
    /// Kernel TCP over loopback via the epoll reactor (liveness/goodput
    /// gates, no determinism promise).
    Os,
}

impl Backend {
    /// The tag used in labels and JSON (`"sim"` / `"os"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Os => "os",
        }
    }
}

/// Parse a `--backend` value.
pub fn parse_backend(raw: &str) -> Backend {
    match raw.trim() {
        "sim" => Backend::Sim,
        "os" => Backend::Os,
        other => panic!("--backend takes sim|os, got {other:?}"),
    }
}

/// Reject flag combinations the chosen backend cannot honour. Today that
/// is exactly one: `--threads` with the OS backend (the shard decomposition
/// and work-stealing executor drive *simulated* engines; sharding is
/// sim-only for now).
pub fn validate_backend(backend: Backend, threads_requested: bool) {
    assert!(
        !(backend == Backend::Os && threads_requested),
        "--threads cannot be combined with --backend os: sharding is sim-only for now"
    );
}

/// Validate an output path at parse time: fail *before* minutes of bench
/// work, and with a message naming the flag and the missing directory
/// instead of a bare `io::Error` panic at the final write.
pub fn validate_out_path(flag: &str, path: &str) {
    assert!(!path.trim().is_empty(), "{flag} needs a non-empty path");
    let parent = std::path::Path::new(path).parent();
    if let Some(dir) = parent.filter(|d| !d.as_os_str().is_empty()) {
        assert!(
            dir.is_dir(),
            "{flag} {path:?}: directory {dir:?} does not exist (create it first)"
        );
    }
}

/// Write an output file, converting an I/O failure into a message that
/// names the flag and path (the parse-time [`validate_out_path`] check
/// catches missing directories; this covers races and permission errors).
pub fn write_output(flag: &str, path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        panic!("{flag} {path:?}: cannot write: {e}");
    }
}

/// Parse a positive integer flag value.
pub fn parse_count(raw: &str, flag: &str) -> usize {
    let n = raw
        .trim()
        .parse::<usize>()
        .unwrap_or_else(|_| panic!("{flag} takes positive integers, got {raw:?}"));
    assert!(n >= 1, "{flag} takes positive integers, got {raw:?}");
    n
}

/// Parse a non-empty comma-separated list of positive integers.
pub fn parse_count_list(raw: &str, flag: &str) -> Vec<usize> {
    let list: Vec<usize> = raw.split(',').map(|s| parse_count(s, flag)).collect();
    assert!(!list.is_empty(), "{flag} needs at least one entry");
    list
}

/// Parse a non-empty comma-separated list of congestion-control algorithms
/// (`newreno|cubic|none`), rejecting duplicates (a doubled entry would
/// silently double a sweep's cell count).
pub fn parse_cc_list(raw: &str, flag: &str) -> Vec<minion_tcp::CcAlgorithm> {
    let list: Vec<minion_tcp::CcAlgorithm> = raw
        .split(',')
        .map(|s| {
            minion_tcp::CcAlgorithm::parse(s)
                .unwrap_or_else(|| panic!("{flag} takes newreno|cubic|none, got {s:?}"))
        })
        .collect();
    assert!(!list.is_empty(), "{flag} needs at least one entry");
    for (i, cc) in list.iter().enumerate() {
        assert!(
            !list[..i].contains(cc),
            "{flag}: duplicate entry {:?}",
            cc.label()
        );
    }
    list
}

/// Parse a non-empty comma-separated list of trace kinds
/// (`--trace-kind retransmit,rto`) into a [`minion_engine::KindSet`],
/// rejecting unknown and duplicate kinds at parse time with the full
/// valid-kind list in the error. The kind names are
/// [`minion_engine::TraceKind::ALL`]'s canonical tags — the same strings
/// the JSONL events carry — so the flag and the artifact always agree.
pub fn parse_trace_kinds(raw: &str, flag: &str) -> minion_engine::KindSet {
    let mut set = minion_engine::KindSet::empty();
    let mut count = 0usize;
    for entry in raw.split(',') {
        let kind: minion_engine::TraceKind = entry
            .parse()
            .unwrap_or_else(|e: String| panic!("{flag}: {e}"));
        assert!(
            !set.contains(kind),
            "{flag}: duplicate entry {:?}",
            kind.as_str()
        );
        set.insert(kind);
        count += 1;
    }
    assert!(count > 0, "{flag} needs at least one entry");
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_lists_parse_and_validate() {
        assert_eq!(parse_count_list("1,64, 1024", "--flows"), vec![1, 64, 1024]);
        assert_eq!(parse_count("8", "--threads"), 8);
    }

    #[test]
    #[should_panic(expected = "--threads takes positive integers")]
    fn zero_counts_are_rejected() {
        parse_count("0", "--threads");
    }

    #[test]
    #[should_panic(expected = "--flows takes positive integers")]
    fn junk_entries_are_rejected() {
        parse_count_list("1,banana", "--flows");
    }

    #[test]
    fn cc_lists_parse_and_validate() {
        use minion_tcp::CcAlgorithm;
        assert_eq!(
            parse_cc_list("newreno, cubic,none", "--cc"),
            vec![CcAlgorithm::NewReno, CcAlgorithm::Cubic, CcAlgorithm::None]
        );
    }

    #[test]
    #[should_panic(expected = "--cc takes newreno|cubic|none")]
    fn unknown_cc_entries_are_rejected() {
        parse_cc_list("newreno,vegas", "--cc");
    }

    #[test]
    #[should_panic(expected = "duplicate entry")]
    fn duplicate_cc_entries_are_rejected() {
        parse_cc_list("cubic,cubic", "--cc");
    }

    #[test]
    fn trace_kind_lists_parse_into_kind_sets() {
        use minion_engine::{KindSet, TraceKind};
        assert_eq!(
            parse_trace_kinds("retransmit, rto", "--trace-kind"),
            KindSet::of(&[TraceKind::Retransmit, TraceKind::RtoFired])
        );
        assert_eq!(
            parse_trace_kinds("syn,first_byte,record,retransmit,rto,fin", "--trace-kind"),
            KindSet::all()
        );
    }

    #[test]
    #[should_panic(
        expected = "--trace-kind: unknown trace kind \"handshake\" (valid kinds: syn|first_byte|record|retransmit|rto|fin)"
    )]
    fn unknown_trace_kinds_are_rejected_with_the_valid_list() {
        parse_trace_kinds("retransmit,handshake", "--trace-kind");
    }

    #[test]
    #[should_panic(expected = "--trace-kind: duplicate entry \"rto\"")]
    fn duplicate_trace_kinds_are_rejected() {
        parse_trace_kinds("rto,rto", "--trace-kind");
    }

    #[test]
    fn out_paths_validate() {
        validate_out_path("--out", "BENCH_engine.json"); // cwd-relative: fine
        let dir = std::env::temp_dir();
        validate_out_path("--out", dir.join("x.json").to_str().unwrap());
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn missing_out_directory_is_rejected_at_parse_time() {
        validate_out_path("--out", "/no-such-bench-dir-1b2c/x.json");
    }

    #[test]
    fn backends_parse() {
        assert_eq!(parse_backend("sim"), Backend::Sim);
        assert_eq!(parse_backend(" os "), Backend::Os);
        assert_eq!(Backend::Os.as_str(), "os");
    }

    #[test]
    #[should_panic(expected = "--backend takes sim|os")]
    fn unknown_backends_are_rejected() {
        parse_backend("dpdk");
    }

    #[test]
    #[should_panic(expected = "sharding is sim-only for now")]
    fn threads_with_os_backend_is_rejected() {
        validate_backend(Backend::Os, true);
    }

    #[test]
    fn threads_with_sim_backend_is_fine() {
        validate_backend(Backend::Sim, true);
        validate_backend(Backend::Os, false);
    }
}
