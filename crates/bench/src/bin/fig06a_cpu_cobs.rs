//! Regenerates Figure 6(a): COBS/uCOBS processing cost relative to raw TCP.
use minion_bench::{fig06, Scale, DEFAULT_SEED};

fn main() {
    let scale = Scale::from_env();
    let table = fig06::run_fig6a(
        &[0.005, 0.01, 0.02],
        scale.transfer_bytes() / 2,
        DEFAULT_SEED,
    );
    print!("{}", table.to_text());
    print!("{}", table.to_csv());
}
