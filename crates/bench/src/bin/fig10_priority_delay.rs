//! Regenerates Figure 10: message delay by priority class, TCP vs uTCP.
use minion_bench::{fig10, Scale, DEFAULT_SEED};

fn main() {
    let scale = Scale::from_env();
    let table = fig10::run(scale.priority_messages(), DEFAULT_SEED);
    print!("{}", table.to_text());
    print!("{}", table.to_csv());
}
