//! Regenerates Figure 7: CDF of one-way VoIP frame latency under contention.
use minion_bench::{voip_experiments, Scale, DEFAULT_SEED};

fn main() {
    let scale = Scale::from_env();
    let table = voip_experiments::run_fig7(scale.voip_duration(), DEFAULT_SEED);
    print!("{}", table.to_text());
    print!("{}", table.to_csv());
}
