//! Regenerates Figure 5: throughput vs application message size.
use minion_bench::{fig05, Scale, DEFAULT_SEED};

fn main() {
    let scale = Scale::from_env();
    let samples = fig05::run(
        &fig05::paper_message_sizes(),
        scale.transfer_bytes(),
        DEFAULT_SEED,
    );
    let table = fig05::to_table(&samples);
    print!("{}", table.to_text());
    print!("{}", table.to_csv());
}
