//! Regenerates Figure 8: CDF of codec-perceived loss-burst lengths.
use minion_bench::{voip_experiments, Scale, DEFAULT_SEED};

fn main() {
    let scale = Scale::from_env();
    let table = voip_experiments::run_fig8(scale.voip_duration(), DEFAULT_SEED);
    print!("{}", table.to_text());
    print!("{}", table.to_csv());
}
