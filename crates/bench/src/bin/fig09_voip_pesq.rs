//! Regenerates Figure 9: moving quality score under increasing contention.
use minion_bench::{voip_experiments, Scale, DEFAULT_SEED};

fn main() {
    let scale = Scale::from_env();
    let table = voip_experiments::run_fig9(scale.voip_minutes(), DEFAULT_SEED);
    print!("{}", table.to_text());
    print!("{}", table.to_csv());
}
