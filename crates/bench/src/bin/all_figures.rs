//! Runs every figure and table of the evaluation in sequence.
use minion_bench::{
    fig05, fig06, fig10, fig13, table1, voip_experiments, vpn_experiments, Scale, DEFAULT_SEED,
};

fn main() {
    let scale = Scale::from_env();
    let seed = DEFAULT_SEED;
    println!("== Minion evaluation (scale: {scale:?}) ==\n");
    let samples = fig05::run(&fig05::paper_message_sizes(), scale.transfer_bytes(), seed);
    println!("{}", fig05::to_table(&samples).to_text());
    println!(
        "{}",
        fig06::run_fig6a(&[0.005, 0.01, 0.02], scale.transfer_bytes() / 2, seed).to_text()
    );
    println!(
        "{}",
        fig06::run_fig6b(&[0.005, 0.01, 0.02], scale.transfer_bytes() / 2, seed).to_text()
    );
    println!(
        "{}",
        voip_experiments::run_fig7(scale.voip_duration(), seed).to_text()
    );
    println!(
        "{}",
        voip_experiments::run_fig8(scale.voip_duration(), seed).to_text()
    );
    println!(
        "{}",
        voip_experiments::run_fig9(scale.voip_minutes(), seed).to_text()
    );
    println!("{}", fig10::run(scale.priority_messages(), seed).to_text());
    println!(
        "{}",
        vpn_experiments::run_fig11(&[0, 1, 2, 3, 4, 5], scale.vpn_duration(), seed).to_text()
    );
    println!(
        "{}",
        vpn_experiments::run_fig12(scale.vpn_duration(), seed).to_text()
    );
    println!(
        "{}",
        fig13::to_table(&fig13::run_trace(scale.web_pages(), seed)).to_text()
    );
    println!("{}", table1::run().to_text());
}
