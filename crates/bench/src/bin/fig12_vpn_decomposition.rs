//! Regenerates Figure 12: contribution of unordered delivery and ACK
//! prioritization to tunnel utilisation.
use minion_bench::{vpn_experiments, Scale, DEFAULT_SEED};

fn main() {
    let scale = Scale::from_env();
    let table = vpn_experiments::run_fig12(scale.vpn_duration(), DEFAULT_SEED);
    print!("{}", table.to_text());
    print!("{}", table.to_csv());
}
