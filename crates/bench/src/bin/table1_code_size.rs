//! Regenerates Table 1: implementation size of each component.
use minion_bench::table1;

fn main() {
    let table = table1::run();
    print!("{}", table.to_text());
    print!("{}", table.to_csv());
}
