//! Regenerates Figure 11: tunneled download throughput vs competing uploads.
use minion_bench::{vpn_experiments, Scale, DEFAULT_SEED};

fn main() {
    let scale = Scale::from_env();
    let table = vpn_experiments::run_fig11(&[0, 1, 2, 3, 4, 5], scale.vpn_duration(), DEFAULT_SEED);
    print!("{}", table.to_text());
    print!("{}", table.to_csv());
}
