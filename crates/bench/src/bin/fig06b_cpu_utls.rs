//! Regenerates Figure 6(b): uTLS processing cost relative to stream TLS.
use minion_bench::{fig06, Scale, DEFAULT_SEED};

fn main() {
    let scale = Scale::from_env();
    let table = fig06::run_fig6b(
        &[0.005, 0.01, 0.02],
        scale.transfer_bytes() / 2,
        DEFAULT_SEED,
    );
    print!("{}", table.to_text());
    print!("{}", table.to_csv());
}
