//! The parallel matrix-sweep benchmark: run the full scenario matrix (the
//! tier-1 protocol×stack×loss matrix plus the `flows ∈ {1, 64, 1024}` load
//! matrix) once per requested thread count on the `minion-exec`
//! work-stealing executor, assert every sweep's reports are byte-identical,
//! and emit `BENCH_sweep.json` with cells/sec per thread count and speedup
//! versus 1 thread.
//!
//! CI runs this as the report-diff gate: `--report-prefix` writes one
//! canonical report file per thread count (full `Debug` dump of every cell
//! report, in cell order), and the job `diff`s the `threads=1` file against
//! the `threads=4` file — any byte of divergence fails the build. The
//! binary additionally asserts the equality in-process.
//!
//! ```text
//! sweep_matrix [--threads 1,4] [--report-prefix PREFIX] [--out BENCH_sweep.json]
//! ```

use minion_bench::cli;
use minion_exec::ExecStats;
use minion_testkit::{
    run_matrix_once_with_stats, summarize, CcAlgorithm, CellReport, CellSpec, MatrixSpec,
};
use std::fmt::Write as _;
use std::time::Instant;

/// The sweep's cell set: the tier-1 default matrix plus the load matrix —
/// "the full matrix" CI diffs across thread counts. `--cc` multiplies the
/// *load* slice by the requested congestion-control algorithms (the
/// single-flow matrix stays on the default NewReno: its cells pin protocol
/// framing behaviour, not sender dynamics).
fn full_matrix(ccs: &[CcAlgorithm]) -> Vec<CellSpec> {
    let mut cells = MatrixSpec::default().cells();
    let mut load = MatrixSpec::load();
    load.ccs = ccs.to_vec();
    cells.extend(load.cells());
    cells
}

/// The canonical sweep report: the human summary table followed by the
/// complete `Debug` dump of every cell report, in cell order. Every counter
/// and fingerprint a cell produces lands in this text, so two sweeps are
/// byte-identical iff this text is.
fn canonical_report(cells: &[CellSpec], reports: &[CellReport]) -> String {
    let mut out = String::new();
    out.push_str(&summarize(reports));
    out.push('\n');
    for (cell, report) in cells.iter().zip(reports) {
        writeln!(out, "seed={:#018x} {report:?}", cell.seed).expect("write to String");
    }
    out
}

struct Run {
    threads: usize,
    wall_seconds: f64,
    stats: ExecStats,
}

/// The `"obs"` section of `BENCH_sweep.json`: the deterministic
/// delivery-delay columns of every multi-flow cell (identical across
/// thread counts — the report diff proves it) plus the per-run executor
/// scheduling profile (wall-clock; varies run to run by design).
fn obs_section_json(reports: &[CellReport], runs: &[Run]) -> String {
    let delivery = reports
        .iter()
        .filter(|r| r.trace_events > 0)
        .map(|r| {
            format!(
                concat!(
                    "      {{\"label\": \"{label}\", \"p50_ns\": {p50}, \"p99_ns\": {p99}, ",
                    "\"p999_ns\": {p999}, \"mean_ns\": {mean}, \"trace_events\": {events}, ",
                    "\"trace_fingerprint\": \"{fp:#018x}\"}}"
                ),
                label = r.label.replace('\\', "\\\\").replace('"', "\\\""),
                p50 = r.delivery_delay_p50_ns,
                p99 = r.delivery_delay_p99_ns,
                p999 = r.delivery_delay_p999_ns,
                mean = r.delivery_delay_mean_ns,
                events = r.trace_events,
                fp = r.trace_fingerprint,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let exec = runs
        .iter()
        .map(|run| {
            let phases = run
                .stats
                .profile
                .get()
                .iter()
                .map(|(name, nanos, _)| format!("\"{name}\": {nanos}"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                concat!(
                    "      {{\"threads\": {threads}, \"steals\": {steals}, ",
                    "\"steal_attempts\": {attempts}, \"locks_contended\": {contended}, ",
                    "\"phase_nanos\": {{ {phases} }}}}"
                ),
                threads = run.threads,
                steals = run.stats.steals,
                attempts = run.stats.steal_attempts,
                contended = run.stats.locks_contended,
                phases = phases,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        concat!(
            "  \"obs\": {{\n",
            "    \"delivery_delay\": [\n{delivery}\n    ],\n",
            "    \"exec\": [\n{exec}\n    ]\n",
            "  }}"
        ),
        delivery = delivery,
        exec = exec,
    )
}

fn parse_args() -> (Vec<usize>, Vec<CcAlgorithm>, Option<String>, String) {
    let mut threads: Vec<usize> = vec![1, 4];
    let mut threads_requested = false;
    let mut backend = cli::Backend::Sim;
    let mut ccs = vec![CcAlgorithm::NewReno];
    let mut report_prefix: Option<String> = None;
    let mut out = std::env::var("BENCH_SWEEP_OUT").unwrap_or_else(|_| "BENCH_sweep.json".into());
    let mut args = cli::CliArgs::new(
        "sweep_matrix [--backend sim] [--threads 1,4] [--cc newreno,cubic,none] \
         [--report-prefix PREFIX] [--out FILE]",
    );
    while let Some(arg) = args.next_flag() {
        match arg.as_str() {
            "--backend" => backend = cli::parse_backend(&args.value("--backend")),
            "--threads" => {
                threads = cli::parse_count_list(&args.value("--threads"), "--threads");
                threads_requested = true;
            }
            "--cc" => ccs = cli::parse_cc_list(&args.value("--cc"), "--cc"),
            "--report-prefix" => report_prefix = Some(args.value("--report-prefix")),
            "--out" => out = args.value("--out"),
            other => args.unknown(other),
        }
    }
    // The sweep's whole point is byte-identical reports across thread
    // counts — a property only the simulator has. The shared validation
    // rejects --threads with os; the sweep itself needs sim outright.
    cli::validate_backend(backend, threads_requested);
    assert!(
        backend == cli::Backend::Sim,
        "sweep_matrix is sim-only (byte-identical sweeps); use load_engine --backend os for kernel-socket runs"
    );
    cli::validate_out_path("--out", &out);
    (threads, ccs, report_prefix, out)
}

fn main() {
    let (thread_counts, ccs, report_prefix, out) = parse_args();
    let cells = full_matrix(&ccs);
    println!(
        "sweeping {} cells at threads {:?}, cc {:?} (host parallelism: {})",
        cells.len(),
        thread_counts,
        ccs.iter().map(|c| c.label()).collect::<Vec<_>>(),
        minion_exec::available_threads()
    );

    let mut runs: Vec<Run> = Vec::new();
    let mut reference: Option<String> = None;
    let mut first_reports: Option<Vec<CellReport>> = None;
    for &threads in &thread_counts {
        let t0 = Instant::now();
        let (reports, stats) = run_matrix_once_with_stats(&cells, threads);
        let wall_seconds = t0.elapsed().as_secs_f64();
        let text = canonical_report(&cells, &reports);
        // Write the report file *before* asserting equality: on divergence
        // CI's `diff -u` step then shows the exact divergent bytes instead
        // of a missing-file error.
        if let Some(prefix) = &report_prefix {
            let path = format!("{prefix}-t{threads}.txt");
            std::fs::write(&path, &text).expect("write sweep report");
            println!("wrote {path}");
        }
        match &reference {
            None => reference = Some(text),
            Some(reference) => {
                if &text != reference {
                    let hint = match &report_prefix {
                        Some(prefix) => format!("diff the {prefix}-t*.txt files"),
                        None => "re-run with --report-prefix to capture both reports".into(),
                    };
                    panic!(
                        "threads={threads} produced a different sweep report than \
                         threads={} — parallelism must not perturb results ({hint})",
                        thread_counts[0]
                    );
                }
            }
        }
        println!(
            "threads={threads}: {} cells in {:.1} ms ({:.2} cells/sec)",
            cells.len(),
            wall_seconds * 1000.0,
            cells.len() as f64 / wall_seconds.max(1e-9)
        );
        if first_reports.is_none() {
            first_reports = Some(reports);
        }
        runs.push(Run {
            threads,
            wall_seconds,
            stats,
        });
    }

    // Speedups are measured against the threads=1 run when the list has one
    // (CI's does), else against the first run.
    let baseline = runs
        .iter()
        .find(|r| r.threads == 1)
        .unwrap_or(&runs[0])
        .wall_seconds;
    let rows = runs
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"threads\": {threads},\n",
                    "      \"wall_ms\": {wall_ms:.3},\n",
                    "      \"cells_per_sec\": {cps:.3},\n",
                    "      \"speedup_vs_1thread\": {speedup:.3}\n",
                    "    }}"
                ),
                threads = r.threads,
                wall_ms = r.wall_seconds * 1000.0,
                cps = cells.len() as f64 / r.wall_seconds.max(1e-9),
                speedup = baseline / r.wall_seconds.max(1e-9),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let obs = obs_section_json(first_reports.as_deref().unwrap_or(&[]), &runs);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"sweep_matrix\",\n",
            "  \"cells\": {cells},\n",
            "  \"cc\": [{cc}],\n",
            "  \"available_parallelism\": {avail},\n",
            "  \"reports_identical\": true,\n",
            "{obs},\n",
            "  \"runs\": [\n{rows}\n  ]\n",
            "}}\n"
        ),
        cells = cells.len(),
        cc = ccs
            .iter()
            .map(|c| format!("\"{}\"", c.label()))
            .collect::<Vec<_>>()
            .join(", "),
        avail = minion_exec::available_threads(),
        obs = obs,
        rows = rows,
    );
    cli::write_output("--out", &out, &json);
    println!("wrote {out}");
}
