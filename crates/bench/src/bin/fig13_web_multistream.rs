//! Regenerates Figure 13: web page loads over pipelined HTTP/1.1 vs msTCP.
use minion_bench::{fig13, Scale, DEFAULT_SEED};

fn main() {
    let scale = Scale::from_env();
    let results = fig13::run_trace(scale.web_pages(), DEFAULT_SEED);
    let table = fig13::to_table(&results);
    print!("{}", table.to_text());
    print!("{}", table.to_csv());
}
