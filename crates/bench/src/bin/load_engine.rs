//! The engine load benchmark: drive the `flows ∈ {1, 64, 1024}` scenarios
//! through the `minion-engine` runtime and emit `BENCH_engine.json`, the
//! artifact the CI bench trajectory tracks per PR.
//!
//! Each scenario is run through [`minion_engine::verify_load`], so every
//! emitted number sits behind the exactly-once and two-run-determinism
//! gates. Wall-clock events/sec measures the runtime itself (timer wheel +
//! batched dispatch + readiness polling); goodput and sim-time events/sec
//! are virtual-time figures and therefore bit-stable across machines.
//! `allocs_per_flow` tracks the staging buffer pool's recycling
//! effectiveness (near zero when the pool works), not total process
//! allocations.
//!
//! Output path: `BENCH_engine.json` in the working directory, overridable
//! with the `BENCH_ENGINE_OUT` environment variable.

use minion_engine::{verify_load, LoadReport, LoadScenario};
use std::time::Instant;

struct Row {
    report: LoadReport,
    wall_seconds: f64,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn row_json(row: &Row) -> String {
    let r = &row.report;
    let retransmissions: u64 = r.per_flow.iter().map(|f| f.retransmissions).sum();
    let rto_fires: u64 = r.per_flow.iter().map(|f| f.rto_fires).sum();
    let events = r.engine.events();
    let events_per_wall_sec = if row.wall_seconds > 0.0 {
        (events as f64 / row.wall_seconds) as u64
    } else {
        0
    };
    format!(
        concat!(
            "    {{\n",
            "      \"label\": \"{label}\",\n",
            "      \"flows\": {flows},\n",
            "      \"records_sent\": {sent},\n",
            "      \"records_delivered\": {delivered},\n",
            "      \"total_payload_bytes\": {bytes},\n",
            "      \"completion_sim_ms\": {completion_ms:.3},\n",
            "      \"goodput_bps\": {goodput},\n",
            "      \"events\": {events},\n",
            "      \"events_per_sim_sec\": {eps_sim},\n",
            "      \"events_per_wall_sec\": {eps_wall},\n",
            "      \"wall_ms\": {wall_ms:.3},\n",
            "      \"allocs_per_flow\": {apf:.3},\n",
            "      \"pool_reuse_ratio\": {reuse:.4},\n",
            "      \"packets_sent\": {psent},\n",
            "      \"packets_delivered\": {pdeliv},\n",
            "      \"timer_fires\": {tfires},\n",
            "      \"flow_polls\": {polls},\n",
            "      \"retransmissions\": {retx},\n",
            "      \"rto_fires\": {rto},\n",
            "      \"deterministic\": true\n",
            "    }}"
        ),
        label = json_escape(&r.label),
        flows = r.flows,
        sent = r.records_sent,
        delivered = r.records_delivered,
        bytes = r.total_bytes,
        completion_ms = r.completion_us as f64 / 1000.0,
        goodput = r.goodput_bps,
        events = events,
        eps_sim = r.events_per_sim_sec,
        eps_wall = events_per_wall_sec,
        wall_ms = row.wall_seconds * 1000.0,
        apf = r.allocs_per_flow(),
        reuse = r.pool.reuse_ratio(),
        psent = r.engine.packets_sent,
        pdeliv = r.engine.packets_delivered,
        tfires = r.engine.timer_fires,
        polls = r.engine.flow_polls,
        retx = retransmissions,
        rto = rto_fires,
    )
}

fn main() {
    let scenarios = vec![
        LoadScenario::with_flows(1),
        LoadScenario::with_flows(64),
        LoadScenario::smoke_1k(),
    ];
    let mut rows = Vec::new();
    for scenario in &scenarios {
        let t0 = Instant::now();
        // Two verified runs; charge the scenario with the mean wall time so
        // events/wall-sec reflects one run.
        let report = verify_load(scenario);
        let wall_seconds = t0.elapsed().as_secs_f64() / 2.0;
        println!(
            "{}  [wall {:.1} ms/run]",
            report.summary(),
            wall_seconds * 1000.0
        );
        rows.push(Row {
            report,
            wall_seconds,
        });
    }

    let body = rows.iter().map(row_json).collect::<Vec<_>>().join(",\n");
    let json = format!("{{\n  \"bench\": \"engine_load\",\n  \"scenarios\": [\n{body}\n  ]\n}}\n");
    let out = std::env::var("BENCH_ENGINE_OUT").unwrap_or_else(|_| "BENCH_engine.json".into());
    std::fs::write(&out, &json).expect("write BENCH_engine.json");
    println!("wrote {out}");
}
