//! The engine load benchmark: drive multi-flow load scenarios through the
//! `minion-engine` runtime (sharded across the `minion-exec` executor) and
//! emit `BENCH_engine.json`, the artifact the CI bench trajectory tracks
//! per PR.
//!
//! Each scenario runs through [`minion_engine::verify_load_sharded`], so
//! every emitted number sits behind the exactly-once and two-run
//! determinism gates; the shard decomposition is fixed by the flow count,
//! so `--threads` changes wall time only, never a metric. Wall-clock
//! events/sec measures the runtime itself (timer wheel + batched dispatch +
//! readiness polling); goodput and sim-time events/sec are virtual-time
//! figures and therefore bit-stable across machines. `allocs_per_flow`
//! tracks the staging buffer pools' recycling effectiveness (near zero when
//! the pools work), not total process allocations.
//!
//! The report also carries a `"demux"` section: the measured per-lookup
//! cost of the host connection-demux table before (`BTreeMap`) and after
//! (open-addressed `stack::TupleTable`) the sharded-hosts change.
//!
//! The `"cc"` section replays the canonical lossy comparison scenario once
//! per congestion-control algorithm (`--cc`, default all of
//! newreno/cubic/none): per-algorithm goodput next to fast-recovery and
//! timeout counts under the identical loss process.
//!
//! `--backend os` additionally drives the same flow counts through the
//! OS-socket transport (`minion-osnet`): kernel TCP over loopback under an
//! edge-triggered epoll reactor, same streams and exactly-once checks as
//! the sim driver. Those rows land in an `"os"` section next to the sim
//! numbers — wall-clock goodput, events/sec, and syscalls/flow instead of
//! the sim's virtual-time figures — and gate on liveness (the scenario
//! deadline) plus a goodput floor, not on determinism. `--threads` is
//! sim-only (sharding drives simulated engines) and is rejected with os.
//!
//! The `"obs"` section is the paper's figure of merit: per-record
//! delivery-delay distributions (p50/p99/p999 and the exact integer mean,
//! in ns) for an ordered-TCP receiver vs. a uTCP receiver under the
//! canonical lossy comparison scenario
//! ([`LoadScenario::obs_comparison`]) — head-of-line blocking measured,
//! not inferred. With `--backend os` a kernel-TCP row rides along (ordered
//! baseline; loss shaping and uTCP receivers are sim-only). `--trace-out`
//! dumps the uTCP run's lifecycle trace ring (SYN, first-byte, record
//! deliveries, retransmits, RTO fires, FIN) as JSONL, closed by a
//! `{"summary":true,...}` line carrying recorded/held/dropped counts (plus
//! admitted/suppressed from the attached filters) so ring truncation is
//! visible in the dump itself. `--trace-flow N` focuses that trace on one
//! global flow index, and `--trace-kind retransmit,rto` slices it to an
//! event-kind subset; both predicates compose, and both apply to the
//! streaming path below as well.
//!
//! `--trace-stream FILE` runs the flight-recorder scenario
//! ([`LoadScenario::flight_recorder`]: 1024 flows × 64 records under 2%
//! loss — more lifecycle events than the trace ring can hold) with a
//! zero-drop streaming sink: every shard spills its slice to
//! `FILE.shardNNNNN`, the driver merges them by `(t_ns, shard)` into one
//! ordered JSONL at `FILE` (byte-identical at any `--threads`), and the
//! report gains a `"trace_stream"` section asserting `dropped == 0` while
//! the offered event count exceeds the ring cap. The `"flow_delay"`
//! section rides the same obs comparison: per-flow delivery-delay digests
//! ([`minion_engine::FlowDelayMap`]) surfacing the worst flows by p99 next
//! to the global distribution — under ordered TCP the worst flow's tail
//! strictly exceeds the global one (head-of-line blocking concentrates on
//! unlucky flows), and the driver asserts exactly that.
//!
//! The `"cc_obs"` section rides on the same per-algorithm replays as
//! `"cc"`: cwnd/ssthresh trajectory samples (virtual-time, bounded ring)
//! and recovery-duration/-depth histograms per algorithm — NewReno vs CUBIC
//! window dynamics as data, not two goodput numbers.
//!
//! Usage (one binary for CI and local runs):
//!
//! ```text
//! load_engine [--backend sim|os] [--flows 1,64,1024] [--threads N]
//!             [--cc newreno,cubic,none] [--out BENCH_engine.json]
//!             [--trace-out TRACE.jsonl] [--trace-flow N]
//!             [--trace-kind retransmit,rto] [--trace-stream TRACE.jsonl]
//! ```

use minion_bench::cli;
use minion_engine::{verify_load_sharded, KindSet, LoadReport, LoadScenario, DEFAULT_TRACE_CAP};
use minion_osnet::OsTransport;
use minion_simnet::{NodeId, SimDuration};
use minion_stack::{SocketHandle, TupleTable};
use minion_tcp::CcAlgorithm;
use std::collections::BTreeMap;
use std::time::Instant;

/// Goodput floor of the OS envelope gate, in bits/second. Loopback runs
/// orders of magnitude above this on any plausible machine; the floor only
/// exists to turn "the backend silently crawled" into a failure instead of
/// a quietly absurd JSON row. Liveness (every flow completes before the
/// scenario deadline) is asserted inside the driver itself.
const OS_GOODPUT_FLOOR_BPS: u64 = 1_000_000;

struct Row {
    report: LoadReport,
    threads: usize,
    shards: usize,
    wall_seconds: f64,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn row_json(row: &Row) -> String {
    let r = &row.report;
    let retransmissions: u64 = r.per_flow.iter().map(|f| f.retransmissions).sum();
    let rto_fires: u64 = r.per_flow.iter().map(|f| f.rto_fires).sum();
    let events = r.engine.events();
    let events_per_wall_sec = if row.wall_seconds > 0.0 {
        (events as f64 / row.wall_seconds) as u64
    } else {
        0
    };
    format!(
        concat!(
            "    {{\n",
            "      \"label\": \"{label}\",\n",
            "      \"flows\": {flows},\n",
            "      \"shards\": {shards},\n",
            "      \"threads\": {threads},\n",
            "      \"records_sent\": {sent},\n",
            "      \"records_delivered\": {delivered},\n",
            "      \"total_payload_bytes\": {bytes},\n",
            "      \"completion_sim_ms\": {completion_ms:.3},\n",
            "      \"goodput_bps\": {goodput},\n",
            "      \"events\": {events},\n",
            "      \"events_per_sim_sec\": {eps_sim},\n",
            "      \"events_per_wall_sec\": {eps_wall},\n",
            "      \"wall_ms\": {wall_ms:.3},\n",
            "      \"allocs_per_flow\": {apf:.3},\n",
            "      \"pool_reuse_ratio\": {reuse:.4},\n",
            "      \"packets_sent\": {psent},\n",
            "      \"packets_delivered\": {pdeliv},\n",
            "      \"timer_fires\": {tfires},\n",
            "      \"flow_polls\": {polls},\n",
            "      \"retransmissions\": {retx},\n",
            "      \"rto_fires\": {rto},\n",
            "      \"deterministic\": true\n",
            "    }}"
        ),
        label = json_escape(&r.label),
        flows = r.flows,
        shards = row.shards,
        threads = row.threads,
        sent = r.records_sent,
        delivered = r.records_delivered,
        bytes = r.total_bytes,
        completion_ms = r.completion_us as f64 / 1000.0,
        goodput = r.goodput_bps,
        events = events,
        eps_sim = r.events_per_sim_sec,
        eps_wall = events_per_wall_sec,
        wall_ms = row.wall_seconds * 1000.0,
        apf = r.allocs_per_flow(),
        reuse = r.pool.reuse_ratio(),
        psent = r.engine.packets_sent,
        pdeliv = r.engine.packets_delivered,
        tfires = r.engine.timer_fires,
        polls = r.engine.flow_polls,
        retx = retransmissions,
        rto = rto_fires,
    )
}

/// Measure the connection-demux lookup cost before (`BTreeMap`, the pre-
/// sharded-hosts structure) and after (open-addressed [`TupleTable`]) under
/// a load-scenario-shaped key population.
fn demux_bench_json() -> String {
    const ENTRIES: u32 = 4096;
    const PASSES: u32 = 256;
    let keys: Vec<(u16, NodeId, u16)> = (0..ENTRIES)
        .map(|i| (40_000u16.wrapping_add(i as u16), NodeId(i / 1024), 7000))
        .collect();
    let mut btree: BTreeMap<(u16, NodeId, u16), SocketHandle> = BTreeMap::new();
    let mut table = TupleTable::new();
    for (i, k) in keys.iter().enumerate() {
        btree.insert(*k, SocketHandle(i as u32));
        table.insert(*k, SocketHandle(i as u32));
    }
    // Probe in a shuffled-but-deterministic order so neither structure gets
    // a sequential-access advantage.
    let order: Vec<usize> = (0..ENTRIES as u64)
        .map(|i| (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % ENTRIES as u64) as usize)
        .collect();

    let t0 = Instant::now();
    let mut hits = 0u64;
    for _ in 0..PASSES {
        for &i in &order {
            if std::hint::black_box(btree.get(&keys[i])).is_some() {
                hits += 1;
            }
        }
    }
    let btree_ns = t0.elapsed().as_nanos() as f64 / (PASSES as u64 * ENTRIES as u64) as f64;

    let t1 = Instant::now();
    for _ in 0..PASSES {
        for &i in &order {
            if std::hint::black_box(table.get(&keys[i])).is_some() {
                hits += 1;
            }
        }
    }
    let table_ns = t1.elapsed().as_nanos() as f64 / (PASSES as u64 * ENTRIES as u64) as f64;
    assert_eq!(hits, 2 * PASSES as u64 * ENTRIES as u64, "every probe hits");

    println!(
        "demux lookup ({ENTRIES} entries): BTreeMap {btree_ns:.1} ns -> \
         open-addressed {table_ns:.1} ns ({:.2}x)",
        btree_ns / table_ns.max(0.001)
    );
    format!(
        concat!(
            "  \"demux\": {{\n",
            "    \"entries\": {entries},\n",
            "    \"lookups_each\": {lookups},\n",
            "    \"btreemap_ns_per_lookup\": {before:.2},\n",
            "    \"open_addressed_ns_per_lookup\": {after:.2},\n",
            "    \"speedup\": {speedup:.2}\n",
            "  }}"
        ),
        entries = ENTRIES,
        lookups = PASSES as u64 * ENTRIES as u64,
        before = btree_ns,
        after = table_ns,
        speedup = btree_ns / table_ns.max(0.001),
    )
}

struct Args {
    flows: Vec<usize>,
    threads: usize,
    backend: cli::Backend,
    ccs: Vec<CcAlgorithm>,
    out: String,
    trace_out: Option<String>,
    trace_flow: Option<u32>,
    trace_kinds: KindSet,
    trace_stream: Option<String>,
}

fn parse_args() -> Args {
    let mut flows: Vec<usize> = vec![1, 64, 1024];
    let mut threads: Option<usize> = None;
    let mut backend = cli::Backend::Sim;
    // The "cc" section compares algorithms; by default it compares all of
    // them (--cc narrows the list, e.g. for a quick single-algorithm run).
    let mut ccs = CcAlgorithm::ALL.to_vec();
    let mut out = std::env::var("BENCH_ENGINE_OUT").unwrap_or_else(|_| "BENCH_engine.json".into());
    let mut trace_out: Option<String> = None;
    let mut trace_flow: Option<u32> = None;
    let mut trace_kinds = KindSet::all();
    let mut trace_stream: Option<String> = None;
    let mut args = cli::CliArgs::new(
        "load_engine [--backend sim|os] [--flows 1,64,1024] [--threads N] \
         [--cc newreno,cubic,none] [--out FILE] [--trace-out FILE] [--trace-flow N] \
         [--trace-kind retransmit,rto] [--trace-stream FILE]",
    );
    while let Some(arg) = args.next_flag() {
        match arg.as_str() {
            "--backend" => backend = cli::parse_backend(&args.value("--backend")),
            "--flows" => flows = cli::parse_count_list(&args.value("--flows"), "--flows"),
            "--threads" => threads = Some(cli::parse_count(&args.value("--threads"), "--threads")),
            "--cc" => ccs = cli::parse_cc_list(&args.value("--cc"), "--cc"),
            "--out" => out = args.value("--out"),
            "--trace-out" => trace_out = Some(args.value("--trace-out")),
            // Flow indices are 0-based, so 0 is a valid focus (unlike the
            // count flags, which require >= 1).
            "--trace-flow" => {
                let v = args.value("--trace-flow");
                trace_flow =
                    Some(v.parse::<u32>().unwrap_or_else(|_| {
                        panic!("--trace-flow expects a flow index, got {v:?}")
                    }));
            }
            "--trace-kind" => {
                trace_kinds = cli::parse_trace_kinds(&args.value("--trace-kind"), "--trace-kind")
            }
            "--trace-stream" => trace_stream = Some(args.value("--trace-stream")),
            other => args.unknown(other),
        }
    }
    cli::validate_backend(backend, threads.is_some());
    // Output paths are validated *now*, so a typo'd directory fails in
    // milliseconds with the flag named, not after the whole bench ran.
    cli::validate_out_path("--out", &out);
    if let Some(path) = &trace_out {
        cli::validate_out_path("--trace-out", path);
    }
    // The stream path also names the per-shard spill files, which are
    // created mid-run — a missing directory must fail here, not after the
    // first shard finishes.
    if let Some(path) = &trace_stream {
        cli::validate_out_path("--trace-stream", path);
    }
    Args {
        flows,
        threads: threads.unwrap_or(1),
        backend,
        ccs,
        out,
        trace_out,
        trace_flow,
        trace_kinds,
        trace_stream,
    }
}

/// One OS-backend row: the scenario replayed against kernel TCP over
/// loopback. All figures are wall-clock.
struct OsRow {
    report: LoadReport,
    syscalls: u64,
    wall_seconds: f64,
    /// Readiness-edges-per-`epoll_wait` distribution (batching profile),
    /// captured before the transport is dropped.
    wait_batch: minion_engine::Histogram,
}

/// Run `flows` concurrent flows through [`OsTransport`] and gate the result
/// on the goodput floor (liveness is asserted inside the driver).
fn run_os(flows: usize) -> OsRow {
    let scenario = LoadScenario {
        flows,
        // Kernel TCP delivers in order; the link-shaping fields (rtt, rate,
        // queue, loss) describe the simulated bottleneck and are ignored.
        receiver_utcp: false,
        // The deadline is a wall-clock liveness budget on this backend.
        deadline: SimDuration::from_secs(60),
        ..LoadScenario::default()
    };
    let mut transport = OsTransport::new();
    let t0 = Instant::now();
    let report = scenario.run_on(&mut transport);
    let wall_seconds = t0.elapsed().as_secs_f64();
    let syscalls = minion_engine::Transport::syscalls(&transport);
    let wait_batch = transport.wait_batch_histogram().clone();
    assert!(
        report.goodput_bps >= OS_GOODPUT_FLOOR_BPS,
        "[{}] os goodput {} bps below the {} bps envelope floor",
        report.label,
        report.goodput_bps,
        OS_GOODPUT_FLOOR_BPS
    );
    println!(
        "{}  [os backend, {} syscalls ({:.1}/flow), wall {:.1} ms]",
        report.summary(),
        syscalls,
        syscalls as f64 / flows.max(1) as f64,
        wall_seconds * 1000.0
    );
    OsRow {
        report,
        syscalls,
        wall_seconds,
        wait_batch,
    }
}

fn os_row_json(row: &OsRow) -> String {
    let r = &row.report;
    let events = r.engine.events();
    let events_per_wall_sec = if row.wall_seconds > 0.0 {
        (events as f64 / row.wall_seconds) as u64
    } else {
        0
    };
    format!(
        concat!(
            "    {{\n",
            "      \"label\": \"{label}\",\n",
            "      \"flows\": {flows},\n",
            "      \"records_sent\": {sent},\n",
            "      \"records_delivered\": {delivered},\n",
            "      \"total_payload_bytes\": {bytes},\n",
            "      \"completion_wall_ms\": {completion_ms:.3},\n",
            "      \"goodput_bps\": {goodput},\n",
            "      \"events\": {events},\n",
            "      \"events_per_sec\": {eps},\n",
            "      \"syscalls\": {syscalls},\n",
            "      \"syscalls_per_flow\": {spf:.1},\n",
            "      \"wait_batches\": {waits},\n",
            "      \"wait_batch_p50\": {wait_p50},\n",
            "      \"wait_batch_p99\": {wait_p99},\n",
            "      \"wait_batch_max\": {wait_max},\n",
            "      \"wall_ms\": {wall_ms:.3},\n",
            "      \"deterministic\": false\n",
            "    }}"
        ),
        label = json_escape(&r.label),
        flows = r.flows,
        sent = r.records_sent,
        delivered = r.records_delivered,
        bytes = r.total_bytes,
        completion_ms = r.completion_us as f64 / 1000.0,
        goodput = r.goodput_bps,
        events = events,
        eps = events_per_wall_sec,
        syscalls = row.syscalls,
        spf = row.syscalls as f64 / r.flows.max(1) as f64,
        waits = row.wait_batch.count(),
        wait_p50 = row.wait_batch.p50(),
        wait_p99 = row.wait_batch.p99(),
        wait_max = row.wait_batch.max(),
        wall_ms = row.wall_seconds * 1000.0,
    )
}

/// One row of the `"obs"` section: the delivery-delay distribution and
/// lifecycle counters of one comparison run, plus the (wall-clock,
/// non-deterministic) phase breakdown of its event loop.
fn obs_row_json(receiver: &str, report: &LoadReport) -> String {
    use minion_engine::obs::{C_CHUNKS_OUT_OF_ORDER, C_RETRANSMIT_EDGES, C_RTO_EDGES};
    let d = &report.obs.delivery_delay;
    let phases = report
        .phases
        .get()
        .iter()
        .map(|(name, nanos, _)| format!("\"{name}\": {nanos}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        concat!(
            "      {{\n",
            "        \"receiver\": \"{receiver}\",\n",
            "        \"label\": \"{label}\",\n",
            "        \"delivery_delay_count\": {count},\n",
            "        \"delivery_delay_mean_ns\": {mean},\n",
            "        \"delivery_delay_p50_ns\": {p50},\n",
            "        \"delivery_delay_p99_ns\": {p99},\n",
            "        \"delivery_delay_p999_ns\": {p999},\n",
            "        \"delivery_delay_max_ns\": {max},\n",
            "        \"rto_wait_count\": {rto_waits},\n",
            "        \"rto_wait_p99_ns\": {rto_p99},\n",
            "        \"pool_dwell_p99_ns\": {dwell_p99},\n",
            "        \"chunks_out_of_order\": {ooo},\n",
            "        \"retransmit_edges\": {retx},\n",
            "        \"rto_edges\": {rto},\n",
            "        \"trace_events\": {trace_events},\n",
            "        \"trace_fingerprint\": \"{trace_fp:#018x}\",\n",
            "        \"phase_nanos\": {{ {phases} }}\n",
            "      }}"
        ),
        receiver = receiver,
        label = json_escape(&report.label),
        count = d.count(),
        mean = d.mean(),
        p50 = d.p50(),
        p99 = d.p99(),
        p999 = d.p999(),
        max = d.max(),
        rto_waits = report.obs.rto_wait.count(),
        rto_p99 = report.obs.rto_wait.p99(),
        dwell_p99 = report.obs.pool_dwell.p99(),
        ooo = report.obs.counters.get(C_CHUNKS_OUT_OF_ORDER),
        retx = report.obs.counters.get(C_RETRANSMIT_EDGES),
        rto = report.obs.counters.get(C_RTO_EDGES),
        trace_events = report.obs.trace.recorded(),
        trace_fp = report.obs.trace_fingerprint(),
        phases = phases,
    )
}

/// How many worst-flows-by-p99 rows a `"flow_delay"` row embeds.
const FLOW_DELAY_TOP_K: usize = 8;

/// One row of the `"flow_delay"` section: one receiver's per-flow
/// delivery-delay attribution — the global distribution next to the
/// worst flows by p99 (the top-K of the bounded
/// [`minion_engine::FlowDelayMap`]).
fn flow_delay_row_json(receiver: &str, report: &LoadReport) -> String {
    let map = &report.obs.flow_delay;
    let global = &report.obs.delivery_delay;
    let top = map
        .top_k(FLOW_DELAY_TOP_K)
        .iter()
        .map(|(flow, d)| {
            format!(
                "          {{ \"flow\": {flow}, \"count\": {}, \"p50_ns\": {}, \
                 \"p99_ns\": {}, \"max_ns\": {} }}",
                d.count(),
                d.p50(),
                d.p99(),
                d.max()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        concat!(
            "      {{\n",
            "        \"receiver\": \"{receiver}\",\n",
            "        \"flows_tracked\": {tracked},\n",
            "        \"overflow_samples\": {overflow},\n",
            "        \"total_samples\": {total},\n",
            "        \"global_p50_ns\": {gp50},\n",
            "        \"global_p99_ns\": {gp99},\n",
            "        \"global_max_ns\": {gmax},\n",
            "        \"worst_flows_by_p99\": [\n{top}\n        ]\n",
            "      }}"
        ),
        receiver = receiver,
        tracked = map.len(),
        overflow = map.overflow_samples(),
        total = map.total_samples(),
        gp50 = global.p50(),
        gp99 = global.p99(),
        gmax = global.max(),
        top = top,
    )
}

/// Run the canonical ordered-vs-unordered comparison
/// ([`LoadScenario::obs_comparison`]) and build the `"obs"` and
/// `"flow_delay"` sections: sim rows for both receivers (deterministic,
/// sharded at `threads`), plus a kernel-TCP row when the OS backend was
/// requested. Returns both section JSONs and the uTCP run's report (whose
/// trace `--trace-out` dumps, sliced by `trace_flow` / `trace_kinds` when
/// given).
fn obs_section(
    threads: usize,
    backend: cli::Backend,
    trace_flow: Option<u32>,
    trace_kinds: KindSet,
) -> (String, String, LoadReport) {
    let tcp = LoadScenario::obs_comparison(false).run_sharded(threads);
    let utcp = LoadScenario {
        trace_flow,
        trace_kinds,
        ..LoadScenario::obs_comparison(true)
    }
    .run_sharded(threads);
    println!(
        "obs: delivery delay under loss ({} records): ordered mean {:.3} ms p99 {:.3} ms \
         p999 {:.3} ms | unordered mean {:.3} ms p99 {:.3} ms p999 {:.3} ms",
        tcp.obs.delivery_delay.count(),
        tcp.obs.delivery_delay.mean() as f64 / 1e6,
        tcp.obs.delivery_delay.p99() as f64 / 1e6,
        tcp.obs.delivery_delay.p999() as f64 / 1e6,
        utcp.obs.delivery_delay.mean() as f64 / 1e6,
        utcp.obs.delivery_delay.p99() as f64 / 1e6,
        utcp.obs.delivery_delay.p999() as f64 / 1e6,
    );
    assert!(
        tcp.obs.delivery_delay.p99() > utcp.obs.delivery_delay.p99(),
        "ordered-TCP p99 must strictly exceed uTCP p99 under the canonical loss scenario"
    );
    // Head-of-line blocking is not spread evenly: the unlucky flows soak up
    // the stalls, so the worst flow's p99 must sit strictly above the
    // all-flows p99 on the ordered receiver. If this ever fails, the
    // per-flow attribution stopped attributing.
    let worst = tcp.obs.flow_delay.top_k(1);
    assert!(
        !worst.is_empty() && worst[0].1.p99() > tcp.obs.delivery_delay.p99(),
        "worst-flow p99 ({}) must strictly exceed the global p99 ({}) under ordered TCP",
        worst.first().map(|(_, d)| d.p99()).unwrap_or(0),
        tcp.obs.delivery_delay.p99()
    );
    println!(
        "flow_delay: ordered worst flow #{} p99 {:.3} ms vs global p99 {:.3} ms \
         ({} flows tracked)",
        worst[0].0,
        worst[0].1.p99() as f64 / 1e6,
        tcp.obs.delivery_delay.p99() as f64 / 1e6,
        tcp.obs.flow_delay.len(),
    );
    let rows = [obs_row_json("tcp", &tcp), obs_row_json("utcp", &utcp)];
    let os_rows = if backend == cli::Backend::Os {
        // Kernel TCP over loopback: the ordered baseline with real clocks.
        // Loss shaping and uTCP receivers are sim-only.
        let scenario = LoadScenario {
            receiver_utcp: false,
            deadline: SimDuration::from_secs(60),
            ..LoadScenario::obs_comparison(false)
        };
        let report = scenario.run_on(&mut OsTransport::new());
        format!(",\n    \"os\": [\n{}\n    ]", obs_row_json("tcp", &report))
    } else {
        String::new()
    };
    let scenario = LoadScenario::obs_comparison(true);
    let section = format!(
        concat!(
            "  \"obs\": {{\n",
            "    \"flows\": {flows},\n",
            "    \"records_per_flow\": {rpf},\n",
            "    \"record_len\": {len},\n",
            "    \"loss\": \"bernoulli 2%\",\n",
            "    \"sim\": [\n{sim}\n    ]{os}\n",
            "  }}"
        ),
        flows = scenario.flows,
        rpf = scenario.records_per_flow,
        len = scenario.record_len,
        sim = rows.join(",\n"),
        os = os_rows,
    );
    let flow_delay = format!(
        concat!(
            "  \"flow_delay\": {{\n",
            "    \"cap\": {cap},\n",
            "    \"top_k\": {k},\n",
            "    \"sim\": [\n{rows}\n    ]\n",
            "  }}"
        ),
        cap = tcp.obs.flow_delay.cap(),
        k = FLOW_DELAY_TOP_K,
        rows = [
            flow_delay_row_json("tcp", &tcp),
            flow_delay_row_json("utcp", &utcp)
        ]
        .join(",\n"),
    );
    (section, flow_delay, utcp)
}

/// Run the flight-recorder scenario with the zero-drop streaming sink and
/// build the `"trace_stream"` section: 1024 flows × 64 records under 2%
/// loss spill per-shard JSONL slices merged into one `(t_ns, shard)`-ordered
/// file at `path`. The section is the stream's own accounting — and the
/// driver gates on the two properties the ring cannot offer: nothing
/// dropped, and more events offered than the ring holds.
fn trace_stream_section(path: &str, kinds: KindSet, threads: usize) -> String {
    let scenario = LoadScenario {
        trace_stream: Some(path.to_string()),
        trace_kinds: kinds,
        ..LoadScenario::flight_recorder(true)
    };
    let shards = scenario.shard_count();
    let flows = scenario.flows;
    let rpf = scenario.records_per_flow;
    let t0 = Instant::now();
    let report = scenario.run_sharded(threads);
    let wall_seconds = t0.elapsed().as_secs_f64();
    let stream = &report.obs.stream;
    let filter = &report.obs.trace_filter;
    let offered = filter.admitted + filter.suppressed;
    assert_eq!(
        stream.dropped, 0,
        "the streaming sink must never drop an admitted event"
    );
    assert_eq!(
        stream.emitted, filter.admitted,
        "every admitted event reaches the stream (trailers are not events)"
    );
    assert!(
        offered > DEFAULT_TRACE_CAP as u64,
        "the flight-recorder run must offer more events ({offered}) than the \
         trace ring holds ({DEFAULT_TRACE_CAP}); otherwise it proves nothing"
    );
    println!(
        "trace stream: wrote {path} ({} events from {} offered across {shards} shard(s); \
         {} suppressed by the kind/flow slice; ring cap {DEFAULT_TRACE_CAP}; wall {:.1} ms)",
        filter.admitted,
        offered,
        filter.suppressed,
        wall_seconds * 1000.0
    );
    format!(
        concat!(
            "  \"trace_stream\": {{\n",
            "    \"path\": \"{path}\",\n",
            "    \"flows\": {flows},\n",
            "    \"records_per_flow\": {rpf},\n",
            "    \"shards\": {shards},\n",
            "    \"threads\": {threads},\n",
            "    \"kinds\": \"{kinds}\",\n",
            "    \"offered\": {offered},\n",
            "    \"admitted\": {admitted},\n",
            "    \"suppressed\": {suppressed},\n",
            "    \"emitted\": {emitted},\n",
            "    \"dropped\": {dropped},\n",
            "    \"flushes\": {flushes},\n",
            "    \"ring_cap\": {cap},\n",
            "    \"wall_ms\": {wall_ms:.3}\n",
            "  }}"
        ),
        path = json_escape(path),
        flows = flows,
        rpf = rpf,
        shards = shards,
        threads = threads,
        kinds = kinds.labels(),
        offered = offered,
        admitted = filter.admitted,
        suppressed = filter.suppressed,
        emitted = stream.emitted,
        dropped = stream.dropped,
        flushes = stream.flushes,
        cap = DEFAULT_TRACE_CAP,
        wall_ms = wall_seconds * 1000.0,
    )
}

/// How many cwnd/ssthresh trajectory samples a `"cc_obs"` row embeds (the
/// tail of the merged ring; the full ring holds up to
/// `DEFAULT_CC_SAMPLE_CAP` — counts in the row say what was elided).
const CC_OBS_TRAJECTORY_ROWS: usize = 64;

/// One `"cc_obs"` row: the window telemetry of one algorithm's replay —
/// trajectory ring counts, cwnd distribution, and recovery-episode
/// duration/depth histograms.
fn cc_obs_row_json(algo: &str, report: &LoadReport) -> String {
    let cc = &report.obs.cc_obs;
    let held = cc.len();
    let trajectory = cc
        .samples()
        .skip(held.saturating_sub(CC_OBS_TRAJECTORY_ROWS))
        .map(|s| format!("        {}", s.to_json()))
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        concat!(
            "    {{\n",
            "      \"algorithm\": \"{algo}\",\n",
            "      \"cwnd_samples\": {recorded},\n",
            "      \"cwnd_samples_held\": {held},\n",
            "      \"cwnd_samples_dropped\": {dropped},\n",
            "      \"cwnd_p50_bytes\": {cwnd_p50},\n",
            "      \"cwnd_p99_bytes\": {cwnd_p99},\n",
            "      \"cwnd_max_bytes\": {cwnd_max},\n",
            "      \"recovery_episodes\": {episodes},\n",
            "      \"recovery_duration_p50_ns\": {dur_p50},\n",
            "      \"recovery_duration_p99_ns\": {dur_p99},\n",
            "      \"recovery_duration_max_ns\": {dur_max},\n",
            "      \"recovery_cuts\": {cuts},\n",
            "      \"recovery_depth_p99_bytes\": {depth_p99},\n",
            "      \"trajectory_tail\": [\n{trajectory}\n      ]\n",
            "    }}"
        ),
        algo = algo,
        recorded = cc.recorded(),
        held = held,
        dropped = cc.dropped(),
        cwnd_p50 = cc.cwnd_hist().p50(),
        cwnd_p99 = cc.cwnd_hist().p99(),
        cwnd_max = cc.cwnd_hist().max(),
        episodes = cc.recovery_duration().count(),
        dur_p50 = cc.recovery_duration().p50(),
        dur_p99 = cc.recovery_duration().p99(),
        dur_max = cc.recovery_duration().max(),
        cuts = cc.recovery_depth().count(),
        depth_p99 = cc.recovery_depth().p99(),
        trajectory = trajectory,
    )
}

/// The `"cc"` and `"cc_obs"` sections: the canonical lossy comparison
/// scenario ([`LoadScenario::obs_comparison`], uTCP receiver) replayed once
/// per congestion-control algorithm, each run behind the usual two-run
/// determinism gate. `"cc"` is goodput next to fast-recovery and timeout
/// counts — how each sender recovers from the identical loss process —
/// and `"cc_obs"` is the same runs' window telemetry: cwnd/ssthresh
/// trajectories and recovery-episode histograms per algorithm.
fn cc_sections(ccs: &[CcAlgorithm], threads: usize) -> (String, String) {
    let mut rows = Vec::new();
    let mut obs_rows = Vec::new();
    for &cc in ccs {
        let scenario = LoadScenario {
            cc,
            ..LoadScenario::obs_comparison(true)
        };
        let report = verify_load_sharded(&scenario, threads);
        let fast_retransmits: u64 = report.per_flow.iter().map(|f| f.fast_retransmits).sum();
        let retransmissions: u64 = report.per_flow.iter().map(|f| f.retransmissions).sum();
        let rto_fires: u64 = report.per_flow.iter().map(|f| f.rto_fires).sum();
        println!(
            "cc={}: goodput {:.2} Mbit/s, {} fast recoveries, {} retransmissions, {} RTOs, \
             {} cwnd samples, {} recovery episodes",
            cc.label(),
            report.goodput_bps as f64 / 1e6,
            fast_retransmits,
            retransmissions,
            rto_fires,
            report.obs.cc_obs.recorded(),
            report.obs.cc_obs.recovery_duration().count(),
        );
        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"algorithm\": \"{algo}\",\n",
                "      \"label\": \"{label}\",\n",
                "      \"goodput_bps\": {goodput},\n",
                "      \"completion_sim_ms\": {completion_ms:.3},\n",
                "      \"fast_retransmits\": {fast},\n",
                "      \"retransmissions\": {retx},\n",
                "      \"rto_fires\": {rto},\n",
                "      \"deterministic\": true\n",
                "    }}"
            ),
            algo = cc.label(),
            label = json_escape(&report.label),
            goodput = report.goodput_bps,
            completion_ms = report.completion_us as f64 / 1000.0,
            fast = fast_retransmits,
            retx = retransmissions,
            rto = rto_fires,
        ));
        obs_rows.push(cc_obs_row_json(cc.label(), &report));
    }
    (
        format!("  \"cc\": [\n{}\n  ]", rows.join(",\n")),
        format!("  \"cc_obs\": [\n{}\n  ]", obs_rows.join(",\n")),
    )
}

fn main() {
    let args = parse_args();
    let (flows, threads, backend, out) = (args.flows, args.threads, args.backend, args.out);
    let mut rows = Vec::new();
    for &f in &flows {
        let scenario = LoadScenario::with_flows(f);
        let shards = scenario.shard_count();
        let t0 = Instant::now();
        // Two verified runs; charge the scenario with the mean wall time so
        // events/wall-sec reflects one run.
        let report = verify_load_sharded(&scenario, threads);
        let wall_seconds = t0.elapsed().as_secs_f64() / 2.0;
        println!(
            "{}  [{} shard(s) on {} thread(s), wall {:.1} ms/run]",
            report.summary(),
            shards,
            threads,
            wall_seconds * 1000.0
        );
        rows.push(Row {
            report,
            threads,
            shards,
            wall_seconds,
        });
    }

    // The OS backend rides along *in addition to* the sim rows: the point
    // of the section is kernel numbers next to sim numbers for the same
    // workload, in the same file.
    let os_section = if backend == cli::Backend::Os {
        let os_rows: Vec<OsRow> = flows.iter().map(|&f| run_os(f)).collect();
        let body = os_rows
            .iter()
            .map(os_row_json)
            .collect::<Vec<_>>()
            .join(",\n");
        format!("  \"os\": [\n{body}\n  ],\n")
    } else {
        String::new()
    };

    // The head-of-line-blocking comparison: the figure the paper is about.
    let (obs, flow_delay, utcp_report) =
        obs_section(threads, backend, args.trace_flow, args.trace_kinds);
    if let Some(path) = &args.trace_out {
        let filter = &utcp_report.obs.trace_filter;
        let jsonl = utcp_report
            .obs
            .trace
            .to_jsonl_with_summary(filter.admitted, filter.suppressed);
        cli::write_output("--trace-out", path, &jsonl);
        if filter.flow.is_some() || !filter.kinds.is_all() {
            println!(
                "wrote {path} ({} trace events; sliced to flow {:?} kinds {}: \
                 {} admitted, {} suppressed)",
                utcp_report.obs.trace.recorded(),
                filter.flow,
                filter.kinds.labels(),
                filter.admitted,
                filter.suppressed
            );
        } else {
            println!(
                "wrote {path} ({} trace events)",
                utcp_report.obs.trace.recorded()
            );
        }
    }

    // The flight recorder: every lifecycle event on disk, not a ring's
    // worth. Opt-in (--trace-stream) because it writes a multi-megabyte
    // artifact.
    let trace_stream = args
        .trace_stream
        .as_deref()
        .map(|path| trace_stream_section(path, args.trace_kinds, threads));

    // The congestion-control comparison: same lossy workload, each sender.
    let (cc, cc_obs) = cc_sections(&args.ccs, threads);

    let body = rows.iter().map(row_json).collect::<Vec<_>>().join(",\n");
    let demux = demux_bench_json();
    let stream_section = trace_stream.map(|s| format!("{s},\n")).unwrap_or_default();
    let json = format!(
        "{{\n  \"bench\": \"engine_load\",\n{demux},\n{obs},\n{flow_delay},\n{stream_section}{cc},\n{cc_obs},\n{os_section}  \"scenarios\": [\n{body}\n  ]\n}}\n"
    );
    cli::write_output("--out", &out, &json);
    println!("wrote {out}");
}
