//! # minion-bench
//!
//! The evaluation harness: one module per figure/table of the paper's §8,
//! each exposing a `run*` function that executes the experiment in the
//! simulator and returns a [`minion_simnet::Table`] with the same rows or
//! series the paper plots. Binaries under `src/bin/` print one figure each;
//! the `figures` bench target regenerates everything, and `microbench` holds
//! Criterion microbenchmarks of the hot paths (COBS codec, TLS record
//! processing, uTLS scanning, TCP segment handling).
//!
//! Experiment sizes default to "quick" parameters so the whole suite runs in
//! minutes; set `MINION_FULL=1` to use paper-scale parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod fig05;
pub mod fig06;
pub mod fig10;
pub mod fig13;
pub mod table1;
pub mod voip_experiments;
pub mod vpn_experiments;

use minion_simnet::SimDuration;

/// Experiment scale: quick (CI-friendly) or full (closer to paper scale).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small parameters, minutes of wall-clock for the whole suite.
    Quick,
    /// Paper-scale parameters (tens of minutes).
    Full,
}

impl Scale {
    /// Read the scale from the `MINION_FULL` environment variable.
    pub fn from_env() -> Scale {
        if std::env::var("MINION_FULL")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Bytes for bulk/CPU transfers.
    pub fn transfer_bytes(self) -> u64 {
        match self {
            Scale::Quick => 1_500_000,
            Scale::Full => 30_000_000,
        }
    }

    /// VoIP call length for figures 7/8.
    pub fn voip_duration(self) -> SimDuration {
        match self {
            Scale::Quick => SimDuration::from_secs(30),
            Scale::Full => SimDuration::from_secs(120),
        }
    }

    /// Minutes for the figure 9 progressive-contention call.
    pub fn voip_minutes(self) -> u64 {
        match self {
            Scale::Quick => 2,
            Scale::Full => 4,
        }
    }

    /// Duration of each VPN run.
    pub fn vpn_duration(self) -> SimDuration {
        match self {
            Scale::Quick => SimDuration::from_secs(20),
            Scale::Full => SimDuration::from_secs(120),
        }
    }

    /// Pages in the web trace.
    pub fn web_pages(self) -> usize {
        match self {
            Scale::Quick => 9,
            Scale::Full => 60,
        }
    }

    /// Messages for the prioritization experiment.
    pub fn priority_messages(self) -> usize {
        match self {
            Scale::Quick => 1500,
            Scale::Full => 8000,
        }
    }
}

/// Default seed used by the figure binaries.
pub const DEFAULT_SEED: u64 = 42;
