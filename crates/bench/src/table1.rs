//! Table 1: implementation complexity (§8.6).
//!
//! The paper reports the size of the uTCP kernel delta, the uCOBS library,
//! and the uTLS delta to OpenSSL, alongside native out-of-order transports
//! for comparison. This reproduction reports the analogous quantities for
//! its own crates: the lines implementing the uTCP extensions within the TCP
//! crate, the COBS/uCOBS code, and the uTLS receiver within the TLS crate,
//! plus the full size of each substrate.

use minion_simnet::Table;
use std::path::{Path, PathBuf};

/// Count non-blank, non-comment lines of Rust in a file.
pub fn count_loc(path: &Path) -> u64 {
    let Ok(content) = std::fs::read_to_string(path) else {
        return 0;
    };
    content
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
        .count() as u64
}

/// Count lines of Rust across a crate's `src` directory.
pub fn count_crate_loc(src_dir: &Path) -> u64 {
    let mut total = 0;
    let mut stack = vec![src_dir.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                total += count_loc(&path);
            }
        }
    }
    total
}

/// Locate the workspace root (the directory containing `crates/`).
pub fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    // crates/bench -> crates -> workspace root
    dir.pop();
    dir.pop();
    dir
}

/// Build the Table 1 analogue for this repository.
pub fn run() -> Table {
    let root = workspace_root();
    let crate_loc = |name: &str| count_crate_loc(&root.join("crates").join(name).join("src"));
    let file_loc = |rel: &str| count_loc(&root.join(rel));

    let tcp_total = crate_loc("tcp");
    // The uTCP-specific pieces: send-buffer priority machinery and the
    // unordered receive path live in these files.
    let utcp_delta = file_loc("crates/tcp/src/sendbuf.rs")
        + file_loc("crates/tcp/src/recvbuf.rs")
        + file_loc("crates/tcp/src/delivered.rs");
    let tls_total = crate_loc("tls");
    let utls_delta = file_loc("crates/tls/src/utls.rs");

    let mut table = Table::new(
        "Table 1: implementation size of this reproduction (non-blank, non-comment LoC)",
        &["component", "lines"],
    );
    let rows: Vec<(&str, u64)> = vec![
        ("tcp substrate (minion-tcp, total)", tcp_total),
        ("  of which uTCP buffer/delivery extensions", utcp_delta),
        ("uCOBS framing (minion-cobs)", crate_loc("cobs")),
        ("crypto substrate (minion-crypto)", crate_loc("crypto")),
        ("TLS record layer + uTLS (minion-tls, total)", tls_total),
        ("  of which the uTLS out-of-order receiver", utls_delta),
        ("Minion endpoints (minion-core)", crate_loc("core")),
        ("msTCP (minion-mstcp)", crate_loc("mstcp")),
        ("network simulator (minion-simnet)", crate_loc("simnet")),
        ("host stack (minion-stack)", crate_loc("stack")),
        ("evaluation apps (minion-apps)", crate_loc("apps")),
        ("benchmark harness (minion-bench)", crate_loc("bench")),
    ];
    for (name, loc) in rows {
        table.add_row(vec![name.to_string(), loc.to_string()]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_counts_are_positive_and_consistent() {
        let root = workspace_root();
        assert!(root.join("crates").join("tcp").exists(), "root={root:?}");
        let tcp = count_crate_loc(&root.join("crates/tcp/src"));
        assert!(tcp > 1000, "tcp crate should be substantial: {tcp}");
        let utls = count_loc(&root.join("crates/tls/src/utls.rs"));
        assert!(utls > 100);
        assert!(utls < count_crate_loc(&root.join("crates/tls/src")));
        let table = run();
        assert!(table.row_count() >= 10);
    }

    #[test]
    fn count_loc_ignores_comments_and_blanks() {
        let dir = std::env::temp_dir().join("minion-table1-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("sample.rs");
        std::fs::write(
            &file,
            "// comment\n\nfn main() {\n    let x = 1;\n}\n//! doc\n",
        )
        .unwrap();
        assert_eq!(count_loc(&file), 3);
        std::fs::remove_file(&file).ok();
    }
}
