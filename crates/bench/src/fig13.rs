//! Figure 13: trace-driven web transfers (§8.5).
//!
//! Each page from the synthetic trace is loaded twice over a 1.5 Mbps /
//! 60 ms-RTT path: once with pipelined HTTP/1.1 over a persistent TCP
//! connection, once with parallel HTTP/1.0-style requests over msTCP. The
//! table reports, per request-count bucket, the median total page-load time
//! and the median of each page's average time-to-first-byte.

use minion_apps::{
    generate_trace, load_page_mstcp, load_page_pipelined_tcp, PageLoadMetrics, WebPage,
};
use minion_simnet::{Distribution, LinkConfig, NodeId, SimDuration, Table};
use minion_stack::Sim;
use std::collections::BTreeMap;

fn web_sim(seed: u64) -> (Sim, NodeId, NodeId) {
    let mut sim = Sim::new(seed);
    let client = sim.add_host("browser");
    let server = sim.add_host("webserver");
    sim.link(
        client,
        server,
        LinkConfig::new(1_500_000, SimDuration::from_millis(30)).with_queue_bytes(32 * 1024),
    );
    (sim, client, server)
}

/// Results for one page under both transports.
#[derive(Clone, Debug)]
pub struct PageComparison {
    /// The page loaded.
    pub page: WebPage,
    /// Metrics for pipelined HTTP/1.1 over TCP.
    pub pipelined: PageLoadMetrics,
    /// Metrics for parallel requests over msTCP.
    pub mstcp: PageLoadMetrics,
}

/// Load every page of a `pages`-page synthetic trace both ways.
pub fn run_trace(pages: usize, seed: u64) -> Vec<PageComparison> {
    let trace = generate_trace(pages, seed);
    let mut out = Vec::with_capacity(trace.len());
    for (i, page) in trace.iter().enumerate() {
        // A fresh simulator per load keeps pages independent, as in the
        // paper's per-page measurements.
        let (mut sim, client, server) = web_sim(seed + i as u64);
        let pipelined = load_page_pipelined_tcp(&mut sim, client, server, page, 8000);
        let (mut sim, client, server) = web_sim(seed + i as u64 + 1000);
        let mstcp = load_page_mstcp(&mut sim, client, server, page, 8000);
        out.push(PageComparison {
            page: page.clone(),
            pipelined,
            mstcp,
        });
    }
    out
}

/// Aggregate the per-page results into the figure's three buckets.
pub fn to_table(results: &[PageComparison]) -> Table {
    let mut table = Table::new(
        "Figure 13: web page loads, pipelined HTTP/1.1 over TCP vs parallel HTTP/1.0 over msTCP",
        &[
            "bucket",
            "pages",
            "plt_tcp_ms",
            "plt_mstcp_ms",
            "ttfb_tcp_ms",
            "ttfb_mstcp_ms",
        ],
    );
    let mut buckets: BTreeMap<&'static str, Vec<&PageComparison>> = BTreeMap::new();
    for r in results {
        buckets.entry(r.page.bucket()).or_default().push(r);
    }
    for (bucket, rs) in buckets {
        let mut plt_tcp = Distribution::new();
        let mut plt_ms = Distribution::new();
        let mut ttfb_tcp = Distribution::new();
        let mut ttfb_ms = Distribution::new();
        for r in &rs {
            plt_tcp.add(r.pipelined.page_load_time.as_millis_f64());
            plt_ms.add(r.mstcp.page_load_time.as_millis_f64());
            ttfb_tcp.add(r.pipelined.mean_first_byte().as_millis_f64());
            ttfb_ms.add(r.mstcp.mean_first_byte().as_millis_f64());
        }
        table.add_row(vec![
            bucket.to_string(),
            rs.len().to_string(),
            format!("{:.0}", plt_tcp.median()),
            format!("{:.0}", plt_ms.median()),
            format!("{:.0}", ttfb_tcp.median()),
            format!("{:.0}", ttfb_ms.median()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_object_pages_get_first_bytes_earlier_over_mstcp() {
        let results = run_trace(3, 21);
        assert_eq!(results.len(), 3);
        // For pages with several objects, msTCP's interleaving should lower
        // the average time-to-first-byte without exploding page-load time.
        let multi: Vec<&PageComparison> = results
            .iter()
            .filter(|r| r.page.request_count() >= 3)
            .collect();
        assert!(!multi.is_empty());
        for r in multi {
            assert!(
                r.mstcp.mean_first_byte() <= r.pipelined.mean_first_byte(),
                "page with {} requests: mstcp ttfb {:?} vs tcp {:?}",
                r.page.request_count(),
                r.mstcp.mean_first_byte(),
                r.pipelined.mean_first_byte()
            );
            assert!(
                r.mstcp.page_load_time.as_millis_f64()
                    < r.pipelined.page_load_time.as_millis_f64() * 1.5,
                "msTCP must not blow up total page-load time"
            );
        }
        let table = to_table(&results);
        assert!(table.row_count() >= 1);
    }
}
