//! Figure 10: send-side prioritization (§8.3).
//!
//! A synthetic application sends messages at a network-limited rate; one in
//! every 100 messages is high-priority. Over standard TCP all messages queue
//! FIFO in the send buffer, so high-priority messages see the same delay as
//! the backlog; over uTCP the high-priority writes pass the queued bulk data
//! and see far lower delay.

use minion_core::{MinionConfig, UcobsSocket};
use minion_simnet::{Distribution, LinkConfig, SimDuration, Table};
use minion_stack::{Sim, SocketAddr};

/// Delay statistics for one priority class.
#[derive(Clone, Debug)]
pub struct PriorityDelays {
    /// End-to-end delays of ordinary messages, in milliseconds.
    pub low_priority_ms: Distribution,
    /// End-to-end delays of high-priority messages, in milliseconds.
    pub high_priority_ms: Distribution,
}

/// Run the prioritization experiment over uCOBS, with or without uTCP's
/// send-side extension.
pub fn run_priority_experiment(
    use_utcp: bool,
    messages: usize,
    message_size: usize,
    seed: u64,
) -> PriorityDelays {
    let mut sim = Sim::new(seed);
    let a = sim.add_host("sender");
    let b = sim.add_host("receiver");
    // A modest link so the send queue backs up (that is the point).
    sim.link(
        a,
        b,
        LinkConfig::new(2_000_000, SimDuration::from_millis(30)).with_queue_bytes(32 * 1024),
    );
    let config = if use_utcp {
        MinionConfig::with_utcp()
    } else {
        MinionConfig::without_utcp()
    };
    UcobsSocket::listen(sim.host_mut(b), 7100, &config).unwrap();
    let now = sim.now();
    let mut tx = UcobsSocket::connect(sim.host_mut(a), SocketAddr::new(b, 7100), &config, now);
    sim.run_for(SimDuration::from_millis(200));
    let mut rx = UcobsSocket::accept(sim.host_mut(b), 7100).expect("accepted");

    let mut low = Distribution::new();
    let mut high = Distribution::new();
    let mut sent = 0usize;
    let mut send_times: Vec<(minion_simnet::SimTime, bool)> = Vec::with_capacity(messages);
    let tick = SimDuration::from_millis(5);
    let mut idle_rounds = 0u32;

    while low.len() + high.len() < messages && idle_rounds < 10_000 {
        let now = sim.now();
        // Sender: keep the send buffer topped up, network-limited.
        while sent < messages && tx.send_buffer_free(sim.host(a)) > 4 * message_size {
            let high_priority = sent % 100 == 99;
            let mut payload = vec![0u8; message_size];
            payload[..8].copy_from_slice(&(sent as u64).to_be_bytes());
            payload[8] = high_priority as u8;
            let priority = if high_priority { 7 } else { 0 };
            if tx.send(sim.host_mut(a), &payload, priority).is_err() {
                break;
            }
            send_times.push((now, high_priority));
            sent += 1;
        }
        sim.run_for(tick);
        let now = sim.now();
        let mut got_any = false;
        for d in rx.recv(sim.host_mut(b)) {
            if d.payload.len() < 9 {
                continue;
            }
            got_any = true;
            let id = u64::from_be_bytes(d.payload[..8].try_into().expect("8 bytes")) as usize;
            let (sent_at, high_priority) = send_times[id];
            let delay_ms = (now - sent_at).as_millis_f64();
            if high_priority {
                high.add(delay_ms);
            } else {
                low.add(delay_ms);
            }
        }
        idle_rounds = if got_any { 0 } else { idle_rounds + 1 };
    }

    PriorityDelays {
        low_priority_ms: low,
        high_priority_ms: high,
    }
}

/// Render Figure 10's data: delay statistics per priority class, TCP vs uTCP.
pub fn run(messages: usize, seed: u64) -> Table {
    let mut table = Table::new(
        "Figure 10: end-to-end message delay by priority (ms)",
        &["transport", "class", "mean_ms", "p50_ms", "p95_ms"],
    );
    for (label, use_utcp) in [("tcp", false), ("utcp", true)] {
        let delays = run_priority_experiment(use_utcp, messages, 1000, seed);
        for (class, dist) in [
            ("low", delays.low_priority_ms.clone()),
            ("high", delays.high_priority_ms.clone()),
        ] {
            let mut d = dist;
            table.add_row(vec![
                label.to_string(),
                class.to_string(),
                format!("{:.1}", d.mean()),
                format!("{:.1}", d.median()),
                format!("{:.1}", d.quantile(0.95)),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_priority_messages_jump_the_queue_only_with_utcp() {
        let utcp = run_priority_experiment(true, 600, 1000, 2);
        let tcp = run_priority_experiment(false, 600, 1000, 2);
        assert!(utcp.high_priority_ms.len() >= 4);
        assert!(tcp.high_priority_ms.len() >= 4);
        // With uTCP, high-priority messages see much lower delay than bulk.
        assert!(
            utcp.high_priority_ms.mean() < utcp.low_priority_ms.mean() * 0.6,
            "utcp: high {} vs low {}",
            utcp.high_priority_ms.mean(),
            utcp.low_priority_ms.mean()
        );
        // Over standard TCP both classes queue FIFO and see similar delays.
        assert!(
            tcp.high_priority_ms.mean() > tcp.low_priority_ms.mean() * 0.5,
            "tcp: high {} vs low {}",
            tcp.high_priority_ms.mean(),
            tcp.low_priority_ms.mean()
        );
        // And uTCP's high-priority delay beats TCP's high-priority delay.
        assert!(utcp.high_priority_ms.mean() < tcp.high_priority_ms.mean());
    }
}
