//! Figures 11 and 12: VPN tunneling over the residential path (§8.4).
//!
//! Figure 11 measures the throughput of one tunneled download while a
//! varying number of tunneled uploads compete inside the same tunnel, for
//! the original (in-order TCP tunnel) and modified (uCOBS + prioritized
//! ACKs) OpenVPN. Figure 12 decomposes the two modifications: unordered
//! delivery and ACK prioritization are toggled independently and the total
//! upload/download utilisation is reported for three traffic mixes.

use minion_apps::TunnelGateway;
use minion_core::{MinionConfig, MinionTransport, Protocol};
use minion_simnet::{LinkConfig, SimDuration, Table};
use minion_stack::{Sim, SocketAddr};

/// One tunnel variant (which protocol carries the tunnel, and whether
/// tunneled ACKs are prioritized).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TunnelVariant {
    /// Transport protocol of the tunnel itself.
    pub protocol: Protocol,
    /// Expedite tunneled pure ACKs with a high uTCP priority.
    pub prioritize_acks: bool,
    /// Human-readable label used in tables.
    pub label: &'static str,
}

/// The four variants of Figure 12 (and the two of Figure 11).
pub fn variants() -> Vec<TunnelVariant> {
    vec![
        TunnelVariant {
            protocol: Protocol::TcpTlv,
            prioritize_acks: false,
            label: "TCP",
        },
        TunnelVariant {
            protocol: Protocol::TcpTlv,
            prioritize_acks: true,
            label: "TCP+priACKs",
        },
        TunnelVariant {
            protocol: Protocol::Ucobs,
            prioritize_acks: false,
            label: "uCOBS",
        },
        TunnelVariant {
            protocol: Protocol::Ucobs,
            prioritize_acks: true,
            label: "uCOBS+priACKs",
        },
    ]
}

/// Result of one tunnel run.
#[derive(Clone, Debug)]
pub struct TunnelRunResult {
    /// Total download goodput through the tunnel, in Mbps.
    pub download_mbps: f64,
    /// Total upload goodput through the tunnel, in Mbps.
    pub upload_mbps: f64,
}

/// Run one VPN scenario: `downloads` tunneled download flows and `uploads`
/// tunneled upload flows for `duration` of simulated time.
pub fn run_tunnel(
    variant: TunnelVariant,
    downloads: usize,
    uploads: usize,
    duration: SimDuration,
    seed: u64,
) -> TunnelRunResult {
    let mut sim = Sim::new(seed);
    let client = sim.add_host("home-client");
    let server = sim.add_host("vpn-server");
    // Residential path: 3 Mbps down, 0.5 Mbps up, 60 ms RTT.
    sim.link_asymmetric(
        client,
        server,
        LinkConfig::new(500_000, SimDuration::from_millis(30)).with_queue_bytes(24 * 1024),
        LinkConfig::new(3_000_000, SimDuration::from_millis(30)).with_queue_bytes(24 * 1024),
    );

    let config = MinionConfig::default();
    MinionTransport::listen(variant.protocol, sim.host_mut(server), 1194, &config).unwrap();
    let now = sim.now();
    let client_transport = MinionTransport::connect(
        variant.protocol,
        sim.host_mut(client),
        SocketAddr::new(server, 1194),
        &config,
        now,
    )
    .unwrap();
    sim.run_for(SimDuration::from_millis(300));
    let server_transport =
        MinionTransport::accept(variant.protocol, sim.host_mut(server), 1194, &config)
            .expect("tunnel accepted");

    let mut client_gw = TunnelGateway::new(client_transport, variant.prioritize_acks);
    let mut server_gw = TunnelGateway::new(server_transport, variant.prioritize_acks);

    // Download flows: server gateway sources, client gateway sinks.
    let huge = 1_000_000_000u64;
    for i in 0..downloads {
        let id = 1 + i as u32;
        server_gw.add_source_flow(id, huge, sim.now());
        client_gw.add_sink_flow(id);
    }
    // Upload flows: client gateway sources, server gateway sinks.
    for i in 0..uploads {
        let id = 100 + i as u32;
        client_gw.add_source_flow(id, huge, sim.now());
        server_gw.add_sink_flow(id);
    }

    let start = sim.now();
    let tick = SimDuration::from_millis(10);
    while sim.now() - start < duration {
        let now = sim.now();
        client_gw.tick(sim.host_mut(client), now);
        server_gw.tick(sim.host_mut(server), now);
        sim.run_for(tick);
    }

    let elapsed = (sim.now() - start).as_secs_f64();
    let downloaded: u64 = (0..downloads)
        .map(|i| client_gw.sink_received(1 + i as u32))
        .sum();
    let uploaded: u64 = (0..uploads)
        .map(|i| server_gw.sink_received(100 + i as u32))
        .sum();
    TunnelRunResult {
        download_mbps: downloaded as f64 * 8.0 / elapsed / 1_000_000.0,
        upload_mbps: uploaded as f64 * 8.0 / elapsed / 1_000_000.0,
    }
}

/// Figure 11: download throughput vs number of competing uploads, for the
/// original and modified tunnel.
pub fn run_fig11(upload_counts: &[usize], duration: SimDuration, seed: u64) -> Table {
    let mut table = Table::new(
        "Figure 11: tunneled download throughput vs competing uploads (Mbps)",
        &["uploads", "original_openvpn_mbps", "modified_openvpn_mbps"],
    );
    let original = TunnelVariant {
        protocol: Protocol::TcpTlv,
        prioritize_acks: false,
        label: "original",
    };
    let modified = TunnelVariant {
        protocol: Protocol::Ucobs,
        prioritize_acks: true,
        label: "modified",
    };
    for &uploads in upload_counts {
        let orig = run_tunnel(original, 1, uploads, duration, seed);
        let modi = run_tunnel(modified, 1, uploads, duration, seed);
        table.add_row(vec![
            uploads.to_string(),
            format!("{:.3}", orig.download_mbps),
            format!("{:.3}", modi.download_mbps),
        ]);
    }
    table
}

/// Figure 12: upload/download utilisation of each variant under three
/// traffic mixes (upload only, download only, 3 downloads + 1 upload).
pub fn run_fig12(duration: SimDuration, seed: u64) -> Table {
    let mut table = Table::new(
        "Figure 12: contribution of each modification to network utilisation (Mbps)",
        &["scenario", "variant", "download_mbps", "upload_mbps"],
    );
    let scenarios: [(&str, usize, usize); 3] =
        [("UL only", 0, 1), ("DL only", 1, 0), ("3 DL + 1 UL", 3, 1)];
    for (scenario, downloads, uploads) in scenarios {
        for variant in variants() {
            let result = run_tunnel(variant, downloads, uploads, duration, seed);
            table.add_row(vec![
                scenario.to_string(),
                variant.label.to_string(),
                format!("{:.3}", result.download_mbps),
                format!("{:.3}", result.upload_mbps),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modified_tunnel_beats_original_under_upload_contention() {
        let duration = SimDuration::from_secs(25);
        let original = run_tunnel(
            TunnelVariant {
                protocol: Protocol::TcpTlv,
                prioritize_acks: false,
                label: "orig",
            },
            1,
            2,
            duration,
            7,
        );
        let modified = run_tunnel(
            TunnelVariant {
                protocol: Protocol::Ucobs,
                prioritize_acks: true,
                label: "mod",
            },
            1,
            2,
            duration,
            7,
        );
        assert!(original.download_mbps > 0.0);
        assert!(modified.download_mbps > 0.0);
        assert!(
            modified.download_mbps > original.download_mbps * 1.2,
            "modified tunnel should clearly improve the tunneled download: \
             original {:.3} Mbps vs modified {:.3} Mbps",
            original.download_mbps,
            modified.download_mbps
        );
    }

    #[test]
    fn download_only_scenario_fills_a_good_share_of_the_link() {
        let result = run_tunnel(
            TunnelVariant {
                protocol: Protocol::Ucobs,
                prioritize_acks: true,
                label: "mod",
            },
            1,
            0,
            SimDuration::from_secs(20),
            8,
        );
        assert!(
            result.download_mbps > 1.0,
            "single download over a 3 Mbps link: {:.3} Mbps",
            result.download_mbps
        );
        assert_eq!(result.upload_mbps, 0.0);
    }
}
