//! Figure 5: throughput as a function of application message size, TCP vs
//! uTCP (§8.1).
//!
//! The paper sends a bulk transfer over a 60 ms-RTT path while varying the
//! size of each application `write()`. With uTCP's unordered send enabled,
//! Linux's skbuff-granularity congestion accounting means writes that do not
//! pack MSS-sized buffers waste window, so throughput dips between the
//! "nice" sizes (divisors and multiples of the 1448-byte MSS) and matches
//! TCP at them.

use minion_apps::{BulkSender, BulkSink};
use minion_simnet::{LinkConfig, SimDuration, Table};
use minion_stack::{Sim, SocketAddr};
use minion_tcp::{SocketOptions, TcpConfig};

/// Result of one bulk-transfer run.
#[derive(Clone, Debug)]
pub struct ThroughputSample {
    /// Application write size in bytes.
    pub message_size: usize,
    /// Goodput achieved with standard TCP, in Mbps.
    pub tcp_mbps: f64,
    /// Goodput achieved with uTCP (unordered send, skbuff accounting), Mbps.
    pub utcp_mbps: f64,
}

/// Run one transfer and return goodput in Mbps.
pub fn run_bulk_transfer(
    message_size: usize,
    total_bytes: u64,
    options: SocketOptions,
    seed: u64,
) -> f64 {
    let mut sim = Sim::new(seed);
    let sender_node = sim.add_host("sender");
    let receiver_node = sim.add_host("receiver");
    // A 2 Mbps bottleneck with 60 ms RTT, as in the paper's figure (which
    // plots throughputs up to ~2 Mbps).
    sim.link(
        sender_node,
        receiver_node,
        LinkConfig::new(2_000_000, SimDuration::from_millis(30)).with_queue_bytes(64 * 1024),
    );
    sim.host_mut(receiver_node)
        .tcp_listen(5001, TcpConfig::default(), SocketOptions::standard())
        .expect("listen");
    let now = sim.now();
    let mut sender = BulkSender::connect(
        sim.host_mut(sender_node),
        SocketAddr::new(receiver_node, 5001),
        TcpConfig::default(),
        options,
        message_size,
        total_bytes,
        now,
    );
    sim.run_for(SimDuration::from_millis(200));
    let handle = sim.host_mut(receiver_node).accept(5001).expect("accepted");
    let mut sink = BulkSink::new(handle);

    let deadline = SimDuration::from_secs(600);
    let start = sim.now();
    while sink.received() < total_bytes && sim.now() - start < deadline {
        sender.pump(sim.host_mut(sender_node));
        sim.run_for(SimDuration::from_millis(20));
        let now = sim.now();
        sink.pump(sim.host_mut(receiver_node), now);
    }
    sink.goodput_bps() / 1_000_000.0
}

/// Run the Figure 5 sweep.
pub fn run(message_sizes: &[usize], total_bytes: u64, seed: u64) -> Vec<ThroughputSample> {
    message_sizes
        .iter()
        .map(|&size| ThroughputSample {
            message_size: size,
            tcp_mbps: run_bulk_transfer(size, total_bytes, SocketOptions::standard(), seed),
            utcp_mbps: run_bulk_transfer(size, total_bytes, SocketOptions::utcp(), seed),
        })
        .collect()
}

/// The message sizes highlighted by the paper's figure: fractions and
/// multiples of the 1448-byte MSS plus awkward in-between sizes.
pub fn paper_message_sizes() -> Vec<usize> {
    vec![200, 362, 500, 724, 1000, 1448, 2000, 2896]
}

/// Render the sweep as the figure's data table.
pub fn to_table(samples: &[ThroughputSample]) -> Table {
    let mut table = Table::new(
        "Figure 5: throughput vs application message size (Mbps)",
        &["message_size_bytes", "tcp_mbps", "utcp_mbps"],
    );
    for s in samples {
        table.add_row(vec![
            s.message_size.to_string(),
            format!("{:.3}", s.tcp_mbps),
            format!("{:.3}", s.utcp_mbps),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utcp_matches_tcp_at_mss_and_dips_at_awkward_sizes() {
        let total = 400_000u64;
        let at_mss = run(&[1448], total, 1)[0].clone();
        let awkward = run(&[1000], total, 1)[0].clone();
        // At exactly one MSS per write, uTCP keeps pace with TCP.
        assert!(
            (at_mss.utcp_mbps - at_mss.tcp_mbps).abs() / at_mss.tcp_mbps < 0.15,
            "at MSS: tcp={} utcp={}",
            at_mss.tcp_mbps,
            at_mss.utcp_mbps
        );
        // At 1000 bytes (not a divisor of the MSS), uTCP's skbuff-granularity
        // accounting costs it throughput relative to TCP.
        assert!(
            awkward.utcp_mbps < awkward.tcp_mbps * 0.9,
            "awkward size: tcp={} utcp={}",
            awkward.tcp_mbps,
            awkward.utcp_mbps
        );
        // TCP itself should not care about the write size.
        assert!((at_mss.tcp_mbps - awkward.tcp_mbps).abs() / at_mss.tcp_mbps < 0.15);
    }

    #[test]
    fn table_has_one_row_per_size() {
        let samples = vec![
            ThroughputSample {
                message_size: 100,
                tcp_mbps: 1.0,
                utcp_mbps: 0.5,
            },
            ThroughputSample {
                message_size: 1448,
                tcp_mbps: 1.9,
                utcp_mbps: 1.9,
            },
        ];
        let t = to_table(&samples);
        assert_eq!(t.row_count(), 2);
        assert!(t.to_csv().contains("1448"));
    }
}
