//! Figures 7, 8, 9: the conferencing experiments of §8.2.
//!
//! A constant-rate voice stream (20 ms frames, 256 kbps) crosses a 3 Mbps /
//! 60 ms-RTT bottleneck while competing TCP file transfers congest it.
//! Figure 7 plots the CDF of one-way frame latency with 4 competing flows;
//! Figure 8 plots the CDF of codec-perceived loss-burst lengths under a
//! 200 ms playout buffer; Figure 9 plots a sliding-window quality score over
//! a longer call as competing flows are added one per minute.

use minion_apps::{
    frame_number, CompetingFlow, VoipReceiver, VoipReport, VoipSource, VoipSourceConfig,
};
use minion_core::{MinionConfig, MinionTransport, Protocol, UdpShim};
use minion_simnet::{Distribution, LinkConfig, SimDuration, SimTime, Table};
use minion_stack::{Sim, SocketAddr};

/// Parameters of one VoIP run.
#[derive(Clone, Debug)]
pub struct VoipRunConfig {
    /// Transport carrying the voice frames.
    pub protocol: Protocol,
    /// Length of the call.
    pub duration: SimDuration,
    /// Playout (jitter) buffer depth.
    pub jitter_buffer: SimDuration,
    /// Times at which competing TCP flows start (relative to call start).
    pub competing_flow_starts: Vec<SimDuration>,
    /// Simulation seed.
    pub seed: u64,
}

impl VoipRunConfig {
    /// The Figure 7 / 8 setup: a one-minute call under 4 competing flows.
    pub fn heavy_contention(protocol: Protocol, seed: u64) -> Self {
        VoipRunConfig {
            protocol,
            duration: SimDuration::from_secs(60),
            jitter_buffer: SimDuration::from_millis(200),
            competing_flow_starts: vec![SimDuration::ZERO; 4],
            seed,
        }
    }

    /// The Figure 9 setup: competing flows added at one-minute intervals
    /// (scaled down from the paper's 4-minute call via `minutes`).
    pub fn progressive_contention(protocol: Protocol, minutes: u64, seed: u64) -> Self {
        VoipRunConfig {
            protocol,
            duration: SimDuration::from_secs(60 * minutes),
            jitter_buffer: SimDuration::from_millis(200),
            competing_flow_starts: (0..minutes)
                .map(|m| SimDuration::from_secs(60 * m))
                .collect(),
            seed,
        }
    }
}

/// Run one VoIP call and return the receiver's report.
pub fn run_call(config: &VoipRunConfig) -> VoipReport {
    let mut sim = Sim::new(config.seed);
    let sender = sim.add_host("caller");
    let receiver = sim.add_host("callee");
    sim.link(
        sender,
        receiver,
        LinkConfig::new(3_000_000, SimDuration::from_millis(30)).with_queue_bytes(32 * 1024),
    );

    let minion_config = MinionConfig::default();
    let source_config = VoipSourceConfig {
        duration: config.duration,
        ..Default::default()
    };

    // Set up the voice transport.
    let mut tx;
    let mut rx;
    match config.protocol {
        Protocol::Udp => {
            tx = MinionTransport::Udp(
                UdpShim::bind(
                    sim.host_mut(sender),
                    0,
                    Some(SocketAddr::new(receiver, 9999)),
                )
                .expect("bind"),
            );
            rx = MinionTransport::Udp(
                UdpShim::bind(sim.host_mut(receiver), 9999, None).expect("bind"),
            );
        }
        protocol => {
            MinionTransport::listen(protocol, sim.host_mut(receiver), 9999, &minion_config)
                .expect("listen");
            let now = sim.now();
            tx = MinionTransport::connect(
                protocol,
                sim.host_mut(sender),
                SocketAddr::new(receiver, 9999),
                &minion_config,
                now,
            )
            .expect("connect");
            sim.run_for(SimDuration::from_millis(200));
            let mut accepted =
                MinionTransport::accept(protocol, sim.host_mut(receiver), 9999, &minion_config);
            // Drive handshakes (needed by uTLS) until both sides are ready.
            for _ in 0..6 {
                if let Some(s) = accepted.as_mut() {
                    let _ = s.recv(sim.host_mut(receiver));
                }
                let _ = tx.recv(sim.host_mut(sender));
                sim.run_for(SimDuration::from_millis(80));
                if accepted.is_none() {
                    accepted = MinionTransport::accept(
                        protocol,
                        sim.host_mut(receiver),
                        9999,
                        &minion_config,
                    );
                }
            }
            rx = accepted.expect("accepted");
        }
    }

    // Competing flows share the same direction as the voice traffic.
    let call_start = sim.now();
    let mut competing: Vec<CompetingFlow> = config
        .competing_flow_starts
        .iter()
        .enumerate()
        .map(|(i, &offset)| {
            CompetingFlow::new(sender, receiver, 6000 + i as u16, call_start + offset)
        })
        .collect();

    let mut source = VoipSource::new(source_config.clone(), call_start);
    let mut voip_rx = VoipReceiver::new(source_config, config.jitter_buffer, call_start);

    let tick = SimDuration::from_millis(10);
    let end = call_start + config.duration + SimDuration::from_secs(2);
    while sim.now() < end {
        let now = sim.now();
        // Voice source.
        while let Some((_number, frame)) = source.poll(now) {
            let _ = tx.send(sim.host_mut(sender), &frame, 0);
        }
        // Voice receiver.
        for datagram in rx.recv(sim.host_mut(receiver)) {
            if frame_number(&datagram.payload).is_some() {
                voip_rx.on_frame(&datagram.payload, now);
            }
        }
        // Competing traffic.
        for flow in competing.iter_mut() {
            flow.tick(&mut sim, now);
        }
        sim.run_for(tick);
    }
    // Final drain.
    let now = sim.now();
    for datagram in rx.recv(sim.host_mut(receiver)) {
        voip_rx.on_frame(&datagram.payload, now);
    }

    voip_rx.report(SimDuration::from_secs(2))
}

/// Figure 7: CDF of one-way frame latency for uCOBS, TCP, and UDP.
pub fn run_fig7(duration: SimDuration, seed: u64) -> Table {
    let mut table = Table::new(
        "Figure 7: one-way frame latency CDF (ms)",
        &["percentile", "ucobs_ms", "tcp_ms", "udp_ms"],
    );
    let mut reports: Vec<(Protocol, VoipReport)> = Vec::new();
    for protocol in [Protocol::Ucobs, Protocol::TcpTlv, Protocol::Udp] {
        let mut cfg = VoipRunConfig::heavy_contention(protocol, seed);
        cfg.duration = duration;
        reports.push((protocol, run_call(&cfg)));
    }
    for pct in [10, 25, 50, 75, 80, 90, 95, 99] {
        let q = pct as f64 / 100.0;
        let row: Vec<String> = std::iter::once(pct.to_string())
            .chain(reports.iter().map(|(_, r)| {
                let mut d: Distribution = r.latencies_ms.clone();
                format!("{:.1}", d.quantile(q))
            }))
            .collect();
        table.add_row(row);
    }
    table
}

/// Figure 8: CDF of codec-perceived loss-burst lengths (in frames).
pub fn run_fig8(duration: SimDuration, seed: u64) -> Table {
    let mut table = Table::new(
        "Figure 8: loss-burst length CDF (200 ms jitter buffer)",
        &["burst_length_frames", "ucobs_cdf", "tcp_cdf", "udp_cdf"],
    );
    let mut dists: Vec<Distribution> = Vec::new();
    for protocol in [Protocol::Ucobs, Protocol::TcpTlv, Protocol::Udp] {
        let mut cfg = VoipRunConfig::heavy_contention(protocol, seed);
        cfg.duration = duration;
        let report = run_call(&cfg);
        let mut d = Distribution::new();
        for &b in &report.burst_lengths {
            d.add(b as f64);
        }
        if d.is_empty() {
            d.add(0.0);
        }
        dists.push(d);
    }
    for burst in [1usize, 2, 3, 5, 10, 20, 30, 50] {
        let row: Vec<String> = std::iter::once(burst.to_string())
            .chain(
                dists
                    .iter()
                    .map(|d| format!("{:.3}", d.fraction_at_most(burst as f64))),
            )
            .collect();
        table.add_row(row);
    }
    table
}

/// Figure 9: sliding-window quality (MOS) over a call with competing flows
/// added each minute.
pub fn run_fig9(minutes: u64, seed: u64) -> Table {
    let mut table = Table::new(
        "Figure 9: moving quality score (MOS) under increasing contention",
        &["time_s", "ucobs_mos", "tcp_mos", "udp_mos"],
    );
    let reports: Vec<VoipReport> = [Protocol::Ucobs, Protocol::TcpTlv, Protocol::Udp]
        .into_iter()
        .map(|p| run_call(&VoipRunConfig::progressive_contention(p, minutes, seed)))
        .collect();
    // Sample each timeline on a common 10-second grid.
    let total = minutes * 60;
    let mut t = 0u64;
    while t < total {
        let from = SimTime::from_secs(t);
        let to = SimTime::from_secs(t + 10);
        let row: Vec<String> = std::iter::once(t.to_string())
            .chain(reports.iter().map(|r| {
                format!(
                    "{:.2}",
                    r.mos_timeline.window_mean(from, to).unwrap_or(f64::NAN)
                )
            }))
            .collect();
        table.add_row(row);
        t += 10;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_call_shows_ucobs_beating_tcp_under_contention() {
        let duration = SimDuration::from_secs(20);
        let mut ucobs_cfg = VoipRunConfig::heavy_contention(Protocol::Ucobs, 5);
        ucobs_cfg.duration = duration;
        let mut tcp_cfg = VoipRunConfig::heavy_contention(Protocol::TcpTlv, 5);
        tcp_cfg.duration = duration;
        let ucobs = run_call(&ucobs_cfg);
        let tcp = run_call(&tcp_cfg);
        // Both deliver most frames eventually, but uCOBS keeps latency lower
        // and misses fewer playout deadlines.
        assert!(ucobs.latencies_ms.len() > 500);
        assert!(tcp.latencies_ms.len() > 500);
        assert!(
            ucobs.miss_fraction <= tcp.miss_fraction + 0.02,
            "ucobs misses {} vs tcp {}",
            ucobs.miss_fraction,
            tcp.miss_fraction
        );
        let mut u = ucobs.latencies_ms.clone();
        let mut t = tcp.latencies_ms.clone();
        assert!(
            u.quantile(0.9) <= t.quantile(0.9) + 1.0,
            "90th percentile latency: ucobs {} vs tcp {}",
            u.quantile(0.9),
            t.quantile(0.9)
        );
    }

    #[test]
    fn udp_frames_are_never_delayed_by_retransmission() {
        let mut cfg = VoipRunConfig::heavy_contention(Protocol::Udp, 6);
        cfg.duration = SimDuration::from_secs(15);
        let report = run_call(&cfg);
        // UDP never retransmits: frames either arrive within one queue's
        // worth of delay or are dropped outright (they are never delivered
        // late after a recovery, which is what inflates the TCP tail).
        let mut lat = report.latencies_ms.clone();
        assert!(lat.quantile(0.5) < 250.0, "median {}", lat.quantile(0.5));
        assert!(lat.quantile(0.99) < 400.0, "p99 {}", lat.quantile(0.99));
        assert!(report.latencies_ms.len() > 400, "most frames delivered");
    }
}
