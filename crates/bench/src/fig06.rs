//! Figure 6: relative CPU cost of the application-level encoding layers
//! (§8.1).
//!
//! Figure 6(a) compares the processing cost of COBS framing over standard
//! TCP and uCOBS over uTCP against a raw TCP transfer, at several loss
//! rates; Figure 6(b) compares uTLS against stream TLS. The paper measures
//! user/kernel CPU time on its testbed; here we measure the wall-clock time
//! this process spends inside the endpoint code (send-side encoding and
//! receive-side decoding/scanning) and inside the transport simulation, and
//! report the same normalised ratios. Absolute numbers depend on the
//! machine, but the *relative* costs — what the paper reports — carry over.

use minion_core::{MinionConfig, Protocol, TcpTlvSocket, UcobsSocket, UtlsSocket};
use minion_simnet::{LinkConfig, LossConfig, SimDuration, Table};
use minion_stack::{Sim, SocketAddr};
use std::time::Instant;

/// Measured cost of one transfer run.
#[derive(Clone, Debug)]
pub struct CpuSample {
    /// Which protocol was measured.
    pub protocol: Protocol,
    /// Loss rate applied to the path.
    pub loss_rate: f64,
    /// Seconds of host CPU spent in the sender's application-level code.
    pub sender_app_seconds: f64,
    /// Seconds of host CPU spent in the receiver's application-level code.
    pub receiver_app_seconds: f64,
    /// Seconds spent driving the transport/stack simulation (the "kernel"
    /// share of the cost).
    pub stack_seconds: f64,
    /// Bytes of application payload delivered.
    pub bytes_delivered: u64,
}

impl CpuSample {
    /// Total cost attributed to one endpoint pair.
    pub fn total_seconds(&self) -> f64 {
        self.sender_app_seconds + self.receiver_app_seconds + self.stack_seconds
    }
}

/// Transfer `total_bytes` of `datagram_size`-byte datagrams over the given
/// protocol at the given loss rate, measuring where the time goes.
pub fn run_transfer(
    protocol: Protocol,
    loss_rate: f64,
    total_bytes: u64,
    datagram_size: usize,
    seed: u64,
) -> CpuSample {
    let mut sim = Sim::new(seed);
    let a = sim.add_host("sender");
    let b = sim.add_host("receiver");
    sim.link(
        a,
        b,
        LinkConfig::new(20_000_000, SimDuration::from_millis(30))
            .with_queue_bytes(256 * 1024)
            .with_loss(LossConfig::from_rate(loss_rate)),
    );
    let config = MinionConfig::default();
    let baseline_config = MinionConfig::without_utcp();

    let mut sender_app = 0.0f64;
    let mut receiver_app = 0.0f64;
    let mut stack = 0.0f64;
    let mut delivered = 0u64;
    let datagram = vec![0xA5u8; datagram_size];
    let total_datagrams = total_bytes / datagram_size as u64;

    macro_rules! run_datagram_protocol {
        ($tx:ident, $rx:ident, $sender_host:ident, $receiver_host:ident) => {{
            let mut sent = 0u64;
            let mut guard = 0u32;
            while delivered < total_datagrams * datagram.len() as u64 {
                guard += 1;
                assert!(guard < 2_000_000, "transfer did not complete");
                // Sender: keep the pipe reasonably full.
                let t = Instant::now();
                while sent < total_datagrams
                    && $tx.send_buffer_free(sim.host($sender_host)) > 4 * datagram.len()
                {
                    if $tx
                        .send_datagram(sim.host_mut($sender_host), &datagram)
                        .is_err()
                    {
                        break;
                    }
                    sent += 1;
                }
                sender_app += t.elapsed().as_secs_f64();

                let t = Instant::now();
                sim.run_for(SimDuration::from_millis(20));
                stack += t.elapsed().as_secs_f64();

                let t = Instant::now();
                for d in $rx.recv(sim.host_mut($receiver_host)) {
                    delivered += d.payload.len() as u64;
                }
                receiver_app += t.elapsed().as_secs_f64();
            }
        }};
    }

    match protocol {
        Protocol::Ucobs => {
            UcobsSocket::listen(sim.host_mut(b), 7000, &config).unwrap();
            let now = sim.now();
            let mut tx =
                UcobsSocket::connect(sim.host_mut(a), SocketAddr::new(b, 7000), &config, now);
            sim.run_for(SimDuration::from_millis(200));
            let mut rx = UcobsSocket::accept(sim.host_mut(b), 7000).expect("accepted");
            run_datagram_protocol!(tx, rx, a, b);
        }
        Protocol::TcpTlv => {
            TcpTlvSocket::listen(sim.host_mut(b), 7000, &baseline_config).unwrap();
            let now = sim.now();
            let mut tx = TcpTlvSocket::connect(
                sim.host_mut(a),
                SocketAddr::new(b, 7000),
                &baseline_config,
                now,
            );
            sim.run_for(SimDuration::from_millis(200));
            let mut rx = TcpTlvSocket::accept(sim.host_mut(b), 7000).expect("accepted");
            run_datagram_protocol!(tx, rx, a, b);
        }
        Protocol::Utls => {
            UtlsSocket::listen(sim.host_mut(b), 7443, &config).unwrap();
            let now = sim.now();
            let mut tx =
                UtlsSocket::connect(sim.host_mut(a), SocketAddr::new(b, 7443), &config, now);
            sim.run_for(SimDuration::from_millis(200));
            let mut rx = UtlsSocket::accept(sim.host_mut(b), 7443, &config).expect("accepted");
            // Drive the TLS handshake.
            for _ in 0..6 {
                let _ = rx.recv(sim.host_mut(b));
                let _ = tx.recv(sim.host_mut(a));
                sim.run_for(SimDuration::from_millis(80));
            }
            assert!(tx.is_established() && rx.is_established(), "uTLS handshake");
            run_datagram_protocol!(tx, rx, a, b);
        }
        Protocol::Udp => panic!("figure 6 does not measure UDP"),
    }

    CpuSample {
        protocol,
        loss_rate,
        sender_app_seconds: sender_app,
        receiver_app_seconds: receiver_app,
        stack_seconds: stack,
        bytes_delivered: delivered,
    }
}

/// A variant of [`run_transfer`] with the unordered options disabled, used as
/// the "COBS over standard TCP" and "stream TLS" bars.
pub fn run_transfer_without_utcp(
    protocol: Protocol,
    loss_rate: f64,
    total_bytes: u64,
    datagram_size: usize,
    seed: u64,
) -> CpuSample {
    // Same machinery; the in-order variants are obtained by disabling the
    // socket options in the Minion config.
    let mut sim = Sim::new(seed);
    let a = sim.add_host("sender");
    let b = sim.add_host("receiver");
    sim.link(
        a,
        b,
        LinkConfig::new(20_000_000, SimDuration::from_millis(30))
            .with_queue_bytes(256 * 1024)
            .with_loss(LossConfig::from_rate(loss_rate)),
    );
    let config = MinionConfig::without_utcp();
    let datagram = vec![0xA5u8; datagram_size];
    let total_datagrams = total_bytes / datagram_size as u64;
    let mut sender_app = 0.0f64;
    let mut receiver_app = 0.0f64;
    let mut stack = 0.0f64;
    let mut delivered = 0u64;

    macro_rules! pump {
        ($tx:ident, $rx:ident) => {{
            let mut sent = 0u64;
            let mut guard = 0u32;
            while delivered < total_datagrams * datagram.len() as u64 {
                guard += 1;
                assert!(guard < 2_000_000, "transfer did not complete");
                let t = Instant::now();
                while sent < total_datagrams
                    && $tx.send_buffer_free(sim.host(a)) > 4 * datagram.len()
                {
                    if $tx.send_datagram(sim.host_mut(a), &datagram).is_err() {
                        break;
                    }
                    sent += 1;
                }
                sender_app += t.elapsed().as_secs_f64();
                let t = Instant::now();
                sim.run_for(SimDuration::from_millis(20));
                stack += t.elapsed().as_secs_f64();
                let t = Instant::now();
                for d in $rx.recv(sim.host_mut(b)) {
                    delivered += d.payload.len() as u64;
                }
                receiver_app += t.elapsed().as_secs_f64();
            }
        }};
    }

    match protocol {
        Protocol::Ucobs => {
            UcobsSocket::listen(sim.host_mut(b), 7000, &config).unwrap();
            let now = sim.now();
            let mut tx =
                UcobsSocket::connect(sim.host_mut(a), SocketAddr::new(b, 7000), &config, now);
            sim.run_for(SimDuration::from_millis(200));
            let mut rx = UcobsSocket::accept(sim.host_mut(b), 7000).expect("accepted");
            pump!(tx, rx);
        }
        Protocol::Utls => {
            UtlsSocket::listen(sim.host_mut(b), 7443, &config).unwrap();
            let now = sim.now();
            let mut tx =
                UtlsSocket::connect(sim.host_mut(a), SocketAddr::new(b, 7443), &config, now);
            sim.run_for(SimDuration::from_millis(200));
            let mut rx = UtlsSocket::accept(sim.host_mut(b), 7443, &config).expect("accepted");
            for _ in 0..6 {
                let _ = rx.recv(sim.host_mut(b));
                let _ = tx.recv(sim.host_mut(a));
                sim.run_for(SimDuration::from_millis(80));
            }
            pump!(tx, rx);
        }
        _ => panic!("only the COBS and TLS baselines use this variant"),
    }

    CpuSample {
        protocol,
        loss_rate,
        sender_app_seconds: sender_app,
        receiver_app_seconds: receiver_app,
        stack_seconds: stack,
        bytes_delivered: delivered,
    }
}

/// Figure 6(a): COBS / uCOBS processing cost normalised to raw TCP.
pub fn run_fig6a(loss_rates: &[f64], total_bytes: u64, seed: u64) -> Table {
    let mut table = Table::new(
        "Figure 6(a): processing cost normalised to raw TCP",
        &[
            "loss_rate",
            "tcp_send",
            "cobs_send",
            "ucobs_send",
            "tcp_recv",
            "cobs_recv",
            "ucobs_recv",
        ],
    );
    for &loss in loss_rates {
        let tcp = run_transfer(Protocol::TcpTlv, loss, total_bytes, 1200, seed);
        let cobs = run_transfer_without_utcp(Protocol::Ucobs, loss, total_bytes, 1200, seed);
        let ucobs = run_transfer(Protocol::Ucobs, loss, total_bytes, 1200, seed);
        // Normalise each side's application cost (plus its share of stack
        // cost) to the raw-TCP sender/receiver cost.
        let tcp_send = tcp.sender_app_seconds + tcp.stack_seconds / 2.0;
        let tcp_recv = tcp.receiver_app_seconds + tcp.stack_seconds / 2.0;
        let row = [
            loss,
            1.0,
            (cobs.sender_app_seconds + cobs.stack_seconds / 2.0) / tcp_send,
            (ucobs.sender_app_seconds + ucobs.stack_seconds / 2.0) / tcp_send,
            1.0,
            (cobs.receiver_app_seconds + cobs.stack_seconds / 2.0) / tcp_recv,
            (ucobs.receiver_app_seconds + ucobs.stack_seconds / 2.0) / tcp_recv,
        ];
        table.add_row_f64(&row);
    }
    table
}

/// Figure 6(b): uTLS processing cost normalised to stream TLS.
pub fn run_fig6b(loss_rates: &[f64], total_bytes: u64, seed: u64) -> Table {
    let mut table = Table::new(
        "Figure 6(b): processing cost normalised to TLS",
        &[
            "loss_rate",
            "tls_send",
            "utls_send",
            "tls_recv",
            "utls_recv",
        ],
    );
    for &loss in loss_rates {
        let tls = run_transfer_without_utcp(Protocol::Utls, loss, total_bytes, 1200, seed);
        let utls = run_transfer(Protocol::Utls, loss, total_bytes, 1200, seed);
        let row = [
            loss,
            1.0,
            utls.sender_app_seconds / tls.sender_app_seconds.max(1e-9),
            1.0,
            utls.receiver_app_seconds / tls.receiver_app_seconds.max(1e-9),
        ];
        table.add_row_f64(&row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_complete_and_account_time() {
        let s = run_transfer(Protocol::Ucobs, 0.0, 120_000, 1200, 3);
        assert_eq!(s.bytes_delivered, 120_000);
        assert!(s.total_seconds() > 0.0);
        let t = run_transfer(Protocol::TcpTlv, 0.01, 120_000, 1200, 3);
        assert_eq!(t.bytes_delivered, 120_000);
    }

    #[test]
    fn fig6a_table_shape() {
        let table = run_fig6a(&[0.01], 120_000, 4);
        assert_eq!(table.row_count(), 1);
        let csv = table.to_csv();
        assert!(csv.starts_with("loss_rate,"));
    }
}
