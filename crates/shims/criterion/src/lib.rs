//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The container image has no crates.io access, so the workspace vendors the
//! subset of the criterion API its benches use: `Criterion`,
//! `benchmark_group` with `measurement_time` / `warm_up_time` / `throughput`,
//! `bench_function` with `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple calibrated wall-clock
//! loop reporting mean ns/iter (and MB/s when a byte throughput is set); no
//! statistics, plots, or baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Create a driver with default settings.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== {name} ==");
        BenchmarkGroup {
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
            throughput: None,
        }
    }

    /// Register a stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut group = BenchmarkGroup {
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
            throughput: None,
        };
        group.bench_function(name, f);
        self
    }
}

/// A group of benchmarks sharing timing settings and throughput annotation.
pub struct BenchmarkGroup {
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the target measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Annotate subsequent benchmarks with a per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((iters, elapsed)) => {
                let ns = elapsed.as_nanos() as f64 / iters as f64;
                let extra = match self.throughput {
                    Some(Throughput::Bytes(b)) => {
                        let mbps = (b as f64 / 1e6) / (ns / 1e9);
                        format!("  {mbps:>10.1} MB/s")
                    }
                    Some(Throughput::Elements(e)) => {
                        let eps = e as f64 / (ns / 1e9);
                        format!("  {eps:>10.0} elem/s")
                    }
                    None => String::new(),
                };
                println!("{name:<32} {ns:>12.1} ns/iter{extra}");
            }
            None => println!("{name:<32} (no measurement)"),
        }
        self
    }

    /// Finish the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the body.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Run `body` repeatedly: first until the warm-up time elapses, then for
    /// the measurement period, recording mean time per iteration.
    pub fn iter<R>(&mut self, mut body: impl FnMut() -> R) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            std::hint::black_box(body());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        let deadline = start + self.measurement_time;
        while Instant::now() < deadline {
            // Batch iterations to amortise the clock reads.
            for _ in 0..8 {
                std::hint::black_box(body());
            }
            iters += 8;
        }
        self.result = Some((iters, start.elapsed()));
    }
}

/// Define a function running a list of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` invoking the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
