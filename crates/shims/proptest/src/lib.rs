//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The container image has no crates.io access, so the workspace vendors the
//! subset of the proptest API its tests use: the [`proptest!`] macro,
//! [`prelude::any`], integer-range and tuple strategies,
//! [`collection::vec`], the `prop_assert*` macros, and a deterministic
//! [`test_runner`].
//!
//! Differences from real proptest, chosen deliberately for reproducible CI:
//!
//! * **Determinism by default.** Every test's case sequence derives from a
//!   fixed per-test seed (a hash of source file and test name), so two runs
//!   of the suite generate byte-identical inputs. `PROPTEST_CASES` sets the
//!   case count for tests using the default config (an explicit
//!   `with_cases` always wins, as in real proptest); seeds never change run
//!   to run.
//! * **Regression replay.** Before generating fresh cases, the runner replays
//!   seeds recorded in `proptest-regressions/<file-stem>.txt` under the
//!   crate root (lines of the form `cc <test_name> <seed>`), mirroring real
//!   proptest's `cc` regression files.
//! * **No shrinking.** On failure the runner prints the failing seed (and the
//!   `cc` line to pin it) and re-raises the panic; inputs are not minimised.

#![forbid(unsafe_code)]

/// Strategy trait and implementations for primitive generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values of type `Self::Value` (no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generate one value from deterministic randomness.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Generate an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`crate::prelude::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_strategy_tuple! {
        (S0 0)
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
        (S0 0, S1 1, S2 2, S3 3, S4 4)
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len` and elements
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Create a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The deterministic test runner behind the [`proptest!`] macro.
pub mod test_runner {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Per-test configuration (a subset of proptest's `Config`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running exactly `cases` cases per test. As in real
        /// proptest, an explicit count wins over `PROPTEST_CASES`.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            // As in real proptest, PROPTEST_CASES feeds only the default
            // config; the fixed fallback keeps CI reproducible.
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse::<u32>().ok())
                .unwrap_or(64);
            Config { cases }
        }
    }

    /// SplitMix64: small, fast, and deterministic.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded construction.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Seeds recorded in `proptest-regressions/<file-stem>.txt` for `test`.
    /// Lines have the form `cc <test_name> <seed>`; `#` starts a comment.
    fn regression_seeds(source_file: &str, test: &str) -> Vec<u64> {
        let stem = std::path::Path::new(source_file)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("unknown");
        // Tests run with the crate root as the working directory; fall back to
        // CARGO_MANIFEST_DIR when set at compile time of the *caller* is not
        // available here, so probe both the CWD and its parent.
        let candidates = [
            format!("proptest-regressions/{stem}.txt"),
            format!("../proptest-regressions/{stem}.txt"),
        ];
        for path in &candidates {
            if let Ok(text) = std::fs::read_to_string(path) {
                return parse_regression_lines(&text, test);
            }
        }
        Vec::new()
    }

    /// Parse `cc <test_name> <seed>` lines (comments start with `#`),
    /// returning the seeds recorded for `test`.
    pub fn parse_regression_lines(text: &str, test: &str) -> Vec<u64> {
        let mut seeds = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            if parts.next() != Some("cc") {
                continue;
            }
            if parts.next() != Some(test) {
                continue;
            }
            if let Some(Ok(seed)) = parts.next().map(|s| s.parse::<u64>()) {
                seeds.push(seed);
            }
        }
        seeds
    }

    /// Run `case` once per regression seed, then `config.cases` times with
    /// deterministic fresh seeds. On failure, print the `cc` line that pins
    /// the failing case and re-raise the panic.
    pub fn run(
        source_file: &'static str,
        test_name: &'static str,
        config: &Config,
        mut case: impl FnMut(&mut TestRng),
    ) {
        let cases = config.cases;
        let base = fnv1a(format!("{source_file}::{test_name}").as_bytes());
        let replay = regression_seeds(source_file, test_name);
        if !replay.is_empty() {
            eprintln!(
                "proptest-shim: replaying {} regression seed(s) for {test_name}",
                replay.len()
            );
        }
        let fresh = (0..cases as u64).map(|i| base.wrapping_add(i));
        for (kind, seed) in replay
            .into_iter()
            .map(|s| ("regression", s))
            .chain(fresh.map(|s| ("generated", s)))
        {
            let mut rng = TestRng::new(seed);
            let result = catch_unwind(AssertUnwindSafe(|| case(&mut rng)));
            if let Err(panic) = result {
                eprintln!(
                    "proptest: {test_name} failed on {kind} seed {seed}; pin it with the line\n\
                     cc {test_name} {seed}\n\
                     in proptest-regressions/ (see {source_file})"
                );
                resume_unwind(panic);
            }
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The canonical strategy for any [`Arbitrary`] type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body across deterministic generated
/// inputs (plus any recorded regression seeds).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                $crate::test_runner::run(file!(), stringify!($name), &config, |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strategy, rng);)+
                    $body
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::{parse_regression_lines, TestRng};

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        let mut c = TestRng::new(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn regression_lines_parse_cc_entries() {
        let text = "# comment\ncc my_test 42\ncc other_test 7\ncc my_test 99\nbogus line\n";
        assert_eq!(parse_regression_lines(text, "my_test"), vec![42, 99]);
        assert_eq!(parse_regression_lines(text, "other_test"), vec![7]);
        assert!(parse_regression_lines(text, "absent").is_empty());
    }

    #[test]
    fn config_carries_case_count() {
        assert_eq!(ProptestConfig::with_cases(17).cases, 17);
        assert_eq!(ProptestConfig::default().cases, 64);
    }

    // The macro surface itself, exercised end to end: the same generated
    // sequence must be produced on every run (determinism of the harness).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_vectors_respect_bounds(
            data in collection::vec(any::<u8>(), 1..50),
            n in 3u32..9,
        ) {
            prop_assert!(!data.is_empty() && data.len() < 50);
            prop_assert!((3..9).contains(&n));
        }
    }
}
