//! A minimal, dependency-free stand-in for the `bytes` crate, providing the
//! subset of the [`Bytes`] API this workspace uses: a cheaply cloneable,
//! immutable, contiguous byte buffer.
//!
//! The container image has no crates.io access, so the workspace vendors the
//! handful of external APIs it needs as local shims (see `crates/shims/`).
//! This one is semantically compatible with `bytes::Bytes` for the operations
//! exercised here (construction, `Deref` to `[u8]`, equality/ordering/hash,
//! cheap clones); it does not implement `Buf`/`BufMut` or sub-slicing without
//! copy.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wrap a static byte slice (copied once; the real crate borrows it, but
    /// the observable behaviour is identical).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out a sub-range as a new buffer.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Bytes::copy_from_slice(&self.data[start..end])
    }

    /// Copy the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data[..] == other.as_slice()
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "..{} bytes", self.data.len())?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_deref() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc").to_vec(), b"abc".to_vec());
    }

    #[test]
    fn slice_copies_range() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4]);
        assert_eq!(&b.slice(1..4)[..], &[1, 2, 3]);
        assert_eq!(&b.slice(..)[..], &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn clones_share_storage() {
        let b = Bytes::from(vec![9u8; 1000]);
        let c = b.clone();
        assert_eq!(b, c);
    }
}
