//! Data handed from the TCP stack to the application.
//!
//! With uTCP's `SO_UNORDERED` option, every `read()` is prefixed by a 5-byte
//! metadata header (1 flag byte + 4-byte stream offset) telling the
//! application where the returned bytes sit in the sender's byte stream
//! (§4.1, §7). [`DeliveredChunk`] is the in-memory equivalent, and
//! [`DeliveredChunk::encode_read_header`] produces the exact 5-byte header the
//! paper's kernel prototype prepends, for wire-format parity tests.

use bytes::Bytes;

/// Flag bit set in the read header when the chunk is being delivered in order.
pub const FLAG_IN_ORDER: u8 = 0x01;

/// A contiguous run of stream bytes delivered to the application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeliveredChunk {
    /// Logical offset of the first byte within the sender's byte stream
    /// (sequence number minus the initial sequence number, minus the SYN).
    pub offset: u64,
    /// Whether this delivery is at the current cumulative in-order point.
    pub in_order: bool,
    /// The bytes themselves.
    pub data: Bytes,
}

impl DeliveredChunk {
    /// Create a chunk.
    pub fn new(offset: u64, in_order: bool, data: impl Into<Bytes>) -> Self {
        DeliveredChunk {
            offset,
            in_order,
            data: data.into(),
        }
    }

    /// Stream offset one past the last byte of this chunk.
    pub fn end_offset(&self) -> u64 {
        self.offset + self.data.len() as u64
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the chunk carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The 5-byte uTCP read header (flags byte + 32-bit truncated offset) that
    /// the kernel prototype prepends to data returned from `read()`.
    pub fn encode_read_header(&self) -> [u8; 5] {
        let mut h = [0u8; 5];
        h[0] = if self.in_order { FLAG_IN_ORDER } else { 0 };
        h[1..5].copy_from_slice(&(self.offset as u32).to_be_bytes());
        h
    }

    /// Parse a 5-byte read header into `(in_order, offset)`.
    pub fn decode_read_header(h: &[u8]) -> Option<(bool, u32)> {
        if h.len() < 5 {
            return None;
        }
        let in_order = h[0] & FLAG_IN_ORDER != 0;
        let offset = u32::from_be_bytes([h[1], h[2], h[3], h[4]]);
        Some((in_order, offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let c = DeliveredChunk::new(100, true, vec![1, 2, 3]);
        assert_eq!(c.end_offset(), 103);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn read_header_roundtrip() {
        let c = DeliveredChunk::new(0xDEAD_BEEF, false, vec![0u8; 7]);
        let h = c.encode_read_header();
        assert_eq!(h.len(), 5);
        let (in_order, offset) = DeliveredChunk::decode_read_header(&h).unwrap();
        assert!(!in_order);
        assert_eq!(offset, 0xDEAD_BEEF);
    }

    #[test]
    fn read_header_in_order_flag() {
        let c = DeliveredChunk::new(42, true, vec![]);
        assert!(c.is_empty());
        let h = c.encode_read_header();
        assert_eq!(h[0], FLAG_IN_ORDER);
        assert_eq!(DeliveredChunk::decode_read_header(&h), Some((true, 42)));
    }

    #[test]
    fn short_header_rejected() {
        assert!(DeliveredChunk::decode_read_header(&[0, 1, 2]).is_none());
    }
}
