//! The TCP send buffer, including uTCP's send-side extensions (§4.2).
//!
//! The buffer is a queue of application writes ("chunks", emulating Linux
//! skbuffs). Offsets are 64-bit logical stream offsets; the connection maps
//! them to 32-bit wire sequence numbers.
//!
//! uTCP semantics implemented here:
//!
//! * **Priority insertion** — a write tagged with a higher priority is placed
//!   ahead of lower-priority writes that have not yet been transmitted.
//! * **Transmit-boundary constraint** — data is never inserted ahead of any
//!   write that has been transmitted in whole or in part, which is what keeps
//!   the reordering invisible on the wire.
//! * **Squash** — an optional flag discards untransmitted writes carrying the
//!   same tag, for update-oriented applications.
//! * **Write-boundary preservation** — when the unordered-send option is on,
//!   a wire segment never spans two writes (each write starts a new skbuff),
//!   with optional coalescing of small writes into the tail skbuff.

use std::collections::VecDeque;

/// Error returned when a write does not fit in the send buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BufferFull;

#[derive(Clone, Debug)]
struct Chunk {
    data: Vec<u8>,
    priority: u32,
}

/// The send queue.
#[derive(Clone, Debug)]
pub struct SendBuffer {
    chunks: VecDeque<Chunk>,
    /// Stream offset of the first byte of `chunks[0]`.
    head_offset: u64,
    /// Stream offset up to which data has been transmitted at least once.
    transmitted: u64,
    /// Total bytes currently buffered.
    buffered: usize,
    capacity: usize,
    /// Count of writes that were coalesced into an existing tail chunk.
    coalesced_writes: u64,
    /// Count of writes whose position was advanced past lower-priority data.
    priority_insertions: u64,
    /// Count of chunks discarded by the squash flag.
    squashed_chunks: u64,
}

impl SendBuffer {
    /// Create an empty buffer with the given byte capacity.
    pub fn new(capacity: usize) -> Self {
        SendBuffer {
            chunks: VecDeque::new(),
            head_offset: 0,
            transmitted: 0,
            buffered: 0,
            capacity,
            coalesced_writes: 0,
            priority_insertions: 0,
            squashed_chunks: 0,
        }
    }

    /// Bytes currently buffered (acknowledged data is removed).
    pub fn len(&self) -> usize {
        self.buffered
    }

    /// True if no data is buffered.
    pub fn is_empty(&self) -> bool {
        self.buffered == 0
    }

    /// Free space in bytes.
    pub fn free_space(&self) -> usize {
        self.capacity - self.buffered
    }

    /// Stream offset of the first buffered (lowest unacknowledged) byte.
    pub fn head_offset(&self) -> u64 {
        self.head_offset
    }

    /// Stream offset one past the last buffered byte.
    pub fn end_offset(&self) -> u64 {
        self.head_offset + self.buffered as u64
    }

    /// Stream offset up to which data has been transmitted at least once.
    pub fn transmitted_offset(&self) -> u64 {
        self.transmitted
    }

    /// Number of writes coalesced into the tail chunk.
    pub fn coalesced_writes(&self) -> u64 {
        self.coalesced_writes
    }

    /// Number of writes inserted ahead of lower-priority data.
    pub fn priority_insertions(&self) -> u64 {
        self.priority_insertions
    }

    /// Number of chunks removed by squashing writes.
    pub fn squashed_chunks(&self) -> u64 {
        self.squashed_chunks
    }

    /// Index of the first chunk that is entirely untransmitted, i.e. the
    /// earliest position at which new data may legally be inserted.
    fn first_untouched_chunk(&self) -> usize {
        let mut offset = self.head_offset;
        for (i, chunk) in self.chunks.iter().enumerate() {
            if offset >= self.transmitted {
                return i;
            }
            offset += chunk.data.len() as u64;
        }
        self.chunks.len()
    }

    /// Enqueue an ordinary (standard TCP) write at the tail of the queue.
    pub fn write(&mut self, data: &[u8]) -> Result<usize, BufferFull> {
        self.write_with_priority(data, 0, false, false, usize::MAX, false)
    }

    /// Enqueue a write with uTCP send-side semantics.
    ///
    /// * `priority` — larger values are more urgent.
    /// * `squash` — discard untransmitted chunks with the same priority tag.
    /// * `unordered` — whether `SO_UNORDEREDSEND` is active (enables priority
    ///   insertion, squash, and write-boundary preservation).
    /// * `mss`, `coalesce` — coalesce this write into the tail chunk when both
    ///   fit within one MSS-sized skbuff (the §8.1 mitigation).
    pub fn write_with_priority(
        &mut self,
        data: &[u8],
        priority: u32,
        squash: bool,
        unordered: bool,
        mss: usize,
        coalesce: bool,
    ) -> Result<usize, BufferFull> {
        if data.len() > self.free_space() {
            return Err(BufferFull);
        }
        if data.is_empty() {
            return Ok(0);
        }

        if !unordered {
            // Standard TCP: a pure byte stream; append to the tail chunk to
            // emulate Linux's MSS-sized skbuff packing.
            if let Some(last) = self.chunks.back_mut() {
                last.data.extend_from_slice(data);
            } else {
                self.chunks.push_back(Chunk {
                    data: data.to_vec(),
                    priority: 0,
                });
            }
            self.buffered += data.len();
            return Ok(data.len());
        }

        let first_insertable = self.first_untouched_chunk();

        // Squash: drop untransmitted chunks carrying exactly the same tag.
        if squash {
            let mut i = self.chunks.len();
            while i > first_insertable {
                i -= 1;
                if self.chunks[i].priority == priority {
                    let removed = self.chunks.remove(i).expect("index in range");
                    self.buffered -= removed.data.len();
                    self.squashed_chunks += 1;
                }
            }
        }

        // Find the insertion index: after all transmitted data, before the
        // first untransmitted chunk with strictly lower priority (FIFO among
        // equal priorities).
        let first_insertable = self.first_untouched_chunk();
        let mut insert_at = self.chunks.len();
        for i in first_insertable..self.chunks.len() {
            if self.chunks[i].priority < priority {
                insert_at = i;
                break;
            }
        }

        if insert_at < self.chunks.len() {
            self.priority_insertions += 1;
            self.chunks.insert(
                insert_at,
                Chunk {
                    data: data.to_vec(),
                    priority,
                },
            );
            self.buffered += data.len();
            return Ok(data.len());
        }

        // Appending at the tail: optionally coalesce with the tail chunk if
        // both writes fit entirely within one MSS-sized skbuff, the tail is
        // untransmitted, and the priorities match.
        if coalesce {
            if let Some(last) = self.chunks.back() {
                let last_start = self.end_offset() - last.data.len() as u64;
                let tail_untransmitted = last_start >= self.transmitted;
                if tail_untransmitted
                    && last.priority == priority
                    && last.data.len() + data.len() <= mss
                {
                    self.chunks
                        .back_mut()
                        .expect("tail exists")
                        .data
                        .extend_from_slice(data);
                    self.buffered += data.len();
                    self.coalesced_writes += 1;
                    return Ok(data.len());
                }
            }
        }

        self.chunks.push_back(Chunk {
            data: data.to_vec(),
            priority,
        });
        self.buffered += data.len();
        Ok(data.len())
    }

    /// Read up to `max_len` bytes starting at stream offset `offset` for
    /// (re)transmission. When `respect_boundaries` is set the returned slice
    /// never crosses a chunk boundary (uTCP's write-boundary preservation).
    ///
    /// Returns `None` if `offset` is outside the buffered range.
    pub fn data_at(
        &self,
        offset: u64,
        max_len: usize,
        respect_boundaries: bool,
    ) -> Option<Vec<u8>> {
        if offset < self.head_offset || offset >= self.end_offset() || max_len == 0 {
            return None;
        }
        let mut chunk_start = self.head_offset;
        let mut out: Vec<u8> = Vec::new();
        for chunk in &self.chunks {
            let chunk_end = chunk_start + chunk.data.len() as u64;
            if offset < chunk_end {
                let skip = offset.saturating_sub(chunk_start) as usize;
                let from_this_chunk = if out.is_empty() {
                    &chunk.data[skip..]
                } else {
                    &chunk.data[..]
                };
                let remaining = max_len - out.len();
                let take = from_this_chunk.len().min(remaining);
                out.extend_from_slice(&from_this_chunk[..take]);
                if out.len() >= max_len || respect_boundaries {
                    break;
                }
            }
            chunk_start = chunk_end;
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    /// Record that data up to `offset` (exclusive) has been transmitted at
    /// least once.
    pub fn mark_transmitted(&mut self, offset: u64) {
        if offset > self.transmitted {
            self.transmitted = offset.min(self.end_offset());
        }
    }

    /// Remove data acknowledged up to `offset` (exclusive).
    pub fn acknowledge(&mut self, offset: u64) {
        let offset = offset.min(self.end_offset());
        while self.head_offset < offset {
            let Some(front) = self.chunks.front_mut() else {
                break;
            };
            let front_len = front.data.len() as u64;
            let acked_in_front = (offset - self.head_offset).min(front_len) as usize;
            if acked_in_front == front.data.len() {
                self.buffered -= front.data.len();
                self.head_offset += front_len;
                self.chunks.pop_front();
            } else {
                front.data.drain(..acked_in_front);
                self.buffered -= acked_in_front;
                self.head_offset += acked_in_front as u64;
                break;
            }
        }
        if self.transmitted < self.head_offset {
            self.transmitted = self.head_offset;
        }
    }

    /// The stream offsets (relative to the head) of chunk boundaries from the
    /// given offset onward, used by the connection to segment along write
    /// boundaries. Returns the end offset of the chunk containing `offset`.
    pub fn chunk_end_at(&self, offset: u64) -> Option<u64> {
        if offset < self.head_offset || offset >= self.end_offset() {
            return None;
        }
        let mut chunk_start = self.head_offset;
        for chunk in &self.chunks {
            let chunk_end = chunk_start + chunk.data.len() as u64;
            if offset < chunk_end {
                return Some(chunk_end);
            }
            chunk_start = chunk_end;
        }
        None
    }

    /// Bytes available at or after `offset`.
    pub fn available_from(&self, offset: u64) -> usize {
        self.end_offset()
            .saturating_sub(offset.max(self.head_offset)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: usize = 1448;

    #[test]
    fn standard_writes_are_fifo_bytes() {
        let mut b = SendBuffer::new(1 << 16);
        b.write(b"hello ").unwrap();
        b.write(b"world").unwrap();
        assert_eq!(b.len(), 11);
        assert_eq!(b.data_at(0, 100, false).unwrap(), b"hello world");
        assert_eq!(b.data_at(6, 100, false).unwrap(), b"world");
    }

    #[test]
    fn buffer_full_is_reported() {
        let mut b = SendBuffer::new(8);
        assert_eq!(b.write(b"12345678"), Ok(8));
        assert_eq!(b.write(b"x"), Err(BufferFull));
        assert_eq!(b.free_space(), 0);
    }

    #[test]
    fn acknowledge_frees_space_and_advances_head() {
        let mut b = SendBuffer::new(1 << 16);
        b.write(&[1u8; 100]).unwrap();
        b.write(&[2u8; 100]).unwrap();
        b.mark_transmitted(150);
        b.acknowledge(150);
        assert_eq!(b.head_offset(), 150);
        assert_eq!(b.len(), 50);
        assert_eq!(b.data_at(150, 100, false).unwrap(), vec![2u8; 50]);
        // Acknowledging beyond the end clamps.
        b.acknowledge(1_000_000);
        assert!(b.is_empty());
        assert_eq!(b.head_offset(), 200);
    }

    #[test]
    fn priority_write_passes_untransmitted_low_priority_data() {
        let mut b = SendBuffer::new(1 << 16);
        // Low-priority bulk write, none of it transmitted yet.
        b.write_with_priority(&[0u8; 1000], 0, false, true, MSS, false)
            .unwrap();
        // High-priority write should jump ahead of it.
        b.write_with_priority(&[9u8; 10], 5, false, true, MSS, false)
            .unwrap();
        assert_eq!(b.priority_insertions(), 1);
        assert_eq!(b.data_at(0, 10, true).unwrap(), vec![9u8; 10]);
        assert_eq!(b.data_at(10, 4, true).unwrap(), vec![0u8; 4]);
    }

    #[test]
    fn priority_write_never_passes_transmitted_data() {
        let mut b = SendBuffer::new(1 << 16);
        b.write_with_priority(&[0u8; 1000], 0, false, true, MSS, false)
            .unwrap();
        // Part of the low-priority write has hit the wire.
        b.mark_transmitted(100);
        b.write_with_priority(&[9u8; 10], 5, false, true, MSS, false)
            .unwrap();
        // The high-priority data must come after the *entire* partially
        // transmitted write, not in the middle of it (§4.2).
        assert_eq!(b.data_at(0, 1000, true).unwrap(), vec![0u8; 1000]);
        assert_eq!(b.data_at(1000, 10, true).unwrap(), vec![9u8; 10]);
        assert_eq!(b.priority_insertions(), 0);
    }

    #[test]
    fn equal_priority_writes_stay_fifo() {
        let mut b = SendBuffer::new(1 << 16);
        b.write_with_priority(b"first", 3, false, true, MSS, false)
            .unwrap();
        b.write_with_priority(b"second", 3, false, true, MSS, false)
            .unwrap();
        assert_eq!(b.data_at(0, 5, true).unwrap(), b"first");
        assert_eq!(b.data_at(5, 6, true).unwrap(), b"second");
    }

    #[test]
    fn squash_discards_untransmitted_same_tag_data() {
        let mut b = SendBuffer::new(1 << 16);
        b.write_with_priority(b"stale update 1", 7, false, true, MSS, false)
            .unwrap();
        b.write_with_priority(b"other tag", 3, false, true, MSS, false)
            .unwrap();
        b.write_with_priority(b"fresh!", 7, true, true, MSS, false)
            .unwrap();
        assert_eq!(b.squashed_chunks(), 1);
        // Tag-7 data now consists only of the fresh write, ordered ahead of
        // the lower-priority tag-3 write.
        assert_eq!(b.data_at(0, 6, true).unwrap(), b"fresh!");
        assert_eq!(b.data_at(6, 9, true).unwrap(), b"other tag");
        assert_eq!(b.len(), 15);
    }

    #[test]
    fn squash_does_not_discard_transmitted_data() {
        let mut b = SendBuffer::new(1 << 16);
        b.write_with_priority(b"already sent", 7, false, true, MSS, false)
            .unwrap();
        b.mark_transmitted(5);
        b.write_with_priority(b"new", 7, true, true, MSS, false)
            .unwrap();
        assert_eq!(b.squashed_chunks(), 0);
        assert_eq!(b.len(), 15);
    }

    #[test]
    fn boundary_respecting_reads_stop_at_chunk_end() {
        let mut b = SendBuffer::new(1 << 16);
        b.write_with_priority(&[1u8; 500], 0, false, true, MSS, false)
            .unwrap();
        b.write_with_priority(&[2u8; 500], 0, false, true, MSS, false)
            .unwrap();
        // With boundaries respected, a read at offset 0 stops at 500 bytes.
        assert_eq!(b.data_at(0, MSS, true).unwrap().len(), 500);
        // Without, it can span both writes.
        assert_eq!(b.data_at(0, MSS, false).unwrap().len(), 1000);
        assert_eq!(b.chunk_end_at(0), Some(500));
        assert_eq!(b.chunk_end_at(500), Some(1000));
        assert_eq!(b.chunk_end_at(1000), None);
    }

    #[test]
    fn coalescing_merges_small_writes_into_tail_skbuff() {
        let mut b = SendBuffer::new(1 << 16);
        // Four 362-byte writes fit exactly in one 1448-byte MSS.
        for _ in 0..4 {
            b.write_with_priority(&[3u8; 362], 0, false, true, MSS, true)
                .unwrap();
        }
        assert_eq!(b.coalesced_writes(), 3);
        assert_eq!(b.data_at(0, MSS, true).unwrap().len(), MSS);
        // A fifth write no longer fits in the tail skbuff and starts a new one.
        b.write_with_priority(&[3u8; 362], 0, false, true, MSS, true)
            .unwrap();
        assert_eq!(b.data_at(MSS as u64, MSS, true).unwrap().len(), 362);
    }

    #[test]
    fn coalescing_does_not_merge_across_priorities_or_transmitted_tail() {
        let mut b = SendBuffer::new(1 << 16);
        b.write_with_priority(&[1u8; 100], 0, false, true, MSS, true)
            .unwrap();
        b.write_with_priority(&[2u8; 100], 5, false, true, MSS, true)
            .unwrap();
        assert_eq!(b.coalesced_writes(), 0);
        let mut b = SendBuffer::new(1 << 16);
        b.write_with_priority(&[1u8; 100], 0, false, true, MSS, true)
            .unwrap();
        b.mark_transmitted(100);
        b.write_with_priority(&[2u8; 100], 0, false, true, MSS, true)
            .unwrap();
        assert_eq!(b.coalesced_writes(), 0, "tail already transmitted");
    }

    #[test]
    fn available_from_and_empty_reads() {
        let mut b = SendBuffer::new(1 << 16);
        assert!(b.data_at(0, 10, false).is_none());
        b.write(&[0u8; 10]).unwrap();
        assert_eq!(b.available_from(0), 10);
        assert_eq!(b.available_from(4), 6);
        assert_eq!(b.available_from(100), 0);
        assert!(b.data_at(10, 10, false).is_none());
        assert!(b.data_at(0, 0, false).is_none());
    }

    #[test]
    fn offsets_are_stable_past_the_32_bit_boundary() {
        // Stream offsets are 64-bit; only the wire mapping wraps at 2^32.
        // Simulate a long-lived connection by acknowledging in large strides
        // until the head offset crosses 2^32, with a live tail each time.
        let mut b = SendBuffer::new(1 << 16);
        let stride: u64 = 40_000;
        let target = u64::from(u32::MAX) + 2 * stride;
        let mut wrote: u64 = 0;
        while b.head_offset() < target {
            let n = b.write(&[7u8; 40_000]).unwrap();
            wrote += n as u64;
            b.mark_transmitted(wrote);
            b.acknowledge(wrote);
        }
        assert!(b.head_offset() > u64::from(u32::MAX));
        assert!(b.is_empty());
        // Data written past the boundary reads back at its 64-bit offset.
        let head = b.head_offset();
        b.write(b"post-wrap").unwrap();
        assert_eq!(b.data_at(head, 100, false).unwrap(), b"post-wrap");
        assert_eq!(b.end_offset(), head + 9);
        assert_eq!(b.available_from(head + 4), 5);
        assert_eq!(b.chunk_end_at(head + 1), Some(head + 9));
        // Reads below the (post-2^32) head are cleanly rejected.
        assert!(b.data_at(head - 1, 10, false).is_none());
        assert!(b.data_at(u64::from(u32::MAX), 10, false).is_none());
    }

    #[test]
    fn transmit_and_ack_marks_clamp_at_the_buffered_range() {
        let mut b = SendBuffer::new(1 << 10);
        b.write(&[1u8; 100]).unwrap();
        // Marking far beyond the end clamps to the end.
        b.mark_transmitted(u64::from(u32::MAX));
        assert_eq!(b.transmitted_offset(), 100);
        // Acknowledging backwards is a no-op.
        b.acknowledge(40);
        b.acknowledge(10);
        assert_eq!(b.head_offset(), 40);
        assert_eq!(b.len(), 60);
        // Boundary read at exactly the end offset is rejected, one before is
        // the final byte.
        assert!(b.data_at(100, 1, false).is_none());
        assert_eq!(b.data_at(99, 1, false).unwrap().len(), 1);
    }

    #[test]
    fn empty_write_is_noop() {
        let mut b = SendBuffer::new(16);
        assert_eq!(b.write(&[]), Ok(0));
        assert!(b.is_empty());
    }
}
