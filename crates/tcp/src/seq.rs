//! 32-bit TCP sequence number arithmetic (RFC 793 style modular comparison).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A TCP sequence number with wrapping 32-bit arithmetic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(pub u32);

impl SeqNum {
    /// Construct from a raw 32-bit value.
    pub const fn new(v: u32) -> Self {
        SeqNum(v)
    }

    /// The raw 32-bit value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// `self < other` in modular arithmetic.
    pub fn lt(self, other: SeqNum) -> bool {
        (other.0.wrapping_sub(self.0) as i32) > 0
    }

    /// `self <= other` in modular arithmetic.
    pub fn le(self, other: SeqNum) -> bool {
        self == other || self.lt(other)
    }

    /// `self > other` in modular arithmetic.
    pub fn gt(self, other: SeqNum) -> bool {
        other.lt(self)
    }

    /// `self >= other` in modular arithmetic.
    pub fn ge(self, other: SeqNum) -> bool {
        other.le(self)
    }

    /// True if `self` lies in the half-open interval `[start, end)`.
    pub fn in_range(self, start: SeqNum, end: SeqNum) -> bool {
        start.le(self) && self.lt(end)
    }

    /// The number of bytes from `earlier` to `self` (modular).
    pub fn distance_from(self, earlier: SeqNum) -> u32 {
        self.0.wrapping_sub(earlier.0)
    }

    /// The smaller (earlier) of two sequence numbers.
    pub fn min(self, other: SeqNum) -> SeqNum {
        if self.le(other) {
            self
        } else {
            other
        }
    }

    /// The larger (later) of two sequence numbers.
    pub fn max(self, other: SeqNum) -> SeqNum {
        if self.ge(other) {
            self
        } else {
            other
        }
    }
}

impl Add<u32> for SeqNum {
    type Output = SeqNum;
    fn add(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(rhs))
    }
}

impl AddAssign<u32> for SeqNum {
    fn add_assign(&mut self, rhs: u32) {
        self.0 = self.0.wrapping_add(rhs);
    }
}

impl Sub<u32> for SeqNum {
    type Output = SeqNum;
    fn sub(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_sub(rhs))
    }
}

impl Sub<SeqNum> for SeqNum {
    type Output = u32;
    fn sub(self, rhs: SeqNum) -> u32 {
        self.0.wrapping_sub(rhs.0)
    }
}

impl fmt::Debug for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seq({})", self.0)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_comparison() {
        let a = SeqNum(10);
        let b = SeqNum(20);
        assert!(a.lt(b));
        assert!(a.le(b));
        assert!(b.gt(a));
        assert!(b.ge(a));
        assert!(a.le(a));
        assert!(!a.lt(a));
    }

    #[test]
    fn wrapping_comparison() {
        let near_max = SeqNum(u32::MAX - 5);
        let wrapped = SeqNum(10);
        assert!(near_max.lt(wrapped));
        assert!(wrapped.gt(near_max));
        assert_eq!(wrapped.distance_from(near_max), 16);
        assert_eq!(near_max + 16, wrapped);
    }

    #[test]
    fn in_range_across_wrap() {
        let start = SeqNum(u32::MAX - 2);
        let end = SeqNum(5);
        assert!(SeqNum(u32::MAX).in_range(start, end));
        assert!(SeqNum(0).in_range(start, end));
        assert!(SeqNum(4).in_range(start, end));
        assert!(!SeqNum(5).in_range(start, end));
        assert!(!SeqNum(100).in_range(start, end));
    }

    #[test]
    fn comparison_at_the_half_range_boundary() {
        // RFC 793 modular comparison: `a < b` iff the forward distance from a
        // to b is in (0, 2^31). Exactly 2^31 apart is the ambiguous point; the
        // wrapping-sub-as-i32 rule resolves it as "not less" both ways.
        let a = SeqNum(0);
        let b = SeqNum(1 << 31);
        assert!(!a.lt(b), "distance of exactly 2^31 is not 'less'");
        assert!(!b.lt(a));
        assert!(!a.le(b) && !b.le(a), "2^31 apart: ordered neither way");
        // One below the boundary is unambiguous...
        assert!(a.lt(SeqNum((1 << 31) - 1)));
        // ...and one above flips the direction.
        assert!(SeqNum((1u32 << 31) + 1).lt(a));
    }

    #[test]
    fn comparisons_are_translation_invariant_across_wrap() {
        // Shifting both operands by any offset (including ones that wrap)
        // must not change the comparison.
        let pairs = [(0u32, 1u32), (5, 100), (1000, 1001)];
        let offsets = [0u32, u32::MAX - 2, u32::MAX, 1 << 31, (1 << 31) - 1];
        for &(a, b) in &pairs {
            for &off in &offsets {
                let (sa, sb) = (SeqNum(a) + off, SeqNum(b) + off);
                assert!(sa.lt(sb), "{a}+{off} < {b}+{off}");
                assert!(sb.gt(sa));
                assert_eq!(sb.distance_from(sa), b - a);
            }
        }
    }

    #[test]
    fn min_max_and_range_across_the_wrap_point() {
        let before = SeqNum(u32::MAX - 1);
        let after = SeqNum(3); // 5 bytes later, wrapped
        assert_eq!(before.min(after), before);
        assert_eq!(before.max(after), after);
        assert_eq!(after.min(before), before);
        // Half-open interval semantics survive the wrap.
        assert!(before.in_range(before, after));
        assert!(!after.in_range(before, after), "end is exclusive");
        assert!(SeqNum(0).in_range(before, after));
        // Empty interval contains nothing, wrapped or not.
        assert!(!before.in_range(before, before));
        assert!(!SeqNum(0).in_range(after, after));
        // Arithmetic identities at the wrap.
        assert_eq!(SeqNum(u32::MAX) + 1, SeqNum(0));
        assert_eq!(SeqNum(0) - 1u32, SeqNum(u32::MAX));
        assert_eq!(SeqNum(0) - SeqNum(u32::MAX), 1);
    }

    #[test]
    fn arithmetic() {
        let mut s = SeqNum(100);
        s += 50;
        assert_eq!(s, SeqNum(150));
        assert_eq!(s - 25u32, SeqNum(125));
        assert_eq!(SeqNum(150) - SeqNum(100), 50);
        assert_eq!(SeqNum(10).min(SeqNum(20)), SeqNum(10));
        assert_eq!(SeqNum(10).max(SeqNum(20)), SeqNum(20));
    }
}
