//! 32-bit TCP sequence number arithmetic (RFC 793 style modular comparison).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A TCP sequence number with wrapping 32-bit arithmetic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(pub u32);

impl SeqNum {
    /// Construct from a raw 32-bit value.
    pub const fn new(v: u32) -> Self {
        SeqNum(v)
    }

    /// The raw 32-bit value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// `self < other` in modular arithmetic.
    pub fn lt(self, other: SeqNum) -> bool {
        (other.0.wrapping_sub(self.0) as i32) > 0
    }

    /// `self <= other` in modular arithmetic.
    pub fn le(self, other: SeqNum) -> bool {
        self == other || self.lt(other)
    }

    /// `self > other` in modular arithmetic.
    pub fn gt(self, other: SeqNum) -> bool {
        other.lt(self)
    }

    /// `self >= other` in modular arithmetic.
    pub fn ge(self, other: SeqNum) -> bool {
        other.le(self)
    }

    /// True if `self` lies in the half-open interval `[start, end)`.
    pub fn in_range(self, start: SeqNum, end: SeqNum) -> bool {
        start.le(self) && self.lt(end)
    }

    /// The number of bytes from `earlier` to `self` (modular).
    pub fn distance_from(self, earlier: SeqNum) -> u32 {
        self.0.wrapping_sub(earlier.0)
    }

    /// The smaller (earlier) of two sequence numbers.
    pub fn min(self, other: SeqNum) -> SeqNum {
        if self.le(other) {
            self
        } else {
            other
        }
    }

    /// The larger (later) of two sequence numbers.
    pub fn max(self, other: SeqNum) -> SeqNum {
        if self.ge(other) {
            self
        } else {
            other
        }
    }
}

impl Add<u32> for SeqNum {
    type Output = SeqNum;
    fn add(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(rhs))
    }
}

impl AddAssign<u32> for SeqNum {
    fn add_assign(&mut self, rhs: u32) {
        self.0 = self.0.wrapping_add(rhs);
    }
}

impl Sub<u32> for SeqNum {
    type Output = SeqNum;
    fn sub(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_sub(rhs))
    }
}

impl Sub<SeqNum> for SeqNum {
    type Output = u32;
    fn sub(self, rhs: SeqNum) -> u32 {
        self.0.wrapping_sub(rhs.0)
    }
}

impl fmt::Debug for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seq({})", self.0)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_comparison() {
        let a = SeqNum(10);
        let b = SeqNum(20);
        assert!(a.lt(b));
        assert!(a.le(b));
        assert!(b.gt(a));
        assert!(b.ge(a));
        assert!(a.le(a));
        assert!(!a.lt(a));
    }

    #[test]
    fn wrapping_comparison() {
        let near_max = SeqNum(u32::MAX - 5);
        let wrapped = SeqNum(10);
        assert!(near_max.lt(wrapped));
        assert!(wrapped.gt(near_max));
        assert_eq!(wrapped.distance_from(near_max), 16);
        assert_eq!(near_max + 16, wrapped);
    }

    #[test]
    fn in_range_across_wrap() {
        let start = SeqNum(u32::MAX - 2);
        let end = SeqNum(5);
        assert!(SeqNum(u32::MAX).in_range(start, end));
        assert!(SeqNum(0).in_range(start, end));
        assert!(SeqNum(4).in_range(start, end));
        assert!(!SeqNum(5).in_range(start, end));
        assert!(!SeqNum(100).in_range(start, end));
    }

    #[test]
    fn arithmetic() {
        let mut s = SeqNum(100);
        s += 50;
        assert_eq!(s, SeqNum(150));
        assert_eq!(s - 25u32, SeqNum(125));
        assert_eq!(SeqNum(150) - SeqNum(100), 50);
        assert_eq!(SeqNum(10).min(SeqNum(20)), SeqNum(10));
        assert_eq!(SeqNum(10).max(SeqNum(20)), SeqNum(20));
    }
}
