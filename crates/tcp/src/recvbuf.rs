//! The TCP receive path: reassembly, SACK generation, and uTCP's
//! receive-side extension (§4.1).
//!
//! A conventional receiver holds out-of-order segments in a reordering queue
//! and releases data to the application only once the sequence-space gap
//! before it has been filled. With `SO_UNORDERED` enabled, every arriving
//! segment is *also* pushed to the application immediately, tagged with its
//! stream offset, while all wire-visible behaviour (cumulative ACK, SACK
//! blocks, advertised window) remains exactly that of standard TCP.

use crate::delivered::DeliveredChunk;
use crate::segment::SackBlock;
use crate::seq::SeqNum;
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};

/// Receive-path statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecvStats {
    /// Segments that arrived exactly at the cumulative point.
    pub in_order_segments: u64,
    /// Segments that arrived above the cumulative point (a gap exists).
    pub out_of_order_segments: u64,
    /// Segments that carried only already-received data.
    pub duplicate_segments: u64,
    /// Total payload bytes accepted.
    pub bytes_received: u64,
    /// Chunks delivered to the application ahead of the cumulative point.
    pub early_deliveries: u64,
}

/// The receive buffer / reassembly queue for one connection.
#[derive(Clone, Debug)]
pub struct ReceiveBuffer {
    /// Next expected in-order stream offset (receive.next − ISN − 1).
    rcv_nxt: u64,
    /// Out-of-order store: non-overlapping, non-adjacent runs keyed by offset.
    ooo: BTreeMap<u64, Vec<u8>>,
    /// Data ready for the application.
    ready: VecDeque<DeliveredChunk>,
    /// Bytes currently sitting in `ready` (not yet read by the application).
    ready_bytes: usize,
    /// Bytes in `ready` that were delivered at the cumulative in-order point;
    /// only these count against the advertised window, so that the window is
    /// wire-identical to a standard TCP receiver (out-of-order early
    /// deliveries are still accounted through the reassembly store).
    in_order_ready_bytes: usize,
    capacity: usize,
    /// Whether uTCP's unordered delivery is enabled.
    unordered: bool,
    stats: RecvStats,
}

impl ReceiveBuffer {
    /// Create a receive buffer with the given advertised-window capacity.
    pub fn new(capacity: usize, unordered: bool) -> Self {
        ReceiveBuffer {
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            ready: VecDeque::new(),
            ready_bytes: 0,
            in_order_ready_bytes: 0,
            capacity,
            unordered,
            stats: RecvStats::default(),
        }
    }

    /// Enable or disable unordered delivery at runtime (the socket option can
    /// be set after the connection is established).
    pub fn set_unordered(&mut self, unordered: bool) {
        self.unordered = unordered;
    }

    /// Whether unordered delivery is enabled.
    pub fn unordered(&self) -> bool {
        self.unordered
    }

    /// The next expected in-order stream offset (drives the cumulative ACK).
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Receive statistics.
    pub fn stats(&self) -> &RecvStats {
        &self.stats
    }

    /// Total bytes held in the out-of-order store.
    pub fn ooo_bytes(&self) -> usize {
        self.ooo.values().map(|v| v.len()).sum()
    }

    /// The advertised receive window.
    ///
    /// As in standard TCP, the window tracks the cumulative in-order point and
    /// application consumption; delivering data out-of-order to the
    /// application does **not** open the window early (§4.1).
    pub fn window(&self) -> usize {
        self.capacity
            .saturating_sub(self.in_order_ready_bytes)
            .saturating_sub(self.ooo_bytes())
    }

    /// Accept a data segment at stream offset `offset`.
    pub fn on_data(&mut self, offset: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let end = offset + data.len() as u64;
        if end <= self.rcv_nxt {
            self.stats.duplicate_segments += 1;
            return;
        }

        let in_order = offset <= self.rcv_nxt;
        if in_order {
            self.stats.in_order_segments += 1;
        } else {
            self.stats.out_of_order_segments += 1;
        }

        // uTCP: hand the arriving segment to the application immediately,
        // before reassembly, tagged with its stream offset. Duplicate and
        // overlapping deliveries are permitted (at-least-once semantics).
        if self.unordered {
            let (chunk_off, chunk_data) = if offset < self.rcv_nxt {
                // Trim the already-delivered prefix to avoid re-delivering the
                // in-order region on every retransmission.
                let skip = (self.rcv_nxt - offset) as usize;
                (self.rcv_nxt, &data[skip..])
            } else {
                (offset, data)
            };
            if !chunk_data.is_empty() {
                if !in_order {
                    self.stats.early_deliveries += 1;
                }
                self.push_ready(DeliveredChunk::new(
                    chunk_off,
                    in_order,
                    Bytes::copy_from_slice(chunk_data),
                ));
            }
        }

        // Insert into the reassembly store (merging overlaps), then advance
        // the cumulative point over any now-contiguous data.
        self.insert_ooo(offset, data);
        self.advance_cumulative();
        self.stats.bytes_received += data.len() as u64;
    }

    fn push_ready(&mut self, chunk: DeliveredChunk) {
        self.ready_bytes += chunk.len();
        if chunk.in_order {
            self.in_order_ready_bytes += chunk.len();
        }
        self.ready.push_back(chunk);
    }

    /// Merge a run into the out-of-order store, coalescing overlaps.
    fn insert_ooo(&mut self, offset: u64, data: &[u8]) {
        let mut start = offset;
        let mut buf = data.to_vec();

        // Merge with any predecessor that overlaps or abuts.
        if let Some((&pstart, pdata)) = self.ooo.range(..=start).next_back() {
            let pend = pstart + pdata.len() as u64;
            if pend >= start {
                // Overlaps/abuts: extend the predecessor, keeping its tail if
                // the new data is wholly contained within it.
                let keep = (start - pstart) as usize;
                let mut merged = pdata[..keep].to_vec();
                merged.extend_from_slice(&buf);
                let new_end = start + buf.len() as u64;
                if pend > new_end {
                    merged.extend_from_slice(&pdata[(new_end - pstart) as usize..]);
                }
                start = pstart;
                buf = merged;
                self.ooo.remove(&pstart);
            }
        }

        // Merge with any successors covered by or abutting the new run.
        let mut end = start + buf.len() as u64;
        // Not a `while let`: the range borrow must end before `remove()`.
        #[allow(clippy::while_let_loop)]
        loop {
            let Some((&sstart, sdata)) = self.ooo.range(start..).next() else {
                break;
            };
            if sstart > end {
                break;
            }
            let send = sstart + sdata.len() as u64;
            if send > end {
                let skip = (end - sstart) as usize;
                buf.extend_from_slice(&sdata[skip..]);
                end = send;
            }
            self.ooo.remove(&sstart);
        }

        self.ooo.insert(start, buf);
    }

    /// Advance `rcv_nxt` over contiguous data and (for ordered delivery) queue
    /// the newly in-order bytes to the application.
    fn advance_cumulative(&mut self) {
        while let Some((&start, run)) = self.ooo.range(..=self.rcv_nxt).next_back() {
            let end = start + run.len() as u64;
            if end <= self.rcv_nxt {
                // Entirely below the cumulative point: retire it.
                self.ooo.remove(&start);
                continue;
            }
            if start > self.rcv_nxt {
                break;
            }
            // Run crosses the cumulative point.
            let newly = &run[(self.rcv_nxt - start) as usize..];
            if !self.unordered {
                let chunk = DeliveredChunk::new(self.rcv_nxt, true, Bytes::copy_from_slice(newly));
                self.push_ready(chunk);
            }
            self.rcv_nxt = end;
            self.ooo.remove(&start);
        }
    }

    /// Pop the next chunk ready for the application, if any.
    pub fn read(&mut self) -> Option<DeliveredChunk> {
        let chunk = self.ready.pop_front()?;
        self.ready_bytes -= chunk.len();
        if chunk.in_order {
            self.in_order_ready_bytes -= chunk.len();
        }
        Some(chunk)
    }

    /// Whether any data is ready for the application.
    pub fn readable(&self) -> bool {
        !self.ready.is_empty()
    }

    /// Number of chunks queued for the application.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Current SACK blocks describing the out-of-order runs above the
    /// cumulative point, most recent first, at most `max_blocks`.
    pub fn sack_blocks(&self, isn: SeqNum, max_blocks: usize) -> Vec<SackBlock> {
        // Data offset 0 corresponds to sequence number ISN + 1 (after the SYN).
        let base = isn + 1;
        let mut blocks: Vec<SackBlock> = self
            .ooo
            .iter()
            .filter(|(&start, run)| start + run.len() as u64 > self.rcv_nxt && start > self.rcv_nxt)
            .map(|(&start, run)| SackBlock {
                start: base + start as u32,
                end: base + (start + run.len() as u64) as u32,
            })
            .collect();
        // Report the highest (most recently useful) blocks first.
        blocks.reverse();
        blocks.truncate(max_blocks);
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ordered() -> ReceiveBuffer {
        ReceiveBuffer::new(1 << 20, false)
    }

    fn unordered() -> ReceiveBuffer {
        ReceiveBuffer::new(1 << 20, true)
    }

    fn drain(rb: &mut ReceiveBuffer) -> Vec<DeliveredChunk> {
        let mut v = vec![];
        while let Some(c) = rb.read() {
            v.push(c);
        }
        v
    }

    #[test]
    fn ordered_delivery_waits_for_gap_fill() {
        let mut rb = ordered();
        rb.on_data(0, &[1u8; 100]);
        rb.on_data(200, &[3u8; 100]); // gap at [100, 200)
        let chunks = drain(&mut rb);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].offset, 0);
        assert_eq!(rb.rcv_nxt(), 100);
        // Fill the hole: both the hole and the buffered later data deliver.
        rb.on_data(100, &[2u8; 100]);
        let chunks = drain(&mut rb);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].offset, 100);
        assert_eq!(chunks[0].len(), 200);
        assert_eq!(rb.rcv_nxt(), 300);
        assert!(chunks.iter().all(|c| c.in_order));
    }

    #[test]
    fn unordered_delivery_is_immediate_with_offsets() {
        let mut rb = unordered();
        rb.on_data(0, &[1u8; 100]);
        rb.on_data(200, &[3u8; 100]);
        let chunks = drain(&mut rb);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].offset, 0);
        assert!(chunks[0].in_order);
        assert_eq!(chunks[1].offset, 200);
        assert!(!chunks[1].in_order, "delivered despite the hole");
        // The cumulative point still reflects only in-order data, as TCP would.
        assert_eq!(rb.rcv_nxt(), 100);
        assert_eq!(rb.stats().early_deliveries, 1);
    }

    #[test]
    fn unordered_mode_does_not_redeliver_hole_fill_twice() {
        let mut rb = unordered();
        rb.on_data(0, &[1u8; 100]);
        rb.on_data(200, &[3u8; 100]);
        drain(&mut rb);
        rb.on_data(100, &[2u8; 100]);
        let chunks = drain(&mut rb);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].offset, 100);
        assert_eq!(chunks[0].len(), 100);
        assert_eq!(rb.rcv_nxt(), 300);
    }

    #[test]
    fn retransmission_overlap_is_trimmed_in_unordered_mode() {
        let mut rb = unordered();
        rb.on_data(0, &[1u8; 100]);
        drain(&mut rb);
        // A retransmission covering [0, 150): only [100, 150) is new.
        rb.on_data(0, &[1u8; 150]);
        let chunks = drain(&mut rb);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].offset, 100);
        assert_eq!(chunks[0].len(), 50);
    }

    #[test]
    fn exact_duplicates_are_counted_and_ignored() {
        let mut rb = ordered();
        rb.on_data(0, &[1u8; 100]);
        rb.on_data(0, &[1u8; 100]);
        assert_eq!(rb.stats().duplicate_segments, 1);
        assert_eq!(drain(&mut rb).len(), 1);
    }

    #[test]
    fn overlapping_out_of_order_runs_merge() {
        let mut rb = ordered();
        rb.on_data(100, &[2u8; 100]);
        rb.on_data(150, &[2u8; 100]); // overlaps previous run
        rb.on_data(300, &[4u8; 50]);
        assert_eq!(rb.ooo_bytes(), 150 + 50);
        rb.on_data(0, &[1u8; 100]);
        assert_eq!(rb.rcv_nxt(), 250);
        rb.on_data(250, &[3u8; 50]);
        assert_eq!(rb.rcv_nxt(), 350);
        let total: usize = drain(&mut rb).iter().map(|c| c.len()).sum();
        assert_eq!(total, 350);
    }

    #[test]
    fn sack_blocks_describe_out_of_order_runs() {
        let mut rb = ordered();
        let isn = SeqNum(1000);
        rb.on_data(0, &[0u8; 100]);
        rb.on_data(200, &[0u8; 100]);
        rb.on_data(400, &[0u8; 100]);
        let blocks = rb.sack_blocks(isn, 3);
        assert_eq!(blocks.len(), 2);
        // Most recent (highest) block first; offsets are ISN+1-relative.
        assert_eq!(blocks[0].start, SeqNum(1001 + 400));
        assert_eq!(blocks[0].end, SeqNum(1001 + 500));
        assert_eq!(blocks[1].start, SeqNum(1001 + 200));
        assert_eq!(blocks[1].end, SeqNum(1001 + 300));
        // Once holes fill, no SACK blocks remain.
        rb.on_data(100, &[0u8; 100]);
        rb.on_data(300, &[0u8; 100]);
        assert!(rb.sack_blocks(isn, 3).is_empty());
    }

    #[test]
    fn window_shrinks_with_unread_and_ooo_data() {
        let mut rb = ReceiveBuffer::new(1000, false);
        assert_eq!(rb.window(), 1000);
        rb.on_data(0, &[0u8; 300]);
        assert_eq!(rb.window(), 700, "unread in-order data consumes window");
        rb.on_data(500, &[0u8; 200]);
        assert_eq!(rb.window(), 500, "out-of-order data consumes window");
        rb.read();
        assert_eq!(rb.window(), 800);
    }

    #[test]
    fn unordered_window_matches_ordered_window_behaviour() {
        // Wire-visible behaviour must be identical: delivering data early must
        // not open the advertised window early.
        let mut ordered_rb = ReceiveBuffer::new(1000, false);
        let mut unordered_rb = ReceiveBuffer::new(1000, true);
        for rb in [&mut ordered_rb, &mut unordered_rb] {
            rb.on_data(100, &[0u8; 200]);
        }
        // Even though the unordered receiver handed the bytes to the app...
        assert_eq!(unordered_rb.ready_len(), 1);
        assert_eq!(ordered_rb.ready_len(), 0);
        // ...the advertised windows are the same.
        assert_eq!(ordered_rb.window(), unordered_rb.window());
        assert_eq!(ordered_rb.rcv_nxt(), unordered_rb.rcv_nxt());
    }

    #[test]
    fn sack_blocks_wrap_correctly_with_a_high_isn() {
        // With an ISN a few bytes below 2^32, SACK block sequence numbers
        // wrap while the 64-bit stream offsets do not.
        let mut rb = ordered();
        let isn = SeqNum(u32::MAX - 2);
        rb.on_data(0, &[0u8; 100]);
        rb.on_data(200, &[0u8; 100]);
        let blocks = rb.sack_blocks(isn, 3);
        assert_eq!(blocks.len(), 1);
        // Offset 200 maps to ISN+1+200, which wraps past 2^32.
        assert_eq!(blocks[0].start, isn + 1 + 200);
        assert_eq!(blocks[0].end, isn + 1 + 300);
        assert_eq!(blocks[0].start, SeqNum(198), "wrapped raw value");
        assert!(blocks[0].start.gt(isn), "modular order is preserved");
        // The block covers exactly 100 bytes in modular arithmetic.
        assert_eq!(blocks[0].end.distance_from(blocks[0].start), 100);
    }

    #[test]
    fn large_offsets_near_the_32_bit_boundary_are_plain_u64s() {
        // The reassembly store is offset-keyed (u64): runs just below and
        // above 2^32 must neither collide nor merge across the boundary gap.
        let mut rb = unordered();
        let below = u64::from(u32::MAX) - 99; // [2^32-100, 2^32)
        let above = u64::from(u32::MAX) + 1; // [2^32, 2^32+100) abuts
        rb.on_data(below, &[1u8; 100]);
        rb.on_data(above, &[2u8; 100]);
        assert_eq!(rb.ooo_bytes(), 200, "abutting runs merge into one");
        let far = 2 * u64::from(u32::MAX);
        rb.on_data(far, &[3u8; 10]);
        assert_eq!(rb.ooo_bytes(), 210, "distinct runs stay distinct");
        // Early (uTCP) deliveries carry the exact 64-bit offsets.
        let offsets: Vec<u64> = drain(&mut rb).iter().map(|c| c.offset).collect();
        assert_eq!(offsets, vec![below, above, far]);
        assert_eq!(rb.rcv_nxt(), 0, "nothing in order yet");
    }

    #[test]
    fn empty_data_is_ignored() {
        let mut rb = unordered();
        rb.on_data(0, &[]);
        assert!(!rb.readable());
        assert_eq!(rb.stats().bytes_received, 0);
    }
}
