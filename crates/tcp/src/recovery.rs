//! Loss-recovery bookkeeping: duplicate-ACK counting and the NewReno recover
//! point — the `tcp_recovery` seam of the mlwip-style modular control path.
//!
//! RFC 6582 §3 requires the sender to remember, on every recovery entry *and*
//! every retransmission timeout, the highest sequence transmitted so far
//! ("recover"), and to refuse a new fast retransmit until the cumulative ACK
//! point has passed it. Without the guard, a burst of duplicate ACKs arriving
//! just after recovery exit — or after an RTO, whose go-back-N retransmissions
//! commonly elicit exactly such a burst — cuts cwnd a second time for what is
//! a single congestion event.

/// Duplicate-ACK counting and the RFC 6582 recover point, in send-stream
/// offset space (the connection maps sequence numbers to monotonically
/// increasing 64-bit offsets, which sidesteps the RFC's ISS-initialization
/// dance: `None` means no congestion event has happened yet).
#[derive(Clone, Debug, Default)]
pub struct RecoveryState {
    dup_ack_count: u32,
    /// Offset of `snd_max` at the last congestion event (fast retransmit or
    /// RTO); `None` until the first one.
    recover: Option<u64>,
}

impl RecoveryState {
    /// Fresh state: no duplicate ACKs seen, no congestion event yet.
    pub fn new() -> Self {
        RecoveryState::default()
    }

    /// A new cumulative ACK arrived: the duplicate run is over.
    pub fn on_new_ack(&mut self) {
        self.dup_ack_count = 0;
    }

    /// Count one duplicate ACK and return the run length so far.
    pub fn on_dup_ack(&mut self) -> u32 {
        self.dup_ack_count += 1;
        self.dup_ack_count
    }

    /// Current duplicate-ACK run length.
    pub fn dup_ack_count(&self) -> u32 {
        self.dup_ack_count
    }

    /// RFC 6582 §3.2 step 1: may a third duplicate ACK at cumulative point
    /// `snd_una` start a *new* fast-retransmit episode? Yes if the ACK
    /// covers more than the recover point. At or below it, only with
    /// `sack_evidence` — the RFC §4 heuristic, sharpened by SACK: duplicate
    /// ACKs whose SACK blocks show newer data reaching the receiver indicate
    /// a genuine fresh hole, while a *bare* duplicate-ACK burst (late
    /// duplicates of pre-event segments, typically elicited by recovery or
    /// go-back-N retransmissions) must not cut the window a second time.
    pub fn may_enter(&self, snd_una: u64, sack_evidence: bool) -> bool {
        match self.recover {
            None => true,
            Some(r) => snd_una > r || sack_evidence,
        }
    }

    /// Record a congestion event: remember `snd_max` (one past the highest
    /// transmitted offset) as the recover point. Called on fast-retransmit
    /// entry and on every RTO (RFC 6582 §3.2 step 4).
    pub fn arm(&mut self, snd_max: u64) {
        self.recover = Some(snd_max);
    }

    /// An RTO fired: the duplicate run is void and the recover point moves
    /// up to `snd_max`, so post-timeout duplicate ACKs cannot re-enter fast
    /// recovery for the same window of data.
    pub fn on_rto(&mut self, snd_max: u64) {
        self.dup_ack_count = 0;
        self.arm(snd_max);
    }

    /// Does a cumulative ACK at `ack_off` end the current recovery episode
    /// (RFC 6582 §3.2 step 3, "full acknowledgment")?
    pub fn full_ack_covers(&self, ack_off: u64) -> bool {
        self.recover.is_none_or(|r| ack_off >= r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_episode_is_always_allowed() {
        let r = RecoveryState::new();
        assert!(r.may_enter(0, false), "no prior congestion event: passes");
    }

    #[test]
    fn dup_ack_run_counts_and_resets() {
        let mut r = RecoveryState::new();
        assert_eq!(r.on_dup_ack(), 1);
        assert_eq!(r.on_dup_ack(), 2);
        assert_eq!(r.on_dup_ack(), 3);
        r.on_new_ack();
        assert_eq!(r.dup_ack_count(), 0);
        assert_eq!(r.on_dup_ack(), 1);
    }

    #[test]
    fn guard_blocks_bare_reentry_until_snd_una_passes_recover() {
        let mut r = RecoveryState::new();
        r.arm(10_000);
        assert!(!r.may_enter(5_000, false), "old data, bare burst: blocked");
        assert!(!r.may_enter(10_000, false), "the recover point: blocked");
        assert!(r.may_enter(10_001, false), "beyond recover: allowed");
    }

    #[test]
    fn sack_evidence_admits_a_genuine_fresh_hole() {
        let mut r = RecoveryState::new();
        r.arm(10_000);
        assert!(
            r.may_enter(10_000, true),
            "SACKed newer data proves a real hole: fast retransmit allowed"
        );
        assert!(r.may_enter(5_000, true));
    }

    #[test]
    fn rto_arms_the_recover_point_and_voids_the_run() {
        let mut r = RecoveryState::new();
        r.on_dup_ack();
        r.on_dup_ack();
        r.on_rto(7_000);
        assert_eq!(r.dup_ack_count(), 0);
        assert!(
            !r.may_enter(0, false),
            "post-RTO dup ACKs must not cut again"
        );
        assert!(r.may_enter(7_001, false));
    }

    #[test]
    fn full_ack_semantics_are_inclusive() {
        let mut r = RecoveryState::new();
        assert!(r.full_ack_covers(0), "no episode: trivially covered");
        r.arm(4_344);
        assert!(!r.full_ack_covers(4_343));
        assert!(r.full_ack_covers(4_344));
    }
}
