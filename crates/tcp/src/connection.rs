//! The TCP connection state machine.
//!
//! This is a userspace reimplementation of the parts of a kernel TCP stack
//! that the paper's mechanisms depend on: the three-way handshake, cumulative
//! and selective acknowledgments, retransmission (RTO and fast retransmit
//! with NewReno recovery), congestion and flow control, delayed ACKs, and
//! orderly close — plus the two uTCP socket options layered on top of the
//! send and receive buffers.
//!
//! The connection is a passive, poll-driven state machine in the smoltcp
//! style: the owner feeds it arriving segments via [`TcpConnection::on_segment`],
//! asks it for outgoing segments via [`TcpConnection::poll`], and schedules
//! the next call using [`TcpConnection::next_timer`]. All timing comes from
//! the caller's virtual clock, which keeps experiments deterministic.
//!
//! The control path is split along mlwip-style seams: loss *detection* and
//! the RFC 6582 recover point live in [`crate::recovery`], the outstanding-
//! data scoreboard, retransmission cursor, and RTO timer in
//! [`crate::reliability`], and the window *response* behind the pluggable
//! [`CongestionControl`] trait in [`crate::cc`]. This file wires them to the
//! protocol: sequence-number mapping, segment parsing/emission, and state
//! transitions.

use crate::cc::{self, CongestionControl};
use crate::config::{SocketOptions, TcpConfig, WriteMeta};
use crate::delivered::DeliveredChunk;
use crate::event::{ConnEvent, EventQueue, Readiness};
use crate::recovery::RecoveryState;
use crate::recvbuf::ReceiveBuffer;
use crate::reliability::Reliability;
use crate::rtt::RttEstimator;
use crate::segment::{SackBlock, TcpFlags, TcpOption, TcpSegment};
use crate::sendbuf::SendBuffer;
use crate::seq::SeqNum;
use bytes::Bytes;
use minion_obs::CcObs;
use minion_simnet::{SimDuration, SimTime};

/// Errors surfaced by the socket-level API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpError {
    /// The connection is not in a state that allows the operation.
    NotConnected,
    /// The send buffer cannot accept the write.
    BufferFull,
    /// The connection has been closed locally.
    Closed,
}

impl std::fmt::Display for TcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpError::NotConnected => write!(f, "connection not established"),
            TcpError::BufferFull => write!(f, "send buffer full"),
            TcpError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for TcpError {}

/// TCP connection states (RFC 793 §3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Passive open, waiting for a SYN.
    Listen,
    /// Active open, SYN sent.
    SynSent,
    /// SYN received, SYN-ACK sent.
    SynRcvd,
    /// Data transfer state.
    Established,
    /// Local close requested, FIN sent.
    FinWait1,
    /// Our FIN acknowledged, waiting for the peer's FIN.
    FinWait2,
    /// Peer closed first; we may still send.
    CloseWait,
    /// Both sides closed simultaneously.
    Closing,
    /// We closed after the peer; waiting for our FIN's ACK.
    LastAck,
    /// Waiting out 2·MSL before releasing state.
    TimeWait,
}

/// Per-connection statistics used throughout the evaluation harness.
#[derive(Clone, Debug, Default)]
pub struct ConnStats {
    /// Segments emitted (including retransmissions and pure ACKs).
    pub segments_sent: u64,
    /// Segments received and processed.
    pub segments_received: u64,
    /// Payload bytes transmitted the first time.
    pub bytes_sent: u64,
    /// Payload bytes retransmitted.
    pub bytes_retransmitted: u64,
    /// Payload bytes cumulatively acknowledged by the peer.
    pub bytes_acked: u64,
    /// Payload bytes received (before reassembly de-duplication).
    pub bytes_received: u64,
    /// Data segments retransmitted.
    pub retransmissions: u64,
    /// Fast-retransmit events.
    pub fast_retransmits: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// Duplicate ACKs received.
    pub dup_acks: u64,
    /// Pure ACK segments sent.
    pub acks_sent: u64,
}

/// Pending-ACK state for the delayed-ACK machinery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AckPending {
    None,
    Delayed(SimTime),
    Immediate,
}

/// A TCP connection endpoint.
#[derive(Clone, Debug)]
pub struct TcpConnection {
    config: TcpConfig,
    opts: SocketOptions,
    state: TcpState,
    local_port: u16,
    remote_port: u16,

    // ---- Send state ----
    iss: SeqNum,
    send_buf: SendBuffer,
    /// Offset of the highest cumulatively acknowledged data byte.
    snd_una: u64,
    /// Outstanding-data scoreboard, retransmission cursor, RTO timer.
    reliability: Reliability,
    /// Duplicate-ACK run and the RFC 6582 recover point.
    recovery: RecoveryState,
    peer_window: usize,
    peer_mss: usize,
    cc: Box<dyn CongestionControl>,
    rtt: RttEstimator,

    // ---- Handshake / close state ----
    syn_sent_at: Option<SimTime>,
    syn_acked: bool,
    close_requested: bool,
    fin_sent: bool,
    fin_offset: Option<u64>,
    fin_acked: bool,
    peer_fin_offset: Option<u64>,
    time_wait_expiry: Option<SimTime>,

    // ---- Receive state ----
    irs: SeqNum,
    recv_buf: ReceiveBuffer,
    ack_pending: AckPending,
    /// Set when the connection should emit a SYN or SYN-ACK on the next poll.
    handshake_pending: bool,

    /// Edge events for poll-driven drivers (gated; see [`crate::ConnEvent`]).
    events: EventQueue,
    stats: ConnStats,

    // ---- Window telemetry (deterministic, virtual-time) ----
    /// Per-connection cwnd/ssthresh trajectory + recovery histograms.
    cc_obs: CcObs,
    /// Last `(cwnd, ssthresh)` recorded, so the trajectory samples window
    /// *transitions* rather than every ACK.
    cc_obs_last: Option<(u64, u64)>,
    /// When the current fast-recovery episode began, with the window cut
    /// (cwnd-before − ssthresh-after) stamped at entry; resolved into the
    /// recovery histograms on exit (or when an RTO truncates the episode).
    recovery_entered: Option<(SimTime, u64)>,
}

impl TcpConnection {
    /// Create a connection endpoint in the `Closed` state.
    pub fn new(local_port: u16, remote_port: u16, config: TcpConfig, opts: SocketOptions) -> Self {
        let isn = config.fixed_isn.unwrap_or_else(|| {
            // Deterministic but port-dependent ISN.
            (u32::from(local_port) << 16) ^ u32::from(remote_port) ^ 0x5EED_1234
        });
        let send_buf = SendBuffer::new(config.send_buffer);
        let recv_buf = ReceiveBuffer::new(config.recv_buffer, opts.unordered_receive);
        let cc = cc::build(config.cc, config.mss, config.initial_cwnd_segments);
        let rtt = RttEstimator::new(config.min_rto, config.max_rto);
        TcpConnection {
            config,
            opts,
            state: TcpState::Closed,
            local_port,
            remote_port,
            iss: SeqNum(isn),
            send_buf,
            snd_una: 0,
            reliability: Reliability::new(),
            recovery: RecoveryState::new(),
            peer_window: 65535,
            peer_mss: 536,
            cc,
            rtt,
            syn_sent_at: None,
            syn_acked: false,
            close_requested: false,
            fin_sent: false,
            fin_offset: None,
            fin_acked: false,
            peer_fin_offset: None,
            time_wait_expiry: None,
            irs: SeqNum(0),
            recv_buf,
            ack_pending: AckPending::None,
            handshake_pending: false,
            events: EventQueue::default(),
            stats: ConnStats::default(),
            cc_obs: CcObs::default(),
            cc_obs_last: None,
            recovery_entered: None,
        }
    }

    /// Begin an active open (client side). The SYN is emitted by the next
    /// [`poll`](Self::poll).
    pub fn open(&mut self, now: SimTime) {
        assert_eq!(self.state, TcpState::Closed, "open() on a used connection");
        self.state = TcpState::SynSent;
        self.handshake_pending = true;
        self.syn_sent_at = Some(now);
        self.reliability.arm_rto(now, now + self.rtt.rto());
        self.note_window(now);
    }

    /// Begin a passive open (server side).
    pub fn listen(&mut self) {
        assert_eq!(
            self.state,
            TcpState::Closed,
            "listen() on a used connection"
        );
        self.state = TcpState::Listen;
    }

    /// The connection's current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// True once the three-way handshake has completed.
    pub fn is_established(&self) -> bool {
        matches!(
            self.state,
            TcpState::Established
                | TcpState::FinWait1
                | TcpState::FinWait2
                | TcpState::CloseWait
                | TcpState::Closing
                | TcpState::LastAck
        )
    }

    /// True once the connection has fully closed (or was reset).
    pub fn is_closed(&self) -> bool {
        matches!(self.state, TcpState::Closed | TcpState::TimeWait)
    }

    /// Local port number.
    pub fn local_port(&self) -> u16 {
        self.local_port
    }

    /// Remote port number.
    pub fn remote_port(&self) -> u16 {
        self.remote_port
    }

    /// The socket options currently in effect.
    pub fn options(&self) -> SocketOptions {
        self.opts
    }

    /// Update socket options (the uTCP `setsockopt` calls). Options can be
    /// enabled at any point in the connection's life.
    pub fn set_options(&mut self, opts: SocketOptions) {
        self.opts = opts;
        self.recv_buf.set_unordered(opts.unordered_receive);
    }

    /// Connection statistics.
    pub fn stats(&self) -> &ConnStats {
        &self.stats
    }

    // ------------------------------------------------------------------
    // Readiness (poll-driven driver API)
    // ------------------------------------------------------------------

    /// A level-triggered snapshot of what the connection can currently do.
    pub fn readiness(&self) -> Readiness {
        Readiness {
            readable: self.recv_buf.readable(),
            writable: self.is_established()
                && !self.close_requested
                && self.send_buf.free_space() > 0,
            established: self.is_established(),
            closed: self.is_closed(),
        }
    }

    /// Enable or disable edge-event recording ([`ConnEvent`]). Off by
    /// default; a poll-driven driver (the `minion-engine` runtime) enables it
    /// and drains [`take_events`](Self::take_events) after each dispatch so
    /// the queue stays small. Disabling clears any queued events.
    pub fn set_event_interest(&mut self, enabled: bool) {
        self.events.set_enabled(enabled);
    }

    /// Whether edge-event recording is enabled.
    pub fn event_interest(&self) -> bool {
        self.events.enabled()
    }

    /// Drain the queued edge events in arrival order.
    pub fn take_events(&mut self) -> Vec<ConnEvent> {
        self.events.drain()
    }

    /// Whether any edge events are queued.
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Record readiness edges relative to a snapshot taken before a state
    /// transition (segment input or poll).
    fn record_edges(&mut self, before: Readiness) {
        if !self.events.enabled() {
            return;
        }
        let after = self.readiness();
        if !before.established && after.established {
            self.events.push(ConnEvent::Established);
        }
        if !before.readable && after.readable {
            self.events.push(ConnEvent::Readable);
        }
        if !before.writable && after.writable && before.established {
            self.events.push(ConnEvent::Writable);
        }
        if !before.closed && after.closed {
            self.events.push(ConnEvent::Closed);
        }
    }

    /// Smoothed RTT estimate, if one exists.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.rtt.srtt()
    }

    /// Number of RTT samples incorporated (Karn's rule: retransmitted
    /// segments never contribute one).
    pub fn rtt_samples(&self) -> u64 {
        self.rtt.sample_count()
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> usize {
        self.cc.cwnd()
    }

    /// The congestion-control algorithm's own counters (recovery episodes,
    /// timeouts as the algorithm saw them).
    pub fn cc_stats(&self) -> &crate::cc::CcStats {
        self.cc.stats()
    }

    /// The deterministic window telemetry recorded at congestion-control
    /// transitions: cwnd/ssthresh trajectory samples on the virtual clock
    /// plus recovery-duration/-depth histograms.
    pub fn cc_obs(&self) -> &CcObs {
        &self.cc_obs
    }

    /// Record a trajectory sample if the window actually moved since the
    /// last one (called at cc transition sites, so the per-ACK cost is one
    /// comparison).
    fn note_window(&mut self, now: SimTime) {
        let cur = (self.cc.cwnd() as u64, self.cc.ssthresh() as u64);
        if self.cc_obs_last != Some(cur) {
            self.cc_obs
                .record_window(now.as_micros().saturating_mul(1_000), cur.0, cur.1);
            self.cc_obs_last = Some(cur);
        }
    }

    /// Close out the active fast-recovery episode (normal exit or RTO
    /// truncation), feeding the duration and entry-stamped depth histograms.
    fn finish_recovery_episode(&mut self, now: SimTime) {
        if let Some((entered, depth)) = self.recovery_entered.take() {
            self.cc_obs.record_recovery(
                now.saturating_since(entered)
                    .as_micros()
                    .saturating_mul(1_000),
                depth,
            );
        }
    }

    /// Free space in the send buffer.
    pub fn send_buffer_free(&self) -> usize {
        self.send_buf.free_space()
    }

    /// Bytes queued in the send buffer that have not yet been acknowledged.
    pub fn send_buffer_len(&self) -> usize {
        self.send_buf.len()
    }

    /// Bytes queued but not yet transmitted for the first time.
    pub fn unsent_bytes(&self) -> usize {
        self.send_buf
            .end_offset()
            .saturating_sub(self.send_buf.transmitted_offset()) as usize
    }

    // ------------------------------------------------------------------
    // Application API
    // ------------------------------------------------------------------

    /// Queue data for transmission with default (priority-0) metadata.
    pub fn write(&mut self, data: &[u8]) -> Result<usize, TcpError> {
        self.write_with_meta(data, WriteMeta::normal())
    }

    /// Queue data for transmission with uTCP write metadata (§4.2). When the
    /// `SO_UNORDEREDSEND` option is off the metadata is ignored, matching the
    /// paper's fallback behaviour on stock TCP stacks.
    pub fn write_with_meta(&mut self, data: &[u8], meta: WriteMeta) -> Result<usize, TcpError> {
        if !self.is_established() && self.state != TcpState::SynSent {
            return Err(TcpError::NotConnected);
        }
        if self.close_requested {
            return Err(TcpError::Closed);
        }
        let unordered = self.opts.unordered_send;
        let result = if unordered {
            self.send_buf.write_with_priority(
                data,
                meta.priority,
                meta.squash,
                true,
                self.config.mss,
                self.config.coalesce_small_writes,
            )
        } else {
            self.send_buf.write(data)
        };
        result.map_err(|_| TcpError::BufferFull)
    }

    /// Read the next chunk of received data, if any.
    ///
    /// With `SO_UNORDERED` enabled, chunks may arrive out of order and carry
    /// their stream offset (the paper's 5-byte read header); otherwise chunks
    /// are in-order byte-stream data.
    pub fn read(&mut self) -> Option<DeliveredChunk> {
        self.recv_buf.read()
    }

    /// True if a `read()` would return data.
    pub fn readable(&self) -> bool {
        self.recv_buf.readable()
    }

    /// Request an orderly close. Queued data is still delivered; the FIN is
    /// sent once the send queue drains.
    pub fn close(&mut self) {
        self.close_requested = true;
    }

    // ------------------------------------------------------------------
    // Sequence-number mapping helpers
    // ------------------------------------------------------------------

    /// Sequence number corresponding to a send-stream byte offset.
    fn seq_of_offset(&self, offset: u64) -> SeqNum {
        self.iss + 1 + offset as u32
    }

    /// Send-stream offset corresponding to an acknowledgment number.
    fn offset_of_ack(&self, ack: SeqNum) -> u64 {
        u64::from(ack.distance_from(self.iss + 1))
    }

    /// Receive-stream offset for a received segment's sequence number.
    fn offset_of_seq(&self, seq: SeqNum) -> u64 {
        u64::from(seq.distance_from(self.irs + 1))
    }

    /// The acknowledgment number to advertise, covering in-order data and the
    /// peer's FIN when it has been reached.
    fn ack_to_send(&self) -> SeqNum {
        let mut ack = self.irs + 1 + self.recv_buf.rcv_nxt() as u32;
        if let Some(fin_off) = self.peer_fin_offset {
            if self.recv_buf.rcv_nxt() >= fin_off {
                ack += 1;
            }
        }
        ack
    }

    /// Highest sequence number we have transmitted (exclusive).
    fn snd_max_offset(&self) -> u64 {
        self.send_buf.transmitted_offset()
    }

    // ------------------------------------------------------------------
    // Segment input
    // ------------------------------------------------------------------

    /// Process an arriving segment.
    pub fn on_segment(&mut self, seg: &TcpSegment, now: SimTime) {
        self.stats.segments_received += 1;
        let before = self.readiness();
        match self.state {
            TcpState::Closed => {}
            TcpState::Listen => self.on_segment_listen(seg, now),
            TcpState::SynSent => self.on_segment_syn_sent(seg, now),
            _ => self.on_segment_synchronized(seg, now),
        }
        self.record_edges(before);
    }

    fn on_segment_listen(&mut self, seg: &TcpSegment, now: SimTime) {
        if !seg.flags.syn || seg.flags.ack || seg.flags.rst {
            return;
        }
        self.irs = seg.seq;
        if let Some(mss) = seg.mss_option() {
            self.peer_mss = mss as usize;
        }
        self.peer_window = seg.window as usize;
        self.state = TcpState::SynRcvd;
        self.handshake_pending = true;
        self.syn_sent_at = Some(now);
        self.reliability.arm_rto(now, now + self.rtt.rto());
        self.note_window(now);
    }

    fn on_segment_syn_sent(&mut self, seg: &TcpSegment, now: SimTime) {
        if seg.flags.rst {
            self.state = TcpState::Closed;
            return;
        }
        if !(seg.flags.syn && seg.flags.ack) {
            return;
        }
        if seg.ack != self.iss + 1 {
            return; // Not an acknowledgment of our SYN.
        }
        self.irs = seg.seq;
        if let Some(mss) = seg.mss_option() {
            self.peer_mss = mss as usize;
        }
        self.peer_window = seg.window as usize;
        self.syn_acked = true;
        if let Some(sent) = self.syn_sent_at.take() {
            self.rtt.on_sample(now.saturating_since(sent));
        }
        self.state = TcpState::Established;
        self.reliability.clear_rto();
        self.reliability.reset_backoffs();
        // Complete the handshake with an ACK.
        self.ack_pending = AckPending::Immediate;
    }

    fn on_segment_synchronized(&mut self, seg: &TcpSegment, now: SimTime) {
        if seg.flags.rst {
            self.state = TcpState::Closed;
            return;
        }

        // A retransmitted SYN-ACK while we are established means our final
        // handshake ACK was lost: re-acknowledge.
        if seg.flags.syn && seg.flags.ack {
            self.ack_pending = AckPending::Immediate;
            return;
        }

        // Complete a passive open.
        if self.state == TcpState::SynRcvd && seg.flags.ack && seg.ack == self.iss + 1 {
            self.syn_acked = true;
            if let Some(sent) = self.syn_sent_at.take() {
                self.rtt.on_sample(now.saturating_since(sent));
            }
            self.state = TcpState::Established;
            self.reliability.clear_rto();
            self.reliability.reset_backoffs();
        }

        self.peer_window = seg.window as usize;

        if seg.flags.ack {
            self.process_ack(seg, now);
        }

        if !seg.payload.is_empty() {
            self.process_payload(seg, now);
        }

        if seg.flags.fin {
            self.process_fin(seg);
        }
    }

    fn process_payload(&mut self, seg: &TcpSegment, _now: SimTime) {
        let offset = self.offset_of_seq(seg.seq);
        // Reject data far outside the window (e.g. wildly out-of-range
        // offsets from a confused peer); the receive buffer handles overlap.
        let window_limit = self.recv_buf.rcv_nxt() + self.config.recv_buffer as u64;
        if offset > window_limit {
            return;
        }
        self.stats.bytes_received += seg.payload.len() as u64;
        let before = self.recv_buf.rcv_nxt();
        self.recv_buf.on_data(offset, &seg.payload);
        let after = self.recv_buf.rcv_nxt();

        // Immediate ACK for out-of-order arrivals, duplicates, and gap fills
        // (RFC 5681 §4.2); only plain in-order progress may be delayed.
        let out_of_order =
            offset > before || after == before || after > offset + seg.payload.len() as u64;
        if out_of_order || !self.config.delayed_ack {
            // Out-of-order (or gap-filling) data elicits an immediate ACK so
            // the sender sees duplicate ACKs / SACK promptly.
            self.ack_pending = AckPending::Immediate;
        } else {
            match self.ack_pending {
                AckPending::None => {
                    self.ack_pending = AckPending::Delayed(_now + self.config.delayed_ack_timeout);
                }
                AckPending::Delayed(_) => {
                    // Second in-order segment: ACK now (RFC 1122).
                    self.ack_pending = AckPending::Immediate;
                }
                AckPending::Immediate => {}
            }
        }
    }

    fn process_fin(&mut self, seg: &TcpSegment) {
        let fin_off = self.offset_of_seq(seg.seq) + seg.payload.len() as u64;
        self.peer_fin_offset = Some(fin_off);
        self.ack_pending = AckPending::Immediate;
        // Only transition once the FIN is in-order (all prior data received).
        if self.recv_buf.rcv_nxt() >= fin_off {
            match self.state {
                TcpState::Established => self.state = TcpState::CloseWait,
                TcpState::FinWait1 => {
                    self.state = if self.fin_acked {
                        TcpState::TimeWait
                    } else {
                        TcpState::Closing
                    };
                }
                TcpState::FinWait2 => self.state = TcpState::TimeWait,
                _ => {}
            }
        }
    }

    fn process_ack(&mut self, seg: &TcpSegment, now: SimTime) {
        let ack_off = self.offset_of_ack(seg.ack);
        // Account for a FIN acknowledgment.
        let fin_ack_off = self.fin_offset.map(|f| f + 1);
        let data_ack_off = if Some(ack_off) == fin_ack_off {
            self.fin_acked = true;
            ack_off - 1
        } else {
            ack_off
        };

        // Ignore ACKs for data beyond what we have sent (stale/corrupt).
        if data_ack_off > self.snd_max_offset() {
            return;
        }

        // Record SACK information on the scoreboard. SACK blocks beyond the
        // cumulative point are also the RFC 6582 §4 evidence that a duplicate
        // ACK marks a genuine fresh hole (see `on_duplicate_ack`).
        let sack_evidence = if seg.sack_blocks().is_empty() {
            false
        } else {
            self.apply_sack(seg.sack_blocks())
        };

        if data_ack_off > self.snd_una {
            self.on_new_ack(data_ack_off, now);
        } else if data_ack_off == self.snd_una
            && self.snd_max_offset() > self.snd_una
            && seg.payload.is_empty()
            && !seg.flags.fin
            && !seg.flags.syn
        {
            self.on_duplicate_ack(now, sack_evidence);
        }

        // Close-related state transitions driven by our FIN being acked.
        if self.fin_acked {
            match self.state {
                TcpState::FinWait1 => self.state = TcpState::FinWait2,
                TcpState::Closing => self.state = TcpState::TimeWait,
                TcpState::LastAck => self.state = TcpState::Closed,
                _ => {}
            }
            if self.state == TcpState::TimeWait && self.time_wait_expiry.is_none() {
                self.time_wait_expiry = Some(now + SimDuration::from_secs(2));
            }
            // With the FIN acknowledged and no data outstanding there is
            // nothing left to retransmit.
            if self.snd_una >= self.send_buf.end_offset() {
                self.reliability.clear_rto();
            }
        }
    }

    /// Record SACK blocks on the scoreboard. Returns whether any valid block
    /// covers data beyond the cumulative ACK point — proof that newer data is
    /// reaching the receiver, which `on_duplicate_ack` uses as the RFC 6582
    /// §4 heuristic. This must come from the blocks themselves, not the
    /// scoreboard: after an RTO the scoreboard is cleared for go-back-N, so
    /// SACKed ranges not yet re-sent have no record to mark.
    fn apply_sack(&mut self, blocks: &[SackBlock]) -> bool {
        let mut beyond_cumulative = false;
        for block in blocks {
            let start = self.offset_of_ack(block.start);
            let end = self.offset_of_ack(block.end);
            if end <= start || end > self.snd_max_offset() + 1 {
                continue;
            }
            if end > self.snd_una {
                beyond_cumulative = true;
            }
            self.reliability.mark_sacked(start, end);
        }
        beyond_cumulative
    }

    fn on_new_ack(&mut self, ack_off: u64, now: SimTime) {
        let newly_acked = (ack_off - self.snd_una) as usize;
        self.stats.bytes_acked += newly_acked as u64;
        self.recovery.on_new_ack();

        // Retire acknowledged transmission records; Karn's rule permits an
        // RTT sample only from a record that was never retransmitted.
        if let Some(sent_at) = self.reliability.retire_acked(ack_off) {
            self.rtt.on_sample(now.saturating_since(sent_at));
        }

        self.snd_una = ack_off;
        self.send_buf.acknowledge(ack_off);
        self.reliability.reset_backoffs();

        if self.cc.in_recovery() {
            if self.recovery.full_ack_covers(ack_off) {
                // Full acknowledgment: leave recovery. The flight size *after*
                // retiring feeds RFC 6582 §3.2 step 3's conservative deflation
                // (`min(ssthresh, max(flight, MSS) + MSS)`), which prevents a
                // post-recovery burst when little data is left outstanding.
                let flight = self.reliability.flight_charge();
                self.cc.on_exit_recovery(flight);
                self.finish_recovery_episode(now);
                self.reliability.clear_resend();
            } else {
                // Partial ACK (NewReno): retransmit the next lost segment.
                // The one-byte range is a sentinel — the emit path sends one
                // full segment starting at `snd_una` (see `reliability.rs`).
                self.cc.on_partial_ack(newly_acked);
                self.reliability
                    .schedule_resend(self.snd_una, self.snd_una + 1);
            }
        } else {
            self.cc.on_ack(newly_acked, now, self.rtt.srtt());
        }
        self.note_window(now);

        // Restart the retransmission timer.
        if !self.reliability.has_unacked() && self.snd_una >= self.snd_max_offset() {
            self.reliability.clear_rto();
        } else {
            self.reliability.arm_rto(now, now + self.rtt.rto());
        }
    }

    fn on_duplicate_ack(&mut self, now: SimTime, sack_evidence: bool) {
        self.stats.dup_acks += 1;
        let run = self.recovery.on_dup_ack();
        if self.cc.in_recovery() {
            self.cc.on_dup_ack_in_recovery();
            return;
        }
        // RFC 6582 §3.2 step 1: enter fast retransmit on the third duplicate
        // ACK only if the cumulative ACK point has passed the recover point,
        // or (the §4 heuristic, via SACK) the duplicates carry SACK blocks
        // proving newer data is reaching the receiver — a genuine fresh hole.
        // A *bare* duplicate-ACK burst for data sent before the last
        // congestion event (arriving just after recovery exit, or the echoes
        // of a go-back-N retransmission after an RTO) must not cut cwnd
        // again.
        if run == 3 && self.recovery.may_enter(self.snd_una, sack_evidence) {
            // Fast retransmit: resend the first unacknowledged segment and
            // enter NewReno recovery.
            let flight = self.reliability.flight_charge();
            let cwnd_before = self.cc.cwnd() as u64;
            self.cc.on_enter_recovery(flight, now);
            // Stamp the episode: exit (or a truncating RTO) resolves it into
            // the recovery-duration/-depth histograms.
            let depth = cwnd_before.saturating_sub(self.cc.ssthresh() as u64);
            self.recovery_entered = Some((now, depth));
            self.note_window(now);
            self.recovery.arm(self.snd_max_offset());
            self.reliability
                .schedule_resend(self.snd_una, self.snd_una + 1);
            self.stats.fast_retransmits += 1;
            self.reliability.arm_rto(now, now + self.rtt.rto());
        }
    }

    // ------------------------------------------------------------------
    // Timers and output
    // ------------------------------------------------------------------

    /// The earliest time at which [`poll`](Self::poll) should next be called.
    pub fn next_timer(&self) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        let mut consider = |t: Option<SimTime>| {
            if let Some(t) = t {
                earliest = Some(match earliest {
                    Some(e) => e.min(t),
                    None => t,
                });
            }
        };
        consider(self.reliability.rto_expiry());
        consider(self.time_wait_expiry);
        if let AckPending::Delayed(t) = self.ack_pending {
            consider(Some(t));
        }
        earliest
    }

    fn on_rto(&mut self, now: SimTime) {
        self.stats.timeouts += 1;
        // Per-timer arm→fire wait: the arm time is re-stamped on every ACK
        // that re-arms the timer, so this measures the timer instance that
        // actually fired, not the connection's lifetime.
        let wait_us = self
            .reliability
            .rto_armed_at()
            .map(|armed| now.saturating_since(armed).as_micros())
            .unwrap_or(0);
        self.events.push(ConnEvent::RtoFired { wait_us });
        let flight = self.reliability.flight_charge();
        let cwnd_before = self.cc.cwnd() as u64;
        self.cc.on_rto(flight, now);
        // The timeout truncates any fast-recovery episode and is itself a
        // window cut worth a depth sample.
        self.finish_recovery_episode(now);
        self.cc_obs
            .record_cut_depth(cwnd_before.saturating_sub(self.cc.ssthresh() as u64));
        self.note_window(now);
        self.rtt.backoff();
        self.reliability.note_backoff();
        // The timeout is a congestion event: move the recover point up to
        // snd_max (RFC 6582 §3.2 step 4) so the duplicate ACKs that the
        // go-back-N retransmissions elicit cannot re-cut the window.
        self.recovery.on_rto(self.snd_max_offset());
        // Go-back-N: retransmission restarts from the cumulative ACK point
        // and re-covers everything outstanding (window permitting); the
        // scoreboard is rebuilt as segments are re-sent.
        self.reliability.clear_unacked();
        if self.snd_una < self.snd_max_offset() {
            self.reliability
                .schedule_resend(self.snd_una, self.snd_max_offset());
        }
        if matches!(self.state, TcpState::SynSent | TcpState::SynRcvd) {
            self.handshake_pending = true;
        }
        self.reliability.arm_rto(now, now + self.rtt.rto());
    }

    /// Advance timers and produce any segments that should be transmitted now.
    pub fn poll(&mut self, now: SimTime) -> Vec<TcpSegment> {
        let mut out = Vec::new();
        let before = self.readiness();

        // Nothing is ever retransmitted once the connection has terminated;
        // dropping the timer also lets callers' event loops go idle.
        if matches!(self.state, TcpState::Closed | TcpState::TimeWait) {
            self.reliability.clear_rto();
        }

        // Retransmission / handshake timer.
        if let Some(expiry) = self.reliability.rto_expiry() {
            if now >= expiry && !matches!(self.state, TcpState::Closed | TcpState::TimeWait) {
                self.on_rto(now);
            }
        }

        // TIME-WAIT entry and expiry.
        if self.state == TcpState::TimeWait && self.time_wait_expiry.is_none() {
            self.time_wait_expiry = Some(now + SimDuration::from_secs(2));
        }
        if let Some(tw) = self.time_wait_expiry {
            if now >= tw {
                self.state = TcpState::Closed;
                self.time_wait_expiry = None;
            }
        }

        // Handshake segments.
        if self.handshake_pending {
            match self.state {
                TcpState::SynSent => {
                    out.push(self.make_syn(false));
                    self.handshake_pending = false;
                }
                TcpState::SynRcvd => {
                    out.push(self.make_syn(true));
                    self.handshake_pending = false;
                }
                _ => self.handshake_pending = false,
            }
        }

        if self.is_established() {
            self.emit_data(now, &mut out);
            self.maybe_emit_fin(now, &mut out);
        }

        // A pure ACK if one is still owed after data emission (data segments
        // piggyback the ACK and clear the pending state).
        let ack_due = match self.ack_pending {
            AckPending::Immediate => true,
            AckPending::Delayed(t) => now >= t,
            AckPending::None => false,
        };
        let can_ack = !matches!(
            self.state,
            TcpState::Closed | TcpState::Listen | TcpState::SynSent | TcpState::SynRcvd
        );
        if ack_due && can_ack {
            out.push(self.make_ack());
            self.stats.acks_sent += 1;
            self.ack_pending = AckPending::None;
        }

        self.stats.segments_sent += out.len() as u64;
        self.record_edges(before);
        out
    }

    fn make_syn(&self, is_syn_ack: bool) -> TcpSegment {
        let mut seg = TcpSegment::bare(
            self.local_port,
            self.remote_port,
            self.iss,
            if is_syn_ack { self.irs + 1 } else { SeqNum(0) },
            if is_syn_ack {
                TcpFlags::SYN_ACK
            } else {
                TcpFlags::SYN
            },
        );
        seg.window = self.recv_buf.window() as u32;
        seg.options = vec![
            TcpOption::Mss(self.config.mss as u16),
            TcpOption::SackPermitted,
        ];
        seg
    }

    fn make_ack(&self) -> TcpSegment {
        let mut seg = TcpSegment::bare(
            self.local_port,
            self.remote_port,
            self.seq_of_offset(self.snd_max_offset()),
            self.ack_to_send(),
            TcpFlags::ACK,
        );
        seg.window = self.recv_buf.window() as u32;
        let sacks = self.recv_buf.sack_blocks(self.irs, 3);
        if !sacks.is_empty() {
            seg.options = vec![TcpOption::Sack(sacks)];
        }
        seg
    }

    fn make_data_segment(&mut self, offset: u64, data: Vec<u8>, retransmit: bool) -> TcpSegment {
        let mut seg = TcpSegment::bare(
            self.local_port,
            self.remote_port,
            self.seq_of_offset(offset),
            self.ack_to_send(),
            TcpFlags {
                psh: true,
                ..TcpFlags::ACK
            },
        );
        seg.window = self.recv_buf.window() as u32;
        let sacks = self.recv_buf.sack_blocks(self.irs, 3);
        if !sacks.is_empty() {
            seg.options = vec![TcpOption::Sack(sacks)];
        }
        if retransmit {
            self.stats.bytes_retransmitted += data.len() as u64;
        } else {
            self.stats.bytes_sent += data.len() as u64;
        }
        seg.payload = Bytes::from(data);
        // Data segments carry the ACK, satisfying any pending ACK obligation.
        self.ack_pending = AckPending::None;
        seg
    }

    /// The maximum payload for one segment: our MSS clamped by the peer's.
    fn effective_mss(&self) -> usize {
        self.config.mss.min(self.peer_mss.max(1))
    }

    /// Whether segments must respect application write boundaries
    /// (uTCP unordered send keeps each write in its own skbuffs).
    fn respect_write_boundaries(&self) -> bool {
        self.opts.unordered_send
    }

    /// The congestion-window charge for a segment of `len` payload bytes.
    fn window_charge(&self, len: usize) -> usize {
        if self.config.skbuff_accounting && self.opts.unordered_send {
            // Linux counts skbuffs, not bytes: an under-filled skbuff consumes
            // as much window as a full one (§7, §8.1).
            self.effective_mss()
        } else {
            len
        }
    }

    fn emit_data(&mut self, now: SimTime, out: &mut Vec<TcpSegment>) {
        let mss = self.effective_mss();
        let respect_boundaries = self.respect_write_boundaries();
        let effective_window = self.cc.cwnd().min(self.peer_window.max(mss));

        // 1. Retransmissions requested by RTO or fast retransmit / partial ACK.
        // Fast retransmit and NewReno partial ACKs resend a single segment;
        // after an RTO the cursor walks the whole outstanding range
        // (go-back-N), pausing whenever the congestion window is full and
        // resuming on later polls as ACKs open it again.
        if let Some(cursor) = self.reliability.resend_cursor() {
            let mut offset = cursor.max(self.snd_una);
            let limit = self.reliability.resend_until().min(self.snd_max_offset());
            let mut sent_any = false;
            loop {
                if offset >= limit {
                    self.reliability.clear_resend();
                    break;
                }
                // Skip ranges the peer has already SACKed.
                if self.reliability.is_sacked(offset) {
                    offset = self
                        .reliability
                        .next_unsacked_offset(offset)
                        .unwrap_or(limit);
                    continue;
                }
                if self.reliability.flight_charge() >= effective_window {
                    // Window-limited: remember where to resume.
                    self.reliability.pause_resend_at(offset);
                    break;
                }
                // A full segment starting at the cursor, regardless of how
                // short the scheduled range is (the partial-ACK sentinel) or
                // where the original segment boundaries fell.
                let max_len = mss.min((self.snd_max_offset() - offset) as usize);
                let Some(data) = self.send_buf.data_at(offset, max_len, respect_boundaries) else {
                    self.reliability.clear_resend();
                    break;
                };
                let end = offset + data.len() as u64;
                let charge = self.window_charge(data.len());
                let seg = self.make_data_segment(offset, data, true);
                out.push(seg);
                self.record_transmission(offset, end, charge, now, true);
                sent_any = true;
                offset = end;
            }
            if sent_any {
                self.reliability.ensure_rto(now, now + self.rtt.rto());
            }
        }

        // 2. New data, limited by the usable window.
        loop {
            let next = self.snd_max_offset();
            let available = self.send_buf.available_from(next);
            if available == 0 {
                break;
            }
            let flight = self.reliability.flight_charge();
            if flight >= effective_window {
                break;
            }
            let max_len = mss.min(available);
            let Some(data) = self.send_buf.data_at(next, max_len, respect_boundaries) else {
                break;
            };
            let charge = self.window_charge(data.len());
            if flight > 0 && flight + charge > effective_window {
                break;
            }
            // Nagle: hold back a short segment while data is outstanding.
            if self.config.nagle && data.len() < mss && flight > 0 && !self.close_requested {
                break;
            }
            let end = next + data.len() as u64;
            let seg = self.make_data_segment(next, data, false);
            out.push(seg);
            self.send_buf.mark_transmitted(end);
            self.record_transmission(next, end, charge, now, false);
            self.reliability.ensure_rto(now, now + self.rtt.rto());
        }
    }

    fn record_transmission(
        &mut self,
        start: u64,
        end: u64,
        charge: usize,
        now: SimTime,
        retransmitted: bool,
    ) {
        if retransmitted {
            self.stats.retransmissions += 1;
            self.events.push(ConnEvent::Retransmit);
        }
        self.reliability
            .record_transmission(start, end, charge, now, retransmitted);
    }

    fn maybe_emit_fin(&mut self, now: SimTime, out: &mut Vec<TcpSegment>) {
        if !self.close_requested || self.fin_sent {
            return;
        }
        // Send the FIN only once all queued data has been transmitted.
        if self.send_buf.available_from(self.snd_max_offset()) > 0 {
            return;
        }
        let fin_off = self.send_buf.end_offset();
        self.fin_offset = Some(fin_off);
        self.fin_sent = true;
        let mut seg = TcpSegment::bare(
            self.local_port,
            self.remote_port,
            self.seq_of_offset(fin_off),
            self.ack_to_send(),
            TcpFlags::FIN_ACK,
        );
        seg.window = self.recv_buf.window() as u32;
        out.push(seg);
        self.ack_pending = AckPending::None;
        match self.state {
            TcpState::Established => self.state = TcpState::FinWait1,
            TcpState::CloseWait => self.state = TcpState::LastAck,
            _ => {}
        }
        self.reliability.ensure_rto(now, now + self.rtt.rto());
    }
}
