//! The TCP connection state machine.
//!
//! This is a userspace reimplementation of the parts of a kernel TCP stack
//! that the paper's mechanisms depend on: the three-way handshake, cumulative
//! and selective acknowledgments, retransmission (RTO and fast retransmit
//! with NewReno recovery), congestion and flow control, delayed ACKs, and
//! orderly close — plus the two uTCP socket options layered on top of the
//! send and receive buffers.
//!
//! The connection is a passive, poll-driven state machine in the smoltcp
//! style: the owner feeds it arriving segments via [`TcpConnection::on_segment`],
//! asks it for outgoing segments via [`TcpConnection::poll`], and schedules
//! the next call using [`TcpConnection::next_timer`]. All timing comes from
//! the caller's virtual clock, which keeps experiments deterministic.

use crate::cc::CongestionControl;
use crate::config::{SocketOptions, TcpConfig, WriteMeta};
use crate::delivered::DeliveredChunk;
use crate::event::{ConnEvent, EventQueue, Readiness};
use crate::recvbuf::ReceiveBuffer;
use crate::rtt::RttEstimator;
use crate::segment::{SackBlock, TcpFlags, TcpOption, TcpSegment};
use crate::sendbuf::SendBuffer;
use crate::seq::SeqNum;
use bytes::Bytes;
use minion_simnet::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Errors surfaced by the socket-level API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpError {
    /// The connection is not in a state that allows the operation.
    NotConnected,
    /// The send buffer cannot accept the write.
    BufferFull,
    /// The connection has been closed locally.
    Closed,
}

impl std::fmt::Display for TcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpError::NotConnected => write!(f, "connection not established"),
            TcpError::BufferFull => write!(f, "send buffer full"),
            TcpError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for TcpError {}

/// TCP connection states (RFC 793 §3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Passive open, waiting for a SYN.
    Listen,
    /// Active open, SYN sent.
    SynSent,
    /// SYN received, SYN-ACK sent.
    SynRcvd,
    /// Data transfer state.
    Established,
    /// Local close requested, FIN sent.
    FinWait1,
    /// Our FIN acknowledged, waiting for the peer's FIN.
    FinWait2,
    /// Peer closed first; we may still send.
    CloseWait,
    /// Both sides closed simultaneously.
    Closing,
    /// We closed after the peer; waiting for our FIN's ACK.
    LastAck,
    /// Waiting out 2·MSL before releasing state.
    TimeWait,
}

/// Per-connection statistics used throughout the evaluation harness.
#[derive(Clone, Debug, Default)]
pub struct ConnStats {
    /// Segments emitted (including retransmissions and pure ACKs).
    pub segments_sent: u64,
    /// Segments received and processed.
    pub segments_received: u64,
    /// Payload bytes transmitted the first time.
    pub bytes_sent: u64,
    /// Payload bytes retransmitted.
    pub bytes_retransmitted: u64,
    /// Payload bytes cumulatively acknowledged by the peer.
    pub bytes_acked: u64,
    /// Payload bytes received (before reassembly de-duplication).
    pub bytes_received: u64,
    /// Data segments retransmitted.
    pub retransmissions: u64,
    /// Fast-retransmit events.
    pub fast_retransmits: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// Duplicate ACKs received.
    pub dup_acks: u64,
    /// Pure ACK segments sent.
    pub acks_sent: u64,
}

/// A transmitted-but-unacknowledged range, used for flight accounting, RTT
/// sampling, and the SACK scoreboard.
#[derive(Clone, Debug)]
struct TxRecord {
    start: u64,
    end: u64,
    /// Window charge: payload bytes, or a full MSS under skbuff accounting.
    charge: usize,
    sent_at: SimTime,
    retransmitted: bool,
    sacked: bool,
}

/// Pending-ACK state for the delayed-ACK machinery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AckPending {
    None,
    Delayed(SimTime),
    Immediate,
}

/// A TCP connection endpoint.
#[derive(Clone, Debug)]
pub struct TcpConnection {
    config: TcpConfig,
    opts: SocketOptions,
    state: TcpState,
    local_port: u16,
    remote_port: u16,

    // ---- Send state ----
    iss: SeqNum,
    send_buf: SendBuffer,
    /// Offset of the highest cumulatively acknowledged data byte.
    snd_una: u64,
    /// Offset from which the next retransmission should read, when one has
    /// been scheduled (RTO or fast retransmit).
    resend_cursor: Option<u64>,
    /// Exclusive upper bound of the scheduled retransmission: one segment's
    /// worth for fast retransmit / NewReno partial ACKs, everything up to
    /// `snd_max` for an RTO (go-back-N).
    resend_until: u64,
    /// Transmitted, unacknowledged ranges.
    unacked: VecDeque<TxRecord>,
    peer_window: usize,
    peer_mss: usize,
    dup_ack_count: u32,
    /// NewReno recovery point: recovery ends when snd_una passes this offset.
    recover: u64,
    cc: CongestionControl,
    rtt: RttEstimator,
    rto_expiry: Option<SimTime>,
    /// Number of consecutive RTO expirations without progress.
    rto_backoffs: u32,

    // ---- Handshake / close state ----
    syn_sent_at: Option<SimTime>,
    syn_acked: bool,
    close_requested: bool,
    fin_sent: bool,
    fin_offset: Option<u64>,
    fin_acked: bool,
    peer_fin_offset: Option<u64>,
    time_wait_expiry: Option<SimTime>,

    // ---- Receive state ----
    irs: SeqNum,
    recv_buf: ReceiveBuffer,
    ack_pending: AckPending,
    /// Set when the connection should emit a SYN or SYN-ACK on the next poll.
    handshake_pending: bool,

    /// Edge events for poll-driven drivers (gated; see [`crate::ConnEvent`]).
    events: EventQueue,
    stats: ConnStats,
}

impl TcpConnection {
    /// Create a connection endpoint in the `Closed` state.
    pub fn new(local_port: u16, remote_port: u16, config: TcpConfig, opts: SocketOptions) -> Self {
        let isn = config.fixed_isn.unwrap_or_else(|| {
            // Deterministic but port-dependent ISN.
            (u32::from(local_port) << 16) ^ u32::from(remote_port) ^ 0x5EED_1234
        });
        let send_buf = SendBuffer::new(config.send_buffer);
        let recv_buf = ReceiveBuffer::new(config.recv_buffer, opts.unordered_receive);
        let cc = CongestionControl::new(config.cc, config.mss, config.initial_cwnd_segments);
        let rtt = RttEstimator::new(config.min_rto, config.max_rto);
        TcpConnection {
            config,
            opts,
            state: TcpState::Closed,
            local_port,
            remote_port,
            iss: SeqNum(isn),
            send_buf,
            snd_una: 0,
            resend_cursor: None,
            resend_until: 0,
            unacked: VecDeque::new(),
            peer_window: 65535,
            peer_mss: 536,
            dup_ack_count: 0,
            recover: 0,
            cc,
            rtt,
            rto_expiry: None,
            rto_backoffs: 0,
            syn_sent_at: None,
            syn_acked: false,
            close_requested: false,
            fin_sent: false,
            fin_offset: None,
            fin_acked: false,
            peer_fin_offset: None,
            time_wait_expiry: None,
            irs: SeqNum(0),
            recv_buf,
            ack_pending: AckPending::None,
            handshake_pending: false,
            events: EventQueue::default(),
            stats: ConnStats::default(),
        }
    }

    /// Begin an active open (client side). The SYN is emitted by the next
    /// [`poll`](Self::poll).
    pub fn open(&mut self, now: SimTime) {
        assert_eq!(self.state, TcpState::Closed, "open() on a used connection");
        self.state = TcpState::SynSent;
        self.handshake_pending = true;
        self.syn_sent_at = Some(now);
        self.rto_expiry = Some(now + self.rtt.rto());
    }

    /// Begin a passive open (server side).
    pub fn listen(&mut self) {
        assert_eq!(
            self.state,
            TcpState::Closed,
            "listen() on a used connection"
        );
        self.state = TcpState::Listen;
    }

    /// The connection's current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// True once the three-way handshake has completed.
    pub fn is_established(&self) -> bool {
        matches!(
            self.state,
            TcpState::Established
                | TcpState::FinWait1
                | TcpState::FinWait2
                | TcpState::CloseWait
                | TcpState::Closing
                | TcpState::LastAck
        )
    }

    /// True once the connection has fully closed (or was reset).
    pub fn is_closed(&self) -> bool {
        matches!(self.state, TcpState::Closed | TcpState::TimeWait)
    }

    /// Local port number.
    pub fn local_port(&self) -> u16 {
        self.local_port
    }

    /// Remote port number.
    pub fn remote_port(&self) -> u16 {
        self.remote_port
    }

    /// The socket options currently in effect.
    pub fn options(&self) -> SocketOptions {
        self.opts
    }

    /// Update socket options (the uTCP `setsockopt` calls). Options can be
    /// enabled at any point in the connection's life.
    pub fn set_options(&mut self, opts: SocketOptions) {
        self.opts = opts;
        self.recv_buf.set_unordered(opts.unordered_receive);
    }

    /// Connection statistics.
    pub fn stats(&self) -> &ConnStats {
        &self.stats
    }

    // ------------------------------------------------------------------
    // Readiness (poll-driven driver API)
    // ------------------------------------------------------------------

    /// A level-triggered snapshot of what the connection can currently do.
    pub fn readiness(&self) -> Readiness {
        Readiness {
            readable: self.recv_buf.readable(),
            writable: self.is_established()
                && !self.close_requested
                && self.send_buf.free_space() > 0,
            established: self.is_established(),
            closed: self.is_closed(),
        }
    }

    /// Enable or disable edge-event recording ([`ConnEvent`]). Off by
    /// default; a poll-driven driver (the `minion-engine` runtime) enables it
    /// and drains [`take_events`](Self::take_events) after each dispatch so
    /// the queue stays small. Disabling clears any queued events.
    pub fn set_event_interest(&mut self, enabled: bool) {
        self.events.set_enabled(enabled);
    }

    /// Whether edge-event recording is enabled.
    pub fn event_interest(&self) -> bool {
        self.events.enabled()
    }

    /// Drain the queued edge events in arrival order.
    pub fn take_events(&mut self) -> Vec<ConnEvent> {
        self.events.drain()
    }

    /// Whether any edge events are queued.
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Record readiness edges relative to a snapshot taken before a state
    /// transition (segment input or poll).
    fn record_edges(&mut self, before: Readiness) {
        if !self.events.enabled() {
            return;
        }
        let after = self.readiness();
        if !before.established && after.established {
            self.events.push(ConnEvent::Established);
        }
        if !before.readable && after.readable {
            self.events.push(ConnEvent::Readable);
        }
        if !before.writable && after.writable && before.established {
            self.events.push(ConnEvent::Writable);
        }
        if !before.closed && after.closed {
            self.events.push(ConnEvent::Closed);
        }
    }

    /// Smoothed RTT estimate, if one exists.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.rtt.srtt()
    }

    /// Number of RTT samples incorporated (Karn's rule: retransmitted
    /// segments never contribute one).
    pub fn rtt_samples(&self) -> u64 {
        self.rtt.sample_count()
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> usize {
        self.cc.cwnd()
    }

    /// Free space in the send buffer.
    pub fn send_buffer_free(&self) -> usize {
        self.send_buf.free_space()
    }

    /// Bytes queued in the send buffer that have not yet been acknowledged.
    pub fn send_buffer_len(&self) -> usize {
        self.send_buf.len()
    }

    /// Bytes queued but not yet transmitted for the first time.
    pub fn unsent_bytes(&self) -> usize {
        self.send_buf
            .end_offset()
            .saturating_sub(self.send_buf.transmitted_offset()) as usize
    }

    // ------------------------------------------------------------------
    // Application API
    // ------------------------------------------------------------------

    /// Queue data for transmission with default (priority-0) metadata.
    pub fn write(&mut self, data: &[u8]) -> Result<usize, TcpError> {
        self.write_with_meta(data, WriteMeta::normal())
    }

    /// Queue data for transmission with uTCP write metadata (§4.2). When the
    /// `SO_UNORDEREDSEND` option is off the metadata is ignored, matching the
    /// paper's fallback behaviour on stock TCP stacks.
    pub fn write_with_meta(&mut self, data: &[u8], meta: WriteMeta) -> Result<usize, TcpError> {
        if !self.is_established() && self.state != TcpState::SynSent {
            return Err(TcpError::NotConnected);
        }
        if self.close_requested {
            return Err(TcpError::Closed);
        }
        let unordered = self.opts.unordered_send;
        let result = if unordered {
            self.send_buf.write_with_priority(
                data,
                meta.priority,
                meta.squash,
                true,
                self.config.mss,
                self.config.coalesce_small_writes,
            )
        } else {
            self.send_buf.write(data)
        };
        result.map_err(|_| TcpError::BufferFull)
    }

    /// Read the next chunk of received data, if any.
    ///
    /// With `SO_UNORDERED` enabled, chunks may arrive out of order and carry
    /// their stream offset (the paper's 5-byte read header); otherwise chunks
    /// are in-order byte-stream data.
    pub fn read(&mut self) -> Option<DeliveredChunk> {
        self.recv_buf.read()
    }

    /// True if a `read()` would return data.
    pub fn readable(&self) -> bool {
        self.recv_buf.readable()
    }

    /// Request an orderly close. Queued data is still delivered; the FIN is
    /// sent once the send queue drains.
    pub fn close(&mut self) {
        self.close_requested = true;
    }

    // ------------------------------------------------------------------
    // Sequence-number mapping helpers
    // ------------------------------------------------------------------

    /// Sequence number corresponding to a send-stream byte offset.
    fn seq_of_offset(&self, offset: u64) -> SeqNum {
        self.iss + 1 + offset as u32
    }

    /// Send-stream offset corresponding to an acknowledgment number.
    fn offset_of_ack(&self, ack: SeqNum) -> u64 {
        u64::from(ack.distance_from(self.iss + 1))
    }

    /// Receive-stream offset for a received segment's sequence number.
    fn offset_of_seq(&self, seq: SeqNum) -> u64 {
        u64::from(seq.distance_from(self.irs + 1))
    }

    /// The acknowledgment number to advertise, covering in-order data and the
    /// peer's FIN when it has been reached.
    fn ack_to_send(&self) -> SeqNum {
        let mut ack = self.irs + 1 + self.recv_buf.rcv_nxt() as u32;
        if let Some(fin_off) = self.peer_fin_offset {
            if self.recv_buf.rcv_nxt() >= fin_off {
                ack += 1;
            }
        }
        ack
    }

    /// Highest sequence number we have transmitted (exclusive).
    fn snd_max_offset(&self) -> u64 {
        self.send_buf.transmitted_offset()
    }

    // ------------------------------------------------------------------
    // Segment input
    // ------------------------------------------------------------------

    /// Process an arriving segment.
    pub fn on_segment(&mut self, seg: &TcpSegment, now: SimTime) {
        self.stats.segments_received += 1;
        let before = self.readiness();
        match self.state {
            TcpState::Closed => {}
            TcpState::Listen => self.on_segment_listen(seg, now),
            TcpState::SynSent => self.on_segment_syn_sent(seg, now),
            _ => self.on_segment_synchronized(seg, now),
        }
        self.record_edges(before);
    }

    fn on_segment_listen(&mut self, seg: &TcpSegment, now: SimTime) {
        if !seg.flags.syn || seg.flags.ack || seg.flags.rst {
            return;
        }
        self.irs = seg.seq;
        if let Some(mss) = seg.mss_option() {
            self.peer_mss = mss as usize;
        }
        self.peer_window = seg.window as usize;
        self.state = TcpState::SynRcvd;
        self.handshake_pending = true;
        self.syn_sent_at = Some(now);
        self.rto_expiry = Some(now + self.rtt.rto());
    }

    fn on_segment_syn_sent(&mut self, seg: &TcpSegment, now: SimTime) {
        if seg.flags.rst {
            self.state = TcpState::Closed;
            return;
        }
        if !(seg.flags.syn && seg.flags.ack) {
            return;
        }
        if seg.ack != self.iss + 1 {
            return; // Not an acknowledgment of our SYN.
        }
        self.irs = seg.seq;
        if let Some(mss) = seg.mss_option() {
            self.peer_mss = mss as usize;
        }
        self.peer_window = seg.window as usize;
        self.syn_acked = true;
        if let Some(sent) = self.syn_sent_at.take() {
            self.rtt.on_sample(now.saturating_since(sent));
        }
        self.state = TcpState::Established;
        self.rto_expiry = None;
        self.rto_backoffs = 0;
        // Complete the handshake with an ACK.
        self.ack_pending = AckPending::Immediate;
    }

    fn on_segment_synchronized(&mut self, seg: &TcpSegment, now: SimTime) {
        if seg.flags.rst {
            self.state = TcpState::Closed;
            return;
        }

        // A retransmitted SYN-ACK while we are established means our final
        // handshake ACK was lost: re-acknowledge.
        if seg.flags.syn && seg.flags.ack {
            self.ack_pending = AckPending::Immediate;
            return;
        }

        // Complete a passive open.
        if self.state == TcpState::SynRcvd && seg.flags.ack && seg.ack == self.iss + 1 {
            self.syn_acked = true;
            if let Some(sent) = self.syn_sent_at.take() {
                self.rtt.on_sample(now.saturating_since(sent));
            }
            self.state = TcpState::Established;
            self.rto_expiry = None;
            self.rto_backoffs = 0;
        }

        self.peer_window = seg.window as usize;

        if seg.flags.ack {
            self.process_ack(seg, now);
        }

        if !seg.payload.is_empty() {
            self.process_payload(seg, now);
        }

        if seg.flags.fin {
            self.process_fin(seg);
        }
    }

    fn process_payload(&mut self, seg: &TcpSegment, _now: SimTime) {
        let offset = self.offset_of_seq(seg.seq);
        // Reject data far outside the window (e.g. wildly out-of-range
        // offsets from a confused peer); the receive buffer handles overlap.
        let window_limit = self.recv_buf.rcv_nxt() + self.config.recv_buffer as u64;
        if offset > window_limit {
            return;
        }
        self.stats.bytes_received += seg.payload.len() as u64;
        let before = self.recv_buf.rcv_nxt();
        self.recv_buf.on_data(offset, &seg.payload);
        let after = self.recv_buf.rcv_nxt();

        // Immediate ACK for out-of-order arrivals, duplicates, and gap fills
        // (RFC 5681 §4.2); only plain in-order progress may be delayed.
        let out_of_order =
            offset > before || after == before || after > offset + seg.payload.len() as u64;
        if out_of_order || !self.config.delayed_ack {
            // Out-of-order (or gap-filling) data elicits an immediate ACK so
            // the sender sees duplicate ACKs / SACK promptly.
            self.ack_pending = AckPending::Immediate;
        } else {
            match self.ack_pending {
                AckPending::None => {
                    self.ack_pending = AckPending::Delayed(_now + self.config.delayed_ack_timeout);
                }
                AckPending::Delayed(_) => {
                    // Second in-order segment: ACK now (RFC 1122).
                    self.ack_pending = AckPending::Immediate;
                }
                AckPending::Immediate => {}
            }
        }
    }

    fn process_fin(&mut self, seg: &TcpSegment) {
        let fin_off = self.offset_of_seq(seg.seq) + seg.payload.len() as u64;
        self.peer_fin_offset = Some(fin_off);
        self.ack_pending = AckPending::Immediate;
        // Only transition once the FIN is in-order (all prior data received).
        if self.recv_buf.rcv_nxt() >= fin_off {
            match self.state {
                TcpState::Established => self.state = TcpState::CloseWait,
                TcpState::FinWait1 => {
                    self.state = if self.fin_acked {
                        TcpState::TimeWait
                    } else {
                        TcpState::Closing
                    };
                }
                TcpState::FinWait2 => self.state = TcpState::TimeWait,
                _ => {}
            }
        }
    }

    fn process_ack(&mut self, seg: &TcpSegment, now: SimTime) {
        let ack_off = self.offset_of_ack(seg.ack);
        // Account for a FIN acknowledgment.
        let fin_ack_off = self.fin_offset.map(|f| f + 1);
        let data_ack_off = if Some(ack_off) == fin_ack_off {
            self.fin_acked = true;
            ack_off - 1
        } else {
            ack_off
        };

        // Ignore ACKs for data beyond what we have sent (stale/corrupt).
        if data_ack_off > self.snd_max_offset() {
            return;
        }

        // Record SACK information on the scoreboard.
        if !seg.sack_blocks().is_empty() {
            self.apply_sack(seg.sack_blocks());
        }

        if data_ack_off > self.snd_una {
            self.on_new_ack(data_ack_off, now);
        } else if data_ack_off == self.snd_una
            && self.snd_max_offset() > self.snd_una
            && seg.payload.is_empty()
            && !seg.flags.fin
            && !seg.flags.syn
        {
            self.on_duplicate_ack(now);
        }

        // Close-related state transitions driven by our FIN being acked.
        if self.fin_acked {
            match self.state {
                TcpState::FinWait1 => self.state = TcpState::FinWait2,
                TcpState::Closing => self.state = TcpState::TimeWait,
                TcpState::LastAck => self.state = TcpState::Closed,
                _ => {}
            }
            if self.state == TcpState::TimeWait && self.time_wait_expiry.is_none() {
                self.time_wait_expiry = Some(now + SimDuration::from_secs(2));
            }
            // With the FIN acknowledged and no data outstanding there is
            // nothing left to retransmit.
            if self.snd_una >= self.send_buf.end_offset() {
                self.rto_expiry = None;
            }
        }
    }

    fn apply_sack(&mut self, blocks: &[SackBlock]) {
        for block in blocks {
            let start = self.offset_of_ack(block.start);
            let end = self.offset_of_ack(block.end);
            if end <= start || end > self.snd_max_offset() + 1 {
                continue;
            }
            for rec in self.unacked.iter_mut() {
                if rec.start >= start && rec.end <= end {
                    rec.sacked = true;
                }
            }
        }
    }

    fn on_new_ack(&mut self, ack_off: u64, now: SimTime) {
        let newly_acked = (ack_off - self.snd_una) as usize;
        self.stats.bytes_acked += newly_acked as u64;
        self.dup_ack_count = 0;

        // Retire acknowledged transmission records and sample RTT from a
        // record that was never retransmitted (Karn's rule).
        let mut rtt_sampled = false;
        while let Some(front) = self.unacked.front() {
            if front.end <= ack_off {
                let rec = self.unacked.pop_front().expect("front exists");
                if !rec.retransmitted && !rtt_sampled {
                    self.rtt.on_sample(now.saturating_since(rec.sent_at));
                    rtt_sampled = true;
                }
            } else {
                break;
            }
        }

        self.snd_una = ack_off;
        self.send_buf.acknowledge(ack_off);
        self.rto_backoffs = 0;

        if self.cc.in_recovery() {
            if ack_off >= self.recover {
                // Full acknowledgment: leave recovery.
                self.cc.on_exit_recovery();
                self.resend_cursor = None;
            } else {
                // Partial ACK (NewReno): retransmit the next lost segment.
                self.cc.on_partial_ack(newly_acked);
                self.resend_cursor = Some(self.snd_una);
                self.resend_until = self.snd_una + 1;
            }
        } else {
            self.cc.on_ack(newly_acked);
        }

        // Restart the retransmission timer.
        self.rto_expiry = if self.unacked.is_empty() && self.snd_una >= self.snd_max_offset() {
            None
        } else {
            Some(now + self.rtt.rto())
        };
    }

    fn on_duplicate_ack(&mut self, now: SimTime) {
        self.stats.dup_acks += 1;
        self.dup_ack_count += 1;
        if self.cc.in_recovery() {
            self.cc.on_dup_ack_in_recovery();
            return;
        }
        if self.dup_ack_count == 3 {
            // Fast retransmit: resend the first unacknowledged segment and
            // enter NewReno recovery.
            let flight = self.flight_charge();
            self.cc.on_enter_recovery(flight);
            self.recover = self.snd_max_offset();
            self.resend_cursor = Some(self.snd_una);
            self.resend_until = self.snd_una + 1;
            self.stats.fast_retransmits += 1;
            self.rto_expiry = Some(now + self.rtt.rto());
        }
    }

    /// Bytes charged against the congestion window for in-flight data.
    fn flight_charge(&self) -> usize {
        self.unacked
            .iter()
            .filter(|r| !r.sacked)
            .map(|r| r.charge)
            .sum()
    }

    // ------------------------------------------------------------------
    // Timers and output
    // ------------------------------------------------------------------

    /// The earliest time at which [`poll`](Self::poll) should next be called.
    pub fn next_timer(&self) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        let mut consider = |t: Option<SimTime>| {
            if let Some(t) = t {
                earliest = Some(match earliest {
                    Some(e) => e.min(t),
                    None => t,
                });
            }
        };
        consider(self.rto_expiry);
        consider(self.time_wait_expiry);
        if let AckPending::Delayed(t) = self.ack_pending {
            consider(Some(t));
        }
        earliest
    }

    fn on_rto(&mut self, now: SimTime) {
        self.stats.timeouts += 1;
        self.events.push(ConnEvent::RtoFired);
        let flight = self.flight_charge();
        self.cc.on_rto(flight);
        self.rtt.backoff();
        self.rto_backoffs += 1;
        self.dup_ack_count = 0;
        // Go-back-N: retransmission restarts from the cumulative ACK point
        // and re-covers everything outstanding (window permitting); the
        // scoreboard is rebuilt as segments are re-sent.
        self.unacked.clear();
        if self.snd_una < self.snd_max_offset() {
            self.resend_cursor = Some(self.snd_una);
            self.resend_until = self.snd_max_offset();
        }
        if matches!(self.state, TcpState::SynSent | TcpState::SynRcvd) {
            self.handshake_pending = true;
        }
        self.rto_expiry = Some(now + self.rtt.rto());
    }

    /// Advance timers and produce any segments that should be transmitted now.
    pub fn poll(&mut self, now: SimTime) -> Vec<TcpSegment> {
        let mut out = Vec::new();
        let before = self.readiness();

        // Nothing is ever retransmitted once the connection has terminated;
        // dropping the timer also lets callers' event loops go idle.
        if matches!(self.state, TcpState::Closed | TcpState::TimeWait) {
            self.rto_expiry = None;
        }

        // Retransmission / handshake timer.
        if let Some(expiry) = self.rto_expiry {
            if now >= expiry && !matches!(self.state, TcpState::Closed | TcpState::TimeWait) {
                self.on_rto(now);
            }
        }

        // TIME-WAIT entry and expiry.
        if self.state == TcpState::TimeWait && self.time_wait_expiry.is_none() {
            self.time_wait_expiry = Some(now + SimDuration::from_secs(2));
        }
        if let Some(tw) = self.time_wait_expiry {
            if now >= tw {
                self.state = TcpState::Closed;
                self.time_wait_expiry = None;
            }
        }

        // Handshake segments.
        if self.handshake_pending {
            match self.state {
                TcpState::SynSent => {
                    out.push(self.make_syn(false));
                    self.handshake_pending = false;
                }
                TcpState::SynRcvd => {
                    out.push(self.make_syn(true));
                    self.handshake_pending = false;
                }
                _ => self.handshake_pending = false,
            }
        }

        if self.is_established() {
            self.emit_data(now, &mut out);
            self.maybe_emit_fin(now, &mut out);
        }

        // A pure ACK if one is still owed after data emission (data segments
        // piggyback the ACK and clear the pending state).
        let ack_due = match self.ack_pending {
            AckPending::Immediate => true,
            AckPending::Delayed(t) => now >= t,
            AckPending::None => false,
        };
        let can_ack = !matches!(
            self.state,
            TcpState::Closed | TcpState::Listen | TcpState::SynSent | TcpState::SynRcvd
        );
        if ack_due && can_ack {
            out.push(self.make_ack());
            self.stats.acks_sent += 1;
            self.ack_pending = AckPending::None;
        }

        self.stats.segments_sent += out.len() as u64;
        self.record_edges(before);
        out
    }

    fn make_syn(&self, is_syn_ack: bool) -> TcpSegment {
        let mut seg = TcpSegment::bare(
            self.local_port,
            self.remote_port,
            self.iss,
            if is_syn_ack { self.irs + 1 } else { SeqNum(0) },
            if is_syn_ack {
                TcpFlags::SYN_ACK
            } else {
                TcpFlags::SYN
            },
        );
        seg.window = self.recv_buf.window() as u32;
        seg.options = vec![
            TcpOption::Mss(self.config.mss as u16),
            TcpOption::SackPermitted,
        ];
        seg
    }

    fn make_ack(&self) -> TcpSegment {
        let mut seg = TcpSegment::bare(
            self.local_port,
            self.remote_port,
            self.seq_of_offset(self.snd_max_offset()),
            self.ack_to_send(),
            TcpFlags::ACK,
        );
        seg.window = self.recv_buf.window() as u32;
        let sacks = self.recv_buf.sack_blocks(self.irs, 3);
        if !sacks.is_empty() {
            seg.options = vec![TcpOption::Sack(sacks)];
        }
        seg
    }

    fn make_data_segment(&mut self, offset: u64, data: Vec<u8>, retransmit: bool) -> TcpSegment {
        let mut seg = TcpSegment::bare(
            self.local_port,
            self.remote_port,
            self.seq_of_offset(offset),
            self.ack_to_send(),
            TcpFlags {
                psh: true,
                ..TcpFlags::ACK
            },
        );
        seg.window = self.recv_buf.window() as u32;
        let sacks = self.recv_buf.sack_blocks(self.irs, 3);
        if !sacks.is_empty() {
            seg.options = vec![TcpOption::Sack(sacks)];
        }
        if retransmit {
            self.stats.bytes_retransmitted += data.len() as u64;
        } else {
            self.stats.bytes_sent += data.len() as u64;
        }
        seg.payload = Bytes::from(data);
        // Data segments carry the ACK, satisfying any pending ACK obligation.
        self.ack_pending = AckPending::None;
        seg
    }

    /// The maximum payload for one segment: our MSS clamped by the peer's.
    fn effective_mss(&self) -> usize {
        self.config.mss.min(self.peer_mss.max(1))
    }

    /// Whether segments must respect application write boundaries
    /// (uTCP unordered send keeps each write in its own skbuffs).
    fn respect_write_boundaries(&self) -> bool {
        self.opts.unordered_send
    }

    /// The congestion-window charge for a segment of `len` payload bytes.
    fn window_charge(&self, len: usize) -> usize {
        if self.config.skbuff_accounting && self.opts.unordered_send {
            // Linux counts skbuffs, not bytes: an under-filled skbuff consumes
            // as much window as a full one (§7, §8.1).
            self.effective_mss()
        } else {
            len
        }
    }

    fn emit_data(&mut self, now: SimTime, out: &mut Vec<TcpSegment>) {
        let mss = self.effective_mss();
        let respect_boundaries = self.respect_write_boundaries();
        let effective_window = self.cc.cwnd().min(self.peer_window.max(mss));

        // 1. Retransmissions requested by RTO or fast retransmit / partial ACK.
        // Fast retransmit and NewReno partial ACKs resend a single segment;
        // after an RTO the cursor walks the whole outstanding range
        // (go-back-N), pausing whenever the congestion window is full and
        // resuming on later polls as ACKs open it again.
        if let Some(cursor) = self.resend_cursor {
            let mut offset = cursor.max(self.snd_una);
            let limit = self.resend_until.min(self.snd_max_offset());
            let mut sent_any = false;
            loop {
                if offset >= limit {
                    self.resend_cursor = None;
                    break;
                }
                // Skip ranges the peer has already SACKed.
                if self.is_sacked(offset) {
                    offset = self.next_unsacked_offset(offset).unwrap_or(limit);
                    continue;
                }
                if self.flight_charge() >= effective_window {
                    // Window-limited: remember where to resume.
                    self.resend_cursor = Some(offset);
                    break;
                }
                let max_len = mss.min((self.snd_max_offset() - offset) as usize);
                let Some(data) = self.send_buf.data_at(offset, max_len, respect_boundaries) else {
                    self.resend_cursor = None;
                    break;
                };
                let end = offset + data.len() as u64;
                let charge = self.window_charge(data.len());
                let seg = self.make_data_segment(offset, data, true);
                out.push(seg);
                self.record_transmission(offset, end, charge, now, true);
                sent_any = true;
                offset = end;
            }
            if sent_any && self.rto_expiry.is_none() {
                self.rto_expiry = Some(now + self.rtt.rto());
            }
        }

        // 2. New data, limited by the usable window.
        loop {
            let next = self.snd_max_offset();
            let available = self.send_buf.available_from(next);
            if available == 0 {
                break;
            }
            let flight = self.flight_charge();
            if flight >= effective_window {
                break;
            }
            let max_len = mss.min(available);
            let Some(data) = self.send_buf.data_at(next, max_len, respect_boundaries) else {
                break;
            };
            let charge = self.window_charge(data.len());
            if flight > 0 && flight + charge > effective_window {
                break;
            }
            // Nagle: hold back a short segment while data is outstanding.
            if self.config.nagle && data.len() < mss && flight > 0 && !self.close_requested {
                break;
            }
            let end = next + data.len() as u64;
            let seg = self.make_data_segment(next, data, false);
            out.push(seg);
            self.send_buf.mark_transmitted(end);
            self.record_transmission(next, end, charge, now, false);
            if self.rto_expiry.is_none() {
                self.rto_expiry = Some(now + self.rtt.rto());
            }
        }
    }

    fn record_transmission(
        &mut self,
        start: u64,
        end: u64,
        charge: usize,
        now: SimTime,
        retransmitted: bool,
    ) {
        if retransmitted {
            self.stats.retransmissions += 1;
            self.events.push(ConnEvent::Retransmit);
        }
        self.unacked.push_back(TxRecord {
            start,
            end,
            charge,
            sent_at: now,
            retransmitted,
            sacked: false,
        });
    }

    fn is_sacked(&self, offset: u64) -> bool {
        self.unacked
            .iter()
            .any(|r| r.sacked && offset >= r.start && offset < r.end)
    }

    fn next_unsacked_offset(&self, offset: u64) -> Option<u64> {
        self.unacked
            .iter()
            .filter(|r| r.sacked && offset >= r.start && offset < r.end)
            .map(|r| r.end)
            .max()
    }

    fn maybe_emit_fin(&mut self, now: SimTime, out: &mut Vec<TcpSegment>) {
        if !self.close_requested || self.fin_sent {
            return;
        }
        // Send the FIN only once all queued data has been transmitted.
        if self.send_buf.available_from(self.snd_max_offset()) > 0 {
            return;
        }
        let fin_off = self.send_buf.end_offset();
        self.fin_offset = Some(fin_off);
        self.fin_sent = true;
        let mut seg = TcpSegment::bare(
            self.local_port,
            self.remote_port,
            self.seq_of_offset(fin_off),
            self.ack_to_send(),
            TcpFlags::FIN_ACK,
        );
        seg.window = self.recv_buf.window() as u32;
        out.push(seg);
        self.ack_pending = AckPending::None;
        match self.state {
            TcpState::Established => self.state = TcpState::FinWait1,
            TcpState::CloseWait => self.state = TcpState::LastAck,
            _ => {}
        }
        if self.rto_expiry.is_none() {
            self.rto_expiry = Some(now + self.rtt.rto());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CcAlgorithm;

    /// Drive two connections against each other through an in-memory "wire"
    /// that can drop chosen data segments. Returns when both sides go idle.
    struct Harness {
        client: TcpConnection,
        server: TcpConnection,
        now: SimTime,
        /// One-way delay of the wire.
        delay: SimDuration,
        /// In-flight segments: (arrival time, to_server?, segment)
        wire: Vec<(SimTime, bool, TcpSegment)>,
        /// Data-segment indices (1-based count of data segments sent by the
        /// client) to drop once.
        drop_client_data: Vec<u64>,
        client_data_count: u64,
    }

    impl Harness {
        fn new(client_opts: SocketOptions, server_opts: SocketOptions) -> Self {
            Harness::with_isn(client_opts, server_opts, 1000)
        }

        fn with_isn(client_opts: SocketOptions, server_opts: SocketOptions, isn: u32) -> Self {
            let cfg = TcpConfig::default().with_fixed_isn(isn);
            let mut client = TcpConnection::new(10000, 80, cfg.clone(), client_opts);
            let mut server = TcpConnection::new(80, 10000, cfg, server_opts);
            client.open(SimTime::ZERO);
            server.listen();
            Harness {
                client,
                server,
                now: SimTime::ZERO,
                delay: SimDuration::from_millis(30),
                wire: Vec::new(),
                drop_client_data: Vec::new(),
                client_data_count: 0,
            }
        }

        fn transfer(&mut self) {
            // Collect outgoing segments from both endpoints.
            for seg in self.client.poll(self.now) {
                let is_data = !seg.payload.is_empty();
                if is_data {
                    self.client_data_count += 1;
                    if self.drop_client_data.contains(&self.client_data_count) {
                        continue;
                    }
                }
                self.wire.push((self.now + self.delay, true, seg));
            }
            for seg in self.server.poll(self.now) {
                self.wire.push((self.now + self.delay, false, seg));
            }
        }

        /// Advance time to the next event and deliver due segments.
        fn step(&mut self) -> bool {
            self.transfer();
            // Find next event time: wire arrival or connection timer.
            let mut next: Option<SimTime> = None;
            let mut consider = |t: Option<SimTime>| {
                if let Some(t) = t {
                    next = Some(match next {
                        Some(n) => n.min(t),
                        None => t,
                    });
                }
            };
            consider(self.wire.iter().map(|(t, _, _)| *t).min());
            consider(self.client.next_timer());
            consider(self.server.next_timer());
            let Some(next) = next else { return false };
            self.now = self.now.max(next);
            // Deliver all due segments.
            let due: Vec<(SimTime, bool, TcpSegment)> = {
                let mut due = vec![];
                let mut keep = vec![];
                for item in self.wire.drain(..) {
                    if item.0 <= self.now {
                        due.push(item);
                    } else {
                        keep.push(item);
                    }
                }
                self.wire = keep;
                due
            };
            for (_, to_server, seg) in due {
                if to_server {
                    self.server.on_segment(&seg, self.now);
                } else {
                    self.client.on_segment(&seg, self.now);
                }
            }
            true
        }

        fn run_until(&mut self, deadline: SimTime) {
            let mut guard = 0u32;
            while self.now < deadline {
                if !self.step() {
                    break;
                }
                guard += 1;
                assert!(guard < 500_000, "harness stopped making progress");
            }
        }

        fn run_until_idle(&mut self, max_time: SimTime) {
            let mut guard = 0u32;
            loop {
                self.transfer();
                if self.wire.is_empty()
                    && self.client.next_timer().is_none()
                    && self.server.next_timer().is_none()
                {
                    break;
                }
                if !self.step() || self.now >= max_time {
                    break;
                }
                guard += 1;
                assert!(guard < 500_000, "harness stopped making progress");
            }
        }

        fn drain_server_bytes(&mut self) -> Vec<u8> {
            let mut chunks = vec![];
            while let Some(c) = self.server.read() {
                chunks.push(c);
            }
            // Reassemble by offset (handles unordered delivery).
            let mut out = vec![];
            chunks.sort_by_key(|c| c.offset);
            for c in chunks {
                let off = c.offset as usize;
                if out.len() < off + c.len() {
                    out.resize(off + c.len(), 0);
                }
                out[off..off + c.len()].copy_from_slice(&c.data);
            }
            out
        }
    }

    #[test]
    fn three_way_handshake_establishes_both_sides() {
        let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
        h.run_until(SimTime::from_millis(500));
        assert_eq!(h.client.state(), TcpState::Established);
        assert_eq!(h.server.state(), TcpState::Established);
        assert!(
            h.client.srtt().is_some(),
            "client sampled RTT from handshake"
        );
    }

    #[test]
    fn bulk_transfer_without_loss_delivers_all_bytes_in_order() {
        let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
        h.run_until(SimTime::from_millis(200));
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        h.client.write(&data).unwrap();
        h.run_until_idle(SimTime::from_secs(30));
        let received = h.drain_server_bytes();
        assert_eq!(received.len(), data.len());
        assert_eq!(received, data);
        assert_eq!(h.client.stats().retransmissions, 0);
    }

    #[test]
    fn lost_segment_is_recovered_by_fast_retransmit() {
        let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
        h.run_until(SimTime::from_millis(200));
        let data: Vec<u8> = (0..60_000u32).map(|i| (i % 253) as u8).collect();
        h.client.write(&data).unwrap();
        h.drop_client_data = vec![5];
        h.run_until_idle(SimTime::from_secs(60));
        let received = h.drain_server_bytes();
        assert_eq!(received, data, "all data eventually delivered despite loss");
        assert!(h.client.stats().retransmissions >= 1);
        assert!(
            h.client.stats().fast_retransmits >= 1,
            "loss with plenty of following data should trigger fast retransmit, stats={:?}",
            h.client.stats()
        );
    }

    #[test]
    fn lost_segment_at_tail_is_recovered_by_rto() {
        let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
        h.run_until(SimTime::from_millis(200));
        // Two-segment write, drop the last data segment: not enough dupacks,
        // so recovery must come from the retransmission timeout.
        let data: Vec<u8> = vec![7u8; 2000];
        h.client.write(&data).unwrap();
        h.drop_client_data = vec![2];
        h.run_until_idle(SimTime::from_secs(120));
        let received = h.drain_server_bytes();
        assert_eq!(received, data);
        assert!(
            h.client.stats().timeouts >= 1,
            "stats={:?}",
            h.client.stats()
        );
    }

    #[test]
    fn standard_receiver_blocks_delivery_behind_a_hole() {
        let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
        h.run_until(SimTime::from_millis(200));
        let data: Vec<u8> = (0..4000u32).map(|i| (i % 250) as u8).collect();
        h.client.write(&data).unwrap();
        h.drop_client_data = vec![1];
        // Run just long enough for the first window of segments to arrive but
        // not long enough for loss recovery (RTO is at least 200 ms away).
        h.run_until(h.now + SimDuration::from_millis(150));
        // Standard TCP: nothing readable, the first segment is missing.
        assert!(
            !h.server.readable(),
            "hole blocks all delivery on standard TCP"
        );
    }

    #[test]
    fn unordered_receiver_delivers_past_a_hole_immediately() {
        let mut h = Harness::new(SocketOptions::standard(), SocketOptions::utcp());
        h.run_until(SimTime::from_millis(200));
        let data: Vec<u8> = (0..4000u32).map(|i| (i % 250) as u8).collect();
        h.client.write(&data).unwrap();
        h.drop_client_data = vec![1];
        h.run_until(h.now + SimDuration::from_millis(150));
        // uTCP: segments after the hole are already available, with offsets.
        assert!(h.server.readable(), "uTCP delivers out-of-order data early");
        let mut saw_out_of_order = false;
        while let Some(c) = h.server.read() {
            if !c.in_order {
                saw_out_of_order = true;
                assert!(c.offset > 0);
                let expected: Vec<u8> = (c.offset..c.offset + c.len() as u64)
                    .map(|i| (i % 250) as u8)
                    .collect();
                assert_eq!(&c.data[..], &expected[..], "offset metadata is accurate");
            }
        }
        assert!(saw_out_of_order);
    }

    #[test]
    fn wire_format_is_identical_for_utcp() {
        // Run the same deterministic transfer with and without uTCP options on
        // the receiver and compare every segment the *sender* puts on the wire
        // as well as the receiver's ACK stream lengths: uTCP must not change
        // wire-visible behaviour when no loss occurs.
        fn run(receiver_opts: SocketOptions) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
            let mut h = Harness::new(SocketOptions::standard(), receiver_opts);
            let mut client_wire: Vec<Vec<u8>> = vec![];
            let mut server_wire: Vec<Vec<u8>> = vec![];
            h.run_until(SimTime::from_millis(200));
            h.client.write(&vec![42u8; 30_000]).unwrap();
            // Manually step so we can capture segments.
            for _ in 0..2000 {
                for seg in h.client.poll(h.now) {
                    client_wire.push(seg.encode());
                    h.wire.push((h.now + h.delay, true, seg));
                }
                for seg in h.server.poll(h.now) {
                    server_wire.push(seg.encode());
                    h.wire.push((h.now + h.delay, false, seg));
                }
                let next = h
                    .wire
                    .iter()
                    .map(|(t, _, _)| *t)
                    .min()
                    .into_iter()
                    .chain(h.client.next_timer())
                    .chain(h.server.next_timer())
                    .min();
                let Some(next) = next else { break };
                h.now = h.now.max(next);
                let mut keep = vec![];
                for (t, to_server, seg) in h.wire.drain(..) {
                    if t <= h.now {
                        if to_server {
                            h.server.on_segment(&seg, h.now);
                        } else {
                            h.client.on_segment(&seg, h.now);
                        }
                    } else {
                        keep.push((t, to_server, seg));
                    }
                }
                h.wire = keep;
                while h.server.read().is_some() {}
            }
            (client_wire, server_wire)
        }
        let (tcp_client, tcp_server) = run(SocketOptions::standard());
        let (utcp_client, utcp_server) = run(SocketOptions::utcp());
        assert_eq!(tcp_client, utcp_client, "sender wire behaviour unchanged");
        assert_eq!(tcp_server, utcp_server, "receiver ACK stream unchanged");
    }

    #[test]
    fn unordered_send_prioritization_reorders_untransmitted_data() {
        let cfg = TcpConfig::default().with_fixed_isn(1);
        let mut c = TcpConnection::new(1, 2, cfg, SocketOptions::utcp());
        c.open(SimTime::ZERO);
        // Complete handshake manually.
        let syn = &c.poll(SimTime::ZERO)[0];
        let mut synack = TcpSegment::bare(2, 1, SeqNum(5000), syn.seq + 1, TcpFlags::SYN_ACK);
        synack.options = vec![TcpOption::Mss(1448), TcpOption::SackPermitted];
        synack.window = 1 << 20;
        c.on_segment(&synack, SimTime::from_millis(1));
        assert!(c.is_established());
        // Ten low-priority bulk writes; the initial congestion window only
        // lets the first three leave immediately.
        for _ in 0..10 {
            c.write_with_meta(&[0u8; 1448], WriteMeta::with_priority(0))
                .unwrap();
        }
        let first = c.poll(SimTime::from_millis(2));
        assert_eq!(first.iter().filter(|s| !s.payload.is_empty()).count(), 3);
        // A high-priority message written afterwards must pass the seven bulk
        // writes still waiting in the send queue (but not the three already
        // transmitted).
        c.write_with_meta(b"URGENT", WriteMeta::with_priority(9))
            .unwrap();
        let mut ack = TcpSegment::bare(
            2,
            1,
            SeqNum(5001),
            first.last().unwrap().seq_end(),
            TcpFlags::ACK,
        );
        ack.window = 1 << 20;
        c.on_segment(&ack, SimTime::from_millis(60));
        let next = c.poll(SimTime::from_millis(60));
        let data_segs: Vec<&TcpSegment> = next.iter().filter(|s| !s.payload.is_empty()).collect();
        assert!(!data_segs.is_empty());
        assert_eq!(
            data_segs[0].payload.as_ref(),
            b"URGENT",
            "urgent data leads the next flight, ahead of queued bulk"
        );
        // The remaining bulk data still follows afterwards.
        assert!(data_segs[1..]
            .iter()
            .any(|s| s.payload.iter().all(|&b| b == 0)));
    }

    #[test]
    fn cc_disabled_sends_entire_window_at_once() {
        let cfg = TcpConfig::default()
            .with_fixed_isn(1)
            .with_cc(CcAlgorithm::None);
        let mut c = TcpConnection::new(1, 2, cfg, SocketOptions::standard());
        c.open(SimTime::ZERO);
        let syn = &c.poll(SimTime::ZERO)[0];
        let mut synack = TcpSegment::bare(2, 1, SeqNum(5000), syn.seq + 1, TcpFlags::SYN_ACK);
        synack.options = vec![TcpOption::Mss(1448), TcpOption::SackPermitted];
        synack.window = 1 << 20;
        c.on_segment(&synack, SimTime::from_millis(1));
        c.write(&vec![0u8; 100 * 1448]).unwrap();
        let segs = c.poll(SimTime::from_millis(2));
        // Without congestion control, the whole backlog goes out (peer window
        // permitting) in a single poll.
        assert_eq!(
            segs.iter().map(|s| s.payload.len()).sum::<usize>(),
            100 * 1448
        );
    }

    #[test]
    fn orderly_close_reaches_closed_states_on_both_sides() {
        let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
        h.run_until(SimTime::from_millis(200));
        h.client.write(b"goodbye").unwrap();
        h.client.close();
        h.run_until(SimTime::from_millis(400));
        h.server.close();
        h.run_until_idle(SimTime::from_secs(10));
        assert_eq!(h.drain_server_bytes(), b"goodbye");
        assert!(h.client.is_closed(), "client state: {:?}", h.client.state());
        assert!(h.server.is_closed(), "server state: {:?}", h.server.state());
    }

    #[test]
    fn write_before_connect_fails() {
        let mut c = TcpConnection::new(1, 2, TcpConfig::default(), SocketOptions::standard());
        assert_eq!(c.write(b"x"), Err(TcpError::NotConnected));
    }

    #[test]
    fn write_after_close_fails() {
        let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
        h.run_until(SimTime::from_millis(200));
        h.client.close();
        assert_eq!(h.client.write(b"x"), Err(TcpError::Closed));
    }

    #[test]
    fn send_buffer_backpressure_reports_full() {
        let cfg = TcpConfig::default()
            .with_buffers(1000, 65536)
            .with_fixed_isn(3);
        let mut c = TcpConnection::new(1, 2, cfg, SocketOptions::standard());
        c.open(SimTime::ZERO);
        let _ = c.poll(SimTime::ZERO);
        // Can't transmit (no handshake reply), so the buffer fills and then
        // reports backpressure.
        assert!(c.write(&vec![0u8; 900]).is_ok());
        assert_eq!(c.write(&[0u8; 200]), Err(TcpError::BufferFull));
    }

    #[test]
    fn duplicate_acks_are_counted() {
        let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
        h.run_until(SimTime::from_millis(200));
        let data: Vec<u8> = vec![1u8; 80_000];
        h.client.write(&data).unwrap();
        h.drop_client_data = vec![3];
        h.run_until_idle(SimTime::from_secs(60));
        assert!(h.client.stats().dup_acks >= 3);
        assert_eq!(h.drain_server_bytes(), data);
    }

    #[test]
    fn transfer_across_the_sequence_wrap_is_exact() {
        // Both endpoints' ISNs sit just below 2^32, so data sequence numbers
        // (and the ACK stream back) wrap mid-transfer. 60 kB cross the wrap
        // regardless of where inside the first segment it lands.
        for isn in [u32::MAX, u32::MAX - 1, u32::MAX - 1448, u32::MAX - 30_000] {
            let mut h =
                Harness::with_isn(SocketOptions::standard(), SocketOptions::standard(), isn);
            h.run_until(SimTime::from_millis(200));
            assert_eq!(h.client.state(), TcpState::Established, "isn={isn}");
            let data: Vec<u8> = (0..60_000u32).map(|i| (i % 249) as u8).collect();
            h.client.write(&data).unwrap();
            h.run_until_idle(SimTime::from_secs(30));
            assert_eq!(h.drain_server_bytes(), data, "isn={isn}");
            assert_eq!(h.client.stats().retransmissions, 0, "isn={isn}");
        }
    }

    #[test]
    fn loss_recovery_works_across_the_sequence_wrap() {
        // Drop a mid-stream segment whose retransmission lands on the other
        // side of the 2^32 boundary: SACK blocks and the fast-retransmit
        // cursor must all survive the wrap.
        let mut h = Harness::with_isn(
            SocketOptions::standard(),
            SocketOptions::standard(),
            u32::MAX - 4000,
        );
        h.run_until(SimTime::from_millis(200));
        let data: Vec<u8> = (0..60_000u32).map(|i| (i % 251) as u8).collect();
        h.client.write(&data).unwrap();
        h.drop_client_data = vec![3];
        h.run_until_idle(SimTime::from_secs(60));
        assert_eq!(h.drain_server_bytes(), data);
        assert!(h.client.stats().retransmissions >= 1);
    }

    #[test]
    fn unordered_delivery_offsets_are_correct_across_the_wrap() {
        // A uTCP receiver tags chunks with 64-bit stream offsets derived from
        // wrapped 32-bit sequence numbers; a hole right at the boundary must
        // not corrupt them.
        let mut h = Harness::with_isn(
            SocketOptions::standard(),
            SocketOptions::utcp(),
            u32::MAX - 2000,
        );
        h.run_until(SimTime::from_millis(200));
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 247) as u8).collect();
        h.client.write(&data).unwrap();
        h.drop_client_data = vec![2];
        h.run_until_idle(SimTime::from_secs(60));
        assert_eq!(h.drain_server_bytes(), data, "offset-keyed reassembly");
        assert!(h.server.stats().segments_received > 0);
    }

    #[test]
    fn karns_rule_skips_samples_from_retransmitted_segments() {
        let cfg = TcpConfig::default()
            .with_fixed_isn(42)
            .with_delayed_ack(false);
        let mut c = TcpConnection::new(1, 2, cfg, SocketOptions::standard());
        c.open(SimTime::ZERO);
        let syn = &c.poll(SimTime::ZERO)[0];
        let mut synack = TcpSegment::bare(2, 1, SeqNum(9000), syn.seq + 1, TcpFlags::SYN_ACK);
        synack.options = vec![TcpOption::Mss(1448), TcpOption::SackPermitted];
        synack.window = 1 << 20;
        c.on_segment(&synack, SimTime::from_millis(50));
        assert_eq!(c.rtt_samples(), 1, "handshake RTT sampled");
        let srtt_after_handshake = c.srtt().unwrap();

        // One data segment, never acknowledged: the RTO fires and the
        // retransmission eventually gets ACKed. Karn's rule forbids sampling
        // that ACK (the send time is ambiguous).
        c.write(&[1u8; 500]).unwrap();
        let segs = c.poll(SimTime::from_millis(50));
        assert_eq!(segs.iter().filter(|s| !s.payload.is_empty()).count(), 1);
        let rto_at = c.next_timer().expect("RTO armed");
        let resent = c.poll(rto_at);
        assert!(
            resent.iter().any(|s| !s.payload.is_empty()),
            "RTO must retransmit"
        );
        assert_eq!(c.stats().timeouts, 1);
        let mut ack = TcpSegment::bare(2, 1, SeqNum(9001), segs[0].seq_end(), TcpFlags::ACK);
        ack.window = 1 << 20;
        c.on_segment(&ack, rto_at + SimDuration::from_millis(400));
        assert_eq!(
            c.rtt_samples(),
            1,
            "the retransmitted segment's ACK must not be sampled (Karn)"
        );
        assert_eq!(c.srtt(), Some(srtt_after_handshake), "estimate untouched");

        // A fresh, cleanly acknowledged segment samples again.
        let now = rto_at + SimDuration::from_millis(500);
        c.write(&[2u8; 500]).unwrap();
        let segs = c.poll(now);
        let data_seg = segs.iter().find(|s| !s.payload.is_empty()).unwrap();
        let mut ack2 = TcpSegment::bare(2, 1, SeqNum(9001), data_seg.seq_end(), TcpFlags::ACK);
        ack2.window = 1 << 20;
        c.on_segment(&ack2, now + SimDuration::from_millis(80));
        assert_eq!(c.rtt_samples(), 2, "clean transmission samples normally");
    }

    #[test]
    fn rto_backoff_is_exponential_and_resets_on_progress() {
        let cfg = TcpConfig::default().with_fixed_isn(7);
        let mut c = TcpConnection::new(1, 2, cfg, SocketOptions::standard());
        c.open(SimTime::ZERO);
        let _syn = c.poll(SimTime::ZERO);
        // No SYN-ACK ever arrives: consecutive handshake RTOs must double.
        let t1 = c.next_timer().expect("first RTO");
        let _ = c.poll(t1);
        let t2 = c.next_timer().expect("second RTO");
        let _ = c.poll(t2);
        let t3 = c.next_timer().expect("third RTO");
        let gap1 = t2.saturating_since(t1);
        let gap2 = t3.saturating_since(t2);
        assert_eq!(
            gap2,
            gap1.saturating_mul(2),
            "RTO doubles per expiry: {gap1} then {gap2}"
        );
        assert_eq!(c.stats().timeouts, 2);
    }

    #[test]
    fn readiness_events_fire_on_edges() {
        let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
        h.client.set_event_interest(true);
        h.server.set_event_interest(true);
        assert_eq!(h.client.readiness(), Readiness::default());
        h.run_until(SimTime::from_millis(200));
        let client_events = h.client.take_events();
        assert!(
            client_events.contains(&ConnEvent::Established),
            "events={client_events:?}"
        );
        assert!(h.client.readiness().writable);
        assert!(!h.client.readiness().readable);

        h.client.write(b"ping").unwrap();
        h.run_until(h.now + SimDuration::from_millis(200));
        assert!(h.server.readiness().readable);
        assert!(h.server.take_events().contains(&ConnEvent::Readable));

        h.client.close();
        h.server.close();
        h.run_until_idle(SimTime::from_secs(20));
        assert!(h.client.take_events().contains(&ConnEvent::Closed));
        assert!(h.client.readiness().closed);
    }

    #[test]
    fn rto_event_fires_on_timeout() {
        let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
        h.client.set_event_interest(true);
        h.run_until(SimTime::from_millis(200));
        h.client.write(&[7u8; 2000]).unwrap();
        h.drop_client_data = vec![2];
        h.run_until_idle(SimTime::from_secs(120));
        let events = h.client.take_events();
        assert!(events.contains(&ConnEvent::RtoFired));
        assert!(
            events.contains(&ConnEvent::Retransmit),
            "recovering the dropped segment must surface a Retransmit edge"
        );
    }

    #[test]
    fn events_are_not_recorded_without_interest() {
        let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
        h.run_until(SimTime::from_millis(200));
        h.client.write(b"data").unwrap();
        h.run_until(h.now + SimDuration::from_millis(200));
        assert!(!h.client.has_events());
        assert!(!h.server.has_events());
        assert!(h.server.take_events().is_empty());
    }

    #[test]
    fn writable_event_fires_when_a_full_buffer_drains() {
        let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
        h.run_until(SimTime::from_millis(200));
        h.client.set_event_interest(true);
        let _ = h.client.take_events();
        // Fill the send buffer completely, then let ACKs drain it.
        let free = h.client.send_buffer_free();
        h.client.write(&vec![0u8; free]).unwrap();
        assert!(!h.client.readiness().writable);
        h.run_until_idle(SimTime::from_secs(60));
        assert!(
            h.client.take_events().contains(&ConnEvent::Writable),
            "ACKs freeing a full buffer must surface a Writable edge"
        );
    }

    #[test]
    fn stats_track_bytes_sent_and_acked() {
        let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
        h.run_until(SimTime::from_millis(200));
        let data = vec![9u8; 10_000];
        h.client.write(&data).unwrap();
        h.run_until_idle(SimTime::from_secs(10));
        assert_eq!(h.client.stats().bytes_sent, 10_000);
        assert_eq!(h.client.stats().bytes_acked, 10_000);
        assert_eq!(h.server.stats().bytes_received, 10_000);
    }
}
