//! Round-trip-time estimation and retransmission-timeout computation,
//! following Jacobson/Karels (RFC 6298) with Karn's rule applied by the
//! caller (retransmitted segments are never sampled).

use minion_simnet::SimDuration;

/// RTT estimator maintaining smoothed RTT and RTT variance.
#[derive(Clone, Debug)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
    samples: u64,
}

impl RttEstimator {
    /// Create an estimator with the given RTO clamp. The initial RTO before
    /// any sample is 1 second (RFC 6298 §2.1), clamped to the bounds.
    pub fn new(min_rto: SimDuration, max_rto: SimDuration) -> Self {
        let initial = SimDuration::from_secs(1).max(min_rto).min(max_rto);
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: initial,
            min_rto,
            max_rto,
            samples: 0,
        }
    }

    /// Record an RTT sample from a non-retransmitted segment.
    pub fn on_sample(&mut self, rtt: SimDuration) {
        self.samples += 1;
        match self.srtt {
            None => {
                // First measurement: SRTT = R, RTTVAR = R/2.
                self.srtt = Some(rtt);
                self.rttvar = rtt.div(2);
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R|
                let delta = if srtt >= rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar =
                    SimDuration::from_micros((self.rttvar.as_micros() * 3 + delta.as_micros()) / 4);
                // SRTT = 7/8 SRTT + 1/8 R
                self.srtt = Some(SimDuration::from_micros(
                    (srtt.as_micros() * 7 + rtt.as_micros()) / 8,
                ));
            }
        }
        let srtt = self.srtt.expect("just set");
        // RTO = SRTT + max(G, 4*RTTVAR); we use a 1 ms clock granularity.
        let var_term = self
            .rttvar
            .saturating_mul(4)
            .max(SimDuration::from_millis(1));
        self.rto = (srtt + var_term).max(self.min_rto).min(self.max_rto);
    }

    /// Exponentially back off the RTO after a retransmission timeout.
    pub fn backoff(&mut self) {
        self.rto = self.rto.saturating_mul(2).min(self.max_rto);
    }

    /// The current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// The smoothed RTT, if at least one sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// The RTT variance estimate.
    pub fn rttvar(&self) -> SimDuration {
        self.rttvar
    }

    /// Number of samples incorporated.
    pub fn sample_count(&self) -> u64 {
        self.samples
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator::new(SimDuration::from_millis(200), SimDuration::from_secs(60))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_rto_is_one_second() {
        let e = RttEstimator::default();
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        assert!(e.srtt().is_none());
    }

    #[test]
    fn first_sample_initializes_srtt() {
        let mut e = RttEstimator::default();
        e.on_sample(SimDuration::from_millis(60));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(60)));
        assert_eq!(e.rttvar(), SimDuration::from_millis(30));
        // RTO = 60 + 4*30 = 180 ms, clamped to min 200 ms.
        assert_eq!(e.rto(), SimDuration::from_millis(200));
        assert_eq!(e.sample_count(), 1);
    }

    #[test]
    fn converges_to_stable_rtt() {
        let mut e = RttEstimator::default();
        for _ in 0..100 {
            e.on_sample(SimDuration::from_millis(60));
        }
        let srtt = e.srtt().unwrap().as_millis_f64();
        assert!((srtt - 60.0).abs() < 1.0, "srtt={srtt}");
        // Variance decays toward zero, so RTO approaches SRTT + clamp floor.
        assert!(e.rto() <= SimDuration::from_millis(210));
        assert!(e.rto() >= SimDuration::from_millis(200));
    }

    #[test]
    fn rto_grows_with_variance() {
        let mut stable = RttEstimator::default();
        let mut jittery = RttEstimator::default();
        for i in 0..50 {
            stable.on_sample(SimDuration::from_millis(100));
            let jitter = if i % 2 == 0 { 40 } else { 160 };
            jittery.on_sample(SimDuration::from_millis(jitter));
        }
        assert!(jittery.rto() > stable.rto());
    }

    #[test]
    fn rto_is_clamped_to_the_configured_floor_and_ceiling() {
        // A tiny RTT cannot push the RTO below min_rto...
        let mut e = RttEstimator::new(SimDuration::from_millis(200), SimDuration::from_secs(60));
        for _ in 0..50 {
            e.on_sample(SimDuration::from_micros(300));
        }
        assert_eq!(e.rto(), SimDuration::from_millis(200));
        // ...and a huge RTT cannot push it above max_rto.
        let mut e = RttEstimator::new(SimDuration::from_millis(200), SimDuration::from_secs(2));
        e.on_sample(SimDuration::from_secs(30));
        assert_eq!(e.rto(), SimDuration::from_secs(2));
        // The pre-sample initial RTO respects the clamp too.
        let e = RttEstimator::new(SimDuration::from_secs(3), SimDuration::from_secs(60));
        assert_eq!(e.rto(), SimDuration::from_secs(3), "min above 1 s wins");
        let e = RttEstimator::new(SimDuration::from_millis(1), SimDuration::from_millis(500));
        assert_eq!(e.rto(), SimDuration::from_millis(500), "max below 1 s wins");
    }

    #[test]
    fn a_fresh_sample_recovers_from_backoff() {
        // RFC 6298 §5.7: after backed-off timeouts, the next valid sample
        // recomputes the RTO from SRTT/RTTVAR instead of staying inflated.
        let mut e = RttEstimator::default();
        e.on_sample(SimDuration::from_millis(60));
        let base = e.rto();
        for _ in 0..4 {
            e.backoff();
        }
        assert!(e.rto() >= base.saturating_mul(8));
        e.on_sample(SimDuration::from_millis(60));
        assert!(
            e.rto() <= SimDuration::from_millis(250),
            "sampling after backoff restores a tight RTO, got {}",
            e.rto()
        );
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let mut e = RttEstimator::new(SimDuration::from_millis(200), SimDuration::from_secs(4));
        e.on_sample(SimDuration::from_millis(100));
        let base = e.rto();
        e.backoff();
        assert_eq!(
            e.rto(),
            base.saturating_mul(2).min(SimDuration::from_secs(4))
        );
        for _ in 0..10 {
            e.backoff();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(4));
    }
}
