//! Congestion control.
//!
//! NewReno (RFC 5681 / 6582) is the algorithm in the paper's Linux 2.6.34
//! testbed era and is what uTCP explicitly does **not** change: "uTCP does not
//! change TCP's reliability or congestion control" (§8.4). A disabled variant
//! is provided for the §4.3 design-alternative ablation.

use crate::config::CcAlgorithm;

/// Congestion-control state machine, windows measured in bytes.
#[derive(Clone, Debug)]
pub struct CongestionControl {
    algorithm: CcAlgorithm,
    mss: usize,
    cwnd: usize,
    ssthresh: usize,
    /// Bytes acked since the last cwnd increase while in congestion avoidance.
    bytes_acked_ca: usize,
    in_recovery: bool,
    stats: CcStats,
}

/// Counters exposed for experiment analysis.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CcStats {
    /// Number of fast-retransmit recovery episodes entered.
    pub fast_recoveries: u64,
    /// Number of retransmission timeouts.
    pub timeouts: u64,
}

impl CongestionControl {
    /// Create a controller with the given algorithm, MSS, and initial window
    /// (in segments).
    pub fn new(algorithm: CcAlgorithm, mss: usize, initial_cwnd_segments: u32) -> Self {
        let cwnd = mss * initial_cwnd_segments as usize;
        CongestionControl {
            algorithm,
            mss,
            cwnd,
            ssthresh: usize::MAX / 2,
            bytes_acked_ca: 0,
            in_recovery: false,
            stats: CcStats::default(),
        }
    }

    /// Current congestion window in bytes. With congestion control disabled
    /// this is effectively unlimited.
    pub fn cwnd(&self) -> usize {
        match self.algorithm {
            CcAlgorithm::None => usize::MAX / 2,
            CcAlgorithm::NewReno => self.cwnd,
        }
    }

    /// Current slow-start threshold in bytes.
    pub fn ssthresh(&self) -> usize {
        self.ssthresh
    }

    /// True while in fast recovery.
    pub fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    /// Whether the sender is in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Counters.
    pub fn stats(&self) -> &CcStats {
        &self.stats
    }

    /// Process an ACK of `bytes_acked` new bytes (cumulative progress).
    pub fn on_ack(&mut self, bytes_acked: usize) {
        if self.algorithm == CcAlgorithm::None || bytes_acked == 0 {
            return;
        }
        if self.in_recovery {
            // Window adjustments during recovery happen via deflation on exit
            // and inflation on duplicate ACKs.
            return;
        }
        if self.in_slow_start() {
            // cwnd grows by min(bytes_acked, MSS) per ACK (RFC 5681 §3.1).
            self.cwnd += bytes_acked.min(self.mss);
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh.max(self.mss);
            }
        } else {
            // Congestion avoidance: one MSS per cwnd's worth of acked bytes.
            self.bytes_acked_ca += bytes_acked;
            if self.bytes_acked_ca >= self.cwnd {
                self.bytes_acked_ca -= self.cwnd;
                self.cwnd += self.mss;
            }
        }
    }

    /// A duplicate ACK arrived while in fast recovery: inflate the window to
    /// reflect the segment that has left the network.
    pub fn on_dup_ack_in_recovery(&mut self) {
        if self.algorithm == CcAlgorithm::None {
            return;
        }
        if self.in_recovery {
            self.cwnd += self.mss;
        }
    }

    /// Enter fast recovery after three duplicate ACKs, given the current
    /// flight size in bytes.
    pub fn on_enter_recovery(&mut self, flight_size: usize) {
        if self.algorithm == CcAlgorithm::None {
            return;
        }
        self.stats.fast_recoveries += 1;
        self.ssthresh = (flight_size / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh + 3 * self.mss;
        self.in_recovery = true;
        self.bytes_acked_ca = 0;
    }

    /// A partial ACK arrived during recovery (NewReno): deflate by the amount
    /// acked, then add back one MSS (RFC 6582 §3.2 step 5).
    pub fn on_partial_ack(&mut self, bytes_acked: usize) {
        if self.algorithm == CcAlgorithm::None || !self.in_recovery {
            return;
        }
        self.cwnd = self.cwnd.saturating_sub(bytes_acked).max(self.mss);
        self.cwnd += self.mss;
    }

    /// Exit fast recovery (a full ACK arrived): deflate the window to
    /// ssthresh.
    pub fn on_exit_recovery(&mut self) {
        if self.algorithm == CcAlgorithm::None {
            return;
        }
        if self.in_recovery {
            self.in_recovery = false;
            self.cwnd = self.ssthresh.max(self.mss);
            self.bytes_acked_ca = 0;
        }
    }

    /// A retransmission timeout fired.
    pub fn on_rto(&mut self, flight_size: usize) {
        self.stats.timeouts += 1;
        if self.algorithm == CcAlgorithm::None {
            return;
        }
        self.ssthresh = (flight_size / 2).max(2 * self.mss);
        self.cwnd = self.mss;
        self.in_recovery = false;
        self.bytes_acked_ca = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: usize = 1448;

    fn newreno() -> CongestionControl {
        CongestionControl::new(CcAlgorithm::NewReno, MSS, 3)
    }

    #[test]
    fn initial_window_is_three_segments() {
        let cc = newreno();
        assert_eq!(cc.cwnd(), 3 * MSS);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = newreno();
        // Ack one full window of 3 segments: cwnd should grow to ~6 MSS.
        for _ in 0..3 {
            cc.on_ack(MSS);
        }
        assert_eq!(cc.cwnd(), 6 * MSS);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let mut cc = newreno();
        cc.on_enter_recovery(20 * MSS);
        cc.on_exit_recovery();
        assert!(!cc.in_slow_start());
        let start = cc.cwnd();
        // Ack one full window's worth of bytes in MSS chunks: +1 MSS.
        let acks = start / MSS;
        for _ in 0..acks {
            cc.on_ack(MSS);
        }
        assert_eq!(cc.cwnd(), start + MSS);
    }

    #[test]
    fn fast_recovery_halves_window() {
        let mut cc = newreno();
        // Grow a bit first.
        for _ in 0..20 {
            cc.on_ack(MSS);
        }
        let flight = 20 * MSS;
        cc.on_enter_recovery(flight);
        assert!(cc.in_recovery());
        assert_eq!(cc.ssthresh(), flight / 2);
        assert_eq!(cc.cwnd(), flight / 2 + 3 * MSS);
        cc.on_dup_ack_in_recovery();
        assert_eq!(cc.cwnd(), flight / 2 + 4 * MSS);
        cc.on_exit_recovery();
        assert!(!cc.in_recovery());
        assert_eq!(cc.cwnd(), flight / 2);
        assert_eq!(cc.stats().fast_recoveries, 1);
    }

    #[test]
    fn partial_ack_deflates_and_readds_mss() {
        let mut cc = newreno();
        cc.on_enter_recovery(10 * MSS);
        let before = cc.cwnd();
        cc.on_partial_ack(2 * MSS);
        assert_eq!(cc.cwnd(), before - 2 * MSS + MSS);
    }

    #[test]
    fn rto_collapses_to_one_segment() {
        let mut cc = newreno();
        for _ in 0..50 {
            cc.on_ack(MSS);
        }
        cc.on_rto(30 * MSS);
        assert_eq!(cc.cwnd(), MSS);
        assert_eq!(cc.ssthresh(), 15 * MSS);
        assert_eq!(cc.stats().timeouts, 1);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn ssthresh_floor_is_two_mss() {
        let mut cc = newreno();
        cc.on_rto(MSS);
        assert_eq!(cc.ssthresh(), 2 * MSS);
    }

    #[test]
    fn disabled_cc_is_unbounded_and_inert() {
        let mut cc = CongestionControl::new(CcAlgorithm::None, MSS, 3);
        let huge = cc.cwnd();
        assert!(huge > 1 << 30);
        cc.on_enter_recovery(10 * MSS);
        cc.on_rto(10 * MSS);
        cc.on_ack(MSS);
        assert_eq!(cc.cwnd(), huge);
        assert!(!cc.in_recovery());
    }
}
