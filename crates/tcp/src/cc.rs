//! Congestion control, as a pluggable module over the connection's control
//! block (the mlwip `tcp_congestion.h` seam).
//!
//! NewReno (RFC 5681 / 6582) is the algorithm in the paper's Linux 2.6.34
//! testbed era and is what uTCP explicitly does **not** change: "uTCP does not
//! change TCP's reliability or congestion control" (§8.4). CUBIC (RFC 8312)
//! rides the same seam as a scenario axis — window dynamics the paper's
//! figures never swept — and a disabled variant serves the §4.3
//! design-alternative ablation.
//!
//! Everything here is deterministic: CUBIC's cubic-root and window formulas
//! use integer arithmetic over virtual [`SimTime`], never floats or wall
//! clocks, so a connection's window trajectory is byte-identical at any
//! thread count.

use crate::config::CcAlgorithm;
use minion_simnet::{SimDuration, SimTime};

/// Counters exposed for experiment analysis.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CcStats {
    /// Number of fast-retransmit recovery episodes entered.
    pub fast_recoveries: u64,
    /// Number of retransmission timeouts.
    pub timeouts: u64,
}

/// A congestion-control algorithm plugged into [`crate::TcpConnection`].
///
/// The connection owns loss *detection* (duplicate-ACK counting, the RFC 6582
/// recover point, the RTO timer — see `recovery.rs` / `reliability.rs`); the
/// algorithm owns the *window response*. All windows are in bytes. `now` is
/// virtual time from the caller's clock; implementations must not consult any
/// other time source.
pub trait CongestionControl: std::fmt::Debug + Send {
    /// Which algorithm this is (labels, reports).
    fn algorithm(&self) -> CcAlgorithm;

    /// Current congestion window in bytes. With congestion control disabled
    /// this is effectively unlimited.
    fn cwnd(&self) -> usize;

    /// Current slow-start threshold in bytes.
    fn ssthresh(&self) -> usize;

    /// True while in fast recovery.
    fn in_recovery(&self) -> bool;

    /// Whether the sender is in slow start.
    fn in_slow_start(&self) -> bool;

    /// Counters.
    fn stats(&self) -> &CcStats;

    /// Process an ACK of `bytes_acked` new bytes (cumulative progress).
    /// `srtt` is the connection's smoothed RTT estimate, if one exists
    /// (CUBIC's Reno-friendly region needs it; NewReno ignores it).
    fn on_ack(&mut self, bytes_acked: usize, now: SimTime, srtt: Option<SimDuration>);

    /// A duplicate ACK arrived while in fast recovery: inflate the window to
    /// reflect the segment that has left the network.
    fn on_dup_ack_in_recovery(&mut self);

    /// Enter fast recovery after three duplicate ACKs, given the current
    /// flight size in bytes.
    fn on_enter_recovery(&mut self, flight_size: usize, now: SimTime);

    /// A partial ACK arrived during recovery (NewReno): deflate by the amount
    /// acked, then add back one MSS (RFC 6582 §3.2 step 5).
    fn on_partial_ack(&mut self, bytes_acked: usize);

    /// Exit fast recovery (a full ACK arrived). `flight_size` is the data
    /// still outstanding *now*: RFC 6582 §3.2 step 3 deflates to
    /// `min(ssthresh, max(flight, MSS) + MSS)` so the first post-recovery
    /// poll cannot burst a full ssthresh of back-to-back segments.
    fn on_exit_recovery(&mut self, flight_size: usize);

    /// A retransmission timeout fired.
    fn on_rto(&mut self, flight_size: usize, now: SimTime);

    /// Clone into a fresh box (connections are `Clone`).
    fn clone_box(&self) -> Box<dyn CongestionControl>;
}

impl Clone for Box<dyn CongestionControl> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Build the controller for `algorithm` with the given MSS and initial
/// window (in segments).
pub fn build(
    algorithm: CcAlgorithm,
    mss: usize,
    initial_cwnd_segments: u32,
) -> Box<dyn CongestionControl> {
    match algorithm {
        CcAlgorithm::NewReno => Box::new(NewReno::new(mss, initial_cwnd_segments)),
        CcAlgorithm::Cubic => Box::new(Cubic::new(mss, initial_cwnd_segments)),
        CcAlgorithm::None => Box::new(NoCc::new(mss, initial_cwnd_segments)),
    }
}

/// RFC 6582 §3.2 step 3, conservative variant: the post-recovery window.
fn conservative_exit_window(ssthresh: usize, flight_size: usize, mss: usize) -> usize {
    ssthresh.min(flight_size.max(mss) + mss).max(mss)
}

// ---------------------------------------------------------------------------
// NewReno
// ---------------------------------------------------------------------------

/// NewReno (RFC 5681 / RFC 6582): slow start, linear congestion avoidance,
/// multiplicative decrease with window inflation during fast recovery.
#[derive(Clone, Debug)]
pub struct NewReno {
    mss: usize,
    cwnd: usize,
    ssthresh: usize,
    /// Bytes acked since the last cwnd increase while in congestion avoidance.
    bytes_acked_ca: usize,
    in_recovery: bool,
    stats: CcStats,
}

impl NewReno {
    /// A NewReno controller with the given MSS and initial window.
    pub fn new(mss: usize, initial_cwnd_segments: u32) -> Self {
        NewReno {
            mss,
            cwnd: mss * initial_cwnd_segments as usize,
            ssthresh: usize::MAX / 2,
            bytes_acked_ca: 0,
            in_recovery: false,
            stats: CcStats::default(),
        }
    }
}

impl CongestionControl for NewReno {
    fn algorithm(&self) -> CcAlgorithm {
        CcAlgorithm::NewReno
    }

    fn cwnd(&self) -> usize {
        self.cwnd
    }

    fn ssthresh(&self) -> usize {
        self.ssthresh
    }

    fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    fn stats(&self) -> &CcStats {
        &self.stats
    }

    fn on_ack(&mut self, bytes_acked: usize, _now: SimTime, _srtt: Option<SimDuration>) {
        if bytes_acked == 0 || self.in_recovery {
            // Window adjustments during recovery happen via deflation on exit
            // and inflation on duplicate ACKs.
            return;
        }
        if self.in_slow_start() {
            // cwnd grows by min(bytes_acked, MSS) per ACK (RFC 5681 §3.1).
            self.cwnd += bytes_acked.min(self.mss);
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh.max(self.mss);
            }
        } else {
            // Congestion avoidance: one MSS per cwnd's worth of acked bytes.
            self.bytes_acked_ca += bytes_acked;
            if self.bytes_acked_ca >= self.cwnd {
                self.bytes_acked_ca -= self.cwnd;
                self.cwnd += self.mss;
            }
        }
    }

    fn on_dup_ack_in_recovery(&mut self) {
        if self.in_recovery {
            self.cwnd += self.mss;
        }
    }

    fn on_enter_recovery(&mut self, flight_size: usize, _now: SimTime) {
        self.stats.fast_recoveries += 1;
        self.ssthresh = (flight_size / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh + 3 * self.mss;
        self.in_recovery = true;
        self.bytes_acked_ca = 0;
    }

    fn on_partial_ack(&mut self, bytes_acked: usize) {
        if !self.in_recovery {
            return;
        }
        self.cwnd = self.cwnd.saturating_sub(bytes_acked).max(self.mss);
        self.cwnd += self.mss;
    }

    fn on_exit_recovery(&mut self, flight_size: usize) {
        if self.in_recovery {
            self.in_recovery = false;
            self.cwnd = conservative_exit_window(self.ssthresh, flight_size, self.mss);
            self.bytes_acked_ca = 0;
        }
    }

    fn on_rto(&mut self, flight_size: usize, _now: SimTime) {
        self.stats.timeouts += 1;
        self.ssthresh = (flight_size / 2).max(2 * self.mss);
        self.cwnd = self.mss;
        self.in_recovery = false;
        self.bytes_acked_ca = 0;
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// CUBIC
// ---------------------------------------------------------------------------

/// CUBIC constants as exact rationals: β = 7/10, C = 2/5 (RFC 8312 §5).
const BETA_NUM: usize = 7;
const BETA_DEN: usize = 10;

/// Integer cube root: the largest `r` with `r³ ≤ x`. Binary search over
/// `u128`, so it is exact, branch-deterministic, and float-free.
fn icbrt(x: u128) -> u64 {
    let (mut lo, mut hi) = (0u128, 1u128 << 43); // (2⁴³)³ overflows ⇒ always > x
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if mid.checked_pow(3).is_some_and(|c| c <= x) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo as u64
}

/// CUBIC (RFC 8312) in deterministic integer arithmetic.
///
/// Window growth in congestion avoidance follows
/// `W_cubic(t) = C·(t − K)³ + W_max` with `C = 0.4`, `t` measured from the
/// epoch start (the first congestion-avoidance ACK after a congestion
/// event) on the virtual clock, and `K = ∛(W_max·(1 − cwnd/W_max)/C)`
/// generalized Linux-style to the actual epoch-start window. The
/// TCP-friendly region (`W_est`, RFC 8312 §4.2) floors growth at what Reno
/// would achieve. All terms are integers: times in virtual milliseconds,
/// windows in bytes, the cube root via [`icbrt`].
#[derive(Clone, Debug)]
pub struct Cubic {
    mss: usize,
    cwnd: usize,
    ssthresh: usize,
    in_recovery: bool,
    stats: CcStats,
    /// Window (bytes) just before the last congestion event.
    w_max: usize,
    /// Start of the current growth epoch; `None` forces re-initialization on
    /// the next congestion-avoidance ACK.
    epoch_start: Option<SimTime>,
    /// K in virtual milliseconds: time from epoch start to the plateau.
    k_ms: u64,
    /// The plateau window (bytes) the cubic curve is anchored at.
    origin: usize,
}

impl Cubic {
    /// A CUBIC controller with the given MSS and initial window.
    pub fn new(mss: usize, initial_cwnd_segments: u32) -> Self {
        Cubic {
            mss,
            cwnd: mss * initial_cwnd_segments as usize,
            ssthresh: usize::MAX / 2,
            in_recovery: false,
            stats: CcStats::default(),
            w_max: 0,
            epoch_start: None,
            k_ms: 0,
            origin: 0,
        }
    }

    /// Reset the growth epoch (after any congestion event or window cut).
    fn reset_epoch(&mut self) {
        self.epoch_start = None;
    }

    fn begin_epoch(&mut self, now: SimTime) {
        self.epoch_start = Some(now);
        if self.cwnd < self.w_max {
            // K = ∛((W_max − cwnd)/(C·mss)) seconds, in ms:
            // ∛(x) s = ∛(x · 10⁹) ms; C = 2/5 ⇒ divide by C = ×(5/2).
            let deficit = (self.w_max - self.cwnd) as u128;
            self.k_ms = icbrt(deficit * 5 * 1_000_000_000 / (2 * self.mss as u128));
            self.origin = self.w_max;
        } else {
            // Above the old plateau already: anchor the convex region here.
            self.k_ms = 0;
            self.origin = self.cwnd;
        }
    }

    /// `W_cubic(t)` in bytes at `t_ms` milliseconds after the epoch start.
    fn w_cubic(&self, t_ms: u64) -> usize {
        // C·(t − K)³·mss with t in ms: (Δms)³/10⁹ = (Δs)³, C = 2/5.
        let delta = t_ms as i128 - self.k_ms as i128;
        let cube = delta * delta * delta; // |Δ| < 2⁴³ ⇒ cube < 2¹²⁹ᐟ... fits i128 for any sane sim time
        let grown = 2 * self.mss as i128 * cube / 5_000_000_000;
        let w = self.origin as i128 + grown;
        w.clamp(self.mss as i128, usize::MAX as i128 / 4) as usize
    }

    /// The TCP-friendly floor `W_est(t)` in bytes (RFC 8312 §4.2):
    /// `W_max·β + 3·(1−β)/(1+β) · t/RTT` segments; with β = 7/10 the slope
    /// is 9/17 segments per RTT.
    fn w_est(&self, t_ms: u64, srtt: Option<SimDuration>) -> usize {
        let base = self.w_max * BETA_NUM / BETA_DEN;
        let Some(srtt) = srtt else { return base };
        let rtt_ms = (srtt.as_micros() / 1000).max(1);
        let grown = (self.mss as u128 * t_ms as u128 * 9) / (17 * rtt_ms as u128);
        base + grown.min(usize::MAX as u128 / 4) as usize
    }
}

impl CongestionControl for Cubic {
    fn algorithm(&self) -> CcAlgorithm {
        CcAlgorithm::Cubic
    }

    fn cwnd(&self) -> usize {
        self.cwnd
    }

    fn ssthresh(&self) -> usize {
        self.ssthresh
    }

    fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    fn stats(&self) -> &CcStats {
        &self.stats
    }

    fn on_ack(&mut self, bytes_acked: usize, now: SimTime, srtt: Option<SimDuration>) {
        if bytes_acked == 0 || self.in_recovery {
            return;
        }
        if self.in_slow_start() {
            self.cwnd += bytes_acked.min(self.mss);
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh.max(self.mss);
            }
            return;
        }
        if self.epoch_start.is_none() {
            self.begin_epoch(now);
        }
        let start = self.epoch_start.expect("epoch just initialized");
        let t_ms = now.saturating_since(start).as_micros() / 1000;
        // RFC 8312 §4.1: aim where the curve will be one RTT from now.
        let rtt_ms = srtt.map_or(0, |s| s.as_micros() / 1000);
        let target = self
            .w_cubic(t_ms + rtt_ms)
            .max(self.w_est(t_ms, srtt))
            // Linux caps each step at 1.5× the current window so a long idle
            // epoch cannot manifest as one giant burst.
            .min(self.cwnd + self.cwnd / 2);
        if target > self.cwnd {
            // Spread the climb over the ACKs of one window's worth of data.
            let step = (target - self.cwnd) * bytes_acked.min(self.mss) / self.cwnd;
            self.cwnd += step.max(1).min(self.mss);
        }
    }

    fn on_dup_ack_in_recovery(&mut self) {
        if self.in_recovery {
            self.cwnd += self.mss;
        }
    }

    fn on_enter_recovery(&mut self, flight_size: usize, _now: SimTime) {
        self.stats.fast_recoveries += 1;
        // Fast convergence (RFC 8312 §4.6): if the window never regained the
        // previous plateau, remember an even lower one to release bandwidth.
        self.w_max = if self.cwnd < self.w_max {
            self.cwnd * (BETA_DEN + BETA_NUM) / (2 * BETA_DEN)
        } else {
            self.cwnd
        };
        // Multiplicative decrease by β = 0.7 (on flight, as the NewReno
        // module cuts on flight) with the RFC 5681 two-segment floor.
        self.ssthresh = (flight_size * BETA_NUM / BETA_DEN).max(2 * self.mss);
        self.cwnd = self.ssthresh + 3 * self.mss;
        self.in_recovery = true;
        self.reset_epoch();
    }

    fn on_partial_ack(&mut self, bytes_acked: usize) {
        if !self.in_recovery {
            return;
        }
        self.cwnd = self.cwnd.saturating_sub(bytes_acked).max(self.mss);
        self.cwnd += self.mss;
    }

    fn on_exit_recovery(&mut self, flight_size: usize) {
        if self.in_recovery {
            self.in_recovery = false;
            self.cwnd = conservative_exit_window(self.ssthresh, flight_size, self.mss);
            self.reset_epoch();
        }
    }

    fn on_rto(&mut self, flight_size: usize, _now: SimTime) {
        self.stats.timeouts += 1;
        self.w_max = self.cwnd.max(self.mss);
        self.ssthresh = (flight_size * BETA_NUM / BETA_DEN).max(2 * self.mss);
        self.cwnd = self.mss;
        self.in_recovery = false;
        self.reset_epoch();
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Disabled (§4.3 ablation)
// ---------------------------------------------------------------------------

/// Congestion control disabled: the window is limited only by the peer's
/// receive window. Loss events still count (the connection's retransmission
/// machinery is unchanged), but nothing ever shrinks.
#[derive(Clone, Debug)]
pub struct NoCc {
    stats: CcStats,
}

impl NoCc {
    /// The disabled controller (MSS and initial window are irrelevant).
    pub fn new(_mss: usize, _initial_cwnd_segments: u32) -> Self {
        NoCc {
            stats: CcStats::default(),
        }
    }
}

impl CongestionControl for NoCc {
    fn algorithm(&self) -> CcAlgorithm {
        CcAlgorithm::None
    }

    fn cwnd(&self) -> usize {
        usize::MAX / 2
    }

    fn ssthresh(&self) -> usize {
        usize::MAX / 2
    }

    fn in_recovery(&self) -> bool {
        false
    }

    fn in_slow_start(&self) -> bool {
        false
    }

    fn stats(&self) -> &CcStats {
        &self.stats
    }

    fn on_ack(&mut self, _bytes_acked: usize, _now: SimTime, _srtt: Option<SimDuration>) {}

    fn on_dup_ack_in_recovery(&mut self) {}

    fn on_enter_recovery(&mut self, _flight_size: usize, _now: SimTime) {}

    fn on_partial_ack(&mut self, _bytes_acked: usize) {}

    fn on_exit_recovery(&mut self, _flight_size: usize) {}

    fn on_rto(&mut self, _flight_size: usize, _now: SimTime) {
        self.stats.timeouts += 1;
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: usize = 1448;

    fn newreno() -> NewReno {
        NewReno::new(MSS, 3)
    }

    fn cubic() -> Cubic {
        Cubic::new(MSS, 3)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    const RTT: Option<SimDuration> = Some(SimDuration::from_millis(100));

    #[test]
    fn initial_window_is_three_segments() {
        let cc = newreno();
        assert_eq!(cc.cwnd(), 3 * MSS);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = newreno();
        // Ack one full window of 3 segments: cwnd should grow to ~6 MSS.
        for _ in 0..3 {
            cc.on_ack(MSS, t(0), RTT);
        }
        assert_eq!(cc.cwnd(), 6 * MSS);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let mut cc = newreno();
        cc.on_enter_recovery(20 * MSS, t(0));
        let exit_flight = cc.ssthresh();
        cc.on_exit_recovery(exit_flight);
        assert!(!cc.in_slow_start());
        let start = cc.cwnd();
        // Ack one full window's worth of bytes in MSS chunks: +1 MSS.
        let acks = start / MSS;
        for _ in 0..acks {
            cc.on_ack(MSS, t(0), RTT);
        }
        assert_eq!(cc.cwnd(), start + MSS);
    }

    #[test]
    fn fast_recovery_halves_window() {
        let mut cc = newreno();
        // Grow a bit first.
        for _ in 0..20 {
            cc.on_ack(MSS, t(0), RTT);
        }
        let flight = 20 * MSS;
        cc.on_enter_recovery(flight, t(0));
        assert!(cc.in_recovery());
        assert_eq!(cc.ssthresh(), flight / 2);
        assert_eq!(cc.cwnd(), flight / 2 + 3 * MSS);
        cc.on_dup_ack_in_recovery();
        assert_eq!(cc.cwnd(), flight / 2 + 4 * MSS);
        // Exiting with the full ssthresh still outstanding deflates to
        // ssthresh exactly (the conservative variant changes nothing here).
        cc.on_exit_recovery(flight / 2);
        assert!(!cc.in_recovery());
        assert_eq!(cc.cwnd(), flight / 2);
        assert_eq!(cc.stats().fast_recoveries, 1);
    }

    #[test]
    fn recovery_exit_is_burst_limited_when_flight_is_small() {
        // RFC 6582 §3.2 step 3, conservative variant: with almost nothing
        // left in flight, the exit window is flight + 1 MSS — not the full
        // ssthresh, which would license an ssthresh-sized burst.
        let mut cc = newreno();
        for _ in 0..20 {
            cc.on_ack(MSS, t(0), RTT);
        }
        cc.on_enter_recovery(20 * MSS, t(0));
        assert_eq!(cc.ssthresh(), 10 * MSS);
        cc.on_exit_recovery(2 * MSS);
        assert_eq!(cc.cwnd(), 3 * MSS, "max(flight, MSS) + MSS, not ssthresh");
        // And the floor: zero flight still leaves a 2-MSS window.
        let mut cc = newreno();
        cc.on_enter_recovery(20 * MSS, t(0));
        cc.on_exit_recovery(0);
        assert_eq!(cc.cwnd(), 2 * MSS);
    }

    #[test]
    fn partial_ack_deflates_and_readds_mss() {
        let mut cc = newreno();
        cc.on_enter_recovery(10 * MSS, t(0));
        let before = cc.cwnd();
        cc.on_partial_ack(2 * MSS);
        assert_eq!(cc.cwnd(), before - 2 * MSS + MSS);
    }

    #[test]
    fn rto_collapses_to_one_segment() {
        let mut cc = newreno();
        for _ in 0..50 {
            cc.on_ack(MSS, t(0), RTT);
        }
        cc.on_rto(30 * MSS, t(0));
        assert_eq!(cc.cwnd(), MSS);
        assert_eq!(cc.ssthresh(), 15 * MSS);
        assert_eq!(cc.stats().timeouts, 1);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn ssthresh_floor_is_two_mss() {
        let mut cc = newreno();
        cc.on_rto(MSS, t(0));
        assert_eq!(cc.ssthresh(), 2 * MSS);
    }

    #[test]
    fn disabled_cc_is_unbounded_and_inert() {
        let mut cc = NoCc::new(MSS, 3);
        let huge = cc.cwnd();
        assert!(huge > 1 << 30);
        cc.on_enter_recovery(10 * MSS, t(0));
        cc.on_rto(10 * MSS, t(0));
        cc.on_ack(MSS, t(0), RTT);
        assert_eq!(cc.cwnd(), huge);
        assert!(!cc.in_recovery());
        assert_eq!(cc.stats().timeouts, 1, "loss accounting still works");
    }

    #[test]
    fn factory_builds_the_requested_algorithm() {
        for algo in CcAlgorithm::ALL {
            let cc = build(algo, MSS, 3);
            assert_eq!(cc.algorithm(), algo);
            let copy = cc.clone();
            assert_eq!(copy.algorithm(), algo);
        }
    }

    #[test]
    fn icbrt_is_exact_on_and_between_cubes() {
        for r in [0u64, 1, 2, 7, 100, 1_000, 123_456, 8_000_000] {
            let x = (r as u128).pow(3);
            assert_eq!(icbrt(x), r);
            if x > 0 {
                assert_eq!(icbrt(x - 1), r - 1);
                assert_eq!(icbrt(x + 1), r);
            }
        }
        // The true integer cube root of u128::MAX: r³ fits, (r+1)³ overflows.
        let r = icbrt(u128::MAX) as u128;
        assert!(r.checked_pow(3).is_some());
        assert!((r + 1).checked_pow(3).is_none());
    }

    // ---- CUBIC ----

    /// Drive one epoch's worth of ACK clocks at a fixed RTT, one window per
    /// RTT, and return the cwnd trajectory sampled at each RTT boundary.
    fn cubic_trajectory(cc: &mut Cubic, rtts: usize, rtt_ms: u64) -> Vec<usize> {
        let mut out = Vec::new();
        let mut now_ms = 1;
        for _ in 0..rtts {
            let acks = (cc.cwnd() / MSS).max(1);
            for _ in 0..acks {
                cc.on_ack(MSS, t(now_ms), Some(SimDuration::from_millis(rtt_ms)));
            }
            now_ms += rtt_ms;
            out.push(cc.cwnd());
        }
        out
    }

    #[test]
    fn cubic_concave_region_decelerates_toward_w_max() {
        // Cut from a large plateau, then grow back: the concave region's
        // per-RTT gains must shrink as cwnd approaches W_max (and stay
        // positive), reaching but not wildly overshooting the plateau.
        let mut cc = cubic();
        for _ in 0..200 {
            cc.on_ack(MSS, t(0), RTT);
        }
        let w_max = cc.cwnd();
        cc.on_enter_recovery(w_max, t(0));
        let exit_flight = cc.ssthresh();
        cc.on_exit_recovery(exit_flight);
        assert!(!cc.in_slow_start());
        let start = cc.cwnd();
        assert!(start < w_max);
        // K ≈ ∛(0.75·W_max/(C·mss)) ≈ 5.3 s here: give the trajectory 80
        // RTTs of 100 ms so it crosses the plateau with margin.
        let traj = cubic_trajectory(&mut cc, 80, 100);
        let below: Vec<usize> = traj.iter().copied().filter(|&w| w < w_max).collect();
        assert!(below.len() >= 4, "several RTTs spent below the plateau");
        let early_gain = below[1] - below[0];
        let late_gain = below[below.len() - 1] - below[below.len() - 2];
        assert!(
            late_gain < early_gain,
            "concave: growth decelerates approaching W_max ({early_gain} -> {late_gain})"
        );
        assert!(
            traj.last().copied().unwrap() >= w_max,
            "the plateau is eventually regained"
        );
    }

    #[test]
    fn cubic_convex_region_accelerates_past_w_max() {
        // Beyond W_max the curve turns convex: per-RTT gains must increase.
        let mut cc = cubic();
        for _ in 0..100 {
            cc.on_ack(MSS, t(0), RTT);
        }
        let w_max = cc.cwnd();
        cc.on_enter_recovery(w_max, t(0));
        let exit_flight = cc.ssthresh();
        cc.on_exit_recovery(exit_flight);
        let traj = cubic_trajectory(&mut cc, 120, 100);
        let above: Vec<usize> = traj.iter().copied().filter(|&w| w > w_max).collect();
        assert!(above.len() >= 6, "trajectory crosses the plateau: {traj:?}");
        let early_gain = above[1].saturating_sub(above[0]);
        let late_gain = above[above.len() - 1] - above[above.len() - 2];
        assert!(
            late_gain > early_gain,
            "convex: growth accelerates past W_max ({early_gain} -> {late_gain})"
        );
    }

    #[test]
    fn cubic_tcp_friendly_floor_wins_at_short_rtt() {
        // At LAN RTTs the cubic curve is glacial; W_est (the Reno-equivalent
        // line) must carry growth instead (RFC 8312 §4.2). One RTT of ACKs
        // at 1 ms must grow cwnd at least as fast as Reno's 9/17-segment
        // slope would over the same span.
        let mut cc = cubic();
        for _ in 0..200 {
            cc.on_ack(MSS, t(0), RTT);
        }
        cc.on_enter_recovery(cc.cwnd(), t(0));
        let exit_flight = cc.ssthresh();
        cc.on_exit_recovery(exit_flight);
        let start = cc.cwnd();
        let traj = cubic_trajectory(&mut cc, 100, 1);
        // Pure cubic at 1 ms RTT over 100 ms: W_cubic(0.1 s) − origin is
        // ~0.4·0.001·mss ≈ 0 bytes. The floor must do visibly better.
        assert!(
            traj.last().copied().unwrap() >= start + 20 * MSS,
            "W_est floor must carry short-RTT growth: {} -> {}",
            start,
            traj.last().unwrap()
        );
    }

    #[test]
    fn cubic_trajectory_is_deterministic() {
        let run = || {
            let mut cc = cubic();
            for _ in 0..64 {
                cc.on_ack(MSS, t(0), RTT);
            }
            cc.on_enter_recovery(cc.cwnd(), t(5));
            let exit_flight = cc.ssthresh();
            cc.on_exit_recovery(exit_flight);
            cubic_trajectory(&mut cc, 50, 37)
        };
        assert_eq!(run(), run(), "same inputs, same integer trajectory");
    }

    #[test]
    fn cubic_fast_convergence_lowers_the_plateau() {
        let mut cc = cubic();
        for _ in 0..100 {
            cc.on_ack(MSS, t(0), RTT);
        }
        let w1 = cc.cwnd();
        cc.on_enter_recovery(w1, t(0));
        assert_eq!(cc.w_max, w1, "first cut anchors W_max at the old window");
        // A second cut before regaining w1: W_max drops below the current
        // window (releasing bandwidth for newcomers).
        let w2 = cc.cwnd();
        cc.on_enter_recovery(w2, t(10));
        assert!(cc.w_max < w2, "fast convergence: {} < {}", cc.w_max, w2);
    }

    #[test]
    fn cubic_rto_collapses_and_restarts_an_epoch() {
        let mut cc = cubic();
        for _ in 0..50 {
            cc.on_ack(MSS, t(0), RTT);
        }
        let before = cc.cwnd();
        cc.on_rto(30 * MSS, t(0));
        assert_eq!(cc.cwnd(), MSS);
        assert_eq!(cc.w_max, before);
        assert_eq!(cc.ssthresh(), 30 * MSS * 7 / 10);
        assert!(cc.in_slow_start());
        assert_eq!(cc.stats().timeouts, 1);
        assert!(
            cc.epoch_start.is_none(),
            "epoch restarts on the next CA ack"
        );
    }
}
