//! # minion-tcp
//!
//! A userspace TCP implementation with the paper's **uTCP** extensions
//! ("Fitting Square Pegs Through Round Pipes", NSDI 2012, §4).
//!
//! The crate provides a faithful, deterministic TCP endpoint — handshake,
//! cumulative/selective acknowledgments, RTT estimation, retransmission
//! timeouts, fast retransmit with NewReno recovery, congestion and flow
//! control, delayed ACKs, and orderly close — plus the two uTCP socket
//! options:
//!
//! * [`SocketOptions::unordered_receive`] (`SO_UNORDERED`): arriving segments
//!   are handed to the application immediately, each tagged with its logical
//!   stream offset ([`DeliveredChunk`]), without waiting for earlier holes to
//!   fill. Wire-visible behaviour (ACKs, SACKs, advertised window) is
//!   unchanged.
//! * [`SocketOptions::unordered_send`] (`SO_UNORDEREDSEND`): application
//!   writes carry a priority tag ([`WriteMeta`]) and may pass lower-priority
//!   writes that have not yet been transmitted; an optional squash flag
//!   discards superseded untransmitted writes.
//!
//! The connection object is sans-I/O: it consumes arriving [`TcpSegment`]s,
//! produces outgoing segments from [`TcpConnection::poll`], and is driven by
//! virtual time ([`minion_simnet::SimTime`]), making it usable both under the
//! discrete-event simulator (`minion-stack`) and in unit tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod config;
pub mod connection;
pub mod delivered;
pub mod event;
pub mod recovery;
pub mod recvbuf;
pub mod reliability;
pub mod rtt;
pub mod segment;
pub mod sendbuf;
pub mod seq;

pub use cc::{CcStats, CongestionControl, Cubic, NewReno, NoCc};
pub use config::{CcAlgorithm, SocketOptions, TcpConfig, WriteMeta};
pub use connection::{ConnStats, TcpConnection, TcpError, TcpState};
pub use delivered::DeliveredChunk;
pub use event::{ConnEvent, Readiness};
pub use recvbuf::{ReceiveBuffer, RecvStats};
pub use rtt::RttEstimator;
pub use segment::{SackBlock, TcpFlags, TcpOption, TcpSegment};
pub use sendbuf::{BufferFull, SendBuffer};
pub use seq::SeqNum;
