//! Configuration for TCP connections and the uTCP socket options.

use minion_simnet::SimDuration;

/// Which congestion-control algorithm a connection uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum CcAlgorithm {
    /// NewReno (RFC 6582): slow start, congestion avoidance, fast
    /// retransmit/recovery with partial-ACK handling.
    #[default]
    NewReno,
    /// CUBIC (RFC 8312): cubic window growth anchored at the last congestion
    /// event, with a Reno-friendly floor. Implemented in deterministic
    /// integer arithmetic over virtual time, so the window trajectory is
    /// byte-identical at any thread count.
    Cubic,
    /// Congestion control disabled (design alternative discussed in §4.3 of
    /// the paper); the window is limited only by the receive window.
    None,
}

impl CcAlgorithm {
    /// Every algorithm, in sweep order (the `--cc` axis).
    pub const ALL: [CcAlgorithm; 3] = [CcAlgorithm::NewReno, CcAlgorithm::Cubic, CcAlgorithm::None];

    /// The tag used in labels, flags, and JSON (`"newreno"` / `"cubic"` /
    /// `"none"`).
    pub fn label(self) -> &'static str {
        match self {
            CcAlgorithm::NewReno => "newreno",
            CcAlgorithm::Cubic => "cubic",
            CcAlgorithm::None => "none",
        }
    }

    /// Parse a `--cc` flag value.
    pub fn parse(raw: &str) -> Option<CcAlgorithm> {
        match raw.trim() {
            "newreno" => Some(CcAlgorithm::NewReno),
            "cubic" => Some(CcAlgorithm::Cubic),
            "none" => Some(CcAlgorithm::None),
            _ => None,
        }
    }
}

/// Static configuration of one TCP connection.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per segment). The paper's testbed
    /// uses Ethernet, giving an MSS of 1448 with timestamps or 1460 without;
    /// we default to 1448 to match the figures.
    pub mss: usize,
    /// Send buffer capacity in bytes.
    pub send_buffer: usize,
    /// Receive buffer capacity in bytes (advertised window ceiling).
    pub recv_buffer: usize,
    /// Whether Nagle's algorithm is enabled. The paper disables it for all
    /// experiments.
    pub nagle: bool,
    /// Whether delayed ACKs are enabled.
    pub delayed_ack: bool,
    /// Delayed-ACK timeout.
    pub delayed_ack_timeout: SimDuration,
    /// Initial congestion window in segments (RFC 6928 uses 10; Linux 2.6.34,
    /// the paper's kernel, used 3).
    pub initial_cwnd_segments: u32,
    /// Minimum retransmission timeout.
    pub min_rto: SimDuration,
    /// Maximum retransmission timeout.
    pub max_rto: SimDuration,
    /// Congestion control algorithm.
    pub cc: CcAlgorithm,
    /// Emulate Linux's skbuff-granularity congestion accounting: when the
    /// sender must respect application write boundaries (uTCP's unordered
    /// send), each write occupies its own skbuff and the congestion window is
    /// consumed per-skbuff rather than per-byte. This reproduces the Figure 5
    /// throughput dip for message sizes that do not pack MSS-sized buffers.
    pub skbuff_accounting: bool,
    /// Coalesce small unordered-send writes into the tail skbuff when they fit
    /// entirely (the partial fix described in §8.1).
    pub coalesce_small_writes: bool,
    /// Fixed initial sequence number for deterministic tests; `None` draws a
    /// pseudo-random ISN from the connection seed.
    pub fixed_isn: Option<u32>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1448,
            send_buffer: 256 * 1024,
            recv_buffer: 256 * 1024,
            nagle: false,
            delayed_ack: true,
            delayed_ack_timeout: SimDuration::from_millis(40),
            initial_cwnd_segments: 3,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
            cc: CcAlgorithm::NewReno,
            skbuff_accounting: true,
            coalesce_small_writes: true,
            fixed_isn: None,
        }
    }
}

impl TcpConfig {
    /// A configuration matching the paper's testbed defaults (Nagle disabled,
    /// low-latency path, 1448-byte MSS).
    pub fn paper_default() -> Self {
        TcpConfig::default()
    }

    /// Set the MSS.
    pub fn with_mss(mut self, mss: usize) -> Self {
        assert!(mss > 0);
        self.mss = mss;
        self
    }

    /// Set send and receive buffer sizes.
    pub fn with_buffers(mut self, send: usize, recv: usize) -> Self {
        self.send_buffer = send;
        self.recv_buffer = recv;
        self
    }

    /// Enable or disable Nagle's algorithm.
    pub fn with_nagle(mut self, enabled: bool) -> Self {
        self.nagle = enabled;
        self
    }

    /// Enable or disable delayed ACKs.
    pub fn with_delayed_ack(mut self, enabled: bool) -> Self {
        self.delayed_ack = enabled;
        self
    }

    /// Select the congestion-control algorithm.
    pub fn with_cc(mut self, cc: CcAlgorithm) -> Self {
        self.cc = cc;
        self
    }

    /// Use a fixed initial sequence number (deterministic tests).
    pub fn with_fixed_isn(mut self, isn: u32) -> Self {
        self.fixed_isn = Some(isn);
        self
    }

    /// Enable or disable skbuff-granularity congestion accounting.
    pub fn with_skbuff_accounting(mut self, enabled: bool) -> Self {
        self.skbuff_accounting = enabled;
        self
    }

    /// Enable or disable coalescing of small unordered-send writes.
    pub fn with_coalescing(mut self, enabled: bool) -> Self {
        self.coalesce_small_writes = enabled;
        self
    }
}

/// Runtime socket options, the uTCP API surface of the paper (§4).
///
/// Both options default to off, giving standard TCP behaviour; they can be
/// enabled independently, and enabling them changes nothing on the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SocketOptions {
    /// `SO_UNORDERED`: deliver segments to the application as they arrive,
    /// including out-of-order ones, each tagged with its stream offset.
    pub unordered_receive: bool,
    /// `SO_UNORDEREDSEND`: writes carry a priority tag and are inserted into
    /// the send queue ahead of lower-priority data that has not yet been
    /// transmitted.
    pub unordered_send: bool,
}

impl SocketOptions {
    /// Standard TCP behaviour (both options off).
    pub fn standard() -> Self {
        SocketOptions::default()
    }

    /// Full uTCP behaviour (both options on).
    pub fn utcp() -> Self {
        SocketOptions {
            unordered_receive: true,
            unordered_send: true,
        }
    }

    /// Only the receive-side extension.
    pub fn unordered_receive_only() -> Self {
        SocketOptions {
            unordered_receive: true,
            unordered_send: false,
        }
    }

    /// Only the send-side extension.
    pub fn unordered_send_only() -> Self {
        SocketOptions {
            unordered_receive: false,
            unordered_send: true,
        }
    }
}

/// Per-write metadata, the paper's 5-byte `write()` header (§4.2): a priority
/// tag plus flags. Higher tags pass lower tags in the send queue; the optional
/// squash flag discards untransmitted data with the same tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct WriteMeta {
    /// Priority tag. Larger values are higher priority.
    pub priority: u32,
    /// If set, remove any untransmitted data previously written with exactly
    /// the same tag before enqueueing this write.
    pub squash: bool,
}

impl WriteMeta {
    /// Ordinary-priority write.
    pub fn normal() -> Self {
        WriteMeta::default()
    }

    /// A write with the given priority tag.
    pub fn with_priority(priority: u32) -> Self {
        WriteMeta {
            priority,
            squash: false,
        }
    }

    /// A squashing write with the given tag.
    pub fn squashing(priority: u32) -> Self {
        WriteMeta {
            priority,
            squash: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_testbed() {
        let c = TcpConfig::paper_default();
        assert_eq!(c.mss, 1448);
        assert!(!c.nagle, "paper disables Nagle");
        assert_eq!(c.cc, CcAlgorithm::NewReno);
    }

    #[test]
    fn builder_methods() {
        let c = TcpConfig::default()
            .with_mss(536)
            .with_buffers(1024, 2048)
            .with_nagle(true)
            .with_delayed_ack(false)
            .with_cc(CcAlgorithm::None)
            .with_fixed_isn(7)
            .with_skbuff_accounting(false)
            .with_coalescing(false);
        assert_eq!(c.mss, 536);
        assert_eq!(c.send_buffer, 1024);
        assert_eq!(c.recv_buffer, 2048);
        assert!(c.nagle);
        assert!(!c.delayed_ack);
        assert_eq!(c.cc, CcAlgorithm::None);
        assert_eq!(c.fixed_isn, Some(7));
        assert!(!c.skbuff_accounting);
        assert!(!c.coalesce_small_writes);
    }

    #[test]
    fn cc_algorithm_labels_round_trip() {
        for algo in CcAlgorithm::ALL {
            assert_eq!(CcAlgorithm::parse(algo.label()), Some(algo));
        }
        assert_eq!(CcAlgorithm::parse(" cubic "), Some(CcAlgorithm::Cubic));
        assert_eq!(CcAlgorithm::parse("bbr"), None);
        assert_eq!(CcAlgorithm::default(), CcAlgorithm::NewReno);
    }

    #[test]
    fn socket_option_presets() {
        assert_eq!(SocketOptions::standard(), SocketOptions::default());
        assert!(SocketOptions::utcp().unordered_receive);
        assert!(SocketOptions::utcp().unordered_send);
        assert!(SocketOptions::unordered_receive_only().unordered_receive);
        assert!(!SocketOptions::unordered_receive_only().unordered_send);
        assert!(SocketOptions::unordered_send_only().unordered_send);
    }

    #[test]
    fn write_meta_constructors() {
        assert_eq!(WriteMeta::normal().priority, 0);
        assert_eq!(WriteMeta::with_priority(9).priority, 9);
        assert!(WriteMeta::squashing(3).squash);
    }
}
