//! TCP segment wire format.
//!
//! The segment layout follows RFC 793 closely enough that wire-visible
//! behaviour (sequence/ACK numbers, flags, window, SACK options) is faithful,
//! while checksums are omitted because the simulated links never corrupt
//! payloads. uTCP makes **no** changes to this format — that is the central
//! compatibility claim of the paper, and the test
//! `wire_format_is_identical_for_utcp` in the connection module checks it.

use crate::seq::SeqNum;
use bytes::Bytes;
use std::fmt;

/// TCP header flags.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// SYN: synchronize sequence numbers.
    pub syn: bool,
    /// ACK: the acknowledgment field is valid.
    pub ack: bool,
    /// FIN: sender has finished sending.
    pub fin: bool,
    /// RST: reset the connection.
    pub rst: bool,
    /// PSH: push buffered data to the application.
    pub psh: bool,
}

impl TcpFlags {
    /// A SYN segment.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
        psh: false,
    };
    /// A SYN+ACK segment.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// A bare ACK segment.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// A FIN+ACK segment.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
        psh: false,
    };
    /// A RST segment.
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
        psh: false,
    };

    fn to_byte(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
    }

    fn from_byte(b: u8) -> TcpFlags {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

impl fmt::Debug for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        if self.syn {
            s.push('S');
        }
        if self.ack {
            s.push('A');
        }
        if self.fin {
            s.push('F');
        }
        if self.rst {
            s.push('R');
        }
        if self.psh {
            s.push('P');
        }
        if s.is_empty() {
            s.push('-');
        }
        write!(f, "{s}")
    }
}

/// A single SACK block: the half-open range `[start, end)` of received bytes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SackBlock {
    /// First sequence number of the block.
    pub start: SeqNum,
    /// One past the last sequence number of the block.
    pub end: SeqNum,
}

impl SackBlock {
    /// Length of the block in bytes.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// True if the block is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True if the block contains the sequence number.
    pub fn contains(&self, seq: SeqNum) -> bool {
        seq.in_range(self.start, self.end)
    }
}

/// TCP options carried in the header.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TcpOption {
    /// Maximum segment size, advertised on SYN.
    Mss(u16),
    /// SACK permitted, advertised on SYN.
    SackPermitted,
    /// Selective acknowledgment blocks.
    Sack(Vec<SackBlock>),
    /// Window scale shift count, advertised on SYN.
    WindowScale(u8),
}

/// A TCP segment as it appears on the wire (header + payload).
#[derive(Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: SeqNum,
    /// Acknowledgment number (valid when `flags.ack`).
    pub ack: SeqNum,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window in bytes (pre-scaling).
    pub window: u32,
    /// Header options.
    pub options: Vec<TcpOption>,
    /// Payload bytes.
    pub payload: Bytes,
}

impl TcpSegment {
    /// Byte length of the base header in the serialized format (matches the
    /// 20-byte RFC 793 header without checksum/urgent fields, with an explicit
    /// payload-length field in their place).
    pub const BASE_HEADER_LEN: usize = 20;

    /// Construct a segment with no options and no payload.
    pub fn bare(src_port: u16, dst_port: u16, seq: SeqNum, ack: SeqNum, flags: TcpFlags) -> Self {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: 65535,
            options: Vec::new(),
            payload: Bytes::new(),
        }
    }

    /// The amount of sequence space this segment occupies (payload plus one
    /// for SYN and one for FIN).
    pub fn seq_space(&self) -> u32 {
        self.payload.len() as u32 + self.flags.syn as u32 + self.flags.fin as u32
    }

    /// Sequence number of the byte following this segment.
    pub fn seq_end(&self) -> SeqNum {
        self.seq + self.seq_space()
    }

    /// The MSS option value, if present.
    pub fn mss_option(&self) -> Option<u16> {
        self.options.iter().find_map(|o| match o {
            TcpOption::Mss(v) => Some(*v),
            _ => None,
        })
    }

    /// Whether the SACK-permitted option is present.
    pub fn sack_permitted(&self) -> bool {
        self.options
            .iter()
            .any(|o| matches!(o, TcpOption::SackPermitted))
    }

    /// The SACK blocks carried by this segment (empty if none).
    pub fn sack_blocks(&self) -> &[SackBlock] {
        self.options
            .iter()
            .find_map(|o| match o {
                TcpOption::Sack(blocks) => Some(blocks.as_slice()),
                _ => None,
            })
            .unwrap_or(&[])
    }

    /// Total length of the serialized segment (header + options + payload).
    pub fn wire_len(&self) -> usize {
        Self::BASE_HEADER_LEN + self.options_wire_len() + self.payload.len()
    }

    fn options_wire_len(&self) -> usize {
        self.options
            .iter()
            .map(|o| match o {
                TcpOption::Mss(_) => 4,
                TcpOption::SackPermitted => 2,
                TcpOption::Sack(blocks) => 2 + blocks.len() * 8,
                TcpOption::WindowScale(_) => 3,
            })
            .sum()
    }

    /// Serialize the segment to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let opt_len = self.options_wire_len();
        assert!(opt_len <= 255, "options too long");
        let mut out = Vec::with_capacity(Self::BASE_HEADER_LEN + opt_len + self.payload.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.raw().to_be_bytes());
        out.extend_from_slice(&self.ack.raw().to_be_bytes());
        out.push(self.flags.to_byte());
        out.push(opt_len as u8);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&(self.payload.len() as u16).to_be_bytes());
        debug_assert_eq!(out.len(), Self::BASE_HEADER_LEN);
        for opt in &self.options {
            match opt {
                TcpOption::Mss(v) => {
                    out.push(2);
                    out.push(4);
                    out.extend_from_slice(&v.to_be_bytes());
                }
                TcpOption::SackPermitted => {
                    out.push(4);
                    out.push(2);
                }
                TcpOption::Sack(blocks) => {
                    out.push(5);
                    out.push((2 + blocks.len() * 8) as u8);
                    for b in blocks {
                        out.extend_from_slice(&b.start.raw().to_be_bytes());
                        out.extend_from_slice(&b.end.raw().to_be_bytes());
                    }
                }
                TcpOption::WindowScale(s) => {
                    out.push(3);
                    out.push(3);
                    out.push(*s);
                }
            }
        }
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse a segment from bytes. Returns `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<TcpSegment> {
        if buf.len() < Self::BASE_HEADER_LEN {
            return None;
        }
        let src_port = u16::from_be_bytes([buf[0], buf[1]]);
        let dst_port = u16::from_be_bytes([buf[2], buf[3]]);
        let seq = SeqNum(u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]));
        let ack = SeqNum(u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]));
        let flags = TcpFlags::from_byte(buf[12]);
        let opt_len = buf[13] as usize;
        let window = u32::from_be_bytes([buf[14], buf[15], buf[16], buf[17]]);
        let payload_len = u16::from_be_bytes([buf[18], buf[19]]) as usize;
        let opt_end = Self::BASE_HEADER_LEN.checked_add(opt_len)?;
        if buf.len() < opt_end + payload_len {
            return None;
        }
        let mut options = Vec::new();
        let mut i = Self::BASE_HEADER_LEN;
        while i < opt_end {
            let kind = buf[i];
            match kind {
                2 => {
                    if i + 4 > opt_end {
                        return None;
                    }
                    options.push(TcpOption::Mss(u16::from_be_bytes([buf[i + 2], buf[i + 3]])));
                    i += 4;
                }
                4 => {
                    options.push(TcpOption::SackPermitted);
                    i += 2;
                }
                5 => {
                    if i + 2 > opt_end {
                        return None;
                    }
                    let len = buf[i + 1] as usize;
                    if len < 2 || !(len - 2).is_multiple_of(8) || i + len > opt_end {
                        return None;
                    }
                    let mut blocks = Vec::new();
                    let mut j = i + 2;
                    while j + 8 <= i + len {
                        let start = SeqNum(u32::from_be_bytes([
                            buf[j],
                            buf[j + 1],
                            buf[j + 2],
                            buf[j + 3],
                        ]));
                        let end = SeqNum(u32::from_be_bytes([
                            buf[j + 4],
                            buf[j + 5],
                            buf[j + 6],
                            buf[j + 7],
                        ]));
                        blocks.push(SackBlock { start, end });
                        j += 8;
                    }
                    options.push(TcpOption::Sack(blocks));
                    i += len;
                }
                3 => {
                    if i + 3 > opt_end {
                        return None;
                    }
                    options.push(TcpOption::WindowScale(buf[i + 2]));
                    i += 3;
                }
                _ => return None,
            }
        }
        let payload = Bytes::copy_from_slice(&buf[opt_end..opt_end + payload_len]);
        Some(TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
            options,
            payload,
        })
    }
}

impl fmt::Debug for TcpSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:?} {}->{} seq={} ack={} win={} len={}{}]",
            self.flags,
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            self.window,
            self.payload.len(),
            if self.sack_blocks().is_empty() {
                String::new()
            } else {
                format!(" sack={:?}", self.sack_blocks())
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_segment() -> TcpSegment {
        TcpSegment {
            src_port: 443,
            dst_port: 51034,
            seq: SeqNum(123456),
            ack: SeqNum(654321),
            flags: TcpFlags::ACK,
            window: 29200,
            options: vec![
                TcpOption::Mss(1448),
                TcpOption::SackPermitted,
                TcpOption::WindowScale(7),
                TcpOption::Sack(vec![
                    SackBlock {
                        start: SeqNum(1000),
                        end: SeqNum(2000),
                    },
                    SackBlock {
                        start: SeqNum(3000),
                        end: SeqNum(3500),
                    },
                ]),
            ],
            payload: Bytes::from_static(b"hello minion"),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let seg = sample_segment();
        let bytes = seg.encode();
        assert_eq!(bytes.len(), seg.wire_len());
        let decoded = TcpSegment::decode(&bytes).expect("decodes");
        assert_eq!(decoded, seg);
    }

    #[test]
    fn roundtrip_without_options_or_payload() {
        let seg = TcpSegment::bare(1, 2, SeqNum(0), SeqNum(0), TcpFlags::SYN);
        let decoded = TcpSegment::decode(&seg.encode()).unwrap();
        assert_eq!(decoded, seg);
        assert_eq!(decoded.seq_space(), 1, "SYN occupies one sequence number");
    }

    #[test]
    fn decode_rejects_truncated() {
        let seg = sample_segment();
        let bytes = seg.encode();
        assert!(TcpSegment::decode(&bytes[..10]).is_none());
        assert!(TcpSegment::decode(&bytes[..bytes.len() - 1]).is_none());
        assert!(TcpSegment::decode(&[]).is_none());
    }

    #[test]
    fn flag_byte_roundtrip() {
        for b in 0..32u8 {
            let f = TcpFlags::from_byte(b);
            assert_eq!(f.to_byte(), b);
        }
    }

    #[test]
    fn option_accessors() {
        let seg = sample_segment();
        assert_eq!(seg.mss_option(), Some(1448));
        assert!(seg.sack_permitted());
        assert_eq!(seg.sack_blocks().len(), 2);
        assert_eq!(seg.sack_blocks()[0].len(), 1000);
        assert!(seg.sack_blocks()[0].contains(SeqNum(1500)));
        assert!(!seg.sack_blocks()[0].contains(SeqNum(2000)));
    }

    #[test]
    fn seq_space_counts_payload_and_fin() {
        let mut seg = sample_segment();
        assert_eq!(seg.seq_space(), 12);
        seg.flags.fin = true;
        assert_eq!(seg.seq_space(), 13);
        assert_eq!(seg.seq_end(), SeqNum(123456 + 13));
    }

    #[test]
    fn sack_block_empty() {
        let b = SackBlock {
            start: SeqNum(5),
            end: SeqNum(5),
        };
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}
