//! Readiness events for poll-driven connection multiplexing.
//!
//! A conventional event loop (epoll/kqueue style) does not rescan every
//! connection on every tick; it reacts to *edges*: a connection became
//! readable, writable, established, or closed. [`crate::TcpConnection`] can
//! record these edges into a small queue that a driver (the `minion-engine`
//! runtime) drains after feeding segments or polling.
//!
//! Event recording is **off by default** so that existing lockstep callers
//! pay nothing and no queue grows unbounded; a driver opts in with
//! [`crate::TcpConnection::set_event_interest`].

use std::collections::VecDeque;

/// An edge-triggered connection event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnEvent {
    /// The three-way handshake completed.
    Established,
    /// The connection transitioned from "nothing to read" to "readable".
    Readable,
    /// The send buffer transitioned from full to having free space.
    Writable,
    /// The connection reached a closed state (orderly close or reset).
    Closed,
    /// A retransmission timeout fired.
    RtoFired {
        /// How long the fired timer instance had been armed, arm→fire in
        /// virtual microseconds (per-timer, not SYN→fire: re-arming on ACK
        /// progress re-stamps the base). Deterministic, so it rides the
        /// event safely. Note two back-to-back fires with different waits
        /// do not collapse in the queue (they compare unequal).
        wait_us: u64,
    },
    /// A data segment was retransmitted (RTO or fast retransmit). Note the
    /// queue collapses *consecutive* duplicates, so a burst of back-to-back
    /// retransmissions may surface as a single edge — observers treat this
    /// as "at least one retransmission since the last drain".
    Retransmit,
}

/// A level-triggered snapshot of what a connection can currently do.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Readiness {
    /// A `read()` would return data.
    pub readable: bool,
    /// A `write()` of at least one byte would be accepted.
    pub writable: bool,
    /// The handshake has completed (data may flow).
    pub established: bool,
    /// The connection has fully closed.
    pub closed: bool,
}

/// The gated event queue a connection records edges into.
#[derive(Clone, Debug, Default)]
pub(crate) struct EventQueue {
    enabled: bool,
    events: VecDeque<ConnEvent>,
}

impl EventQueue {
    /// Enable or disable recording. Disabling clears any queued events.
    pub(crate) fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.events.clear();
        }
    }

    /// Whether recording is enabled.
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op while disabled). Consecutive duplicates are
    /// collapsed: an edge that has already been queued and not yet consumed
    /// carries no extra information.
    pub(crate) fn push(&mut self, ev: ConnEvent) {
        if self.enabled && self.events.back() != Some(&ev) {
            self.events.push_back(ev);
        }
    }

    /// Drain all queued events in arrival order.
    pub(crate) fn drain(&mut self) -> Vec<ConnEvent> {
        self.events.drain(..).collect()
    }

    /// Whether any events are queued.
    pub(crate) fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_queue_records_nothing() {
        let mut q = EventQueue::default();
        q.push(ConnEvent::Readable);
        assert!(q.is_empty());
        q.set_enabled(true);
        q.push(ConnEvent::Readable);
        assert_eq!(q.drain(), vec![ConnEvent::Readable]);
    }

    #[test]
    fn consecutive_duplicates_collapse() {
        let mut q = EventQueue::default();
        q.set_enabled(true);
        q.push(ConnEvent::Readable);
        q.push(ConnEvent::Readable);
        q.push(ConnEvent::Writable);
        q.push(ConnEvent::Readable);
        assert_eq!(
            q.drain(),
            vec![
                ConnEvent::Readable,
                ConnEvent::Writable,
                ConnEvent::Readable
            ]
        );
    }

    #[test]
    fn disabling_clears_backlog() {
        let mut q = EventQueue::default();
        q.set_enabled(true);
        q.push(ConnEvent::Established);
        q.set_enabled(false);
        assert!(q.is_empty());
        assert!(!q.enabled());
    }
}
