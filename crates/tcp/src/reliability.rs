//! Reliability bookkeeping: the transmitted-but-unacknowledged scoreboard,
//! the retransmission cursor, and the RTO timer — the `tcp_reliability` seam
//! of the mlwip-style modular control path.
//!
//! The connection decides *when* to retransmit (fast retransmit, NewReno
//! partial ACKs, go-back-N after an RTO); this module remembers *what* is
//! outstanding: per-transmission records for flight accounting, Karn-safe RTT
//! sampling, and the SACK scoreboard, plus where a scheduled retransmission
//! pass left off and when the retransmission timer fires.

use minion_simnet::SimTime;
use std::collections::VecDeque;

/// A transmitted-but-unacknowledged range, used for flight accounting, RTT
/// sampling, and the SACK scoreboard.
#[derive(Clone, Debug)]
struct TxRecord {
    start: u64,
    end: u64,
    /// Window charge: payload bytes, or a full MSS under skbuff accounting.
    charge: usize,
    sent_at: SimTime,
    retransmitted: bool,
    sacked: bool,
}

/// Outstanding-data state of one connection's send direction.
#[derive(Clone, Debug, Default)]
pub struct Reliability {
    /// Transmitted, unacknowledged ranges, in transmission order.
    unacked: VecDeque<TxRecord>,
    /// Offset from which the next retransmission should read, when one has
    /// been scheduled (RTO or fast retransmit).
    resend_cursor: Option<u64>,
    /// Exclusive upper bound of the scheduled retransmission. Fast retransmit
    /// and NewReno partial ACKs schedule `(snd_una, snd_una + 1)`: a
    /// one-*byte* sentinel range, not a one-byte retransmission — the emit
    /// path always reads a full segment (up to one MSS) starting at the
    /// cursor and stops once the cursor passes this bound, so the sentinel
    /// yields exactly one full-sized segment. An RTO schedules
    /// `(snd_una, snd_max)`: go-back-N over everything outstanding.
    resend_until: u64,
    /// When the retransmission (or handshake) timer fires next.
    rto_expiry: Option<SimTime>,
    /// When the currently-armed timer was (re)armed — the base of the
    /// arm→fire wait the observability layer reports. Stamped by
    /// [`Reliability::arm_rto`] / [`Reliability::ensure_rto`], cleared with
    /// the timer, so the wait measures *this* timer instance, not the
    /// connection's lifetime.
    rto_armed_at: Option<SimTime>,
    /// Number of consecutive RTO expirations without progress.
    rto_backoffs: u32,
}

impl Reliability {
    /// Fresh state: nothing outstanding, no timer armed.
    pub fn new() -> Self {
        Reliability::default()
    }

    // ---- Transmission records -----------------------------------------

    /// Record one (re)transmission of `[start, end)` charging `charge` bytes
    /// against the congestion window.
    pub fn record_transmission(
        &mut self,
        start: u64,
        end: u64,
        charge: usize,
        sent_at: SimTime,
        retransmitted: bool,
    ) {
        self.unacked.push_back(TxRecord {
            start,
            end,
            charge,
            sent_at,
            retransmitted,
            sacked: false,
        });
    }

    /// Retire every record fully covered by a cumulative ACK at `ack_off`.
    /// Returns the send time of the first retired record that was never
    /// retransmitted — the only RTT sample Karn's rule permits — if any.
    pub fn retire_acked(&mut self, ack_off: u64) -> Option<SimTime> {
        let mut sample = None;
        while let Some(front) = self.unacked.front() {
            if front.end <= ack_off {
                let rec = self.unacked.pop_front().expect("front exists");
                if !rec.retransmitted && sample.is_none() {
                    sample = Some(rec.sent_at);
                }
            } else {
                break;
            }
        }
        sample
    }

    /// Bytes charged against the congestion window for in-flight data
    /// (SACKed ranges have left the network and do not count).
    pub fn flight_charge(&self) -> usize {
        self.unacked
            .iter()
            .filter(|r| !r.sacked)
            .map(|r| r.charge)
            .sum()
    }

    /// Whether any transmission records are outstanding.
    pub fn has_unacked(&self) -> bool {
        !self.unacked.is_empty()
    }

    /// Drop every transmission record (go-back-N rebuilds the scoreboard as
    /// segments are re-sent).
    pub fn clear_unacked(&mut self) {
        self.unacked.clear();
    }

    /// Mark every record fully contained in `[start, end)` as SACKed.
    pub fn mark_sacked(&mut self, start: u64, end: u64) {
        for rec in self.unacked.iter_mut() {
            if rec.start >= start && rec.end <= end {
                rec.sacked = true;
            }
        }
    }

    /// Whether any outstanding record is SACKed — evidence that data beyond
    /// the cumulative ACK point is reaching the receiver (every record below
    /// it has been retired), i.e. that a duplicate-ACK run marks a genuine
    /// fresh hole rather than stale duplicates of pre-congestion-event
    /// segments.
    pub fn has_sacked(&self) -> bool {
        self.unacked.iter().any(|r| r.sacked)
    }

    /// Whether `offset` falls inside a SACKed record.
    pub fn is_sacked(&self, offset: u64) -> bool {
        self.unacked
            .iter()
            .any(|r| r.sacked && offset >= r.start && offset < r.end)
    }

    /// The first offset at or after `offset` not covered by SACKed records,
    /// chaining across adjacent ones — where a retransmission pass should
    /// skip to. `None` when `offset` itself is not SACKed.
    pub fn next_unsacked_offset(&self, offset: u64) -> Option<u64> {
        let mut cur = offset;
        let mut advanced = false;
        loop {
            let next = self
                .unacked
                .iter()
                .filter(|r| r.sacked && cur >= r.start && cur < r.end)
                .map(|r| r.end)
                .max();
            match next {
                Some(end) => {
                    cur = end;
                    advanced = true;
                }
                None => break,
            }
        }
        advanced.then_some(cur)
    }

    // ---- Retransmission cursor -----------------------------------------

    /// Schedule a retransmission pass over `[from, until)`. See
    /// [`Reliability::resend_until`] for the one-byte-sentinel convention
    /// used by fast retransmit and partial ACKs.
    pub fn schedule_resend(&mut self, from: u64, until: u64) {
        self.resend_cursor = Some(from);
        self.resend_until = until;
    }

    /// Where the scheduled retransmission pass stands, if one is active.
    pub fn resend_cursor(&self) -> Option<u64> {
        self.resend_cursor
    }

    /// Exclusive upper bound of the scheduled pass.
    pub fn resend_until(&self) -> u64 {
        self.resend_until
    }

    /// Window-limited mid-pass: remember where to resume on a later poll.
    pub fn pause_resend_at(&mut self, offset: u64) {
        self.resend_cursor = Some(offset);
    }

    /// The pass is complete (or obsolete).
    pub fn clear_resend(&mut self) {
        self.resend_cursor = None;
    }

    // ---- RTO timer -------------------------------------------------------

    /// When the retransmission timer fires, if armed.
    pub fn rto_expiry(&self) -> Option<SimTime> {
        self.rto_expiry
    }

    /// (Re)arm the retransmission timer to fire at `at`, stamping `now` as
    /// the arm time.
    pub fn arm_rto(&mut self, now: SimTime, at: SimTime) {
        self.rto_expiry = Some(at);
        self.rto_armed_at = Some(now);
    }

    /// Arm the retransmission timer only if it is not already running.
    pub fn ensure_rto(&mut self, now: SimTime, at: SimTime) {
        if self.rto_expiry.is_none() {
            self.rto_expiry = Some(at);
            self.rto_armed_at = Some(now);
        }
    }

    /// When the currently-armed timer was (re)armed, if one is running.
    pub fn rto_armed_at(&self) -> Option<SimTime> {
        self.rto_armed_at
    }

    /// Disarm the retransmission timer.
    pub fn clear_rto(&mut self) {
        self.rto_expiry = None;
        self.rto_armed_at = None;
    }

    /// Consecutive RTO expirations without forward progress.
    pub fn rto_backoffs(&self) -> u32 {
        self.rto_backoffs
    }

    /// One more RTO expired without progress.
    pub fn note_backoff(&mut self) {
        self.rto_backoffs += 1;
    }

    /// Forward progress: the backoff run is over.
    pub fn reset_backoffs(&mut self) {
        self.rto_backoffs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn retire_returns_the_karn_safe_sample() {
        let mut r = Reliability::new();
        r.record_transmission(0, 1448, 1448, t(10), true); // retransmitted
        r.record_transmission(1448, 2896, 1448, t(20), false);
        r.record_transmission(2896, 4344, 1448, t(30), false);
        // Covers the first two records: the retransmitted one yields no
        // sample (Karn), the clean one does.
        assert_eq!(r.retire_acked(2896), Some(t(20)));
        assert!(r.has_unacked());
        assert_eq!(r.flight_charge(), 1448);
        // Nothing newly covered: no sample.
        assert_eq!(r.retire_acked(2896), None);
    }

    #[test]
    fn partially_covered_records_stay() {
        let mut r = Reliability::new();
        r.record_transmission(0, 1448, 1448, t(1), false);
        assert_eq!(r.retire_acked(1000), None, "mid-record ACK retires nothing");
        assert_eq!(r.flight_charge(), 1448);
    }

    #[test]
    fn sack_marks_only_fully_contained_records() {
        let mut r = Reliability::new();
        r.record_transmission(0, 1448, 1448, t(1), false);
        r.record_transmission(1448, 2896, 1448, t(2), false);
        r.record_transmission(2896, 4344, 1448, t(3), false);
        r.mark_sacked(1448, 4344);
        assert!(!r.is_sacked(0));
        assert!(r.is_sacked(1448));
        assert!(r.is_sacked(4343));
        assert_eq!(r.flight_charge(), 1448, "SACKed ranges left the network");
        assert_eq!(r.next_unsacked_offset(1500), Some(4344));
        assert_eq!(r.next_unsacked_offset(0), None);
    }

    #[test]
    fn resend_pass_pauses_and_resumes() {
        let mut r = Reliability::new();
        r.schedule_resend(100, 101);
        assert_eq!(r.resend_cursor(), Some(100));
        assert_eq!(r.resend_until(), 101);
        r.pause_resend_at(100);
        assert_eq!(r.resend_cursor(), Some(100));
        r.clear_resend();
        assert_eq!(r.resend_cursor(), None);
    }

    #[test]
    fn rto_timer_arming_and_backoffs() {
        let mut r = Reliability::new();
        assert_eq!(r.rto_expiry(), None);
        assert_eq!(r.rto_armed_at(), None);
        r.ensure_rto(t(1), t(100));
        r.ensure_rto(t(2), t(50));
        assert_eq!(r.rto_expiry(), Some(t(100)), "ensure does not re-arm");
        assert_eq!(r.rto_armed_at(), Some(t(1)), "nor re-stamp the arm time");
        r.arm_rto(t(10), t(50));
        assert_eq!(r.rto_expiry(), Some(t(50)));
        assert_eq!(r.rto_armed_at(), Some(t(10)), "re-arming re-stamps");
        r.note_backoff();
        r.note_backoff();
        assert_eq!(r.rto_backoffs(), 2);
        r.reset_backoffs();
        assert_eq!(r.rto_backoffs(), 0);
        r.clear_rto();
        assert_eq!(r.rto_expiry(), None);
        assert_eq!(r.rto_armed_at(), None, "disarm clears the stamp");
    }
}
