//! End-to-end tests of the TCP connection state machine, driven entirely
//! through the public API: two endpoints joined by an in-memory wire with
//! controllable loss, plus manually crafted segments for the choreographed
//! regression tests (recover-point guard, partial-ACK retransmit semantics,
//! conservative recovery exit).

use minion_simnet::{SimDuration, SimTime};
use minion_tcp::{
    CcAlgorithm, ConnEvent, Readiness, SeqNum, SocketOptions, TcpConfig, TcpConnection, TcpError,
    TcpFlags, TcpOption, TcpSegment, TcpState, WriteMeta,
};

const MSS: usize = 1448;

/// Drive two connections against each other through an in-memory "wire"
/// that can drop chosen data segments. Returns when both sides go idle.
struct Harness {
    client: TcpConnection,
    server: TcpConnection,
    now: SimTime,
    /// One-way delay of the wire.
    delay: SimDuration,
    /// In-flight segments: (arrival time, to_server?, segment)
    wire: Vec<(SimTime, bool, TcpSegment)>,
    /// Data-segment indices (1-based count of data segments sent by the
    /// client) to drop once.
    drop_client_data: Vec<u64>,
    client_data_count: u64,
}

impl Harness {
    fn new(client_opts: SocketOptions, server_opts: SocketOptions) -> Self {
        Harness::with_isn(client_opts, server_opts, 1000)
    }

    fn with_isn(client_opts: SocketOptions, server_opts: SocketOptions, isn: u32) -> Self {
        Harness::with_config(
            TcpConfig::default().with_fixed_isn(isn),
            client_opts,
            server_opts,
        )
    }

    fn with_config(cfg: TcpConfig, client_opts: SocketOptions, server_opts: SocketOptions) -> Self {
        let mut client = TcpConnection::new(10000, 80, cfg.clone(), client_opts);
        let mut server = TcpConnection::new(80, 10000, cfg, server_opts);
        client.open(SimTime::ZERO);
        server.listen();
        Harness {
            client,
            server,
            now: SimTime::ZERO,
            delay: SimDuration::from_millis(30),
            wire: Vec::new(),
            drop_client_data: Vec::new(),
            client_data_count: 0,
        }
    }

    fn transfer(&mut self) {
        // Collect outgoing segments from both endpoints.
        for seg in self.client.poll(self.now) {
            let is_data = !seg.payload.is_empty();
            if is_data {
                self.client_data_count += 1;
                if self.drop_client_data.contains(&self.client_data_count) {
                    continue;
                }
            }
            self.wire.push((self.now + self.delay, true, seg));
        }
        for seg in self.server.poll(self.now) {
            self.wire.push((self.now + self.delay, false, seg));
        }
    }

    /// Advance time to the next event and deliver due segments.
    fn step(&mut self) -> bool {
        self.transfer();
        // Find next event time: wire arrival or connection timer.
        let mut next: Option<SimTime> = None;
        let mut consider = |t: Option<SimTime>| {
            if let Some(t) = t {
                next = Some(match next {
                    Some(n) => n.min(t),
                    None => t,
                });
            }
        };
        consider(self.wire.iter().map(|(t, _, _)| *t).min());
        consider(self.client.next_timer());
        consider(self.server.next_timer());
        let Some(next) = next else { return false };
        self.now = self.now.max(next);
        // Deliver all due segments.
        let due: Vec<(SimTime, bool, TcpSegment)> = {
            let mut due = vec![];
            let mut keep = vec![];
            for item in self.wire.drain(..) {
                if item.0 <= self.now {
                    due.push(item);
                } else {
                    keep.push(item);
                }
            }
            self.wire = keep;
            due
        };
        for (_, to_server, seg) in due {
            if to_server {
                self.server.on_segment(&seg, self.now);
            } else {
                self.client.on_segment(&seg, self.now);
            }
        }
        true
    }

    fn run_until(&mut self, deadline: SimTime) {
        let mut guard = 0u32;
        while self.now < deadline {
            if !self.step() {
                break;
            }
            guard += 1;
            assert!(guard < 500_000, "harness stopped making progress");
        }
    }

    fn run_until_idle(&mut self, max_time: SimTime) {
        let mut guard = 0u32;
        loop {
            self.transfer();
            if self.wire.is_empty()
                && self.client.next_timer().is_none()
                && self.server.next_timer().is_none()
            {
                break;
            }
            if !self.step() || self.now >= max_time {
                break;
            }
            guard += 1;
            assert!(guard < 500_000, "harness stopped making progress");
        }
    }

    fn drain_server_bytes(&mut self) -> Vec<u8> {
        let mut chunks = vec![];
        while let Some(c) = self.server.read() {
            chunks.push(c);
        }
        // Reassemble by offset (handles unordered delivery).
        let mut out = vec![];
        chunks.sort_by_key(|c| c.offset);
        for c in chunks {
            let off = c.offset as usize;
            if out.len() < off + c.len() {
                out.resize(off + c.len(), 0);
            }
            out[off..off + c.len()].copy_from_slice(&c.data);
        }
        out
    }
}

// ----------------------------------------------------------------------
// Manually choreographed connections (fixed ISN 42, peer seq 9000)
// ----------------------------------------------------------------------

const ISS: SeqNum = SeqNum(42);

/// Open a client connection and complete the handshake by hand so every
/// subsequent segment can be injected at a chosen time.
fn establish(cfg: TcpConfig) -> TcpConnection {
    let mut c = TcpConnection::new(1, 2, cfg, SocketOptions::standard());
    c.open(SimTime::ZERO);
    let syn = &c.poll(SimTime::ZERO)[0];
    let mut synack = TcpSegment::bare(2, 1, SeqNum(9000), syn.seq + 1, TcpFlags::SYN_ACK);
    synack.options = vec![TcpOption::Mss(1448), TcpOption::SackPermitted];
    synack.window = 1 << 20;
    c.on_segment(&synack, SimTime::from_millis(1));
    assert!(c.is_established());
    c
}

/// Inject a bare ACK for stream offset `ack_off` (a duplicate ACK when it
/// matches the current cumulative point and data is outstanding).
fn inject_ack(c: &mut TcpConnection, ack_off: u64, now: SimTime) {
    let mut ack = TcpSegment::bare(2, 1, SeqNum(9001), ISS + 1 + ack_off as u32, TcpFlags::ACK);
    ack.window = 1 << 20;
    c.on_segment(&ack, now);
}

fn data_payload(segs: &[TcpSegment]) -> usize {
    segs.iter().map(|s| s.payload.len()).sum()
}

fn ms(v: u64) -> SimTime {
    SimTime::from_millis(v)
}

#[test]
fn dup_ack_burst_after_rto_does_not_reenter_recovery() {
    // Regression for the RFC 6582 §3.2 recover-point guard. An RTO is a
    // congestion event: it must arm `recover` at snd_max so the duplicate
    // ACKs elicited by the go-back-N retransmissions cannot trigger a fast
    // retransmit — i.e. cut cwnd a *second* time for the same loss. The old
    // code entered recovery on any third duplicate ACK.
    let cfg = TcpConfig::default()
        .with_fixed_isn(42)
        .with_delayed_ack(false);
    let mut c = establish(cfg);
    c.write(&vec![0u8; 20 * MSS]).unwrap();
    let first = c.poll(ms(2));
    assert_eq!(
        first.iter().filter(|s| !s.payload.is_empty()).count(),
        3,
        "initial window"
    );

    // No ACKs arrive: the retransmission timer fires.
    let rto_at = c.next_timer().expect("RTO armed");
    let resent = c.poll(rto_at);
    assert!(resent.iter().any(|s| !s.payload.is_empty()));
    assert_eq!(c.stats().timeouts, 1);

    // The retransmission elicits a burst of duplicate ACKs at the old
    // cumulative point (offset 0), all for data sent before the timeout.
    for i in 0..3 {
        inject_ack(&mut c, 0, rto_at + SimDuration::from_millis(10 + i));
    }
    assert_eq!(c.stats().dup_acks, 3);
    assert_eq!(
        c.stats().fast_retransmits,
        0,
        "post-RTO duplicate ACKs must not re-enter recovery (double cut)"
    );
    assert_eq!(c.cc_stats().fast_recoveries, 0);
}

#[test]
fn dup_ack_burst_after_recovery_exit_does_not_cut_twice() {
    // The other half of the double-cut trace: duplicate ACKs arriving just
    // after a full acknowledgment ends recovery refer to segments sent
    // before the congestion event and must be ignored, not treated as a
    // fresh loss.
    let cfg = TcpConfig::default()
        .with_fixed_isn(42)
        .with_delayed_ack(false);
    let mut c = establish(cfg);
    c.write(&vec![0u8; 10 * MSS]).unwrap();
    let first = c.poll(ms(2));
    assert_eq!(first.iter().filter(|s| !s.payload.is_empty()).count(), 3);

    // Three duplicate ACKs at offset 0: genuine first entry into recovery
    // (recover point arms at snd_max = 3 segments).
    for i in 0..3 {
        inject_ack(&mut c, 0, ms(10 + i));
    }
    assert_eq!(c.stats().fast_retransmits, 1);
    let _recovery_segs = c.poll(ms(15));

    // Full ACK covering the recover point ends the episode.
    inject_ack(&mut c, 3 * MSS as u64, ms(60));
    assert_eq!(c.stats().fast_retransmits, 1);

    // A stale duplicate-ACK burst lands exactly at the recover point.
    for i in 0..3 {
        inject_ack(&mut c, 3 * MSS as u64, ms(61 + i));
    }
    assert_eq!(
        c.stats().fast_retransmits,
        1,
        "dup ACKs at the recover point must not start a second episode"
    );
    assert_eq!(c.cc_stats().fast_recoveries, 1);
}

#[test]
fn partial_ack_mid_segment_resends_a_full_segment() {
    // Documents the `resend_until = snd_una + 1` sentinel: a NewReno partial
    // ACK landing *mid-segment* schedules a one-byte range, but the emit
    // path always reads a full MSS from the ACK point — so the retransmission
    // is 1448 bytes starting at the new snd_una, crossing the original
    // segment boundary, never a 1-byte segment.
    let cfg = TcpConfig::default()
        .with_fixed_isn(42)
        .with_delayed_ack(false);
    let mut c = establish(cfg);
    c.write(&vec![0u8; 8 * MSS]).unwrap();
    let first = c.poll(ms(2));
    assert_eq!(first.iter().filter(|s| !s.payload.is_empty()).count(), 3);

    // ACK the first segment; the opened window sends two more (snd_max = 5).
    inject_ack(&mut c, MSS as u64, ms(10));
    let more = c.poll(ms(10));
    assert_eq!(more.iter().filter(|s| !s.payload.is_empty()).count(), 2);

    // Lose segment 2: three duplicate ACKs at offset 1448 enter recovery and
    // fast-retransmit one full segment from offset 1448.
    for i in 0..3 {
        inject_ack(&mut c, MSS as u64, ms(20 + i));
    }
    let retx = c.poll(ms(25));
    let retx_data: Vec<&TcpSegment> = retx.iter().filter(|s| !s.payload.is_empty()).collect();
    assert_eq!(retx_data.len(), 1);
    assert_eq!(
        retx_data[0].payload.len(),
        MSS,
        "fast retransmit is full-MSS"
    );

    // A partial ACK lands mid-segment at offset 2000 (inside the original
    // [1448, 2896) segment). The scheduled retransmission must be a full
    // segment [2000, 3448), not one byte and not the old boundary.
    inject_ack(&mut c, 2000, ms(60));
    let partial_retx = c.poll(ms(61));
    let data: Vec<&TcpSegment> = partial_retx
        .iter()
        .filter(|s| !s.payload.is_empty())
        .collect();
    assert_eq!(data.len(), 1, "partial ACK triggers exactly one retransmit");
    assert_eq!(
        data[0].seq,
        ISS + 1 + 2000,
        "resend starts at the ACK point"
    );
    assert_eq!(
        data[0].payload.len(),
        MSS,
        "a full segment is resent, crossing the original boundary"
    );
}

#[test]
fn recovery_exit_window_is_conservative() {
    // RFC 6582 §3.2 step 3, conservative variant: on a full acknowledgment
    // the window deflates to min(ssthresh, max(flight, MSS) + MSS). The old
    // unconditional `cwnd = ssthresh` licensed an ssthresh-sized burst on the
    // next poll when recovery ended with (almost) nothing in flight.
    let cfg = TcpConfig::default()
        .with_fixed_isn(42)
        .with_delayed_ack(false);
    let mut c = establish(cfg);
    c.write(&vec![0u8; 64 * MSS]).unwrap();
    let mut now = ms(2);
    let _ = c.poll(now);

    // Grow the window to 16 segments by ACKing one MSS at a time (slow
    // start), letting each ACK clock out new data.
    let mut acked = 0u64;
    while c.cwnd() < 16 * MSS {
        now += SimDuration::from_millis(5);
        acked += MSS as u64;
        inject_ack(&mut c, acked, now);
        let _ = c.poll(now);
    }
    assert_eq!(c.cwnd(), 16 * MSS);
    let snd_max = c.stats().bytes_sent; // everything sent exactly once so far

    // Three duplicate ACKs: enter recovery with a 16-segment flight.
    for i in 0..3 {
        inject_ack(&mut c, acked, now + SimDuration::from_millis(10 + i));
    }
    assert_eq!(c.stats().fast_retransmits, 1);

    // A full acknowledgment of everything outstanding ends recovery with
    // zero bytes in flight: the exit window must be max(0, MSS) + MSS =
    // 2 segments, NOT ssthresh (8 segments).
    now += SimDuration::from_millis(50);
    inject_ack(&mut c, snd_max, now);
    assert_eq!(c.cwnd(), 2 * MSS, "conservative exit, not cwnd = ssthresh");

    // And the next poll's burst honours it: two segments, not eight.
    let burst = c.poll(now + SimDuration::from_millis(1));
    assert_eq!(
        data_payload(&burst),
        2 * MSS,
        "post-recovery burst bounded by the deflated window"
    );
    assert!(data_payload(&burst) <= c.cwnd());
}

#[test]
fn bulk_transfer_with_loss_delivers_under_every_cc_algorithm() {
    // The pluggable window response must not affect reliability: the same
    // lossy transfer completes exactly under NewReno, CUBIC, and disabled
    // congestion control, and each run is deterministic.
    for algo in CcAlgorithm::ALL {
        let run = || {
            let cfg = TcpConfig::default().with_fixed_isn(77).with_cc(algo);
            let mut h =
                Harness::with_config(cfg, SocketOptions::standard(), SocketOptions::standard());
            h.run_until(SimTime::from_millis(200));
            let data: Vec<u8> = (0..60_000u32).map(|i| (i % 233) as u8).collect();
            h.client.write(&data).unwrap();
            h.drop_client_data = vec![4];
            h.run_until_idle(SimTime::from_secs(60));
            assert_eq!(
                h.drain_server_bytes(),
                data,
                "cc={} must still deliver everything",
                algo.label()
            );
            (
                h.client.stats().segments_sent,
                h.client.stats().retransmissions,
                h.client.stats().bytes_retransmitted,
            )
        };
        assert_eq!(run(), run(), "cc={} is deterministic", algo.label());
    }
}

// ----------------------------------------------------------------------
// Wire-driven end-to-end behaviour
// ----------------------------------------------------------------------

#[test]
fn three_way_handshake_establishes_both_sides() {
    let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
    h.run_until(SimTime::from_millis(500));
    assert_eq!(h.client.state(), TcpState::Established);
    assert_eq!(h.server.state(), TcpState::Established);
    assert!(
        h.client.srtt().is_some(),
        "client sampled RTT from handshake"
    );
}

#[test]
fn bulk_transfer_without_loss_delivers_all_bytes_in_order() {
    let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
    h.run_until(SimTime::from_millis(200));
    let data: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
    h.client.write(&data).unwrap();
    h.run_until_idle(SimTime::from_secs(30));
    let received = h.drain_server_bytes();
    assert_eq!(received.len(), data.len());
    assert_eq!(received, data);
    assert_eq!(h.client.stats().retransmissions, 0);
}

#[test]
fn lost_segment_is_recovered_by_fast_retransmit() {
    let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
    h.run_until(SimTime::from_millis(200));
    let data: Vec<u8> = (0..60_000u32).map(|i| (i % 253) as u8).collect();
    h.client.write(&data).unwrap();
    h.drop_client_data = vec![5];
    h.run_until_idle(SimTime::from_secs(60));
    let received = h.drain_server_bytes();
    assert_eq!(received, data, "all data eventually delivered despite loss");
    assert!(h.client.stats().retransmissions >= 1);
    assert!(
        h.client.stats().fast_retransmits >= 1,
        "loss with plenty of following data should trigger fast retransmit, stats={:?}",
        h.client.stats()
    );
}

#[test]
fn lost_segment_at_tail_is_recovered_by_rto() {
    let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
    h.run_until(SimTime::from_millis(200));
    // Two-segment write, drop the last data segment: not enough dupacks,
    // so recovery must come from the retransmission timeout.
    let data: Vec<u8> = vec![7u8; 2000];
    h.client.write(&data).unwrap();
    h.drop_client_data = vec![2];
    h.run_until_idle(SimTime::from_secs(120));
    let received = h.drain_server_bytes();
    assert_eq!(received, data);
    assert!(
        h.client.stats().timeouts >= 1,
        "stats={:?}",
        h.client.stats()
    );
}

#[test]
fn standard_receiver_blocks_delivery_behind_a_hole() {
    let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
    h.run_until(SimTime::from_millis(200));
    let data: Vec<u8> = (0..4000u32).map(|i| (i % 250) as u8).collect();
    h.client.write(&data).unwrap();
    h.drop_client_data = vec![1];
    // Run just long enough for the first window of segments to arrive but
    // not long enough for loss recovery (RTO is at least 200 ms away).
    h.run_until(h.now + SimDuration::from_millis(150));
    // Standard TCP: nothing readable, the first segment is missing.
    assert!(
        !h.server.readable(),
        "hole blocks all delivery on standard TCP"
    );
}

#[test]
fn unordered_receiver_delivers_past_a_hole_immediately() {
    let mut h = Harness::new(SocketOptions::standard(), SocketOptions::utcp());
    h.run_until(SimTime::from_millis(200));
    let data: Vec<u8> = (0..4000u32).map(|i| (i % 250) as u8).collect();
    h.client.write(&data).unwrap();
    h.drop_client_data = vec![1];
    h.run_until(h.now + SimDuration::from_millis(150));
    // uTCP: segments after the hole are already available, with offsets.
    assert!(h.server.readable(), "uTCP delivers out-of-order data early");
    let mut saw_out_of_order = false;
    while let Some(c) = h.server.read() {
        if !c.in_order {
            saw_out_of_order = true;
            assert!(c.offset > 0);
            let expected: Vec<u8> = (c.offset..c.offset + c.len() as u64)
                .map(|i| (i % 250) as u8)
                .collect();
            assert_eq!(&c.data[..], &expected[..], "offset metadata is accurate");
        }
    }
    assert!(saw_out_of_order);
}

#[test]
fn wire_format_is_identical_for_utcp() {
    // Run the same deterministic transfer with and without uTCP options on
    // the receiver and compare every segment the *sender* puts on the wire
    // as well as the receiver's ACK stream lengths: uTCP must not change
    // wire-visible behaviour when no loss occurs.
    fn run(receiver_opts: SocketOptions) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let mut h = Harness::new(SocketOptions::standard(), receiver_opts);
        let mut client_wire: Vec<Vec<u8>> = vec![];
        let mut server_wire: Vec<Vec<u8>> = vec![];
        h.run_until(SimTime::from_millis(200));
        h.client.write(&vec![42u8; 30_000]).unwrap();
        // Manually step so we can capture segments.
        for _ in 0..2000 {
            for seg in h.client.poll(h.now) {
                client_wire.push(seg.encode());
                h.wire.push((h.now + h.delay, true, seg));
            }
            for seg in h.server.poll(h.now) {
                server_wire.push(seg.encode());
                h.wire.push((h.now + h.delay, false, seg));
            }
            let next = h
                .wire
                .iter()
                .map(|(t, _, _)| *t)
                .min()
                .into_iter()
                .chain(h.client.next_timer())
                .chain(h.server.next_timer())
                .min();
            let Some(next) = next else { break };
            h.now = h.now.max(next);
            let mut keep = vec![];
            for (t, to_server, seg) in h.wire.drain(..) {
                if t <= h.now {
                    if to_server {
                        h.server.on_segment(&seg, h.now);
                    } else {
                        h.client.on_segment(&seg, h.now);
                    }
                } else {
                    keep.push((t, to_server, seg));
                }
            }
            h.wire = keep;
            while h.server.read().is_some() {}
        }
        (client_wire, server_wire)
    }
    let (tcp_client, tcp_server) = run(SocketOptions::standard());
    let (utcp_client, utcp_server) = run(SocketOptions::utcp());
    assert_eq!(tcp_client, utcp_client, "sender wire behaviour unchanged");
    assert_eq!(tcp_server, utcp_server, "receiver ACK stream unchanged");
}

#[test]
fn unordered_send_prioritization_reorders_untransmitted_data() {
    let cfg = TcpConfig::default().with_fixed_isn(1);
    let mut c = TcpConnection::new(1, 2, cfg, SocketOptions::utcp());
    c.open(SimTime::ZERO);
    // Complete handshake manually.
    let syn = &c.poll(SimTime::ZERO)[0];
    let mut synack = TcpSegment::bare(2, 1, SeqNum(5000), syn.seq + 1, TcpFlags::SYN_ACK);
    synack.options = vec![TcpOption::Mss(1448), TcpOption::SackPermitted];
    synack.window = 1 << 20;
    c.on_segment(&synack, SimTime::from_millis(1));
    assert!(c.is_established());
    // Ten low-priority bulk writes; the initial congestion window only
    // lets the first three leave immediately.
    for _ in 0..10 {
        c.write_with_meta(&[0u8; 1448], WriteMeta::with_priority(0))
            .unwrap();
    }
    let first = c.poll(SimTime::from_millis(2));
    assert_eq!(first.iter().filter(|s| !s.payload.is_empty()).count(), 3);
    // A high-priority message written afterwards must pass the seven bulk
    // writes still waiting in the send queue (but not the three already
    // transmitted).
    c.write_with_meta(b"URGENT", WriteMeta::with_priority(9))
        .unwrap();
    let mut ack = TcpSegment::bare(
        2,
        1,
        SeqNum(5001),
        first.last().unwrap().seq_end(),
        TcpFlags::ACK,
    );
    ack.window = 1 << 20;
    c.on_segment(&ack, SimTime::from_millis(60));
    let next = c.poll(SimTime::from_millis(60));
    let data_segs: Vec<&TcpSegment> = next.iter().filter(|s| !s.payload.is_empty()).collect();
    assert!(!data_segs.is_empty());
    assert_eq!(
        data_segs[0].payload.as_ref(),
        b"URGENT",
        "urgent data leads the next flight, ahead of queued bulk"
    );
    // The remaining bulk data still follows afterwards.
    assert!(data_segs[1..]
        .iter()
        .any(|s| s.payload.iter().all(|&b| b == 0)));
}

#[test]
fn cc_disabled_sends_entire_window_at_once() {
    let cfg = TcpConfig::default()
        .with_fixed_isn(1)
        .with_cc(CcAlgorithm::None);
    let mut c = TcpConnection::new(1, 2, cfg, SocketOptions::standard());
    c.open(SimTime::ZERO);
    let syn = &c.poll(SimTime::ZERO)[0];
    let mut synack = TcpSegment::bare(2, 1, SeqNum(5000), syn.seq + 1, TcpFlags::SYN_ACK);
    synack.options = vec![TcpOption::Mss(1448), TcpOption::SackPermitted];
    synack.window = 1 << 20;
    c.on_segment(&synack, SimTime::from_millis(1));
    c.write(&vec![0u8; 100 * 1448]).unwrap();
    let segs = c.poll(SimTime::from_millis(2));
    // Without congestion control, the whole backlog goes out (peer window
    // permitting) in a single poll.
    assert_eq!(
        segs.iter().map(|s| s.payload.len()).sum::<usize>(),
        100 * 1448
    );
}

#[test]
fn orderly_close_reaches_closed_states_on_both_sides() {
    let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
    h.run_until(SimTime::from_millis(200));
    h.client.write(b"goodbye").unwrap();
    h.client.close();
    h.run_until(SimTime::from_millis(400));
    h.server.close();
    h.run_until_idle(SimTime::from_secs(10));
    assert_eq!(h.drain_server_bytes(), b"goodbye");
    assert!(h.client.is_closed(), "client state: {:?}", h.client.state());
    assert!(h.server.is_closed(), "server state: {:?}", h.server.state());
}

#[test]
fn write_before_connect_fails() {
    let mut c = TcpConnection::new(1, 2, TcpConfig::default(), SocketOptions::standard());
    assert_eq!(c.write(b"x"), Err(TcpError::NotConnected));
}

#[test]
fn write_after_close_fails() {
    let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
    h.run_until(SimTime::from_millis(200));
    h.client.close();
    assert_eq!(h.client.write(b"x"), Err(TcpError::Closed));
}

#[test]
fn send_buffer_backpressure_reports_full() {
    let cfg = TcpConfig::default()
        .with_buffers(1000, 65536)
        .with_fixed_isn(3);
    let mut c = TcpConnection::new(1, 2, cfg, SocketOptions::standard());
    c.open(SimTime::ZERO);
    let _ = c.poll(SimTime::ZERO);
    // Can't transmit (no handshake reply), so the buffer fills and then
    // reports backpressure.
    assert!(c.write(&vec![0u8; 900]).is_ok());
    assert_eq!(c.write(&[0u8; 200]), Err(TcpError::BufferFull));
}

#[test]
fn duplicate_acks_are_counted() {
    let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
    h.run_until(SimTime::from_millis(200));
    let data: Vec<u8> = vec![1u8; 80_000];
    h.client.write(&data).unwrap();
    h.drop_client_data = vec![3];
    h.run_until_idle(SimTime::from_secs(60));
    assert!(h.client.stats().dup_acks >= 3);
    assert_eq!(h.drain_server_bytes(), data);
}

#[test]
fn transfer_across_the_sequence_wrap_is_exact() {
    // Both endpoints' ISNs sit just below 2^32, so data sequence numbers
    // (and the ACK stream back) wrap mid-transfer. 60 kB cross the wrap
    // regardless of where inside the first segment it lands.
    for isn in [u32::MAX, u32::MAX - 1, u32::MAX - 1448, u32::MAX - 30_000] {
        let mut h = Harness::with_isn(SocketOptions::standard(), SocketOptions::standard(), isn);
        h.run_until(SimTime::from_millis(200));
        assert_eq!(h.client.state(), TcpState::Established, "isn={isn}");
        let data: Vec<u8> = (0..60_000u32).map(|i| (i % 249) as u8).collect();
        h.client.write(&data).unwrap();
        h.run_until_idle(SimTime::from_secs(30));
        assert_eq!(h.drain_server_bytes(), data, "isn={isn}");
        assert_eq!(h.client.stats().retransmissions, 0, "isn={isn}");
    }
}

#[test]
fn loss_recovery_works_across_the_sequence_wrap() {
    // Drop a mid-stream segment whose retransmission lands on the other
    // side of the 2^32 boundary: SACK blocks and the fast-retransmit
    // cursor must all survive the wrap.
    let mut h = Harness::with_isn(
        SocketOptions::standard(),
        SocketOptions::standard(),
        u32::MAX - 4000,
    );
    h.run_until(SimTime::from_millis(200));
    let data: Vec<u8> = (0..60_000u32).map(|i| (i % 251) as u8).collect();
    h.client.write(&data).unwrap();
    h.drop_client_data = vec![3];
    h.run_until_idle(SimTime::from_secs(60));
    assert_eq!(h.drain_server_bytes(), data);
    assert!(h.client.stats().retransmissions >= 1);
}

#[test]
fn unordered_delivery_offsets_are_correct_across_the_wrap() {
    // A uTCP receiver tags chunks with 64-bit stream offsets derived from
    // wrapped 32-bit sequence numbers; a hole right at the boundary must
    // not corrupt them.
    let mut h = Harness::with_isn(
        SocketOptions::standard(),
        SocketOptions::utcp(),
        u32::MAX - 2000,
    );
    h.run_until(SimTime::from_millis(200));
    let data: Vec<u8> = (0..20_000u32).map(|i| (i % 247) as u8).collect();
    h.client.write(&data).unwrap();
    h.drop_client_data = vec![2];
    h.run_until_idle(SimTime::from_secs(60));
    assert_eq!(h.drain_server_bytes(), data, "offset-keyed reassembly");
    assert!(h.server.stats().segments_received > 0);
}

#[test]
fn karns_rule_skips_samples_from_retransmitted_segments() {
    let cfg = TcpConfig::default()
        .with_fixed_isn(42)
        .with_delayed_ack(false);
    let mut c = TcpConnection::new(1, 2, cfg, SocketOptions::standard());
    c.open(SimTime::ZERO);
    let syn = &c.poll(SimTime::ZERO)[0];
    let mut synack = TcpSegment::bare(2, 1, SeqNum(9000), syn.seq + 1, TcpFlags::SYN_ACK);
    synack.options = vec![TcpOption::Mss(1448), TcpOption::SackPermitted];
    synack.window = 1 << 20;
    c.on_segment(&synack, SimTime::from_millis(50));
    assert_eq!(c.rtt_samples(), 1, "handshake RTT sampled");
    let srtt_after_handshake = c.srtt().unwrap();

    // One data segment, never acknowledged: the RTO fires and the
    // retransmission eventually gets ACKed. Karn's rule forbids sampling
    // that ACK (the send time is ambiguous).
    c.write(&[1u8; 500]).unwrap();
    let segs = c.poll(SimTime::from_millis(50));
    assert_eq!(segs.iter().filter(|s| !s.payload.is_empty()).count(), 1);
    let rto_at = c.next_timer().expect("RTO armed");
    let resent = c.poll(rto_at);
    assert!(
        resent.iter().any(|s| !s.payload.is_empty()),
        "RTO must retransmit"
    );
    assert_eq!(c.stats().timeouts, 1);
    let mut ack = TcpSegment::bare(2, 1, SeqNum(9001), segs[0].seq_end(), TcpFlags::ACK);
    ack.window = 1 << 20;
    c.on_segment(&ack, rto_at + SimDuration::from_millis(400));
    assert_eq!(
        c.rtt_samples(),
        1,
        "the retransmitted segment's ACK must not be sampled (Karn)"
    );
    assert_eq!(c.srtt(), Some(srtt_after_handshake), "estimate untouched");

    // A fresh, cleanly acknowledged segment samples again.
    let now = rto_at + SimDuration::from_millis(500);
    c.write(&[2u8; 500]).unwrap();
    let segs = c.poll(now);
    let data_seg = segs.iter().find(|s| !s.payload.is_empty()).unwrap();
    let mut ack2 = TcpSegment::bare(2, 1, SeqNum(9001), data_seg.seq_end(), TcpFlags::ACK);
    ack2.window = 1 << 20;
    c.on_segment(&ack2, now + SimDuration::from_millis(80));
    assert_eq!(c.rtt_samples(), 2, "clean transmission samples normally");
}

#[test]
fn rto_backoff_is_exponential_and_resets_on_progress() {
    let cfg = TcpConfig::default().with_fixed_isn(7);
    let mut c = TcpConnection::new(1, 2, cfg, SocketOptions::standard());
    c.open(SimTime::ZERO);
    let _syn = c.poll(SimTime::ZERO);
    // No SYN-ACK ever arrives: consecutive handshake RTOs must double.
    let t1 = c.next_timer().expect("first RTO");
    let _ = c.poll(t1);
    let t2 = c.next_timer().expect("second RTO");
    let _ = c.poll(t2);
    let t3 = c.next_timer().expect("third RTO");
    let gap1 = t2.saturating_since(t1);
    let gap2 = t3.saturating_since(t2);
    assert_eq!(
        gap2,
        gap1.saturating_mul(2),
        "RTO doubles per expiry: {gap1} then {gap2}"
    );
    assert_eq!(c.stats().timeouts, 2);
}

#[test]
fn readiness_events_fire_on_edges() {
    let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
    h.client.set_event_interest(true);
    h.server.set_event_interest(true);
    assert_eq!(h.client.readiness(), Readiness::default());
    h.run_until(SimTime::from_millis(200));
    let client_events = h.client.take_events();
    assert!(
        client_events.contains(&ConnEvent::Established),
        "events={client_events:?}"
    );
    assert!(h.client.readiness().writable);
    assert!(!h.client.readiness().readable);

    h.client.write(b"ping").unwrap();
    h.run_until(h.now + SimDuration::from_millis(200));
    assert!(h.server.readiness().readable);
    assert!(h.server.take_events().contains(&ConnEvent::Readable));

    h.client.close();
    h.server.close();
    h.run_until_idle(SimTime::from_secs(20));
    assert!(h.client.take_events().contains(&ConnEvent::Closed));
    assert!(h.client.readiness().closed);
}

#[test]
fn rto_event_fires_on_timeout() {
    let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
    h.client.set_event_interest(true);
    h.run_until(SimTime::from_millis(200));
    h.client.write(&[7u8; 2000]).unwrap();
    h.drop_client_data = vec![2];
    h.run_until_idle(SimTime::from_secs(120));
    let events = h.client.take_events();
    let waits: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            ConnEvent::RtoFired { wait_us } => Some(*wait_us),
            _ => None,
        })
        .collect();
    assert!(!waits.is_empty());
    assert!(
        waits.iter().all(|&w| w > 0),
        "arm->fire wait must be a positive per-timer delta: {waits:?}"
    );
    assert!(
        events.contains(&ConnEvent::Retransmit),
        "recovering the dropped segment must surface a Retransmit edge"
    );
}

#[test]
fn events_are_not_recorded_without_interest() {
    let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
    h.run_until(SimTime::from_millis(200));
    h.client.write(b"data").unwrap();
    h.run_until(h.now + SimDuration::from_millis(200));
    assert!(!h.client.has_events());
    assert!(!h.server.has_events());
    assert!(h.server.take_events().is_empty());
}

#[test]
fn writable_event_fires_when_a_full_buffer_drains() {
    let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
    h.run_until(SimTime::from_millis(200));
    h.client.set_event_interest(true);
    let _ = h.client.take_events();
    // Fill the send buffer completely, then let ACKs drain it.
    let free = h.client.send_buffer_free();
    h.client.write(&vec![0u8; free]).unwrap();
    assert!(!h.client.readiness().writable);
    h.run_until_idle(SimTime::from_secs(60));
    assert!(
        h.client.take_events().contains(&ConnEvent::Writable),
        "ACKs freeing a full buffer must surface a Writable edge"
    );
}

#[test]
fn stats_track_bytes_sent_and_acked() {
    let mut h = Harness::new(SocketOptions::standard(), SocketOptions::standard());
    h.run_until(SimTime::from_millis(200));
    let data = vec![9u8; 10_000];
    h.client.write(&data).unwrap();
    h.run_until_idle(SimTime::from_secs(10));
    assert_eq!(h.client.stats().bytes_sent, 10_000);
    assert_eq!(h.client.stats().bytes_acked, 10_000);
    assert_eq!(h.server.stats().bytes_received, 10_000);
}
