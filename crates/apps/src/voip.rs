//! The conferencing (VoIP) application model of §8.2.
//!
//! The paper's experiment encodes a WAV file with SPEEX in ultra-wideband
//! mode (32 kHz, ≈256 kbps) and sends one voice frame every 20 ms, then
//! measures per-frame end-to-end latency, codec-perceived loss bursts under a
//! playout (jitter) buffer, and PESQ audio quality while competing TCP flows
//! congest a 3 Mbps / 60 ms-RTT path.
//!
//! Substitutions (documented in DESIGN.md): the codec is modelled as a
//! constant-bit-rate frame source; perceptual quality is estimated with an
//! E-model-style MOS that degrades with frame loss and loss bursts, rather
//! than PESQ waveform comparison. The quantities the figures plot — frame
//! latency CDFs, burst-length CDFs, and a quality score over time — are
//! computed the same way.

use minion_simnet::{Distribution, SimDuration, SimTime, TimeSeries};

/// Parameters of the voice source.
#[derive(Clone, Debug)]
pub struct VoipSourceConfig {
    /// Interval between frames (20 ms in the paper).
    pub frame_interval: SimDuration,
    /// Bytes per frame (256 kbps at 20 ms frames = 640 bytes).
    pub frame_size: usize,
    /// Total call duration.
    pub duration: SimDuration,
}

impl Default for VoipSourceConfig {
    fn default() -> Self {
        VoipSourceConfig {
            frame_interval: SimDuration::from_millis(20),
            frame_size: 640,
            duration: SimDuration::from_secs(60),
        }
    }
}

impl VoipSourceConfig {
    /// The paper's 4-minute call.
    pub fn four_minute_call() -> Self {
        VoipSourceConfig {
            duration: SimDuration::from_secs(240),
            ..Default::default()
        }
    }

    /// Number of frames the source will emit.
    pub fn total_frames(&self) -> u64 {
        self.duration.as_micros() / self.frame_interval.as_micros()
    }

    /// Average bit-rate of the source in bits per second.
    pub fn bitrate_bps(&self) -> u64 {
        (self.frame_size as u64 * 8 * 1_000_000) / self.frame_interval.as_micros()
    }
}

/// The voice frame source: produces numbered frames on a fixed schedule.
#[derive(Clone, Debug)]
pub struct VoipSource {
    config: VoipSourceConfig,
    start: SimTime,
    next_frame: u64,
}

impl VoipSource {
    /// Create a source that starts emitting at `start`.
    pub fn new(config: VoipSourceConfig, start: SimTime) -> Self {
        VoipSource {
            config,
            start,
            next_frame: 0,
        }
    }

    /// The time the next frame should be sent, or `None` when the call ends.
    pub fn next_send_time(&self) -> Option<SimTime> {
        if self.next_frame >= self.config.total_frames() {
            return None;
        }
        Some(self.start + self.config.frame_interval.saturating_mul(self.next_frame))
    }

    /// Emit the next frame if it is due at `now`. The payload begins with the
    /// frame number so the receiver can identify frames without any framing
    /// help from the transport.
    pub fn poll(&mut self, now: SimTime) -> Option<(u64, Vec<u8>)> {
        let due = self.next_send_time()?;
        if now < due {
            return None;
        }
        let number = self.next_frame;
        self.next_frame += 1;
        let mut payload = vec![0u8; self.config.frame_size];
        payload[..8].copy_from_slice(&number.to_be_bytes());
        // Fill the rest deterministically (stand-in for codec bits).
        for (i, b) in payload[8..].iter_mut().enumerate() {
            *b = ((number as usize + i) % 251) as u8;
        }
        Some((number, payload))
    }

    /// Frame number scheduled for transmission at `time`.
    pub fn frame_send_time(&self, frame: u64) -> SimTime {
        self.start + self.config.frame_interval.saturating_mul(frame)
    }

    /// Source configuration.
    pub fn config(&self) -> &VoipSourceConfig {
        &self.config
    }
}

/// Decode the frame number out of a received frame payload.
pub fn frame_number(payload: &[u8]) -> Option<u64> {
    if payload.len() < 8 {
        return None;
    }
    Some(u64::from_be_bytes(
        payload[..8].try_into().expect("8 bytes"),
    ))
}

/// The receiver: a playout (jitter) buffer plus the metrics the paper plots.
#[derive(Clone, Debug)]
pub struct VoipReceiver {
    config: VoipSourceConfig,
    /// Playout delay (jitter buffer depth): a frame sent at `t` must arrive
    /// by `t + jitter_buffer` to make its playout deadline.
    jitter_buffer: SimDuration,
    /// One-way frame latencies (for Figure 7).
    latencies: Distribution,
    /// Arrival time per frame (None = never arrived).
    arrivals: Vec<Option<SimTime>>,
    /// Source start time used to compute deadlines.
    source_start: SimTime,
}

/// Aggregate quality metrics for one call.
#[derive(Clone, Debug)]
pub struct VoipReport {
    /// One-way latency distribution of frames that arrived.
    pub latencies_ms: Distribution,
    /// Fraction of frames that missed their playout deadline (lost or late).
    pub miss_fraction: f64,
    /// Burst lengths (consecutive frames missing playout), one entry per burst.
    pub burst_lengths: Vec<usize>,
    /// MOS estimate over time (window mean), for Figure 9.
    pub mos_timeline: TimeSeries,
    /// Overall MOS estimate for the whole call.
    pub overall_mos: f64,
}

impl VoipReceiver {
    /// Create a receiver with the given playout buffer depth.
    pub fn new(
        config: VoipSourceConfig,
        jitter_buffer: SimDuration,
        source_start: SimTime,
    ) -> Self {
        let frames = config.total_frames() as usize;
        VoipReceiver {
            config,
            jitter_buffer,
            latencies: Distribution::new(),
            arrivals: vec![None; frames],
            source_start,
        }
    }

    /// Record the arrival of a frame payload at `now`.
    pub fn on_frame(&mut self, payload: &[u8], now: SimTime) {
        let Some(number) = frame_number(payload) else {
            return;
        };
        let idx = number as usize;
        if idx >= self.arrivals.len() || self.arrivals[idx].is_some() {
            return; // out of range or duplicate
        }
        self.arrivals[idx] = Some(now);
        let sent = self.source_start + self.config.frame_interval.saturating_mul(number);
        self.latencies
            .add(now.saturating_since(sent).as_millis_f64());
    }

    /// Number of frames received so far.
    pub fn frames_received(&self) -> usize {
        self.arrivals.iter().filter(|a| a.is_some()).count()
    }

    /// Whether a frame made its playout deadline.
    fn made_deadline(&self, frame: usize) -> bool {
        let sent = self.source_start + self.config.frame_interval.saturating_mul(frame as u64);
        match self.arrivals[frame] {
            Some(arrival) => arrival <= sent + self.jitter_buffer,
            None => false,
        }
    }

    /// Produce the call report (Figures 7, 8, 9).
    pub fn report(&self, mos_window: SimDuration) -> VoipReport {
        let total = self.arrivals.len();
        let mut missed = 0usize;
        let mut burst_lengths = Vec::new();
        let mut run = 0usize;
        let mut per_frame_ok: Vec<bool> = Vec::with_capacity(total);
        for i in 0..total {
            let ok = self.made_deadline(i);
            per_frame_ok.push(ok);
            if ok {
                if run > 0 {
                    burst_lengths.push(run);
                    run = 0;
                }
            } else {
                missed += 1;
                run += 1;
            }
        }
        if run > 0 {
            burst_lengths.push(run);
        }

        // MOS timeline: an E-model-style score computed over sliding windows.
        let mut mos_timeline = TimeSeries::new();
        let window_frames =
            (mos_window.as_micros() / self.config.frame_interval.as_micros()).max(1) as usize;
        let mut i = 0usize;
        while i < total {
            let end = (i + window_frames).min(total);
            let window = &per_frame_ok[i..end];
            let mos = estimate_mos(window);
            let t = self.source_start + self.config.frame_interval.saturating_mul(i as u64);
            mos_timeline.push(t, mos);
            i = end;
        }

        VoipReport {
            latencies_ms: self.latencies.clone(),
            miss_fraction: if total == 0 {
                0.0
            } else {
                missed as f64 / total as f64
            },
            burst_lengths,
            mos_timeline,
            overall_mos: estimate_mos(&per_frame_ok),
        }
    }
}

/// An E-model-inspired MOS estimate from per-frame playout success.
///
/// Following the ITU-T G.107 E-model structure, the R factor starts from a
/// base value and is reduced by an impairment that grows with the effective
/// loss rate; bursty loss is penalised more than scattered loss (codecs can
/// interpolate over isolated losses but not blackouts). R is then mapped to
/// the 1–4.5 MOS scale.
pub fn estimate_mos(frame_ok: &[bool]) -> f64 {
    if frame_ok.is_empty() {
        return 4.4;
    }
    let total = frame_ok.len() as f64;
    let lost = frame_ok.iter().filter(|&&ok| !ok).count() as f64;
    let loss = lost / total;

    // Mean burst length among losses (1 = perfectly scattered).
    let mut bursts = Vec::new();
    let mut run = 0usize;
    for &ok in frame_ok {
        if !ok {
            run += 1;
        } else if run > 0 {
            bursts.push(run);
            run = 0;
        }
    }
    if run > 0 {
        bursts.push(run);
    }
    let mean_burst = if bursts.is_empty() {
        1.0
    } else {
        bursts.iter().sum::<usize>() as f64 / bursts.len() as f64
    };
    // Burstiness factor >= 1 amplifies the effective loss impairment.
    let burstiness = mean_burst.sqrt().clamp(1.0, 4.0);

    // E-model-style impairment: Ie-eff = Ie + (95 - Ie) * P / (P + Bpl/burstiness)
    let ie = 5.0; // codec's intrinsic impairment (wideband codec)
    let bpl = 25.0; // packet-loss robustness factor
    let ie_eff = ie + (95.0 - ie) * loss / (loss + bpl / (100.0 * burstiness));
    let r: f64 = 93.2 - ie_eff;

    // R -> MOS mapping (ITU-T G.107 Annex B).
    let r = r.clamp(0.0, 100.0);
    if r <= 0.0 {
        1.0
    } else if r >= 100.0 {
        4.5
    } else {
        1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7.0e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_emits_frames_on_schedule() {
        let cfg = VoipSourceConfig {
            duration: SimDuration::from_secs(1),
            ..Default::default()
        };
        assert_eq!(cfg.total_frames(), 50);
        assert_eq!(cfg.bitrate_bps(), 256_000);
        let mut src = VoipSource::new(cfg, SimTime::ZERO);
        assert!(src.poll(SimTime::ZERO).is_some());
        // The next frame is not due yet.
        assert!(src.poll(SimTime::from_millis(10)).is_none());
        assert!(src.poll(SimTime::from_millis(20)).is_some());
        let mut count = 2;
        let mut t = SimTime::from_millis(40);
        while let Some((n, payload)) = src.poll(t) {
            assert_eq!(frame_number(&payload), Some(n));
            count += 1;
            t += SimDuration::from_millis(20);
        }
        assert_eq!(count, 50);
        assert!(src.next_send_time().is_none());
    }

    #[test]
    fn receiver_latency_and_miss_accounting() {
        let cfg = VoipSourceConfig {
            duration: SimDuration::from_secs(1),
            ..Default::default()
        };
        let src = VoipSource::new(cfg.clone(), SimTime::ZERO);
        let mut rx = VoipReceiver::new(cfg.clone(), SimDuration::from_millis(200), SimTime::ZERO);
        // Frames 0..40 arrive 50 ms after sending; frames 40..45 arrive 500 ms
        // late (missing the 200 ms playout deadline); 45..50 never arrive.
        for n in 0..40u64 {
            let sent = src.frame_send_time(n);
            let mut payload = vec![0u8; 640];
            payload[..8].copy_from_slice(&n.to_be_bytes());
            rx.on_frame(&payload, sent + SimDuration::from_millis(50));
        }
        for n in 40..45u64 {
            let sent = src.frame_send_time(n);
            let mut payload = vec![0u8; 640];
            payload[..8].copy_from_slice(&n.to_be_bytes());
            rx.on_frame(&payload, sent + SimDuration::from_millis(500));
        }
        assert_eq!(rx.frames_received(), 45);
        let report = rx.report(SimDuration::from_secs(2));
        assert_eq!(report.miss_fraction, 10.0 / 50.0);
        // The ten misses are consecutive: one burst of length 10.
        assert_eq!(report.burst_lengths, vec![10]);
        assert!((report.latencies_ms.mean() - 100.0).abs() < 1.0);
    }

    #[test]
    fn duplicate_and_garbage_frames_are_ignored() {
        let cfg = VoipSourceConfig {
            duration: SimDuration::from_secs(1),
            ..Default::default()
        };
        let mut rx = VoipReceiver::new(cfg, SimDuration::from_millis(200), SimTime::ZERO);
        let mut payload = vec![0u8; 640];
        payload[..8].copy_from_slice(&3u64.to_be_bytes());
        rx.on_frame(&payload, SimTime::from_millis(70));
        rx.on_frame(&payload, SimTime::from_millis(90));
        rx.on_frame(&[1, 2, 3], SimTime::from_millis(95));
        assert_eq!(rx.frames_received(), 1);
    }

    #[test]
    fn mos_degrades_with_loss_and_burstiness() {
        let clean = vec![true; 1000];
        let mos_clean = estimate_mos(&clean);
        assert!(
            mos_clean > 4.2,
            "clean call scores near the top: {mos_clean}"
        );

        // 5% scattered loss.
        let scattered: Vec<bool> = (0..1000).map(|i| i % 20 != 0).collect();
        let mos_scattered = estimate_mos(&scattered);

        // 5% loss concentrated in bursts of 10.
        let bursty: Vec<bool> = (0..1000).map(|i| i % 200 >= 10).collect();
        let mos_bursty = estimate_mos(&bursty);

        assert!(mos_scattered < mos_clean);
        assert!(
            mos_bursty < mos_scattered,
            "bursty loss hurts more: {mos_bursty} vs {mos_scattered}"
        );
        assert!(mos_bursty >= 1.0);
    }

    #[test]
    fn empty_window_scores_well() {
        assert!(estimate_mos(&[]) > 4.0);
    }
}
