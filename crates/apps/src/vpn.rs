//! The VPN tunneling application of §8.4.
//!
//! The paper modifies OpenVPN to (a) carry tunneled IP packets over uCOBS
//! instead of a plain TCP stream — giving the tunnel unordered delivery — and
//! (b) send tunneled TCP ACKs at a higher uTCP priority than bulk payload.
//! The tunneled flows are ordinary TCP connections that experience the
//! classic TCP-in-TCP meltdown when the tunnel is a reliable, in-order byte
//! stream.
//!
//! This module reproduces the structure with a pair of [`TunnelGateway`]s:
//! each gateway owns the *inner* TCP endpoints (driven directly as protocol
//! state machines), encapsulates every inner segment as one tunnel datagram
//! tagged with a flow id, and carries it over any [`MinionTransport`] — the
//! original OpenVPN corresponds to the in-order `TcpTlv` transport, the
//! modified one to `Ucobs` with ACK prioritisation.

use minion_core::MinionTransport;
use minion_simnet::SimTime;
use minion_stack::Host;
use minion_tcp::{SocketOptions, TcpConfig, TcpConnection, TcpSegment, WriteMeta};
use std::collections::HashMap;

/// Priority used for tunneled pure ACKs when ACK prioritisation is on.
pub const ACK_PRIORITY: u32 = 7;

/// What one gateway does for a given inner flow.
enum InnerRole {
    /// This gateway's inner endpoint sends `total` bytes.
    Source { total: u64, written: u64 },
    /// This gateway's inner endpoint receives and counts bytes.
    Sink {
        received: u64,
        first_byte: Option<SimTime>,
        last_byte: Option<SimTime>,
    },
}

struct InnerFlow {
    conn: TcpConnection,
    role: InnerRole,
}

/// One end of the VPN tunnel.
pub struct TunnelGateway {
    transport: MinionTransport,
    prioritize_acks: bool,
    flows: HashMap<u32, InnerFlow>,
    /// Tunnel datagrams sent / received (for utilisation accounting).
    pub datagrams_sent: u64,
    /// Tunnel datagrams received.
    pub datagrams_received: u64,
}

fn encapsulate(flow_id: u32, segment: &TcpSegment) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + segment.wire_len());
    out.extend_from_slice(&flow_id.to_be_bytes());
    out.extend_from_slice(&segment.encode());
    out
}

fn decapsulate(datagram: &[u8]) -> Option<(u32, TcpSegment)> {
    if datagram.len() < 4 {
        return None;
    }
    let flow_id = u32::from_be_bytes([datagram[0], datagram[1], datagram[2], datagram[3]]);
    TcpSegment::decode(&datagram[4..]).map(|seg| (flow_id, seg))
}

/// Configuration for inner (tunneled) TCP connections: a slightly smaller MSS
/// so an encapsulated inner segment plus tunnel overhead still fits nicely in
/// outer segments.
fn inner_tcp_config(flow_id: u32) -> TcpConfig {
    TcpConfig::default()
        .with_mss(1400)
        .with_fixed_isn(0x1000_0000 + flow_id)
}

impl TunnelGateway {
    /// Wrap a tunnel transport. `prioritize_acks` enables the paper's
    /// modified-OpenVPN behaviour of expediting tunneled TCP ACKs.
    pub fn new(transport: MinionTransport, prioritize_acks: bool) -> Self {
        TunnelGateway {
            transport,
            prioritize_acks,
            flows: HashMap::new(),
            datagrams_sent: 0,
            datagrams_received: 0,
        }
    }

    /// Whether the tunnel transport is established.
    pub fn is_established(&self, host: &Host) -> bool {
        self.transport.is_established(host)
    }

    /// Add an inner flow for which this gateway is the *sender* of
    /// `total_bytes` (the peer gateway must add the matching sink). The
    /// sending side performs the inner active open.
    pub fn add_source_flow(&mut self, flow_id: u32, total_bytes: u64, now: SimTime) {
        let mut conn = TcpConnection::new(
            10_000 + flow_id as u16,
            20_000 + flow_id as u16,
            inner_tcp_config(flow_id),
            SocketOptions::standard(),
        );
        conn.open(now);
        self.flows.insert(
            flow_id,
            InnerFlow {
                conn,
                role: InnerRole::Source {
                    total: total_bytes,
                    written: 0,
                },
            },
        );
    }

    /// Add an inner flow for which this gateway is the receiver.
    pub fn add_sink_flow(&mut self, flow_id: u32) {
        let mut conn = TcpConnection::new(
            20_000 + flow_id as u16,
            10_000 + flow_id as u16,
            inner_tcp_config(flow_id),
            SocketOptions::standard(),
        );
        conn.listen();
        self.flows.insert(
            flow_id,
            InnerFlow {
                conn,
                role: InnerRole::Sink {
                    received: 0,
                    first_byte: None,
                    last_byte: None,
                },
            },
        );
    }

    /// Bytes delivered so far to the inner receiver of `flow_id` (0 for
    /// source flows or unknown ids).
    pub fn sink_received(&self, flow_id: u32) -> u64 {
        match self.flows.get(&flow_id).map(|f| &f.role) {
            Some(InnerRole::Sink { received, .. }) => *received,
            _ => 0,
        }
    }

    /// Goodput of a sink flow in bits per second between its first and last
    /// delivered byte.
    pub fn sink_goodput_bps(&self, flow_id: u32) -> f64 {
        match self.flows.get(&flow_id).map(|f| &f.role) {
            Some(InnerRole::Sink {
                received,
                first_byte: Some(f),
                last_byte: Some(l),
                ..
            }) if l > f => *received as f64 * 8.0 / (*l - *f).as_secs_f64(),
            _ => 0.0,
        }
    }

    /// Whether a source flow has handed all its bytes to the inner connection.
    pub fn source_finished(&self, flow_id: u32) -> bool {
        matches!(
            self.flows.get(&flow_id).map(|f| &f.role),
            Some(InnerRole::Source { total, written }) if written >= total
        )
    }

    /// Drive the gateway: decapsulate arriving tunnel datagrams, run the inner
    /// TCP state machines, and encapsulate their outgoing segments. Call once
    /// per simulation tick.
    pub fn tick(&mut self, host: &mut Host, now: SimTime) {
        // 1. Tunnel → inner connections.
        for datagram in self.transport.recv(host) {
            self.datagrams_received += 1;
            if let Some((flow_id, segment)) = decapsulate(&datagram.payload) {
                if let Some(flow) = self.flows.get_mut(&flow_id) {
                    flow.conn.on_segment(&segment, now);
                }
            }
        }

        if !self.transport.is_established(host) {
            return;
        }

        // 2. Application behaviour of the inner endpoints.
        for flow in self.flows.values_mut() {
            match &mut flow.role {
                InnerRole::Source { total, written } => {
                    if flow.conn.is_established() {
                        while *written < *total && flow.conn.send_buffer_free() >= 16 * 1024 {
                            let chunk = (16 * 1024).min((*total - *written) as usize);
                            match flow
                                .conn
                                .write_with_meta(&vec![0xAB; chunk], WriteMeta::normal())
                            {
                                Ok(n) => *written += n as u64,
                                Err(_) => break,
                            }
                        }
                    }
                }
                InnerRole::Sink {
                    received,
                    first_byte,
                    last_byte,
                } => {
                    while let Some(chunk) = flow.conn.read() {
                        if first_byte.is_none() {
                            *first_byte = Some(now);
                        }
                        *last_byte = Some(now);
                        *received += chunk.len() as u64;
                    }
                }
            }
        }

        // 3. Inner connections → tunnel.
        let mut to_send: Vec<(u32, Vec<u8>, u32)> = Vec::new();
        for (&flow_id, flow) in self.flows.iter_mut() {
            for segment in flow.conn.poll(now) {
                let priority = if self.prioritize_acks && segment.payload.is_empty() {
                    ACK_PRIORITY
                } else {
                    0
                };
                to_send.push((flow_id, encapsulate(flow_id, &segment), priority));
            }
        }
        for (_flow, payload, priority) in to_send {
            if self.transport.send(host, &payload, priority).is_ok() {
                self.datagrams_sent += 1;
            }
        }
    }

    /// The earliest inner-connection timer (so callers can pick a tick rate).
    pub fn next_inner_timer(&self) -> Option<SimTime> {
        self.flows
            .values()
            .filter_map(|f| f.conn.next_timer())
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minion_core::{MinionConfig, Protocol};
    use minion_simnet::{LinkConfig, NodeId, SimDuration};
    use minion_stack::{Sim, SocketAddr};

    /// Build a residential-style path and an established tunnel over it.
    fn tunnel_pair(
        protocol: Protocol,
        prioritize_acks: bool,
    ) -> (Sim, NodeId, NodeId, TunnelGateway, TunnelGateway) {
        let mut sim = Sim::new(9);
        let client = sim.add_host("client");
        let server = sim.add_host("server");
        sim.link_asymmetric(
            client,
            server,
            LinkConfig::new(500_000, SimDuration::from_millis(30)).with_queue_bytes(32 * 1024),
            LinkConfig::new(3_000_000, SimDuration::from_millis(30)).with_queue_bytes(32 * 1024),
        );
        let config = MinionConfig::default();
        MinionTransport::listen(protocol, sim.host_mut(server), 1194, &config).unwrap();
        let now = sim.now();
        let client_transport = MinionTransport::connect(
            protocol,
            sim.host_mut(client),
            SocketAddr::new(server, 1194),
            &config,
            now,
        )
        .unwrap();
        sim.run_for(SimDuration::from_millis(300));
        let server_transport =
            MinionTransport::accept(protocol, sim.host_mut(server), 1194, &config).unwrap();
        let cg = TunnelGateway::new(client_transport, prioritize_acks);
        let sg = TunnelGateway::new(server_transport, prioritize_acks);
        (sim, client, server, cg, sg)
    }

    fn run_ticks(
        sim: &mut Sim,
        client: NodeId,
        server: NodeId,
        cg: &mut TunnelGateway,
        sg: &mut TunnelGateway,
        ticks: usize,
        tick_len: SimDuration,
    ) {
        for _ in 0..ticks {
            let now = sim.now();
            cg.tick(sim.host_mut(client), now);
            sg.tick(sim.host_mut(server), now);
            sim.run_for(tick_len);
        }
    }

    #[test]
    fn a_download_flows_through_the_tunnel() {
        let (mut sim, client, server, mut cg, mut sg) = tunnel_pair(Protocol::Ucobs, true);
        // Download: the server gateway sources 300 KB, the client gateway sinks.
        sg.add_source_flow(1, 300_000, sim.now());
        cg.add_sink_flow(1);
        run_ticks(
            &mut sim,
            client,
            server,
            &mut cg,
            &mut sg,
            800,
            SimDuration::from_millis(10),
        );
        assert_eq!(
            cg.sink_received(1),
            300_000,
            "entire download delivered through the tunnel"
        );
        assert!(sg.source_finished(1));
        let goodput = cg.sink_goodput_bps(1);
        assert!(
            goodput > 500_000.0,
            "download goodput should use a good share of the 3 Mbps link: {goodput}"
        );
        assert!(cg.datagrams_received > 0 && sg.datagrams_received > 0);
    }

    #[test]
    fn bidirectional_flows_share_the_tunnel() {
        let (mut sim, client, server, mut cg, mut sg) = tunnel_pair(Protocol::Ucobs, true);
        // One download and one upload.
        sg.add_source_flow(1, 150_000, sim.now());
        cg.add_sink_flow(1);
        cg.add_source_flow(2, 40_000, sim.now());
        sg.add_sink_flow(2);
        run_ticks(
            &mut sim,
            client,
            server,
            &mut cg,
            &mut sg,
            1500,
            SimDuration::from_millis(10),
        );
        assert_eq!(cg.sink_received(1), 150_000);
        assert_eq!(sg.sink_received(2), 40_000);
    }

    #[test]
    fn in_order_tcp_tunnel_also_works_but_is_the_baseline() {
        let (mut sim, client, server, mut cg, mut sg) = tunnel_pair(Protocol::TcpTlv, false);
        sg.add_source_flow(1, 100_000, sim.now());
        cg.add_sink_flow(1);
        run_ticks(
            &mut sim,
            client,
            server,
            &mut cg,
            &mut sg,
            800,
            SimDuration::from_millis(10),
        );
        assert_eq!(cg.sink_received(1), 100_000);
    }

    #[test]
    fn encapsulation_roundtrip() {
        let seg = TcpSegment::bare(
            1,
            2,
            minion_tcp::SeqNum(77),
            minion_tcp::SeqNum(88),
            minion_tcp::TcpFlags::ACK,
        );
        let enc = encapsulate(42, &seg);
        let (flow, dec) = decapsulate(&enc).unwrap();
        assert_eq!(flow, 42);
        assert_eq!(dec, seg);
        assert!(decapsulate(&[1, 2]).is_none());
    }
}
