//! # minion-apps
//!
//! Application models used by the Minion evaluation (§8): the constant-rate
//! VoIP source with a playout buffer and quality estimation, bulk-transfer
//! sources/sinks and competing flows, the VPN tunnel gateway carrying inner
//! TCP flows over a Minion transport, and the trace-driven web workload
//! comparing pipelined HTTP/1.1 with parallel requests over msTCP.
//!
//! Each model is written against the public Minion / stack APIs so the same
//! code runs over uCOBS, uTLS, UDP, or the plain-TCP baseline — which is how
//! the benchmark harness (`minion-bench`) regenerates every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bulk;
pub mod voip;
pub mod vpn;
pub mod web;

pub use bulk::{BulkSender, BulkSink, CompetingFlow};
pub use voip::{
    estimate_mos, frame_number, VoipReceiver, VoipReport, VoipSource, VoipSourceConfig,
};
pub use vpn::{TunnelGateway, ACK_PRIORITY};
pub use web::{generate_trace, load_page_mstcp, load_page_pipelined_tcp, PageLoadMetrics, WebPage};
