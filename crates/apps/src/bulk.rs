//! Bulk-transfer workloads (§8.1): a source that keeps the connection's send
//! buffer full with fixed-size application messages and a sink that counts
//! delivered bytes. Used for the throughput-vs-message-size experiment
//! (Figure 5) and as the competing traffic in the conferencing and VPN
//! experiments.

use minion_simnet::{NodeId, SimTime};
use minion_stack::{Host, SocketAddr, SocketHandle};
use minion_tcp::{SocketOptions, TcpConfig, WriteMeta};

/// A greedy sender that writes `message_size`-byte application messages to a
/// TCP socket whenever the send buffer has room, up to `total_bytes`.
pub struct BulkSender {
    handle: SocketHandle,
    message_size: usize,
    total_bytes: u64,
    written: u64,
    next_byte: u8,
}

impl BulkSender {
    /// Connect to `remote` and prepare to send `total_bytes` in
    /// `message_size`-byte writes.
    pub fn connect(
        host: &mut Host,
        remote: SocketAddr,
        config: TcpConfig,
        options: SocketOptions,
        message_size: usize,
        total_bytes: u64,
        now: SimTime,
    ) -> Self {
        let handle = host.tcp_connect(remote, config, options, now);
        BulkSender {
            handle,
            message_size,
            total_bytes,
            written: 0,
            next_byte: 0,
        }
    }

    /// The underlying socket handle.
    pub fn handle(&self) -> SocketHandle {
        self.handle
    }

    /// Bytes accepted by the socket so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Whether all bytes have been handed to the socket.
    pub fn finished_writing(&self) -> bool {
        self.written >= self.total_bytes
    }

    /// Top up the send buffer. Call this every tick.
    pub fn pump(&mut self, host: &mut Host) {
        if !host.tcp_established(self.handle).unwrap_or(false) {
            return;
        }
        while self.written < self.total_bytes {
            let remaining = (self.total_bytes - self.written) as usize;
            let size = self.message_size.min(remaining);
            if host.tcp_send_buffer_free(self.handle).unwrap_or(0) < size {
                break;
            }
            let msg = vec![self.next_byte; size];
            self.next_byte = self.next_byte.wrapping_add(1);
            match host.tcp_write_meta(self.handle, &msg, WriteMeta::normal()) {
                Ok(n) => self.written += n as u64,
                Err(_) => break,
            }
        }
    }
}

/// A sink that accepts a connection and counts delivered bytes.
pub struct BulkSink {
    handle: SocketHandle,
    received: u64,
    first_byte_at: Option<SimTime>,
    last_byte_at: Option<SimTime>,
}

impl BulkSink {
    /// Wrap an accepted connection handle.
    pub fn new(handle: SocketHandle) -> Self {
        BulkSink {
            handle,
            received: 0,
            first_byte_at: None,
            last_byte_at: None,
        }
    }

    /// The underlying socket handle.
    pub fn handle(&self) -> SocketHandle {
        self.handle
    }

    /// Total payload bytes delivered to the application so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Time the first byte was delivered.
    pub fn first_byte_at(&self) -> Option<SimTime> {
        self.first_byte_at
    }

    /// Time the most recent byte was delivered.
    pub fn last_byte_at(&self) -> Option<SimTime> {
        self.last_byte_at
    }

    /// Application-level goodput in bits per second between first and last
    /// delivered byte.
    pub fn goodput_bps(&self) -> f64 {
        match (self.first_byte_at, self.last_byte_at) {
            (Some(first), Some(last)) if last > first => {
                self.received as f64 * 8.0 / (last - first).as_secs_f64()
            }
            _ => 0.0,
        }
    }

    /// Drain delivered data. Call this every tick.
    pub fn pump(&mut self, host: &mut Host, now: SimTime) {
        while let Ok(Some(chunk)) = host.tcp_read(self.handle) {
            if self.first_byte_at.is_none() {
                self.first_byte_at = Some(now);
            }
            self.last_byte_at = Some(now);
            self.received += chunk.len() as u64;
        }
    }
}

/// A competing long-lived TCP flow from `from` to `to` used to create
/// congestion in the conferencing and VPN experiments. The flow starts at
/// `start` and keeps the path busy indefinitely.
pub struct CompetingFlow {
    sender: Option<BulkSender>,
    sink: Option<BulkSink>,
    listen_port: u16,
    from: NodeId,
    to: NodeId,
    start: SimTime,
    started: bool,
}

impl CompetingFlow {
    /// Prepare a competing flow that will start at `start`.
    pub fn new(from: NodeId, to: NodeId, listen_port: u16, start: SimTime) -> Self {
        CompetingFlow {
            sender: None,
            sink: None,
            listen_port,
            from,
            to,
            start,
            started: false,
        }
    }

    /// Whether the flow has started.
    pub fn started(&self) -> bool {
        self.started
    }

    /// Bytes delivered by this flow so far.
    pub fn delivered(&self) -> u64 {
        self.sink.as_ref().map(|s| s.received()).unwrap_or(0)
    }

    /// Drive the flow: start it when its time comes, keep its buffer full, and
    /// drain its sink. `sim_hosts` gives mutable access to the two endpoint
    /// hosts; call once per tick.
    pub fn tick(&mut self, sim: &mut minion_stack::Sim, now: SimTime) {
        if !self.started {
            if now < self.start {
                return;
            }
            // A practically unbounded transfer keeps the path congested.
            sim.host_mut(self.to)
                .tcp_listen(
                    self.listen_port,
                    TcpConfig::default(),
                    SocketOptions::standard(),
                )
                .expect("listen for competing flow");
            let sender = BulkSender::connect(
                sim.host_mut(self.from),
                SocketAddr::new(self.to, self.listen_port),
                TcpConfig::default(),
                SocketOptions::standard(),
                64 * 1024,
                u64::MAX / 2,
                now,
            );
            self.sender = Some(sender);
            self.started = true;
            return;
        }
        if self.sink.is_none() {
            if let Some(handle) = sim.host_mut(self.to).accept(self.listen_port) {
                self.sink = Some(BulkSink::new(handle));
            }
        }
        if let Some(sender) = self.sender.as_mut() {
            sender.pump(sim.host_mut(self.from));
        }
        if let Some(sink) = self.sink.as_mut() {
            sink.pump(sim.host_mut(self.to), now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minion_simnet::{LinkConfig, SimDuration};
    use minion_stack::Sim;

    #[test]
    fn bulk_transfer_reaches_link_rate() {
        let mut sim = Sim::new(3);
        let a = sim.add_host("sender");
        let b = sim.add_host("receiver");
        // 8 Mbps, 20 ms RTT, with a queue of roughly four bandwidth-delay
        // products so overflow losses stay occasional.
        sim.link(
            a,
            b,
            LinkConfig::new(8_000_000, SimDuration::from_millis(10)).with_queue_bytes(128 * 1024),
        );
        sim.host_mut(b)
            .tcp_listen(5001, TcpConfig::default(), SocketOptions::standard())
            .unwrap();
        let mut sender = BulkSender::connect(
            sim.host_mut(a),
            SocketAddr::new(b, 5001),
            TcpConfig::default(),
            SocketOptions::standard(),
            1448,
            2_000_000,
            SimTime::ZERO,
        );
        sim.run_for(SimDuration::from_millis(100));
        let sh = sim.host_mut(b).accept(5001).expect("accepted");
        let mut sink = BulkSink::new(sh);
        for _ in 0..300 {
            sender.pump(sim.host_mut(a));
            sim.run_for(SimDuration::from_millis(50));
            let now = sim.now();
            sink.pump(sim.host_mut(b), now);
            if sink.received() >= 2_000_000 {
                break;
            }
        }
        assert!(sender.finished_writing());
        assert_eq!(sink.received(), 2_000_000);
        let goodput = sink.goodput_bps();
        assert!(
            goodput > 3_500_000.0 && goodput < 8_200_000.0,
            "goodput should use a healthy share of the 8 Mbps link: {goodput}"
        );
    }

    #[test]
    fn competing_flow_starts_at_its_scheduled_time() {
        let mut sim = Sim::new(4);
        let a = sim.add_host("a");
        let b = sim.add_host("b");
        sim.link(
            a,
            b,
            LinkConfig::new(3_000_000, SimDuration::from_millis(30)),
        );
        let mut flow = CompetingFlow::new(a, b, 6000, SimTime::from_secs(1));
        flow.tick(&mut sim, SimTime::ZERO);
        assert!(!flow.started());
        sim.run_until(SimTime::from_secs(1));
        for _ in 0..40 {
            let now = sim.now();
            flow.tick(&mut sim, now);
            sim.run_for(SimDuration::from_millis(100));
        }
        assert!(flow.started());
        assert!(flow.delivered() > 100_000, "delivered={}", flow.delivered());
    }
}
