//! The web-browsing workload of §8.5.
//!
//! The paper replays a fragment of the UC Berkeley Home IP trace: each page
//! is one "primary" HTML request followed, once the primary object has fully
//! downloaded, by parallel "secondary" requests for embedded objects. It
//! compares pipelined HTTP/1.1 over one persistent TCP connection against
//! parallel HTTP/1.0-style requests multiplexed over msTCP, reporting total
//! page-load time and the average time until each object's first byte
//! arrives (when the browser could start rendering it).
//!
//! The original trace is not redistributable, so [`generate_trace`] produces
//! a synthetic trace with the same structure: pages bucketed by request count
//! (1–2, 3–8, 9+) and heavy-tailed object sizes (see DESIGN.md).

use minion_core::MinionConfig;
use minion_mstcp::MsTcpConnection;
use minion_simnet::{NodeId, SimDuration, SimRng};
use minion_stack::{Sim, SocketAddr};
use minion_tcp::{SocketOptions, TcpConfig};
use std::collections::HashMap;

/// One web page: a primary object plus embedded secondary objects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WebPage {
    /// Size of the primary (HTML) object in bytes.
    pub primary_size: usize,
    /// Sizes of the secondary objects in bytes.
    pub secondary_sizes: Vec<usize>,
}

impl WebPage {
    /// Total number of requests (primary + secondary).
    pub fn request_count(&self) -> usize {
        1 + self.secondary_sizes.len()
    }

    /// Total page weight in bytes.
    pub fn total_bytes(&self) -> usize {
        self.primary_size + self.secondary_sizes.iter().sum::<usize>()
    }

    /// Which of the paper's request-count buckets this page falls into.
    pub fn bucket(&self) -> &'static str {
        match self.request_count() {
            0..=2 => "1-2 requests",
            3..=8 => "3-8 requests",
            _ => "9+ requests",
        }
    }
}

/// Generate a synthetic page trace with the same structure as the paper's
/// Home-IP workload: one third of pages in each request-count bucket, object
/// sizes drawn from a bounded Pareto distribution.
pub fn generate_trace(pages: usize, seed: u64) -> Vec<WebPage> {
    let mut rng = SimRng::new(seed).fork("web-trace");
    let mut out = Vec::with_capacity(pages);
    for i in 0..pages {
        let secondary_count = match i % 3 {
            0 => rng.gen_range_usize(0, 2),  // 1-2 total requests
            1 => rng.gen_range_usize(2, 8),  // 3-8 total requests
            _ => rng.gen_range_usize(8, 20), // 9+ total requests
        };
        let primary_size = rng.bounded_pareto(1.3, 4_000.0, 60_000.0) as usize;
        let secondary_sizes = (0..secondary_count)
            .map(|_| rng.bounded_pareto(1.2, 1_500.0, 120_000.0) as usize)
            .collect();
        out.push(WebPage {
            primary_size,
            secondary_sizes,
        });
    }
    out
}

/// Timing results of loading one page.
#[derive(Clone, Debug)]
pub struct PageLoadMetrics {
    /// Number of requests the page issued.
    pub requests: usize,
    /// Total bytes downloaded.
    pub total_bytes: usize,
    /// Time from the page start until every object finished.
    pub page_load_time: SimDuration,
    /// Per-object time from the page start until the object's first byte.
    pub first_byte_times: Vec<SimDuration>,
}

impl PageLoadMetrics {
    /// Average time-to-first-byte across the page's objects.
    pub fn mean_first_byte(&self) -> SimDuration {
        if self.first_byte_times.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u64 = self.first_byte_times.iter().map(|d| d.as_micros()).sum();
        SimDuration::from_micros(sum / self.first_byte_times.len() as u64)
    }
}

const REQUEST_SIZE: usize = 120;
const TICK: SimDuration = SimDuration::from_millis(2);
const MAX_PAGE_TIME: SimDuration = SimDuration::from_secs(120);

/// Load a page using pipelined HTTP/1.1 over a single persistent TCP
/// connection (the paper's baseline).
///
/// The server writes each object as a 4-byte length followed by its bytes; in
/// a single in-order byte stream the first byte of object *k* cannot arrive
/// before objects `0..k` finish, which is the head-of-line penalty the
/// experiment measures.
pub fn load_page_pipelined_tcp(
    sim: &mut Sim,
    client: NodeId,
    server: NodeId,
    page: &WebPage,
    port: u16,
) -> PageLoadMetrics {
    let tcp_config = TcpConfig::default();
    sim.host_mut(server)
        .tcp_listen(port, tcp_config.clone(), SocketOptions::standard())
        .expect("listen");
    let now = sim.now();
    let ch = sim.host_mut(client).tcp_connect(
        SocketAddr::new(server, port),
        tcp_config,
        SocketOptions::standard(),
        now,
    );
    // Wait for establishment and acceptance.
    let mut sh = None;
    while sh.is_none() {
        sim.run_for(TICK);
        sh = sim.host_mut(server).accept(port);
    }
    let sh = sh.expect("accepted");
    while !sim.host(client).tcp_established(ch).unwrap_or(false) {
        sim.run_for(TICK);
    }

    let start = sim.now();
    let deadline = start + MAX_PAGE_TIME;
    // Object sizes in the order the server will send them.
    let mut object_sizes = vec![page.primary_size];
    object_sizes.extend(&page.secondary_sizes);

    // Client request state.
    let mut sent_primary_request = false;
    let mut sent_secondary_requests = false;
    // Server state: how many request bytes seen, which objects queued.
    let mut server_request_bytes = 0usize;
    let mut server_sent_primary = false;
    let mut server_sent_secondaries = false;

    // Client parse state over the in-order byte stream.
    let mut stream = Vec::new();
    let mut parsed_upto = 0usize; // bytes consumed from `stream`
    let mut current_object = 0usize;
    let mut current_remaining: Option<usize> = None;
    let mut first_byte_times: Vec<Option<SimDuration>> = vec![None; object_sizes.len()];
    let mut completed = 0usize;
    let mut page_load_time = MAX_PAGE_TIME;

    while sim.now() < deadline {
        let now = sim.now();
        // --- client side ---
        if !sent_primary_request {
            let _ = sim.host_mut(client).tcp_write(ch, &[1u8; REQUEST_SIZE]);
            sent_primary_request = true;
        }
        while let Ok(Some(chunk)) = sim.host_mut(client).tcp_read(ch) {
            stream.extend_from_slice(&chunk.data);
        }
        // Parse objects from the in-order stream.
        loop {
            match current_remaining {
                None => {
                    if stream.len() - parsed_upto < 4 {
                        break;
                    }
                    let len = u32::from_be_bytes(
                        stream[parsed_upto..parsed_upto + 4]
                            .try_into()
                            .expect("4 bytes"),
                    ) as usize;
                    parsed_upto += 4;
                    current_remaining = Some(len);
                }
                Some(remaining) => {
                    let available = stream.len() - parsed_upto;
                    if available == 0 {
                        break;
                    }
                    if first_byte_times[current_object].is_none() {
                        first_byte_times[current_object] = Some(now - start);
                    }
                    let take = available.min(remaining);
                    parsed_upto += take;
                    if take == remaining {
                        current_remaining = None;
                        completed += 1;
                        current_object += 1;
                        // Primary object finished: issue the secondary requests.
                        if completed == 1 && !sent_secondary_requests {
                            for _ in 0..page.secondary_sizes.len() {
                                let _ = sim.host_mut(client).tcp_write(ch, &[2u8; REQUEST_SIZE]);
                            }
                            sent_secondary_requests = true;
                        }
                    } else {
                        current_remaining = Some(remaining - take);
                    }
                }
            }
        }
        if completed == object_sizes.len() {
            page_load_time = now - start;
            break;
        }

        // --- server side ---
        while let Ok(Some(chunk)) = sim.host_mut(server).tcp_read(sh) {
            server_request_bytes += chunk.len();
        }
        if !server_sent_primary && server_request_bytes >= REQUEST_SIZE {
            let mut data = (page.primary_size as u32).to_be_bytes().to_vec();
            data.extend(vec![0xEE; page.primary_size]);
            let _ = sim.host_mut(server).tcp_write(sh, &data);
            server_sent_primary = true;
        }
        if server_sent_primary
            && !server_sent_secondaries
            && server_request_bytes >= REQUEST_SIZE * (1 + page.secondary_sizes.len())
        {
            for &size in &page.secondary_sizes {
                let mut data = (size as u32).to_be_bytes().to_vec();
                data.extend(vec![0xDD; size]);
                let _ = sim.host_mut(server).tcp_write(sh, &data);
            }
            server_sent_secondaries = true;
        }

        sim.run_for(TICK);
    }

    let _ = sim.host_mut(client).tcp_close(ch);
    let _ = sim.host_mut(server).tcp_close(sh);
    PageLoadMetrics {
        requests: page.request_count(),
        total_bytes: page.total_bytes(),
        page_load_time,
        first_byte_times: first_byte_times
            .into_iter()
            .map(|t| t.unwrap_or(MAX_PAGE_TIME))
            .collect(),
    }
}

/// Load a page using parallel HTTP/1.0-style requests over msTCP: every
/// object gets its own message stream and the server interleaves object
/// chunks across streams, so the first bytes of all objects arrive early.
pub fn load_page_mstcp(
    sim: &mut Sim,
    client: NodeId,
    server: NodeId,
    page: &WebPage,
    port: u16,
) -> PageLoadMetrics {
    let config = MinionConfig::default();
    MsTcpConnection::listen(sim.host_mut(server), port, &config).expect("listen");
    let now = sim.now();
    let mut client_conn = MsTcpConnection::connect(
        sim.host_mut(client),
        SocketAddr::new(server, port),
        &config,
        now,
    );
    let mut server_conn = None;
    while server_conn.is_none() {
        sim.run_for(TICK);
        server_conn = MsTcpConnection::accept(sim.host_mut(server), port);
    }
    let mut server_conn = server_conn.expect("accepted");
    while !client_conn.is_established(sim.host(client)) {
        sim.run_for(TICK);
    }

    let start = sim.now();
    let deadline = start + MAX_PAGE_TIME;
    let object_sizes: Vec<usize> = std::iter::once(page.primary_size)
        .chain(page.secondary_sizes.iter().copied())
        .collect();

    // Client: request streams. The request payload names the object index.
    let primary_stream = client_conn.open_stream();
    client_conn
        .send_message(
            sim.host_mut(client),
            primary_stream,
            &0u32.to_be_bytes(),
            false,
            0,
        )
        .expect("request");
    let mut request_stream_of_object: HashMap<u32, usize> = HashMap::new();
    request_stream_of_object.insert(primary_stream, 0);
    let mut secondary_requested = false;

    // Server: per-request response plan. Responses are sent on the *same*
    // stream the request arrived on, interleaved in fixed-size chunks.
    const CHUNK: usize = 1300;
    let mut response_remaining: HashMap<u32, usize> = HashMap::new();
    let mut response_started: HashMap<u32, bool> = HashMap::new();

    // Client receive bookkeeping.
    let mut received: HashMap<usize, usize> = HashMap::new();
    let mut first_byte_times: Vec<Option<SimDuration>> = vec![None; object_sizes.len()];
    let mut completed = 0usize;
    let mut page_load_time = MAX_PAGE_TIME;

    while sim.now() < deadline {
        let now = sim.now();

        // Server: ingest requests, register responses.
        for ev in server_conn.recv(sim.host_mut(server)) {
            if ev.data.len() >= 4 {
                let object_index =
                    u32::from_be_bytes(ev.data[..4].try_into().expect("4 bytes")) as usize;
                if object_index < object_sizes.len() {
                    response_remaining.insert(ev.stream, object_sizes[object_index]);
                    response_started.insert(ev.stream, false);
                }
            }
        }
        // Server: interleave one chunk per pending response per tick round,
        // as long as the send buffer has room.
        loop {
            let mut sent_any = false;
            let streams: Vec<u32> = response_remaining
                .iter()
                .filter(|(_, &rem)| rem > 0)
                .map(|(&s, _)| s)
                .collect();
            for s in streams {
                if server_conn.send_buffer_free(sim.host(server)) < 4 * CHUNK {
                    break;
                }
                let rem = response_remaining[&s];
                let take = rem.min(CHUNK);
                let last = take == rem;
                server_conn
                    .send_message(sim.host_mut(server), s, &vec![0xCC; take], last, 0)
                    .ok();
                response_remaining.insert(s, rem - take);
                response_started.insert(s, true);
                sent_any = true;
            }
            if !sent_any {
                break;
            }
        }

        // Client: receive stream data.
        for ev in client_conn.recv(sim.host_mut(client)) {
            let Some(&object) = request_stream_of_object.get(&ev.stream) else {
                continue;
            };
            if first_byte_times[object].is_none() && !ev.data.is_empty() {
                first_byte_times[object] = Some(now - start);
            }
            let entry = received.entry(object).or_insert(0);
            *entry += ev.data.len();
            if *entry >= object_sizes[object] {
                if *entry == object_sizes[object] {
                    completed += 1;
                }
                // Primary finished: request all secondary objects in parallel.
                if object == 0 && !secondary_requested {
                    for (i, _) in page.secondary_sizes.iter().enumerate() {
                        let s = client_conn.open_stream();
                        request_stream_of_object.insert(s, i + 1);
                        client_conn
                            .send_message(
                                sim.host_mut(client),
                                s,
                                &((i + 1) as u32).to_be_bytes(),
                                false,
                                0,
                            )
                            .ok();
                    }
                    secondary_requested = true;
                }
            }
        }

        if completed == object_sizes.len() {
            page_load_time = now - start;
            break;
        }
        sim.run_for(TICK);
    }

    PageLoadMetrics {
        requests: page.request_count(),
        total_bytes: page.total_bytes(),
        page_load_time,
        first_byte_times: first_byte_times
            .into_iter()
            .map(|t| t.unwrap_or(MAX_PAGE_TIME))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minion_simnet::LinkConfig;

    fn web_sim() -> (Sim, NodeId, NodeId) {
        let mut sim = Sim::new(33);
        let client = sim.add_host("browser");
        let server = sim.add_host("webserver");
        sim.link(
            client,
            server,
            LinkConfig::new(1_500_000, SimDuration::from_millis(30)).with_queue_bytes(32 * 1024),
        );
        (sim, client, server)
    }

    #[test]
    fn trace_generation_is_deterministic_and_bucketed() {
        let a = generate_trace(30, 7);
        let b = generate_trace(30, 7);
        assert_eq!(a, b);
        let c = generate_trace(30, 8);
        assert_ne!(a, c);
        assert!(a.iter().any(|p| p.bucket() == "1-2 requests"));
        assert!(a.iter().any(|p| p.bucket() == "3-8 requests"));
        assert!(a.iter().any(|p| p.bucket() == "9+ requests"));
        for p in &a {
            assert!(p.primary_size >= 4_000);
            assert!(p.total_bytes() >= p.primary_size);
            assert_eq!(p.request_count(), 1 + p.secondary_sizes.len());
        }
    }

    #[test]
    fn pipelined_page_load_completes_and_orders_first_bytes() {
        let (mut sim, client, server) = web_sim();
        let page = WebPage {
            primary_size: 10_000,
            secondary_sizes: vec![20_000, 15_000, 25_000],
        };
        let metrics = load_page_pipelined_tcp(&mut sim, client, server, &page, 8080);
        assert!(metrics.page_load_time < SimDuration::from_secs(10));
        assert_eq!(metrics.first_byte_times.len(), 4);
        // In a single in-order stream, later objects cannot start earlier
        // than earlier ones.
        for w in metrics.first_byte_times.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(metrics.requests, 4);
    }

    #[test]
    fn mstcp_page_load_completes_with_earlier_first_bytes() {
        let (mut sim, client, server) = web_sim();
        let page = WebPage {
            primary_size: 10_000,
            secondary_sizes: vec![20_000, 15_000, 25_000],
        };
        let pipelined = load_page_pipelined_tcp(&mut sim, client, server, &page, 8081);
        let mstcp = load_page_mstcp(&mut sim, client, server, &page, 8082);
        assert!(mstcp.page_load_time < SimDuration::from_secs(10));
        // The headline Figure 13 effect: msTCP does not hurt total page-load
        // time much, but the average time-to-first-byte across objects drops
        // because object chunks are interleaved.
        assert!(
            mstcp.mean_first_byte() < pipelined.mean_first_byte(),
            "msTCP {:?} vs pipelined {:?}",
            mstcp.mean_first_byte(),
            pipelined.mean_first_byte()
        );
    }
}
