//! Per-worker job deques with owner-LIFO / thief-FIFO discipline.
//!
//! Each worker owns one [`JobDeque`]. The owner pushes and pops at the back
//! (LIFO — freshly split work stays cache-hot), thieves steal from the front
//! (FIFO — the oldest, typically largest work items migrate, minimising steal
//! frequency). The backing store is a `Mutex<VecDeque>` rather than a
//! lock-free Chase–Lev deque: the workspace forbids `unsafe`, job bodies here
//! are whole scenario cells or engine shards (milliseconds to seconds each),
//! and the contention counters below exist precisely to prove the lock is
//! not the bottleneck — see `ExecStats::contention_ratio` and the
//! steal-heavy test, which measures contended acquisitions staying a tiny
//! fraction of total lock traffic.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One unit of work: a stable submission index plus its input.
#[derive(Debug)]
pub struct Job<I> {
    /// Position of this job in the submitted batch; results are committed in
    /// this order regardless of which worker runs the job when.
    pub index: usize,
    /// The job's input value.
    pub input: I,
}

/// A Mutex-backed work deque with lock-contention accounting.
#[derive(Debug)]
pub struct JobDeque<I> {
    jobs: Mutex<VecDeque<Job<I>>>,
    /// Lock acquisitions that went through uncontended (`try_lock` success).
    uncontended: AtomicU64,
    /// Lock acquisitions that had to block behind another thread.
    contended: AtomicU64,
}

impl<I> Default for JobDeque<I> {
    fn default() -> Self {
        JobDeque {
            jobs: Mutex::new(VecDeque::new()),
            uncontended: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }
}

impl<I> JobDeque<I> {
    /// Lock the deque, counting whether the acquisition contended.
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Job<I>>> {
        match self.jobs.try_lock() {
            Ok(guard) => {
                self.uncontended.fetch_add(1, Ordering::Relaxed);
                guard
            }
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.jobs.lock().expect("deque lock poisoned")
            }
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("deque lock poisoned"),
        }
    }

    /// Push a job at the back (owner side).
    pub fn push(&self, job: Job<I>) {
        self.lock().push_back(job);
    }

    /// Pop the most recently pushed job (owner side, LIFO).
    pub fn pop(&self) -> Option<Job<I>> {
        self.lock().pop_back()
    }

    /// Steal the oldest job (thief side, FIFO).
    pub fn steal(&self) -> Option<Job<I>> {
        self.lock().pop_front()
    }

    /// Whether the deque is currently empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// `(uncontended, contended)` lock-acquisition counts so far.
    pub fn lock_counts(&self) -> (u64, u64) {
        (
            self.uncontended.load(Ordering::Relaxed),
            self.contended.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_pops_lifo_thieves_steal_fifo() {
        let d: JobDeque<&str> = JobDeque::default();
        for (i, input) in ["old", "mid", "new"].into_iter().enumerate() {
            d.push(Job { index: i, input });
        }
        assert_eq!(d.steal().unwrap().input, "old", "thief takes the oldest");
        assert_eq!(d.pop().unwrap().input, "new", "owner takes the newest");
        assert_eq!(d.pop().unwrap().input, "mid");
        assert!(d.pop().is_none());
        assert!(d.steal().is_none());
        assert!(d.is_empty());
    }

    #[test]
    fn lock_counts_accumulate() {
        let d: JobDeque<()> = JobDeque::default();
        d.push(Job {
            index: 0,
            input: (),
        });
        let _ = d.pop();
        let (uncontended, contended) = d.lock_counts();
        assert!(uncontended >= 2);
        assert_eq!(contended, 0, "single-threaded use never contends");
    }
}
