//! # minion-exec
//!
//! A hand-rolled **work-stealing executor** for the Minion reproduction's
//! embarrassingly parallel sweeps: scenario-matrix cells and engine load
//! shards, every one independently seeded, executed across worker threads
//! **without perturbing results** — output is byte-identical at any thread
//! count.
//!
//! Built on `std` only (threads, `Mutex`, atomics), matching the workspace's
//! offline `shims` policy: no rayon, no crossbeam. Three layers:
//!
//! * [`JobDeque`] — per-worker deques; owners pop LIFO, thieves steal FIFO,
//!   with lock-contention counters so the Mutex backing stays justified
//!   ([`ExecStats::contention_ratio`]).
//! * [`OrderedCollector`] — the reorder buffer that commits results strictly
//!   in submission order, which is what makes parallel sweeps
//!   report-identical to serial ones.
//! * [`Executor`] — seeds an indexed job batch across the deques
//!   ([`Partition`]), runs it, propagates the first job panic verbatim, and
//!   returns results in submission order (plus [`ExecStats`]).
//!
//! Consumers: `minion_testkit::run_matrix_threads` (cells across workers),
//! `minion_engine::LoadScenario::run_sharded` (flow shards across workers),
//! and the `sweep_matrix` bench binary behind `BENCH_sweep.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod deque;
pub mod executor;

pub use collector::OrderedCollector;
pub use deque::{Job, JobDeque};
pub use executor::{available_threads, ExecStats, Executor, Partition, EXEC_PHASES};
