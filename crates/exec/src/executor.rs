//! The work-stealing executor: a fixed batch of indexed jobs, N workers,
//! deterministic ordered output.
//!
//! ## Execution model
//!
//! [`Executor::run`] takes a `Vec` of job inputs and a pure-per-job function
//! `f(index, input)`. Jobs are seeded round-robin across per-worker
//! [`JobDeque`]s (or all onto one worker under [`Partition::Pinned`], the
//! steal-heavy configuration the tests use). Each worker pops its own deque
//! LIFO; when empty it sweeps the other deques in ring order and steals FIFO.
//! Workers exit once every job has been executed (or immediately on abort
//! after a sibling's panic).
//!
//! ## Determinism
//!
//! The output is **byte-identical at any worker count** because every job is
//! a pure function of its stable index and input, and results pass through
//! the [`OrderedCollector`], which commits strictly in submission order.
//! Scheduling (who runs what when, who steals from whom) is racy and *may*
//! differ run to run — nothing observable depends on it.
//!
//! ## Panics
//!
//! A panicking job aborts the batch: remaining workers stop picking up work,
//! and the first panic payload is re-raised on the submitting thread, so
//! assertion messages from scenario cells surface exactly as they would
//! serially.

use crate::collector::OrderedCollector;
use crate::deque::{Job, JobDeque};
use minion_obs::{Absorb, NonDeterministic, PhaseProfile};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Phase names of the per-worker wall-clock profile in
/// [`ExecStats::profile`]: executing jobs, sweeping victim deques, and
/// parked waiting for work.
pub const EXEC_PHASES: &[&str] = &["run", "steal", "park"];
const PHASE_RUN: usize = 0;
const PHASE_STEAL: usize = 1;
const PHASE_PARK: usize = 2;

/// How the job batch is seeded onto the per-worker deques.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partition {
    /// Job `i` starts on worker `i % workers` (the default: balanced seeding,
    /// stealing only corrects duration skew).
    RoundRobin,
    /// Every job starts on the given worker; all other workers begin idle
    /// and obtain work exclusively by stealing (the 1-producer/N-stealers
    /// stress configuration).
    Pinned(usize),
}

/// Scheduling counters from one [`Executor::run_with_stats`] batch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Workers the batch actually used.
    pub workers: usize,
    /// Jobs executed by each worker (sums to the batch size).
    pub executed: Vec<u64>,
    /// Successful steals (a job migrated between workers).
    pub steals: u64,
    /// Steal sweeps that probed a victim deque (successful or not).
    pub steal_attempts: u64,
    /// Deque lock acquisitions that went through without blocking.
    pub locks_uncontended: u64,
    /// Deque lock acquisitions that had to wait for another thread — the
    /// contention profile justifying the Mutex-backed deques.
    pub locks_contended: u64,
    /// Wall-clock profile of the workers' time ([`EXEC_PHASES`]: run /
    /// steal / park), merged across workers in worker-index order.
    /// Profiling only: the wrapper compares equal to everything, so batch
    /// stats stay usable in byte-identity gates.
    pub profile: NonDeterministic<PhaseProfile>,
}

impl ExecStats {
    /// Fraction of deque lock acquisitions that contended, in `[0, 1]`.
    pub fn contention_ratio(&self) -> f64 {
        let total = self.locks_uncontended + self.locks_contended;
        if total == 0 {
            0.0
        } else {
            self.locks_contended as f64 / total as f64
        }
    }
}

/// A work-stealing executor over a fixed worker count.
#[derive(Clone, Debug)]
pub struct Executor {
    threads: usize,
    partition: Partition,
}

impl Executor {
    /// An executor with `threads` workers (0 is treated as 1) and round-robin
    /// seeding.
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
            partition: Partition::RoundRobin,
        }
    }

    /// Override how jobs are seeded onto workers.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partition = partition;
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` over every input, returning results in submission order.
    ///
    /// Equivalent to `inputs.into_iter().enumerate().map(f).collect()` — the
    /// parallel schedule is unobservable in the output.
    pub fn run<I, T, F>(&self, inputs: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        self.run_with_stats(inputs, f).0
    }

    /// [`Executor::run`], also returning the batch's scheduling counters.
    pub fn run_with_stats<I, T, F>(&self, inputs: Vec<I>, f: F) -> (Vec<T>, ExecStats)
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let total = inputs.len();
        // Never spin up more workers than jobs; a 1-worker batch runs inline
        // on the submitting thread (no spawn, no locking).
        let workers = self.threads.min(total.max(1));
        if workers == 1 {
            let mut collector = OrderedCollector::new(total);
            let mut profile = PhaseProfile::new(EXEC_PHASES);
            for (index, input) in inputs.into_iter().enumerate() {
                let span = Instant::now();
                let value = f(index, input);
                profile.add(PHASE_RUN, span.elapsed().as_nanos() as u64);
                collector.record(index, value);
            }
            return (
                collector.into_ordered(),
                ExecStats {
                    workers: 1,
                    executed: vec![total as u64],
                    profile: NonDeterministic(profile),
                    ..ExecStats::default()
                },
            );
        }

        let deques: Vec<JobDeque<I>> = (0..workers).map(|_| JobDeque::default()).collect();
        for (index, input) in inputs.into_iter().enumerate() {
            let home = match self.partition {
                Partition::RoundRobin => index % workers,
                Partition::Pinned(w) => w.min(workers - 1),
            };
            deques[home].push(Job { index, input });
        }

        let collector = Mutex::new(OrderedCollector::new(total));
        let executed_total = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        // Parking for workers that found no work: jobs are never added after
        // seeding, so an empty steal sweep means the only event left to wait
        // for is an in-flight job completing (or the batch aborting) —
        // signalled here, instead of busy-spinning on `yield_now` and
        // stealing cycles from the workers still computing.
        let idle = (Mutex::new(()), Condvar::new());
        let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let steals = AtomicU64::new(0);
        let steal_attempts = AtomicU64::new(0);
        let executed_per: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let profiles: Mutex<Vec<PhaseProfile>> =
            Mutex::new(vec![PhaseProfile::new(EXEC_PHASES); workers]);

        std::thread::scope(|scope| {
            for me in 0..workers {
                let deques = &deques;
                let collector = &collector;
                let executed_total = &executed_total;
                let executed_per = &executed_per;
                let abort = &abort;
                let first_panic = &first_panic;
                let idle = &idle;
                let steals = &steals;
                let steal_attempts = &steal_attempts;
                let profiles = &profiles;
                let f = &f;
                scope.spawn(move || {
                    let mut profile = PhaseProfile::new(EXEC_PHASES);
                    'work: loop {
                        if abort.load(Ordering::Acquire) {
                            break 'work;
                        }
                        let job = deques[me].pop().or_else(|| {
                            let span = Instant::now();
                            let mut stolen = None;
                            for k in 1..workers {
                                steal_attempts.fetch_add(1, Ordering::Relaxed);
                                if let Some(job) = deques[(me + k) % workers].steal() {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    stolen = Some(job);
                                    break;
                                }
                            }
                            profile.add(PHASE_STEAL, span.elapsed().as_nanos() as u64);
                            stolen
                        });
                        let Some(Job { index, input }) = job else {
                            let seen = executed_total.load(Ordering::Acquire);
                            if seen == total {
                                break 'work;
                            }
                            // Another worker still holds a claimed job; park
                            // until its completion (or a panic) is signalled.
                            // Re-checking the counter under the lock closes the
                            // missed-wakeup window; the timeout is insurance.
                            let span = Instant::now();
                            let guard = idle.0.lock().expect("idle lock poisoned");
                            if executed_total.load(Ordering::Acquire) == seen
                                && !abort.load(Ordering::Acquire)
                            {
                                let _ = idle
                                    .1
                                    .wait_timeout(guard, Duration::from_millis(5))
                                    .expect("idle lock poisoned");
                            }
                            profile.add(PHASE_PARK, span.elapsed().as_nanos() as u64);
                            continue;
                        };
                        let span = Instant::now();
                        let outcome = catch_unwind(AssertUnwindSafe(|| f(index, input)));
                        profile.add(PHASE_RUN, span.elapsed().as_nanos() as u64);
                        match outcome {
                            Ok(value) => {
                                collector
                                    .lock()
                                    .expect("collector lock poisoned")
                                    .record(index, value);
                                executed_per[me].fetch_add(1, Ordering::Relaxed);
                                executed_total.fetch_add(1, Ordering::AcqRel);
                                drop(idle.0.lock().expect("idle lock poisoned"));
                                idle.1.notify_all();
                            }
                            Err(payload) => {
                                let mut slot = first_panic.lock().expect("panic slot poisoned");
                                slot.get_or_insert(payload);
                                drop(slot);
                                abort.store(true, Ordering::Release);
                                drop(idle.0.lock().expect("idle lock poisoned"));
                                idle.1.notify_all();
                                break 'work;
                            }
                        }
                    }
                    profiles.lock().expect("profile slots poisoned")[me] = profile;
                });
            }
        });

        if let Some(payload) = first_panic.into_inner().expect("panic slot poisoned") {
            resume_unwind(payload);
        }
        let (mut uncontended, mut contended) = (0, 0);
        for d in &deques {
            let (u, c) = d.lock_counts();
            uncontended += u;
            contended += c;
        }
        let mut profile = PhaseProfile::new(EXEC_PHASES);
        for worker in profiles.into_inner().expect("profile slots poisoned") {
            profile.absorb(&worker);
        }
        let stats = ExecStats {
            workers,
            executed: executed_per
                .iter()
                .map(|n| n.load(Ordering::Relaxed))
                .collect(),
            steals: steals.load(Ordering::Relaxed),
            steal_attempts: steal_attempts.load(Ordering::Relaxed),
            locks_uncontended: uncontended,
            locks_contended: contended,
            profile: NonDeterministic(profile),
        };
        (
            collector
                .into_inner()
                .expect("collector lock poisoned")
                .into_ordered(),
            stats,
        )
    }
}

/// The machine's available parallelism (1 if it cannot be determined) — the
/// natural default for a `threads` knob left unset.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_batch_returns_empty_output() {
        let out: Vec<u32> = Executor::new(4).run(Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_runs_inline_in_order() {
        let (out, stats) = Executor::new(1).run_with_stats((0..10).collect(), |i, x: usize| {
            assert_eq!(i, x);
            x * x
        });
        assert_eq!(out, (0..10).map(|x| x * x).collect::<Vec<_>>());
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn parallel_output_matches_serial_output() {
        let inputs: Vec<u64> = (0..257).collect();
        let serial = Executor::new(1).run(inputs.clone(), |i, x| x.wrapping_mul(31) ^ i as u64);
        for threads in [2, 3, 8] {
            let parallel =
                Executor::new(threads).run(inputs.clone(), |i, x| x.wrapping_mul(31) ^ i as u64);
            assert_eq!(parallel, serial, "{threads} threads");
        }
    }

    #[test]
    fn worker_count_is_capped_by_job_count() {
        let (out, stats) = Executor::new(64).run_with_stats(vec![1, 2, 3], |_, x| x);
        assert_eq!(out, vec![1, 2, 3]);
        assert!(stats.workers <= 3);
        assert_eq!(stats.executed.iter().sum::<u64>(), 3);
    }

    #[test]
    fn worker_profile_counts_every_job_and_compares_equal() {
        for threads in [1, 4] {
            let (_, stats) = Executor::new(threads)
                .run_with_stats((0..64).collect(), |_, x: u64| x.wrapping_mul(2654435761));
            let profile = stats.profile.get();
            assert_eq!(profile.names(), EXEC_PHASES);
            assert_eq!(profile.entries(PHASE_RUN), 64, "{threads} threads");
        }
        // The wrapper quarantines wall-clock values from Eq: two batches
        // with different timings still compare equal stats-to-stats.
        let (_, a) = Executor::new(2).run_with_stats(vec![1u64, 2, 3], |_, x| x);
        let (_, b) = Executor::new(2).run_with_stats(vec![1u64, 2, 3], |_, x| x);
        assert_eq!(
            ExecStats {
                profile: a.profile.clone(),
                ..b.clone()
            },
            b
        );
        assert_eq!(a.profile, b.profile);
    }

    #[test]
    fn job_panics_propagate_with_their_message() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Executor::new(4).run((0..32).collect(), |_, x: usize| {
                assert!(x != 17, "cell 17 violated an invariant");
                x
            })
        }));
        let payload = result.expect_err("the batch must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("cell 17 violated an invariant"),
            "panic payload must be the job's own: {msg}"
        );
    }
}
