//! Ordered collection: commit results strictly in submission order.
//!
//! Workers finish jobs in whatever order stealing produces; the determinism
//! gates need output that is a pure function of the *submission* order. The
//! [`OrderedCollector`] is a reorder buffer: results arrive keyed by their
//! stable job index, and are committed to the output sequence only when every
//! earlier index has already been committed. The final output is therefore
//! byte-identical at any worker count — parallelism changes completion order,
//! never commit order.

use std::collections::BTreeMap;

/// A reorder buffer that commits results in submission (index) order.
#[derive(Debug)]
pub struct OrderedCollector<T> {
    total: usize,
    /// Results committed so far; `committed[i]` is the result of job `i`.
    committed: Vec<T>,
    /// Out-of-order arrivals waiting for their predecessors.
    pending: BTreeMap<usize, T>,
}

impl<T> OrderedCollector<T> {
    /// A collector expecting results for job indices `0..total`.
    pub fn new(total: usize) -> Self {
        OrderedCollector {
            total,
            committed: Vec::with_capacity(total),
            pending: BTreeMap::new(),
        }
    }

    /// Record the result of job `index`. Commits it — and any directly
    /// following pending results — if `index` is the next expected one;
    /// otherwise parks it until its predecessors arrive. Returns how many
    /// results were committed by this call.
    ///
    /// Panics if `index` is out of range or already recorded (job indices
    /// are stable and unique).
    pub fn record(&mut self, index: usize, value: T) -> usize {
        assert!(index < self.total, "job index {index} out of range");
        assert!(
            index >= self.committed.len() && !self.pending.contains_key(&index),
            "job index {index} recorded twice"
        );
        let before = self.committed.len();
        if index == self.committed.len() {
            self.committed.push(value);
            // Drain the run of now-ready successors.
            while let Some(v) = self.pending.remove(&self.committed.len()) {
                self.committed.push(v);
            }
        } else {
            self.pending.insert(index, value);
        }
        self.committed.len() - before
    }

    /// Number of results committed (a prefix of the submission order).
    pub fn committed_len(&self) -> usize {
        self.committed.len()
    }

    /// Whether every expected result has been committed.
    pub fn is_complete(&self) -> bool {
        self.committed.len() == self.total
    }

    /// The results in submission order. Panics unless complete.
    pub fn into_ordered(self) -> Vec<T> {
        assert!(
            self.is_complete(),
            "collector incomplete: {}/{} committed ({} parked out of order)",
            self.committed.len(),
            self.total,
            self.pending.len()
        );
        self.committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_commits_immediately() {
        let mut c = OrderedCollector::new(3);
        assert_eq!(c.record(0, "a"), 1);
        assert_eq!(c.record(1, "b"), 1);
        assert_eq!(c.record(2, "c"), 1);
        assert!(c.is_complete());
        assert_eq!(c.into_ordered(), vec!["a", "b", "c"]);
    }

    #[test]
    fn out_of_order_results_park_until_the_gap_fills() {
        let mut c = OrderedCollector::new(4);
        assert_eq!(c.record(2, 20), 0);
        assert_eq!(c.record(1, 10), 0);
        assert_eq!(c.committed_len(), 0);
        // Index 0 unblocks the whole parked run.
        assert_eq!(c.record(0, 0), 3);
        assert_eq!(c.record(3, 30), 1);
        assert_eq!(c.into_ordered(), vec![0, 10, 20, 30]);
    }

    #[test]
    fn reverse_order_commits_everything_at_the_end() {
        let mut c = OrderedCollector::new(8);
        for i in (1..8).rev() {
            assert_eq!(c.record(i, i), 0);
        }
        assert_eq!(c.record(0, 0), 8);
        assert_eq!(c.into_ordered(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "recorded twice")]
    fn duplicate_indices_are_rejected() {
        let mut c = OrderedCollector::new(2);
        c.record(1, ());
        c.record(1, ());
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn incomplete_collection_cannot_be_taken() {
        let mut c = OrderedCollector::new(2);
        c.record(1, ());
        let _ = c.into_ordered();
    }
}
