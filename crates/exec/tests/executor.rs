//! Executor stress tests: ordered collection under uneven job durations, and
//! the steal path under a deliberately unbalanced (1 producer, N stealers)
//! partition.

use minion_exec::{Executor, Partition};

/// Burn CPU for a deterministic, input-dependent amount of work and return a
/// value derived from it (so the work cannot be optimised away).
fn spin_work(units: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for i in 0..units * 500 {
        h ^= i;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Job durations vary by ~50× across the batch (index-dependent), finishing
/// far out of submission order — the ordered-collection layer must still
/// commit results strictly by index at every thread count.
#[test]
fn uneven_job_durations_still_collect_in_submission_order() {
    let inputs: Vec<u64> = (0..96).map(|i| 1 + (i * 37) % 50).collect();
    let expected: Vec<(usize, u64)> = inputs
        .iter()
        .enumerate()
        .map(|(i, &units)| (i, spin_work(units)))
        .collect();
    for threads in [1, 2, 8] {
        let out = Executor::new(threads).run(inputs.clone(), |i, units| (i, spin_work(units)));
        assert_eq!(out, expected, "{threads} threads");
    }
}

/// All jobs seeded onto worker 0: every other worker can only obtain work by
/// stealing. The batch must complete with ordered results, work must actually
/// migrate off the producer, and the contention profile must keep the
/// Mutex-backed deques honest (contended acquisitions a small minority).
///
/// To make a steal *guaranteed* (not just likely) even on a single-core
/// machine, the first job to start blocks until some other job has
/// completed. Whoever runs the blocker, that other completion can only come
/// from a job that moved off worker 0's deque — i.e. a steal.
#[test]
fn one_producer_many_stealers_migrates_work() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let inputs: Vec<u64> = (0..128).map(|i| 1 + i % 7).collect();
    let serial = Executor::new(1).run(inputs.clone(), |i, u| spin_work(u) ^ i as u64);
    let started = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let (out, stats) = Executor::new(4)
        .with_partition(Partition::Pinned(0))
        .run_with_stats(inputs, |i, u| {
            if started.fetch_add(1, Ordering::SeqCst) == 0 {
                // First job in: hold this worker hostage until a sibling
                // finishes something (possible only after a steal).
                while completed.load(Ordering::SeqCst) == 0 {
                    std::thread::yield_now();
                }
            }
            let v = spin_work(u) ^ i as u64;
            completed.fetch_add(1, Ordering::SeqCst);
            v
        });
    assert_eq!(out, serial, "stealing must not change the ordered output");
    assert_eq!(stats.workers, 4);
    assert_eq!(stats.executed.iter().sum::<u64>(), 128);
    assert!(
        stats.steals > 0,
        "with all jobs pinned to worker 0, progress by the other 3 workers \
         requires steals; stats: {stats:?}"
    );
    assert!(
        stats.steal_attempts >= stats.steals,
        "every steal is an attempt"
    );
    // Contention profile: the lock is taken once per push/pop/steal probe on
    // coarse-grained jobs; even in this worst case (every worker hammering
    // one deque) contended acquisitions must stay a minority.
    assert!(
        stats.contention_ratio() < 0.5,
        "deque lock contention too high: {:?} ({:.3})",
        stats,
        stats.contention_ratio()
    );
}

/// The pinned partition on one worker degenerates to serial execution and
/// still produces the same ordered output.
#[test]
fn pinned_partition_with_one_thread_is_serial() {
    let inputs: Vec<u64> = (0..16).collect();
    let a = Executor::new(1)
        .with_partition(Partition::Pinned(0))
        .run(inputs.clone(), |i, x| x + i as u64);
    let b = Executor::new(1).run(inputs, |i, x| x + i as u64);
    assert_eq!(a, b);
}
