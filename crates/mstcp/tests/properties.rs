//! Property tests for the msTCP chunk codec and the per-stream reassembly
//! logic: arbitrary headers round-trip, and arbitrary interleavings of
//! chunked messages across streams always reassemble each stream in order.

use minion_mstcp::{Chunk, ChunkFlags, MsTcpConnection, StreamEvent, CHUNK_HEADER_LEN};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Chunk headers round-trip through the wire encoding for arbitrary
    /// field values, and the encoding is exactly header + payload.
    #[test]
    fn chunk_header_roundtrip(
        stream_id in any::<u32>(),
        sequence in any::<u32>(),
        flag_bits in 0u8..4,
        payload in proptest::collection::vec(any::<u8>(), 0..2000),
    ) {
        let chunk = Chunk {
            stream_id,
            sequence,
            flags: ChunkFlags {
                end_of_message: flag_bits & 0x01 != 0,
                end_of_stream: flag_bits & 0x02 != 0,
            },
            payload: payload.clone(),
        };
        let wire = chunk.encode();
        prop_assert_eq!(wire.len(), CHUNK_HEADER_LEN + payload.len());
        let decoded = Chunk::decode(&wire).unwrap();
        prop_assert_eq!(decoded, chunk);
    }

    /// Truncated buffers shorter than the header never decode.
    #[test]
    fn short_chunks_are_rejected(len in 0usize..12) {
        prop_assert!(Chunk::decode(&vec![0u8; len]).is_none());
    }
}

/// Deterministically shuffle indices using a seed (Fisher–Yates with an
/// inline LCG, as the seed tests do).
fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        order.swap(i, (state >> 33) as usize % (i + 1));
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An msTCP connection over a lossless in-sim link delivers every
    /// stream's messages in order for arbitrary message sizes and arbitrary
    /// stream interleavings at the sender.
    #[test]
    fn interleaved_streams_preserve_per_stream_order(
        sizes in proptest::collection::vec(1usize..4000, 2..10),
        stream_count in 1u32..5,
        seed in any::<u64>(),
    ) {
        use minion_core::MinionConfig;
        use minion_simnet::{LinkConfig, SimDuration};
        use minion_stack::{Sim, SocketAddr};

        let mut sim = Sim::new(seed ^ 0x6d73_7463);
        let a = sim.add_host("client");
        let b = sim.add_host("server");
        sim.link(a, b, LinkConfig::new(10_000_000, SimDuration::from_millis(10)));
        let config = MinionConfig::default();
        MsTcpConnection::listen(sim.host_mut(b), 8080, &config).unwrap();
        let now = sim.now();
        let mut client = MsTcpConnection::connect(sim.host_mut(a), SocketAddr::new(b, 8080), &config, now);
        sim.run_for(SimDuration::from_millis(100));
        let mut server = MsTcpConnection::accept(sim.host_mut(b), 8080).expect("accepted");

        let streams: Vec<_> = (0..stream_count).map(|_| client.open_stream()).collect();
        // Assign each message to a stream in a seed-shuffled interleaving.
        let mut expected: std::collections::BTreeMap<u32, Vec<u8>> = Default::default();
        for (position, &message_index) in shuffled(sizes.len(), seed).iter().enumerate() {
            let stream = streams[position % streams.len()];
            let len = sizes[message_index];
            let payload: Vec<u8> = (0..len).map(|j| ((message_index * 37 + j) % 251) as u8).collect();
            expected.entry(stream).or_default().extend_from_slice(&payload);
            client.send_message(sim.host_mut(a), stream, &payload, false, 0).unwrap();
        }
        let mut events: Vec<StreamEvent> = Vec::new();
        for _ in 0..80 {
            sim.run_for(SimDuration::from_millis(100));
            events.extend(server.recv(sim.host_mut(b)));
            let received: usize = events.iter().filter(|e| e.end_of_message).count();
            if received == sizes.len() {
                break;
            }
        }
        let mut got: std::collections::BTreeMap<u32, Vec<u8>> = Default::default();
        for ev in &events {
            got.entry(ev.stream).or_default().extend_from_slice(&ev.data);
        }
        for (stream, bytes) in &expected {
            prop_assert_eq!(
                got.get(stream).map(Vec::as_slice).unwrap_or(&[]),
                bytes.as_slice(),
                "stream {} must reassemble in order", stream
            );
        }
        prop_assert_eq!(
            events.iter().filter(|e| e.end_of_message).count(),
            sizes.len(),
            "every message completes exactly once"
        );
    }
}
