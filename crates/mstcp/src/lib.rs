//! # minion-mstcp
//!
//! msTCP: a simple multistreaming message protocol on top of a Minion uCOBS
//! connection (paper §8.5).
//!
//! msTCP provides multiple concurrent, *individually ordered* message streams
//! over one TCP/uTCP connection. Each application message is split into
//! chunks; every chunk travels as one uCOBS datagram carrying a small header
//! (stream id, chunk sequence number, flags). Because uCOBS datagrams are
//! delivered as soon as their bytes arrive — even out of order — a lost
//! segment delays only the chunks it carried: other streams' chunks keep
//! flowing, which is exactly the head-of-line-blocking relief that SPDY-like
//! multiplexing over stock TCP cannot get.
//!
//! The wire format is private to msTCP (it rides inside uCOBS records); the
//! paper likewise treats msTCP as "standard techniques" and evaluates only
//! its effect on web transfers (Figure 13).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proto;
pub mod stream;

pub use proto::{Chunk, ChunkFlags, CHUNK_HEADER_LEN};
pub use stream::{MsTcpConnection, MsTcpStats, StreamEvent, StreamId};
