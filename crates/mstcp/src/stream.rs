//! The msTCP connection: stream management, chunking, and per-stream
//! in-order reassembly over a uCOBS datagram connection.

use crate::proto::{Chunk, ChunkFlags};
use minion_core::{MinionConfig, UcobsSocket};
use minion_simnet::SimTime;
use minion_stack::{Host, HostError, SocketAddr};
use std::collections::{BTreeMap, HashMap};

/// Identifier of one message stream within an msTCP connection.
pub type StreamId = u32;

/// An event delivered to the application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamEvent {
    /// The stream the data belongs to.
    pub stream: StreamId,
    /// In-order payload bytes for that stream.
    pub data: Vec<u8>,
    /// Whether this event completes a message.
    pub end_of_message: bool,
    /// Whether the stream is now finished.
    pub end_of_stream: bool,
}

/// Connection statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MsTcpStats {
    /// Chunks sent.
    pub chunks_sent: u64,
    /// Chunks received (before reordering).
    pub chunks_received: u64,
    /// Chunks that arrived out of order within their stream.
    pub chunks_out_of_order: u64,
    /// Streams opened locally.
    pub streams_opened: u64,
}

#[derive(Default)]
struct SendStream {
    next_sequence: u32,
}

#[derive(Default)]
struct RecvStream {
    next_sequence: u32,
    pending: BTreeMap<u32, Chunk>,
    finished: bool,
}

/// An msTCP connection multiplexing message streams over one uCOBS socket.
pub struct MsTcpConnection {
    transport: UcobsSocket,
    /// Chunk payload size; one chunk rides in one uCOBS datagram and is sized
    /// to fit a single TCP segment after framing.
    chunk_size: usize,
    next_stream_id: StreamId,
    send_streams: HashMap<StreamId, SendStream>,
    recv_streams: HashMap<StreamId, RecvStream>,
    stats: MsTcpStats,
}

impl MsTcpConnection {
    /// Default chunk payload size (fits one MSS-sized segment after uCOBS
    /// framing and the chunk header).
    pub const DEFAULT_CHUNK_SIZE: usize = 1400;

    /// Open an msTCP connection to `remote`.
    pub fn connect(
        host: &mut Host,
        remote: SocketAddr,
        config: &MinionConfig,
        now: SimTime,
    ) -> Self {
        // Client-initiated streams get odd ids, server-initiated even ids, so
        // the two sides never collide.
        Self::from_socket(UcobsSocket::connect(host, remote, config, now), 1)
    }

    /// Listen for msTCP connections on `port`.
    pub fn listen(host: &mut Host, port: u16, config: &MinionConfig) -> Result<(), HostError> {
        UcobsSocket::listen(host, port, config)
    }

    /// Accept a pending msTCP connection.
    pub fn accept(host: &mut Host, port: u16) -> Option<Self> {
        UcobsSocket::accept(host, port).map(|s| Self::from_socket(s, 2))
    }

    fn from_socket(transport: UcobsSocket, first_stream_id: StreamId) -> Self {
        MsTcpConnection {
            transport,
            chunk_size: Self::DEFAULT_CHUNK_SIZE,
            next_stream_id: first_stream_id,
            send_streams: HashMap::new(),
            recv_streams: HashMap::new(),
            stats: MsTcpStats::default(),
        }
    }

    /// Change the chunk payload size.
    pub fn set_chunk_size(&mut self, size: usize) {
        assert!(size > 0);
        self.chunk_size = size;
    }

    /// Connection statistics.
    pub fn stats(&self) -> &MsTcpStats {
        &self.stats
    }

    /// Statistics of the underlying uCOBS endpoint.
    pub fn transport_stats(&self) -> &minion_core::UcobsStats {
        self.transport.stats()
    }

    /// Whether the underlying connection is established.
    pub fn is_established(&self, host: &Host) -> bool {
        self.transport.is_established(host)
    }

    /// Open a new outgoing stream.
    pub fn open_stream(&mut self) -> StreamId {
        let id = self.next_stream_id;
        self.next_stream_id += 2;
        self.send_streams.insert(id, SendStream::default());
        self.stats.streams_opened += 1;
        id
    }

    /// Send one message on a stream, optionally finishing the stream.
    ///
    /// The message is split into chunks; `priority` is passed to uTCP's send
    /// queue so an urgent stream's chunks can pass queued bulk data.
    pub fn send_message(
        &mut self,
        host: &mut Host,
        stream: StreamId,
        message: &[u8],
        end_of_stream: bool,
        priority: u32,
    ) -> Result<(), HostError> {
        let send_stream = self.send_streams.entry(stream).or_default();
        let mut offset = 0usize;
        loop {
            let end = (offset + self.chunk_size).min(message.len());
            let last = end == message.len();
            let chunk = Chunk {
                stream_id: stream,
                sequence: send_stream.next_sequence,
                flags: ChunkFlags {
                    end_of_message: last,
                    end_of_stream: last && end_of_stream,
                },
                payload: message[offset..end].to_vec(),
            };
            send_stream.next_sequence += 1;
            self.stats.chunks_sent += 1;
            self.transport.send(host, &chunk.encode(), priority)?;
            if last {
                break;
            }
            offset = end;
        }
        Ok(())
    }

    /// Receive all stream data that can currently be delivered in order
    /// within each stream.
    pub fn recv(&mut self, host: &mut Host) -> Vec<StreamEvent> {
        let mut events = Vec::new();
        for datagram in self.transport.recv(host) {
            let Some(chunk) = Chunk::decode(&datagram.payload) else {
                continue;
            };
            self.stats.chunks_received += 1;
            let stream = self.recv_streams.entry(chunk.stream_id).or_default();
            if chunk.sequence != stream.next_sequence {
                self.stats.chunks_out_of_order += 1;
            }
            if chunk.sequence >= stream.next_sequence {
                stream.pending.insert(chunk.sequence, chunk);
            }
        }
        // Drain deliverable chunks per stream (done after ingesting all
        // datagrams so a single recv call delivers as much as possible).
        let mut ready: Vec<StreamId> = self.recv_streams.keys().copied().collect();
        ready.sort_unstable();
        for id in ready {
            let stream = self.recv_streams.get_mut(&id).expect("exists");
            while let Some(chunk) = stream.pending.remove(&stream.next_sequence) {
                stream.next_sequence += 1;
                if chunk.flags.end_of_stream {
                    stream.finished = true;
                }
                events.push(StreamEvent {
                    stream: id,
                    data: chunk.payload,
                    end_of_message: chunk.flags.end_of_message,
                    end_of_stream: chunk.flags.end_of_stream,
                });
            }
        }
        events
    }

    /// Whether the given receive stream has been finished by the peer.
    pub fn stream_finished(&self, stream: StreamId) -> bool {
        self.recv_streams
            .get(&stream)
            .map(|s| s.finished)
            .unwrap_or(false)
    }

    /// Free space in the underlying send buffer.
    pub fn send_buffer_free(&self, host: &Host) -> usize {
        self.transport.send_buffer_free(host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minion_simnet::{LinkConfig, LossConfig, NodeId, SimDuration};
    use minion_stack::Sim;

    fn sim_pair(loss: LossConfig) -> (Sim, NodeId, NodeId) {
        let mut sim = Sim::new(17);
        let a = sim.add_host("client");
        let b = sim.add_host("server");
        sim.link(
            a,
            b,
            LinkConfig::new(8_000_000, SimDuration::from_millis(30)).with_loss(loss),
        );
        (sim, a, b)
    }

    fn establish(
        sim: &mut Sim,
        a: NodeId,
        b: NodeId,
        config: &MinionConfig,
    ) -> (MsTcpConnection, MsTcpConnection) {
        MsTcpConnection::listen(sim.host_mut(b), 8080, config).unwrap();
        let now = sim.now();
        let client =
            MsTcpConnection::connect(sim.host_mut(a), SocketAddr::new(b, 8080), config, now);
        sim.run_for(SimDuration::from_millis(200));
        let server = MsTcpConnection::accept(sim.host_mut(b), 8080).expect("accepted");
        (client, server)
    }

    /// Reassemble per-stream message bytes from events.
    fn collect(events: &[StreamEvent]) -> HashMap<StreamId, Vec<u8>> {
        let mut map: HashMap<StreamId, Vec<u8>> = HashMap::new();
        for ev in events {
            map.entry(ev.stream)
                .or_default()
                .extend_from_slice(&ev.data);
        }
        map
    }

    #[test]
    fn multiple_streams_deliver_their_messages() {
        let (mut sim, a, b) = sim_pair(LossConfig::None);
        let config = MinionConfig::default();
        let (mut client, mut server) = establish(&mut sim, a, b, &config);
        let s1 = client.open_stream();
        let s2 = client.open_stream();
        assert_ne!(s1, s2);
        let m1: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        let m2: Vec<u8> = (0..3000u32).map(|i| (i % 13) as u8).collect();
        client
            .send_message(sim.host_mut(a), s1, &m1, true, 0)
            .unwrap();
        client
            .send_message(sim.host_mut(a), s2, &m2, true, 0)
            .unwrap();
        sim.run_for(SimDuration::from_secs(2));
        let events = server.recv(sim.host_mut(b));
        let streams = collect(&events);
        assert_eq!(streams[&s1], m1);
        assert_eq!(streams[&s2], m2);
        assert!(server.stream_finished(s1));
        assert!(server.stream_finished(s2));
        assert!(events.iter().any(|e| e.end_of_message));
    }

    #[test]
    fn per_stream_order_is_preserved_even_with_loss() {
        let (mut sim, a, b) = sim_pair(LossConfig::Bernoulli { probability: 0.02 });
        let config = MinionConfig::default();
        let (mut client, mut server) = establish(&mut sim, a, b, &config);
        let streams: Vec<StreamId> = (0..4).map(|_| client.open_stream()).collect();
        let messages: Vec<Vec<u8>> = streams
            .iter()
            .enumerate()
            .map(|(i, _)| {
                (0..20_000u32)
                    .map(|j| ((i as u32 * 7 + j) % 251) as u8)
                    .collect()
            })
            .collect();
        for (s, m) in streams.iter().zip(&messages) {
            client
                .send_message(sim.host_mut(a), *s, m, true, 0)
                .unwrap();
        }
        let mut all_events = Vec::new();
        for _ in 0..60 {
            sim.run_for(SimDuration::from_millis(500));
            all_events.extend(server.recv(sim.host_mut(b)));
        }
        let collected = collect(&all_events);
        for (s, m) in streams.iter().zip(&messages) {
            assert_eq!(&collected[s], m, "stream {s} delivered intact and in order");
        }
    }

    #[test]
    fn a_lost_segment_does_not_block_other_streams() {
        // Drop exactly one data segment; chunks of other streams sent after
        // the loss must still be delivered before the retransmission.
        let (mut sim, a, b) = sim_pair(LossConfig::Explicit { indices: vec![5] });
        let config = MinionConfig::default();
        let (mut client, mut server) = establish(&mut sim, a, b, &config);
        let streams: Vec<StreamId> = (0..6).map(|_| client.open_stream()).collect();
        for (i, s) in streams.iter().enumerate() {
            client
                .send_message(sim.host_mut(a), *s, &vec![i as u8; 1000], true, 0)
                .unwrap();
        }
        sim.run_for(SimDuration::from_millis(120));
        let early = server.recv(sim.host_mut(b));
        let early_streams: std::collections::BTreeSet<StreamId> =
            early.iter().map(|e| e.stream).collect();
        assert!(
            early_streams.len() >= 4,
            "most streams delivered despite the lost segment (got {early_streams:?})"
        );
        assert!(
            early_streams.len() < 6,
            "the stream on the lost segment is still missing"
        );
        sim.run_for(SimDuration::from_secs(5));
        let late = server.recv(sim.host_mut(b));
        let all: std::collections::BTreeSet<StreamId> =
            early.iter().chain(late.iter()).map(|e| e.stream).collect();
        assert_eq!(all.len(), 6, "every stream eventually completes");
    }

    #[test]
    fn both_directions_can_open_streams_without_collision() {
        let (mut sim, a, b) = sim_pair(LossConfig::None);
        let config = MinionConfig::default();
        let (mut client, mut server) = establish(&mut sim, a, b, &config);
        let cs = client.open_stream();
        let ss = server.open_stream();
        assert_ne!(cs, ss);
        client
            .send_message(sim.host_mut(a), cs, b"from client", true, 0)
            .unwrap();
        server
            .send_message(sim.host_mut(b), ss, b"from server", true, 0)
            .unwrap();
        sim.run_for(SimDuration::from_secs(1));
        let at_server = server.recv(sim.host_mut(b));
        let at_client = client.recv(sim.host_mut(a));
        assert_eq!(at_server[0].data, b"from client");
        assert_eq!(at_client[0].data, b"from server");
    }

    #[test]
    fn large_message_is_chunked_and_reassembled() {
        let (mut sim, a, b) = sim_pair(LossConfig::None);
        let config = MinionConfig::default();
        let (mut client, mut server) = establish(&mut sim, a, b, &config);
        client.set_chunk_size(512);
        let s = client.open_stream();
        let msg: Vec<u8> = (0..10_000u32).map(|i| (i % 256) as u8).collect();
        client
            .send_message(sim.host_mut(a), s, &msg, false, 0)
            .unwrap();
        sim.run_for(SimDuration::from_secs(2));
        let events = server.recv(sim.host_mut(b));
        assert!(events.len() >= 20, "message split into many chunks");
        let collected = collect(&events);
        assert_eq!(collected[&s], msg);
        assert!(client.stats().chunks_sent >= 20);
        assert!(!server.stream_finished(s));
    }
}
