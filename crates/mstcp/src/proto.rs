//! The msTCP chunk format: what one uCOBS datagram carries.

/// Length of the chunk header in bytes.
pub const CHUNK_HEADER_LEN: usize = 12;

/// Per-chunk flags.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChunkFlags {
    /// This chunk ends the current message.
    pub end_of_message: bool,
    /// This chunk ends the stream (no further messages will follow).
    pub end_of_stream: bool,
}

impl ChunkFlags {
    fn to_byte(self) -> u8 {
        (self.end_of_message as u8) | (self.end_of_stream as u8) << 1
    }

    fn from_byte(b: u8) -> Self {
        ChunkFlags {
            end_of_message: b & 0x01 != 0,
            end_of_stream: b & 0x02 != 0,
        }
    }
}

/// One msTCP chunk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// Stream this chunk belongs to.
    pub stream_id: u32,
    /// Position of this chunk within its stream (0-based).
    pub sequence: u32,
    /// Flags.
    pub flags: ChunkFlags,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Chunk {
    /// Serialize the chunk into a datagram payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(CHUNK_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.stream_id.to_be_bytes());
        out.extend_from_slice(&self.sequence.to_be_bytes());
        out.push(self.flags.to_byte());
        out.extend_from_slice(&[0u8; 3]); // reserved / alignment
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse a chunk from a datagram payload.
    pub fn decode(buf: &[u8]) -> Option<Chunk> {
        if buf.len() < CHUNK_HEADER_LEN {
            return None;
        }
        Some(Chunk {
            stream_id: u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]),
            sequence: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            flags: ChunkFlags::from_byte(buf[8]),
            payload: buf[CHUNK_HEADER_LEN..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let c = Chunk {
            stream_id: 7,
            sequence: 42,
            flags: ChunkFlags {
                end_of_message: true,
                end_of_stream: false,
            },
            payload: b"hello streams".to_vec(),
        };
        let decoded = Chunk::decode(&c.encode()).unwrap();
        assert_eq!(decoded, c);
    }

    #[test]
    fn roundtrip_empty_payload_and_all_flags() {
        let c = Chunk {
            stream_id: u32::MAX,
            sequence: 0,
            flags: ChunkFlags {
                end_of_message: true,
                end_of_stream: true,
            },
            payload: vec![],
        };
        assert_eq!(Chunk::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn flags_byte_roundtrip() {
        for b in 0..4u8 {
            assert_eq!(ChunkFlags::from_byte(b).to_byte(), b);
        }
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(Chunk::decode(&[0u8; 5]).is_none());
        assert!(Chunk::decode(&[]).is_none());
    }
}
