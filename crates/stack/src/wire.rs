//! The transport-layer wrapper carried inside simulated network packets.
//!
//! Every [`minion_simnet::Packet`] payload is one encoded
//! [`TransportPacket`]: either a TCP segment or a UDP datagram, prefixed by a
//! one-byte protocol number (6 for TCP, 17 for UDP, matching the IP protocol
//! numbers).

use bytes::Bytes;
use minion_tcp::TcpSegment;

/// Protocol number for TCP.
pub const PROTO_TCP: u8 = 6;
/// Protocol number for UDP.
pub const PROTO_UDP: u8 = 17;

/// A transport-layer packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportPacket {
    /// A TCP segment.
    Tcp(TcpSegment),
    /// A UDP datagram.
    Udp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Datagram payload.
        payload: Bytes,
    },
}

impl TransportPacket {
    /// Serialize for transmission inside a simulated packet.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            TransportPacket::Tcp(seg) => {
                let mut out = Vec::with_capacity(1 + seg.wire_len());
                out.push(PROTO_TCP);
                out.extend_from_slice(&seg.encode());
                out
            }
            TransportPacket::Udp {
                src_port,
                dst_port,
                payload,
            } => {
                let mut out = Vec::with_capacity(5 + payload.len());
                out.push(PROTO_UDP);
                out.extend_from_slice(&src_port.to_be_bytes());
                out.extend_from_slice(&dst_port.to_be_bytes());
                out.extend_from_slice(payload);
                out
            }
        }
    }

    /// Parse a packet payload. Returns `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<TransportPacket> {
        let (&proto, rest) = buf.split_first()?;
        match proto {
            PROTO_TCP => TcpSegment::decode(rest).map(TransportPacket::Tcp),
            PROTO_UDP => {
                if rest.len() < 4 {
                    return None;
                }
                let src_port = u16::from_be_bytes([rest[0], rest[1]]);
                let dst_port = u16::from_be_bytes([rest[2], rest[3]]);
                Some(TransportPacket::Udp {
                    src_port,
                    dst_port,
                    payload: Bytes::copy_from_slice(&rest[4..]),
                })
            }
            _ => None,
        }
    }

    /// The destination port (used for demultiplexing).
    pub fn dst_port(&self) -> u16 {
        match self {
            TransportPacket::Tcp(seg) => seg.dst_port,
            TransportPacket::Udp { dst_port, .. } => *dst_port,
        }
    }

    /// The source port.
    pub fn src_port(&self) -> u16 {
        match self {
            TransportPacket::Tcp(seg) => seg.src_port,
            TransportPacket::Udp { src_port, .. } => *src_port,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minion_tcp::{SeqNum, TcpFlags};

    #[test]
    fn tcp_roundtrip() {
        let mut seg = TcpSegment::bare(1234, 80, SeqNum(42), SeqNum(7), TcpFlags::ACK);
        seg.payload = Bytes::from_static(b"payload");
        let tp = TransportPacket::Tcp(seg);
        let decoded = TransportPacket::decode(&tp.encode()).unwrap();
        assert_eq!(decoded, tp);
        assert_eq!(decoded.dst_port(), 80);
        assert_eq!(decoded.src_port(), 1234);
    }

    #[test]
    fn udp_roundtrip() {
        let tp = TransportPacket::Udp {
            src_port: 5000,
            dst_port: 6000,
            payload: Bytes::from_static(b"datagram"),
        };
        let decoded = TransportPacket::decode(&tp.encode()).unwrap();
        assert_eq!(decoded, tp);
        assert_eq!(decoded.dst_port(), 6000);
    }

    #[test]
    fn udp_empty_payload() {
        let tp = TransportPacket::Udp {
            src_port: 1,
            dst_port: 2,
            payload: Bytes::new(),
        };
        assert_eq!(TransportPacket::decode(&tp.encode()).unwrap(), tp);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(TransportPacket::decode(&[]).is_none());
        assert!(TransportPacket::decode(&[99, 1, 2, 3]).is_none());
        assert!(TransportPacket::decode(&[PROTO_UDP, 1]).is_none());
        assert!(TransportPacket::decode(&[PROTO_TCP, 1, 2]).is_none());
    }
}
