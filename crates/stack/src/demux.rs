//! Open-addressed TCP connection demux: `(local port, peer) → socket`.
//!
//! Every arriving TCP segment resolves its connection through this table, so
//! at engine load (thousands of flows × tens of packets each) the lookup is
//! a hot path. The previous `BTreeMap<(u16, NodeId, u16), SocketHandle>`
//! pays a pointer-chasing tree walk with `Ord` comparisons per node; this
//! table is a hand-rolled open-addressed hash map — one FNV-1a hash of the
//! packed 8-byte key, then a linear probe over a flat, power-of-two slot
//! array. Deterministic by construction: probing depends only on the keys
//! inserted and removed and their order, both of which the caller fixes.
//!
//! Removal uses **tombstones**: deleting an entry in a linear-probe table
//! cannot simply empty the slot, because that would break the probe chain of
//! every later key that probed past it. A removed slot is marked
//! [`Slot::Tombstone`]; lookups probe through tombstones, inserts reuse the
//! first tombstone on their probe path (after confirming the key is not
//! present further along the chain), and growth rehashes live entries only,
//! discarding accumulated tombstones. The simulated hosts never remove
//! (hosts live for one scenario), but the OS-socket backend churns
//! connections through close/reopen cycles, which is exactly the
//! reuse-after-close traffic that exposes probe-chain bugs.
//!
//! The `load_engine` bench records the before/after lookup cost (`BTreeMap`
//! vs this table) in `BENCH_engine.json` under `"demux"`.

use crate::addr::SocketHandle;
use minion_simnet::NodeId;

/// A demux key: `(local port, peer node, peer port)`.
pub type TupleKey = (u16, NodeId, u16);

/// Probe-length accounting (insert-time), for contention/quality checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Keys inserted (excluding replacements).
    pub inserts: u64,
    /// Slots examined across all inserts (1 per insert is a perfect hash).
    pub insert_probes: u64,
    /// Times the table grew (rehashed into a doubled slot array).
    pub grows: u64,
    /// Keys removed (tombstones written).
    pub removes: u64,
}

#[derive(Clone, Debug)]
struct Entry {
    key: TupleKey,
    value: SocketHandle,
}

/// One slot of the probe array.
#[derive(Clone, Debug, Default)]
enum Slot {
    /// Never occupied: terminates every probe chain crossing it.
    #[default]
    Empty,
    /// A live entry.
    Occupied(Entry),
    /// A removed entry: probe chains continue through it, inserts may
    /// reclaim it.
    Tombstone,
}

impl Slot {
    fn occupied(&self) -> Option<&Entry> {
        match self {
            Slot::Occupied(e) => Some(e),
            _ => None,
        }
    }
}

/// An open-addressed `(port, peer) → SocketHandle` table with linear
/// probing over a power-of-two slot array and tombstone-based removal.
#[derive(Clone, Debug, Default)]
pub struct TupleTable {
    slots: Vec<Slot>,
    /// Live entries.
    len: usize,
    /// Tombstones currently in the slot array (reset to 0 on grow).
    tombstones: usize,
    stats: TableStats,
}

/// Pack a key into the 8 bytes the canonical FNV-1a
/// ([`minion_simnet::fnv1a`]) hashes (ports and node index are disjoint
/// fields, so distinct keys pack distinctly).
fn hash(key: &TupleKey) -> u64 {
    let (local_port, peer_node, peer_port) = *key;
    let mut packed = [0u8; 8];
    packed[0..2].copy_from_slice(&local_port.to_be_bytes());
    packed[2..4].copy_from_slice(&peer_port.to_be_bytes());
    packed[4..8].copy_from_slice(&(peer_node.index() as u32).to_be_bytes());
    let mut h = minion_simnet::FNV_OFFSET_BASIS;
    minion_simnet::fnv1a(&mut h, &packed);
    h
}

impl TupleTable {
    /// An empty table (no slots until the first insert).
    pub fn new() -> Self {
        TupleTable::default()
    }

    /// Number of live connections in the table.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert-time probe statistics.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// The socket owning `key`, if any.
    #[inline]
    pub fn get(&self, key: &TupleKey) -> Option<SocketHandle> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash(key) as usize) & mask;
        loop {
            match &self.slots[i] {
                Slot::Empty => return None,
                Slot::Occupied(e) if e.key == *key => return Some(e.value),
                // Tombstones and other keys: the chain continues.
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Map `key` to `value`, returning the previous value if the key was
    /// already present. Replacements touch neither the slot array nor the
    /// probe statistics. A tombstone on the probe path is reclaimed — but
    /// only after the whole chain is probed, so a key re-inserted while its
    /// old position lies further down the chain cannot end up duplicated.
    pub fn insert(&mut self, key: TupleKey, value: SocketHandle) -> Option<SocketHandle> {
        if self.slots.is_empty() {
            self.grow();
        }
        // Probe the full chain first: find the key (replacement), remember
        // the first tombstone (reuse candidate), or stop at the first empty
        // slot (insertion point). Stopping at the first tombstone would be
        // wrong: the key may live past it, and inserting early would shadow
        // it with a duplicate.
        let mask = self.slots.len() - 1;
        let mut i = (hash(&key) as usize) & mask;
        let mut probes = 1u64;
        let mut reuse: Option<usize> = None;
        loop {
            match &mut self.slots[i] {
                Slot::Empty => break,
                Slot::Occupied(e) if e.key == key => {
                    return Some(std::mem::replace(&mut e.value, value));
                }
                Slot::Tombstone => {
                    if reuse.is_none() {
                        reuse = Some(i);
                    }
                    i = (i + 1) & mask;
                    probes += 1;
                }
                Slot::Occupied(_) => {
                    i = (i + 1) & mask;
                    probes += 1;
                }
            }
        }
        // A genuinely new key. Grow when live entries plus tombstones would
        // pass 3/4 load (`+1` accounts for the key about to be inserted):
        // tombstones lengthen probe chains exactly like live entries, so a
        // table churning under removals must rehash (which discards them)
        // even when `len` alone stays small.
        if reuse.is_none() && (self.len + self.tombstones + 1) * 4 > self.slots.len() * 3 {
            self.grow();
            let mask = self.slots.len() - 1;
            i = (hash(&key) as usize) & mask;
            probes = 1;
            while matches!(self.slots[i], Slot::Occupied(_)) {
                i = (i + 1) & mask;
                probes += 1;
            }
        } else if let Some(t) = reuse {
            i = t;
            self.tombstones -= 1;
        }
        self.slots[i] = Slot::Occupied(Entry { key, value });
        self.len += 1;
        self.stats.inserts += 1;
        self.stats.insert_probes += probes;
        None
    }

    /// Remove `key`, returning its value if it was present. The slot becomes
    /// a tombstone so probe chains running through it stay intact.
    pub fn remove(&mut self, key: &TupleKey) -> Option<SocketHandle> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash(key) as usize) & mask;
        loop {
            match &self.slots[i] {
                Slot::Empty => return None,
                Slot::Occupied(e) if e.key == *key => {
                    let Slot::Occupied(e) = std::mem::replace(&mut self.slots[i], Slot::Tombstone)
                    else {
                        unreachable!("slot was just matched as occupied");
                    };
                    self.len -= 1;
                    self.tombstones += 1;
                    self.stats.removes += 1;
                    return Some(e.value);
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Whether any connection uses `port` as its local port (ephemeral-port
    /// allocation check; a full scan, off the per-segment hot path).
    pub fn contains_local_port(&self, port: u16) -> bool {
        self.slots
            .iter()
            .filter_map(Slot::occupied)
            .any(|e| e.key.0 == port)
    }

    /// Double the slot array (16 slots minimum) and rehash every live entry,
    /// discarding tombstones.
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(16);
        debug_assert!(new_cap.is_power_of_two());
        let old = std::mem::replace(&mut self.slots, vec![Slot::Empty; new_cap]);
        self.stats.grows += 1;
        self.tombstones = 0;
        let mask = new_cap - 1;
        for slot in old {
            if let Slot::Occupied(e) = slot {
                let mut i = (hash(&e.key) as usize) & mask;
                while matches!(self.slots[i], Slot::Occupied(_)) {
                    i = (i + 1) & mask;
                }
                self.slots[i] = Slot::Occupied(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(lp: u16, node: u32, pp: u16) -> TupleKey {
        (lp, NodeId(node), pp)
    }

    #[test]
    fn insert_get_round_trip_through_growth() {
        let mut t = TupleTable::new();
        assert!(t.is_empty());
        assert_eq!(t.get(&key(1, 1, 1)), None, "empty table misses cleanly");
        // Insert far past several growth thresholds.
        for i in 0..1000u32 {
            let k = key(40_000 + (i % 500) as u16, i / 500, 7000);
            assert_eq!(t.insert(k, SocketHandle(i)), None);
        }
        assert_eq!(t.len(), 1000);
        for i in 0..1000u32 {
            let k = key(40_000 + (i % 500) as u16, i / 500, 7000);
            assert_eq!(t.get(&k), Some(SocketHandle(i)), "key {i}");
        }
        assert_eq!(t.get(&key(39_999, 0, 7000)), None);
        assert!(t.stats().grows >= 6, "1000 keys force repeated growth");
        // Probe quality: at 3/4 max load, average insert probes stay small.
        let s = t.stats();
        assert!(
            s.insert_probes < s.inserts * 4,
            "probe runs degenerated: {s:?}"
        );
    }

    #[test]
    fn duplicate_insert_replaces_and_reports_old_value() {
        let mut t = TupleTable::new();
        let k = key(80, 3, 5555);
        assert_eq!(t.insert(k, SocketHandle(1)), None);
        assert_eq!(t.insert(k, SocketHandle(2)), Some(SocketHandle(1)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&k), Some(SocketHandle(2)));
    }

    #[test]
    fn local_port_scan_sees_all_entries() {
        let mut t = TupleTable::new();
        t.insert(key(80, 1, 1000), SocketHandle(1));
        t.insert(key(81, 2, 1000), SocketHandle(2));
        assert!(t.contains_local_port(80));
        assert!(t.contains_local_port(81));
        assert!(!t.contains_local_port(82));
    }

    #[test]
    fn colliding_keys_coexist() {
        // Distinct keys that differ only in a field each: whatever the hash
        // spread, linear probing must keep them all reachable.
        let mut t = TupleTable::new();
        for pp in 0..64u16 {
            t.insert(key(7000, 1, pp), SocketHandle(pp as u32));
        }
        for node in 0..64u32 {
            t.insert(key(7000, 100 + node, 9), SocketHandle(1000 + node));
        }
        for pp in 0..64u16 {
            assert_eq!(t.get(&key(7000, 1, pp)), Some(SocketHandle(pp as u32)));
        }
        for node in 0..64u32 {
            assert_eq!(
                t.get(&key(7000, 100 + node, 9)),
                Some(SocketHandle(1000 + node))
            );
        }
    }

    #[test]
    fn remove_then_reinsert_reuses_the_port() {
        // The port-reuse-after-close cycle the OS backend drives: a closed
        // connection's tuple leaves the table and a fresh connection from
        // the same (port, peer) tuple takes its place.
        let mut t = TupleTable::new();
        let k = key(40_000, 1, 7000);
        t.insert(k, SocketHandle(1));
        assert_eq!(t.remove(&k), Some(SocketHandle(1)));
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(&k), None, "removed key must miss");
        assert!(!t.contains_local_port(40_000), "tombstones are not live");
        assert_eq!(t.insert(k, SocketHandle(2)), None, "reinsert is fresh");
        assert_eq!(t.get(&k), Some(SocketHandle(2)));
        assert_eq!(t.remove(&key(9, 9, 9)), None, "absent key removes cleanly");
        assert_eq!(t.stats().removes, 1);
    }

    #[test]
    fn removal_keeps_probe_chains_intact() {
        // Build a long collision chain (same local port, consecutive peer
        // ports hash adjacently often enough), then knock out entries in the
        // middle: every survivor must remain reachable.
        let mut t = TupleTable::new();
        for pp in 0..128u16 {
            t.insert(key(7000, 1, pp), SocketHandle(pp as u32));
        }
        for pp in (0..128u16).step_by(2) {
            assert_eq!(t.remove(&key(7000, 1, pp)), Some(SocketHandle(pp as u32)));
        }
        for pp in 0..128u16 {
            let expect = if pp % 2 == 0 {
                None
            } else {
                Some(SocketHandle(pp as u32))
            };
            assert_eq!(t.get(&key(7000, 1, pp)), expect, "peer port {pp}");
        }
        assert_eq!(t.len(), 64);
    }

    #[test]
    fn reinsert_with_key_beyond_a_tombstone_does_not_duplicate() {
        // The classic open-addressing bug: key K probes past a tombstone to
        // its live slot; a naive insert that claims the first tombstone
        // without finishing the chain would leave two slots for K. Exercise
        // every (remove A, re-insert B) pairing over a colliding set.
        let mut t = TupleTable::new();
        for pp in 0..16u16 {
            t.insert(key(7000, 1, pp), SocketHandle(pp as u32));
        }
        // Remove an early key, creating a tombstone other chains cross.
        t.remove(&key(7000, 1, 0));
        // Replacing a still-live key must update in place, not duplicate.
        assert_eq!(
            t.insert(key(7000, 1, 9), SocketHandle(909)),
            Some(SocketHandle(9)),
            "live key past a tombstone must be found, not duplicated"
        );
        assert_eq!(t.get(&key(7000, 1, 9)), Some(SocketHandle(909)));
        assert_eq!(t.len(), 15);
        // Remove it; both its tombstone and the earlier one are reusable.
        t.remove(&key(7000, 1, 9));
        assert_eq!(t.insert(key(7000, 1, 9), SocketHandle(910)), None);
        assert_eq!(t.get(&key(7000, 1, 9)), Some(SocketHandle(910)));
        // Exactly one slot answers for the key even after another removal.
        t.remove(&key(7000, 1, 9));
        assert_eq!(t.get(&key(7000, 1, 9)), None);
    }

    #[test]
    fn churn_under_tombstone_load_triggers_growth_and_stays_correct() {
        // Sustained connection churn at steady-state size: live count stays
        // small but tombstones accumulate, so the table must grow (clearing
        // them) rather than let probe chains degenerate toward full scans.
        let mut t = TupleTable::new();
        let mut live: Vec<u16> = Vec::new();
        for round in 0..2000u32 {
            let port = ((40_000 + round) % 25_000 + 40_000) as u16;
            t.insert(key(port, 1, 7000), SocketHandle(round));
            live.push(port);
            if live.len() > 8 {
                let gone = live.remove(0);
                assert!(
                    t.remove(&key(gone, 1, 7000)).is_some(),
                    "round {round}: live key {gone} must be removable"
                );
            }
        }
        assert_eq!(t.len(), live.len());
        for p in &live {
            assert!(t.get(&key(*p, 1, 7000)).is_some(), "port {p} reachable");
        }
        let s = t.stats();
        assert!(
            s.grows >= 2,
            "steady-state churn must trigger tombstone-clearing growth: {s:?}"
        );
        // Probe quality survives the churn (no creeping degradation).
        assert!(
            s.insert_probes < s.inserts * 4,
            "probe chains degenerated under churn: {s:?}"
        );
        // The slot array stayed bounded: growth clears tombstones instead of
        // doubling forever (8 live entries can never justify >16k slots).
        assert!(t.slots.len() <= 1 << 14, "slots={}", t.slots.len());
    }

    #[test]
    fn two_identical_churn_sequences_produce_identical_tables() {
        // Determinism: the probe layout is a pure function of the operation
        // sequence.
        let run = || {
            let mut t = TupleTable::new();
            for i in 0..500u32 {
                let k = key(40_000 + (i % 97) as u16, i % 3, 7000 + (i % 11) as u16);
                if i % 5 == 4 {
                    t.remove(&k);
                } else {
                    t.insert(k, SocketHandle(i));
                }
            }
            (t.len(), t.stats())
        };
        assert_eq!(run(), run());
    }
}
