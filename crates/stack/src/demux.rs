//! Open-addressed TCP connection demux: `(local port, peer) → socket`.
//!
//! Every arriving TCP segment resolves its connection through this table, so
//! at engine load (thousands of flows × tens of packets each) the lookup is
//! a hot path. The previous `BTreeMap<(u16, NodeId, u16), SocketHandle>`
//! pays a pointer-chasing tree walk with `Ord` comparisons per node; this
//! table is a hand-rolled open-addressed hash map — one FNV-1a hash of the
//! packed 8-byte key, then a linear probe over a flat, power-of-two slot
//! array. Deterministic by construction: probing depends only on the keys
//! inserted and their order, both of which the simulation fixes.
//!
//! Sized for the workload: connections are never *removed* from a host's
//! demux today (hosts live for one scenario), so the table supports insert,
//! lookup, and scan — no tombstones. The `load_engine` bench records the
//! before/after lookup cost (`BTreeMap` vs this table) in
//! `BENCH_engine.json` under `"demux"`.

use crate::addr::SocketHandle;
use minion_simnet::NodeId;

/// A demux key: `(local port, peer node, peer port)`.
pub type TupleKey = (u16, NodeId, u16);

/// Probe-length accounting (insert-time), for contention/quality checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Keys inserted (excluding replacements).
    pub inserts: u64,
    /// Slots examined across all inserts (1 per insert is a perfect hash).
    pub insert_probes: u64,
    /// Times the table grew (rehashed into a doubled slot array).
    pub grows: u64,
}

#[derive(Clone, Debug)]
struct Entry {
    key: TupleKey,
    value: SocketHandle,
}

/// An open-addressed `(port, peer) → SocketHandle` table with linear
/// probing over a power-of-two slot array.
#[derive(Clone, Debug, Default)]
pub struct TupleTable {
    slots: Vec<Option<Entry>>,
    len: usize,
    stats: TableStats,
}

/// Pack a key into the 8 bytes the canonical FNV-1a
/// ([`minion_simnet::fnv1a`]) hashes (ports and node index are disjoint
/// fields, so distinct keys pack distinctly).
fn hash(key: &TupleKey) -> u64 {
    let (local_port, peer_node, peer_port) = *key;
    let mut packed = [0u8; 8];
    packed[0..2].copy_from_slice(&local_port.to_be_bytes());
    packed[2..4].copy_from_slice(&peer_port.to_be_bytes());
    packed[4..8].copy_from_slice(&(peer_node.index() as u32).to_be_bytes());
    let mut h = minion_simnet::FNV_OFFSET_BASIS;
    minion_simnet::fnv1a(&mut h, &packed);
    h
}

impl TupleTable {
    /// An empty table (no slots until the first insert).
    pub fn new() -> Self {
        TupleTable::default()
    }

    /// Number of connections in the table.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert-time probe statistics.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// The socket owning `key`, if any.
    #[inline]
    pub fn get(&self, key: &TupleKey) -> Option<SocketHandle> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash(key) as usize) & mask;
        loop {
            match &self.slots[i] {
                None => return None,
                Some(e) if e.key == *key => return Some(e.value),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Map `key` to `value`, returning the previous value if the key was
    /// already present. Replacements touch neither the slot array nor the
    /// probe statistics.
    pub fn insert(&mut self, key: TupleKey, value: SocketHandle) -> Option<SocketHandle> {
        if self.slots.is_empty() {
            self.grow();
        }
        // Probe first: find the key (replacement) or its insertion point.
        let mask = self.slots.len() - 1;
        let mut i = (hash(&key) as usize) & mask;
        let mut probes = 1u64;
        loop {
            match &mut self.slots[i] {
                None => break,
                Some(e) if e.key == key => {
                    return Some(std::mem::replace(&mut e.value, value));
                }
                Some(_) => {
                    i = (i + 1) & mask;
                    probes += 1;
                }
            }
        }
        // A genuinely new key: grow at 3/4 load so probe runs stay short
        // (`+1` accounts for the key about to be inserted), re-locating the
        // insertion point in the resized slot array.
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
            let mask = self.slots.len() - 1;
            i = (hash(&key) as usize) & mask;
            probes = 1;
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
                probes += 1;
            }
        }
        self.slots[i] = Some(Entry { key, value });
        self.len += 1;
        self.stats.inserts += 1;
        self.stats.insert_probes += probes;
        None
    }

    /// Whether any connection uses `port` as its local port (ephemeral-port
    /// allocation check; a full scan, off the per-segment hot path).
    pub fn contains_local_port(&self, port: u16) -> bool {
        self.slots.iter().flatten().any(|e| e.key.0 == port)
    }

    /// Double the slot array (16 slots minimum) and rehash every entry.
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(16);
        debug_assert!(new_cap.is_power_of_two());
        let old = std::mem::replace(&mut self.slots, vec![None; new_cap]);
        self.stats.grows += 1;
        let mask = new_cap - 1;
        for e in old.into_iter().flatten() {
            let mut i = (hash(&e.key) as usize) & mask;
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(lp: u16, node: u32, pp: u16) -> TupleKey {
        (lp, NodeId(node), pp)
    }

    #[test]
    fn insert_get_round_trip_through_growth() {
        let mut t = TupleTable::new();
        assert!(t.is_empty());
        assert_eq!(t.get(&key(1, 1, 1)), None, "empty table misses cleanly");
        // Insert far past several growth thresholds.
        for i in 0..1000u32 {
            let k = key(40_000 + (i % 500) as u16, i / 500, 7000);
            assert_eq!(t.insert(k, SocketHandle(i)), None);
        }
        assert_eq!(t.len(), 1000);
        for i in 0..1000u32 {
            let k = key(40_000 + (i % 500) as u16, i / 500, 7000);
            assert_eq!(t.get(&k), Some(SocketHandle(i)), "key {i}");
        }
        assert_eq!(t.get(&key(39_999, 0, 7000)), None);
        assert!(t.stats().grows >= 6, "1000 keys force repeated growth");
        // Probe quality: at 3/4 max load, average insert probes stay small.
        let s = t.stats();
        assert!(
            s.insert_probes < s.inserts * 4,
            "probe runs degenerated: {s:?}"
        );
    }

    #[test]
    fn duplicate_insert_replaces_and_reports_old_value() {
        let mut t = TupleTable::new();
        let k = key(80, 3, 5555);
        assert_eq!(t.insert(k, SocketHandle(1)), None);
        assert_eq!(t.insert(k, SocketHandle(2)), Some(SocketHandle(1)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&k), Some(SocketHandle(2)));
    }

    #[test]
    fn local_port_scan_sees_all_entries() {
        let mut t = TupleTable::new();
        t.insert(key(80, 1, 1000), SocketHandle(1));
        t.insert(key(81, 2, 1000), SocketHandle(2));
        assert!(t.contains_local_port(80));
        assert!(t.contains_local_port(81));
        assert!(!t.contains_local_port(82));
    }

    #[test]
    fn colliding_keys_coexist() {
        // Distinct keys that differ only in a field each: whatever the hash
        // spread, linear probing must keep them all reachable.
        let mut t = TupleTable::new();
        for pp in 0..64u16 {
            t.insert(key(7000, 1, pp), SocketHandle(pp as u32));
        }
        for node in 0..64u32 {
            t.insert(key(7000, 100 + node, 9), SocketHandle(1000 + node));
        }
        for pp in 0..64u16 {
            assert_eq!(t.get(&key(7000, 1, pp)), Some(SocketHandle(pp as u32)));
        }
        for node in 0..64u32 {
            assert_eq!(
                t.get(&key(7000, 100 + node, 9)),
                Some(SocketHandle(1000 + node))
            );
        }
    }
}
