//! In-network middleboxes.
//!
//! The paper stresses that both TCP senders and network middleboxes may
//! coalesce or re-segment TCP streams, so segment boundaries observed at the
//! receiver can differ arbitrarily from the sender's writes (§4.1, §5.3,
//! Figure 4 scenarios (b) and (c)). This module provides a transparent
//! forwarding node that can split or coalesce TCP data segments in flight —
//! without changing the byte stream — so those scenarios can be exercised
//! end-to-end.

use crate::wire::TransportPacket;
use bytes::Bytes;
use minion_simnet::{NodeId, Packet, SimDuration, SimTime};
use minion_tcp::TcpSegment;

/// What a middlebox does to TCP data segments passing through it.
#[derive(Clone, Debug)]
pub enum MiddleboxBehavior {
    /// Forward every packet unchanged (a plain router, or the dummynet
    /// emulation node from the paper's testbed — rate/delay/loss are
    /// properties of the attached links).
    Forward,
    /// Split every TCP data segment larger than `max_payload` into multiple
    /// segments of at most that size (re-segmentation).
    Split {
        /// Maximum payload bytes per forwarded segment.
        max_payload: usize,
    },
    /// Coalesce consecutive, contiguous TCP data segments of the same flow
    /// into larger segments, holding a segment for at most `max_hold`.
    Coalesce {
        /// Maximum combined payload of a coalesced segment.
        max_payload: usize,
        /// Maximum time to hold a segment waiting for a contiguous successor.
        max_hold: SimDuration,
    },
}

/// Statistics about what the middlebox did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MiddleboxStats {
    /// Packets forwarded unchanged.
    pub forwarded: u64,
    /// Extra segments created by splitting.
    pub splits: u64,
    /// Segments removed by coalescing.
    pub coalesces: u64,
}

/// A transparent middlebox node.
pub struct Middlebox {
    node: NodeId,
    behavior: MiddleboxBehavior,
    outbox: Vec<Packet>,
    /// A held segment awaiting coalescing: (flush deadline, original packet
    /// template, segment).
    held: Option<(SimTime, Packet, TcpSegment)>,
    stats: MiddleboxStats,
}

impl Middlebox {
    /// Create a middlebox attached to `node`.
    pub fn new(node: NodeId, behavior: MiddleboxBehavior) -> Self {
        Middlebox {
            node,
            behavior,
            outbox: Vec::new(),
            held: None,
            stats: MiddleboxStats::default(),
        }
    }

    /// The node this middlebox occupies.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// What the middlebox has done so far.
    pub fn stats(&self) -> &MiddleboxStats {
        &self.stats
    }

    fn emit(&mut self, template: &Packet, seg: TcpSegment) {
        let tp = TransportPacket::Tcp(seg);
        let mut p = Packet::routed(
            self.node,
            template.final_dst,
            template.origin,
            template.final_dst,
            tp.encode(),
        );
        p.id = 0; // fresh id assigned by the world
        self.outbox.push(p);
    }

    fn forward_raw(&mut self, packet: &Packet) {
        self.stats.forwarded += 1;
        let mut p = packet.clone();
        p.src = self.node;
        p.dst = packet.final_dst;
        p.id = 0;
        self.outbox.push(p);
    }

    /// Process a packet arriving at the middlebox.
    pub fn on_packet(&mut self, packet: &Packet, now: SimTime) {
        let decoded = TransportPacket::decode(&packet.payload);
        let Some(TransportPacket::Tcp(seg)) = decoded else {
            // Non-TCP traffic passes through untouched.
            self.forward_raw(packet);
            return;
        };
        if seg.payload.is_empty() {
            // Pure ACKs / handshake segments are never re-segmented.
            self.flush_held();
            self.forward_raw(packet);
            return;
        }
        match self.behavior.clone() {
            MiddleboxBehavior::Forward => self.forward_raw(packet),
            MiddleboxBehavior::Split { max_payload } => {
                let max_payload = max_payload.max(1);
                if seg.payload.len() <= max_payload {
                    self.forward_raw(packet);
                    return;
                }
                let mut offset = 0usize;
                while offset < seg.payload.len() {
                    let end = (offset + max_payload).min(seg.payload.len());
                    let mut part = seg.clone();
                    part.seq = seg.seq + offset as u32;
                    part.payload = Bytes::copy_from_slice(&seg.payload[offset..end]);
                    // Only the final piece carries FIN.
                    if end < seg.payload.len() {
                        part.flags.fin = false;
                        self.stats.splits += 1;
                    }
                    self.emit(packet, part);
                    offset = end;
                }
                self.stats.forwarded += 1;
            }
            MiddleboxBehavior::Coalesce {
                max_payload,
                max_hold,
            } => {
                if let Some((_, held_pkt, held_seg)) = self.held.take() {
                    let contiguous = held_seg.seq_end() == seg.seq
                        && held_seg.src_port == seg.src_port
                        && held_seg.dst_port == seg.dst_port
                        && held_pkt.origin == packet.origin
                        && held_pkt.final_dst == packet.final_dst;
                    if contiguous && held_seg.payload.len() + seg.payload.len() <= max_payload {
                        let mut merged = held_seg.clone();
                        let mut payload = held_seg.payload.to_vec();
                        payload.extend_from_slice(&seg.payload);
                        merged.payload = Bytes::from(payload);
                        merged.flags.fin = seg.flags.fin;
                        merged.ack = seg.ack;
                        merged.window = seg.window;
                        self.stats.coalesces += 1;
                        self.stats.forwarded += 1;
                        self.held = Some((now + max_hold, packet.clone(), merged));
                        return;
                    }
                    // Not mergeable: release the held segment first.
                    self.emit(&held_pkt, held_seg);
                }
                self.stats.forwarded += 1;
                self.held = Some((now + max_hold, packet.clone(), seg));
            }
        }
    }

    fn flush_held(&mut self) {
        if let Some((_, pkt, seg)) = self.held.take() {
            self.emit(&pkt, seg);
        }
    }

    /// Collect packets ready to leave the middlebox.
    pub fn poll(&mut self, now: SimTime) -> Vec<Packet> {
        if let Some((deadline, _, _)) = &self.held {
            if now >= *deadline {
                self.flush_held();
            }
        }
        std::mem::take(&mut self.outbox)
    }

    /// The next time this middlebox needs to run (held-segment flush).
    pub fn next_timer(&self) -> Option<SimTime> {
        self.held.as_ref().map(|(t, _, _)| *t)
    }

    /// Whether packets are queued for emission.
    pub fn has_pending_output(&self) -> bool {
        !self.outbox.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minion_tcp::{SeqNum, TcpFlags};

    fn data_segment(seq: u32, payload: &[u8]) -> Packet {
        let mut seg = TcpSegment::bare(1000, 80, SeqNum(seq), SeqNum(0), TcpFlags::ACK);
        seg.payload = Bytes::copy_from_slice(payload);
        Packet::routed(
            NodeId(0),
            NodeId(2),
            NodeId(0),
            NodeId(2),
            TransportPacket::Tcp(seg).encode(),
        )
    }

    fn decode_tcp(p: &Packet) -> TcpSegment {
        match TransportPacket::decode(&p.payload).unwrap() {
            TransportPacket::Tcp(s) => s,
            _ => panic!("expected tcp"),
        }
    }

    #[test]
    fn forward_mode_passes_packets_through() {
        let mut mb = Middlebox::new(NodeId(1), MiddleboxBehavior::Forward);
        mb.on_packet(&data_segment(100, b"hello"), SimTime::ZERO);
        let out = mb.poll(SimTime::ZERO);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].src, NodeId(1));
        assert_eq!(out[0].dst, NodeId(2));
        assert_eq!(decode_tcp(&out[0]).payload.as_ref(), b"hello");
        assert_eq!(mb.stats().forwarded, 1);
    }

    #[test]
    fn split_re_segments_data_preserving_the_byte_stream() {
        let mut mb = Middlebox::new(NodeId(1), MiddleboxBehavior::Split { max_payload: 4 });
        mb.on_packet(&data_segment(1000, b"abcdefghij"), SimTime::ZERO);
        let out = mb.poll(SimTime::ZERO);
        assert_eq!(out.len(), 3);
        let segs: Vec<TcpSegment> = out.iter().map(decode_tcp).collect();
        assert_eq!(segs[0].seq, SeqNum(1000));
        assert_eq!(segs[0].payload.as_ref(), b"abcd");
        assert_eq!(segs[1].seq, SeqNum(1004));
        assert_eq!(segs[1].payload.as_ref(), b"efgh");
        assert_eq!(segs[2].seq, SeqNum(1008));
        assert_eq!(segs[2].payload.as_ref(), b"ij");
        assert_eq!(mb.stats().splits, 2);
    }

    #[test]
    fn split_leaves_small_segments_and_acks_alone() {
        let mut mb = Middlebox::new(NodeId(1), MiddleboxBehavior::Split { max_payload: 100 });
        mb.on_packet(&data_segment(1, b"tiny"), SimTime::ZERO);
        let ack = Packet::routed(
            NodeId(0),
            NodeId(2),
            NodeId(0),
            NodeId(2),
            TransportPacket::Tcp(TcpSegment::bare(1, 2, SeqNum(0), SeqNum(5), TcpFlags::ACK))
                .encode(),
        );
        mb.on_packet(&ack, SimTime::ZERO);
        assert_eq!(mb.poll(SimTime::ZERO).len(), 2);
        assert_eq!(mb.stats().splits, 0);
    }

    #[test]
    fn coalesce_merges_contiguous_segments() {
        let mut mb = Middlebox::new(
            NodeId(1),
            MiddleboxBehavior::Coalesce {
                max_payload: 100,
                max_hold: SimDuration::from_millis(5),
            },
        );
        mb.on_packet(&data_segment(1000, b"first-"), SimTime::ZERO);
        mb.on_packet(&data_segment(1006, b"second"), SimTime::ZERO);
        // Nothing emitted yet (still within the hold window)...
        assert!(mb.poll(SimTime::ZERO).is_empty());
        // ...until the hold timer expires.
        let flush_at = mb.next_timer().unwrap();
        let out = mb.poll(flush_at);
        assert_eq!(out.len(), 1);
        let seg = decode_tcp(&out[0]);
        assert_eq!(seg.seq, SeqNum(1000));
        assert_eq!(seg.payload.as_ref(), b"first-second");
        assert_eq!(mb.stats().coalesces, 1);
    }

    #[test]
    fn coalesce_releases_non_contiguous_segments_separately() {
        let mut mb = Middlebox::new(
            NodeId(1),
            MiddleboxBehavior::Coalesce {
                max_payload: 100,
                max_hold: SimDuration::from_millis(5),
            },
        );
        mb.on_packet(&data_segment(1000, b"aaaa"), SimTime::ZERO);
        // A gap: the next segment is not contiguous.
        mb.on_packet(&data_segment(2000, b"bbbb"), SimTime::ZERO);
        let out = mb.poll(SimTime::from_millis(10));
        assert_eq!(out.len(), 2);
        let seqs: Vec<SeqNum> = out.iter().map(|p| decode_tcp(p).seq).collect();
        assert_eq!(seqs, vec![SeqNum(1000), SeqNum(2000)]);
        assert_eq!(mb.stats().coalesces, 0);
    }

    #[test]
    fn non_tcp_traffic_is_forwarded_untouched() {
        let mut mb = Middlebox::new(NodeId(1), MiddleboxBehavior::Split { max_payload: 1 });
        let udp = Packet::routed(
            NodeId(0),
            NodeId(2),
            NodeId(0),
            NodeId(2),
            TransportPacket::Udp {
                src_port: 1,
                dst_port: 2,
                payload: Bytes::from_static(b"datagram"),
            }
            .encode(),
        );
        mb.on_packet(&udp, SimTime::ZERO);
        let out = mb.poll(SimTime::ZERO);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, udp.payload);
    }
}
