//! Prebuilt topologies matching the paper's experimental setups (§8).
//!
//! Every evaluation scenario in the paper uses two end hosts with a dummynet
//! node emulating the bottleneck. These builders create the equivalent
//! simulated topologies with the exact parameters quoted in the paper.

use crate::sim::Sim;
use minion_simnet::{LinkConfig, LossConfig, NodeId, SimDuration};

/// A constructed two-host scenario.
pub struct TwoHostScenario {
    /// The simulation object.
    pub sim: Sim,
    /// The client-side host (typically the receiver of the bulk download).
    pub client: NodeId,
    /// The server-side host.
    pub server: NodeId,
}

/// Parameters of a symmetric bottleneck path.
#[derive(Clone, Debug)]
pub struct BottleneckConfig {
    /// Bottleneck rate in bits/second (both directions).
    pub rate_bps: u64,
    /// One-way propagation delay (RTT is twice this).
    pub one_way_delay: SimDuration,
    /// Random loss rate in each direction (e.g. `0.01` for 1%).
    pub loss_rate: f64,
    /// Bottleneck queue size in bytes.
    pub queue_bytes: usize,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for BottleneckConfig {
    fn default() -> Self {
        // The paper's most common path: 60 ms RTT.
        BottleneckConfig {
            rate_bps: 10_000_000,
            one_way_delay: SimDuration::from_millis(30),
            loss_rate: 0.0,
            queue_bytes: 64 * 1024,
            seed: 1,
        }
    }
}

impl BottleneckConfig {
    /// The bulk-transfer path of §8.1: 60 ms RTT with a configurable loss rate.
    pub fn bulk_transfer(loss_rate: f64, seed: u64) -> Self {
        BottleneckConfig {
            rate_bps: 10_000_000,
            one_way_delay: SimDuration::from_millis(30),
            loss_rate,
            queue_bytes: 128 * 1024,
            seed,
        }
    }

    /// The conferencing path of §8.2: 3 Mbps, 60 ms RTT, drop-tail queue; all
    /// loss comes from contention.
    pub fn conferencing(seed: u64) -> Self {
        BottleneckConfig {
            rate_bps: 3_000_000,
            one_way_delay: SimDuration::from_millis(30),
            loss_rate: 0.0,
            queue_bytes: 32 * 1024,
            seed,
        }
    }

    /// The web path of §8.5: 1.5 Mbps each way, 60 ms RTT.
    pub fn web(seed: u64) -> Self {
        BottleneckConfig {
            rate_bps: 1_500_000,
            one_way_delay: SimDuration::from_millis(30),
            loss_rate: 0.0,
            queue_bytes: 32 * 1024,
            seed,
        }
    }
}

/// Build a symmetric two-host bottleneck topology.
pub fn two_hosts(config: &BottleneckConfig) -> TwoHostScenario {
    let mut sim = Sim::new(config.seed);
    let client = sim.add_host("client");
    let server = sim.add_host("server");
    let link = LinkConfig::new(config.rate_bps, config.one_way_delay)
        .with_queue_bytes(config.queue_bytes)
        .with_loss(LossConfig::from_rate(config.loss_rate));
    sim.link(client, server, link);
    TwoHostScenario {
        sim,
        client,
        server,
    }
}

/// Parameters of the residential (asymmetric) path used by the VPN
/// experiments of §8.4: 3 Mbps down, 0.5 Mbps up, 60 ms RTT.
#[derive(Clone, Debug)]
pub struct ResidentialConfig {
    /// Downstream (server→client) rate in bits/second.
    pub down_bps: u64,
    /// Upstream (client→server) rate in bits/second.
    pub up_bps: u64,
    /// One-way propagation delay.
    pub one_way_delay: SimDuration,
    /// Queue size in bytes for each direction.
    pub queue_bytes: usize,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for ResidentialConfig {
    fn default() -> Self {
        ResidentialConfig {
            down_bps: 3_000_000,
            up_bps: 500_000,
            one_way_delay: SimDuration::from_millis(30),
            queue_bytes: 32 * 1024,
            seed: 1,
        }
    }
}

/// Build the asymmetric residential topology: `client` is behind the slow
/// uplink, `server` is the remote end.
pub fn residential(config: &ResidentialConfig) -> TwoHostScenario {
    let mut sim = Sim::new(config.seed);
    let client = sim.add_host("client");
    let server = sim.add_host("server");
    let up =
        LinkConfig::new(config.up_bps, config.one_way_delay).with_queue_bytes(config.queue_bytes);
    let down =
        LinkConfig::new(config.down_bps, config.one_way_delay).with_queue_bytes(config.queue_bytes);
    sim.link_asymmetric(client, server, up, down);
    TwoHostScenario {
        sim,
        client,
        server,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::SocketAddr;
    use minion_simnet::SimTime;
    use minion_tcp::{SocketOptions, TcpConfig};

    #[test]
    fn presets_match_paper_parameters() {
        let c = BottleneckConfig::conferencing(1);
        assert_eq!(c.rate_bps, 3_000_000);
        assert_eq!(c.one_way_delay, SimDuration::from_millis(30));
        let w = BottleneckConfig::web(1);
        assert_eq!(w.rate_bps, 1_500_000);
        let r = ResidentialConfig::default();
        assert_eq!(r.down_bps, 3_000_000);
        assert_eq!(r.up_bps, 500_000);
    }

    #[test]
    fn two_hosts_scenario_carries_traffic() {
        let mut s = two_hosts(&BottleneckConfig::default());
        let server = s.server;
        let client = s.client;
        s.sim
            .host_mut(server)
            .tcp_listen(80, TcpConfig::default(), SocketOptions::standard())
            .unwrap();
        let ch = s.sim.host_mut(client).tcp_connect(
            SocketAddr::new(server, 80),
            TcpConfig::default(),
            SocketOptions::standard(),
            SimTime::ZERO,
        );
        s.sim.run_for(SimDuration::from_millis(500));
        assert!(s.sim.host(client).tcp_established(ch).unwrap());
    }

    #[test]
    fn residential_uplink_is_slower_than_downlink() {
        let s = residential(&ResidentialConfig::default());
        // Verified indirectly through the link configuration applied above;
        // here we simply confirm both directions exist.
        assert!(s.sim.link_stats(s.client, s.server).is_some());
        assert!(s.sim.link_stats(s.server, s.client).is_some());
    }
}
