//! The simulation driver: co-schedules hosts, middleboxes, and the network
//! world in virtual time.
//!
//! Experiments build a [`Sim`], add hosts and links, then interleave
//! application logic with [`Sim::run_until`] / [`Sim::step`], accessing
//! sockets through [`Sim::host_mut`]. Everything is deterministic given the
//! seed.

use crate::host::Host;
use crate::middlebox::Middlebox;
use minion_simnet::{LinkConfig, LinkStats, NodeId, Packet, SimDuration, SimTime, World};
use std::collections::BTreeMap;

enum Node {
    Host(Host),
    Middlebox(Middlebox),
}

/// The top-level simulation object.
pub struct Sim {
    world: World,
    nodes: BTreeMap<NodeId, Node>,
    /// Static next-hop routing: (at, final destination) → next hop.
    routes: BTreeMap<(NodeId, NodeId), NodeId>,
    now: SimTime,
    /// Guard against event loops that stop advancing time.
    stall_iterations: u32,
    /// Reusable scratch buffer for batched arrival dispatch.
    arrivals: Vec<(SimTime, Packet)>,
}

impl Sim {
    /// Create an empty simulation with the given randomness seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            world: World::new(seed),
            nodes: BTreeMap::new(),
            routes: BTreeMap::new(),
            now: SimTime::ZERO,
            stall_iterations: 0,
            arrivals: Vec::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Add a host node.
    pub fn add_host(&mut self, name: &str) -> NodeId {
        let node = self.world.add_node(name);
        self.nodes.insert(node, Node::Host(Host::new(node, name)));
        node
    }

    /// Add a middlebox node.
    pub fn add_middlebox(
        &mut self,
        name: &str,
        middlebox_behavior: crate::middlebox::MiddleboxBehavior,
    ) -> NodeId {
        let node = self.world.add_node(name);
        self.nodes.insert(
            node,
            Node::Middlebox(Middlebox::new(node, middlebox_behavior)),
        );
        node
    }

    /// Connect two nodes with identical link characteristics in each
    /// direction, and install direct routes between them.
    pub fn link(&mut self, a: NodeId, b: NodeId, config: LinkConfig) {
        self.world.add_duplex_link(a, b, config);
        self.routes.insert((a, b), b);
        self.routes.insert((b, a), a);
    }

    /// Connect two nodes with asymmetric characteristics (`a_to_b` and
    /// `b_to_a`), installing direct routes.
    pub fn link_asymmetric(
        &mut self,
        a: NodeId,
        b: NodeId,
        a_to_b: LinkConfig,
        b_to_a: LinkConfig,
    ) {
        self.world.add_asymmetric_link(a, b, a_to_b, b_to_a);
        self.routes.insert((a, b), b);
        self.routes.insert((b, a), a);
    }

    /// Install a route: packets at `at` destined for `dst` are forwarded to
    /// `via` (which must be directly linked to `at`).
    pub fn add_route(&mut self, at: NodeId, dst: NodeId, via: NodeId) {
        self.routes.insert((at, dst), via);
    }

    /// Borrow a host immutably.
    pub fn host(&self, id: NodeId) -> &Host {
        match self.nodes.get(&id) {
            Some(Node::Host(h)) => h,
            _ => panic!("{id} is not a host"),
        }
    }

    /// Borrow a host mutably (socket operations go through this).
    pub fn host_mut(&mut self, id: NodeId) -> &mut Host {
        match self.nodes.get_mut(&id) {
            Some(Node::Host(h)) => h,
            _ => panic!("{id} is not a host"),
        }
    }

    /// Borrow a middlebox immutably.
    pub fn middlebox(&self, id: NodeId) -> &Middlebox {
        match self.nodes.get(&id) {
            Some(Node::Middlebox(m)) => m,
            _ => panic!("{id} is not a middlebox"),
        }
    }

    /// Link statistics for the `a -> b` direction.
    pub fn link_stats(&self, a: NodeId, b: NodeId) -> Option<&LinkStats> {
        self.world.link_stats(a, b)
    }

    /// Current backlog in bytes of the `a -> b` link.
    pub fn link_backlog(&self, a: NodeId, b: NodeId) -> Option<usize> {
        self.world.link_backlog(a, b, self.now)
    }

    fn next_hop(&self, at: NodeId, final_dst: NodeId) -> NodeId {
        *self.routes.get(&(at, final_dst)).unwrap_or(&final_dst)
    }

    /// Drain outgoing packets from every node into the world.
    fn flush(&mut self) {
        // Collect first to avoid borrowing `self.nodes` while routing.
        let mut outgoing: Vec<Packet> = Vec::new();
        for node in self.nodes.values_mut() {
            match node {
                Node::Host(h) => outgoing.extend(h.poll(self.now)),
                Node::Middlebox(m) => outgoing.extend(m.poll(self.now)),
            }
        }
        for mut pkt in outgoing {
            pkt.dst = self.next_hop(pkt.src, pkt.final_dst);
            let _ = self.world.send(self.now, pkt);
        }
    }

    fn deliver_due(&mut self) {
        let mut arrivals = std::mem::take(&mut self.arrivals);
        arrivals.clear();
        self.world.drain_due_into(self.now, &mut arrivals);
        for (_, pkt) in &arrivals {
            match self.nodes.get_mut(&pkt.dst) {
                Some(Node::Host(h)) => h.on_packet(pkt, self.now),
                Some(Node::Middlebox(m)) => m.on_packet(pkt, self.now),
                None => {} // Unknown transit node: drop.
            }
        }
        self.arrivals = arrivals;
    }

    /// The time of the next scheduled event (packet arrival or socket timer).
    pub fn next_event_time(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut consider = |t: Option<SimTime>| {
            if let Some(t) = t {
                next = Some(match next {
                    Some(n) => n.min(t),
                    None => t,
                });
            }
        };
        consider(self.world.next_arrival_time());
        for node in self.nodes.values() {
            match node {
                Node::Host(h) => consider(h.next_timer()),
                Node::Middlebox(m) => consider(m.next_timer()),
            }
        }
        next
    }

    /// Process all work at the current time and advance to the next event.
    /// Returns `false` when no further events are scheduled.
    pub fn step(&mut self) -> bool {
        self.flush();
        let Some(next) = self.next_event_time() else {
            return false;
        };
        if next > self.now {
            self.now = next;
            self.stall_iterations = 0;
        } else {
            self.stall_iterations += 1;
            assert!(
                self.stall_iterations < 100_000,
                "simulation stopped advancing at {} (stuck timer or routing loop)",
                self.now
            );
        }
        self.deliver_due();
        self.flush();
        true
    }

    /// Run until virtual time reaches `deadline` (or no events remain).
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            self.flush();
            match self.next_event_time() {
                None => {
                    self.now = self.now.max(deadline);
                    return;
                }
                Some(t) if t > deadline => {
                    // max(): a deadline already in the past must not move
                    // virtual time backwards.
                    self.now = self.now.max(deadline);
                    return;
                }
                Some(_) => {
                    if !self.step() {
                        self.now = self.now.max(deadline);
                        return;
                    }
                }
            }
        }
    }

    /// Run for a span of virtual time from now.
    pub fn run_for(&mut self, duration: SimDuration) {
        let deadline = self.now + duration;
        self.run_until(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::SocketAddr;
    use crate::middlebox::MiddleboxBehavior;
    use minion_simnet::LossConfig;
    use minion_tcp::{SocketOptions, TcpConfig};

    /// Two hosts, 60 ms RTT, plenty of bandwidth.
    fn basic_sim() -> (Sim, NodeId, NodeId) {
        let mut sim = Sim::new(42);
        let a = sim.add_host("client");
        let b = sim.add_host("server");
        sim.link(
            a,
            b,
            LinkConfig::new(10_000_000, SimDuration::from_millis(30)),
        );
        (sim, a, b)
    }

    fn drain_bytes(sim: &mut Sim, node: NodeId, handle: crate::addr::SocketHandle) -> Vec<u8> {
        let mut chunks = vec![];
        while let Some(c) = sim.host_mut(node).tcp_read(handle).unwrap() {
            chunks.push(c);
        }
        chunks.sort_by_key(|c| c.offset);
        let mut out = vec![];
        for c in chunks {
            let off = c.offset as usize;
            if out.len() < off + c.len() {
                out.resize(off + c.len(), 0);
            }
            out[off..off + c.len()].copy_from_slice(&c.data);
        }
        out
    }

    #[test]
    fn end_to_end_tcp_transfer_over_the_simulator() {
        let (mut sim, a, b) = basic_sim();
        sim.host_mut(b)
            .tcp_listen(80, TcpConfig::default(), SocketOptions::standard())
            .unwrap();
        let ch = sim.host_mut(a).tcp_connect(
            SocketAddr::new(b, 80),
            TcpConfig::default(),
            SocketOptions::standard(),
            SimTime::ZERO,
        );
        sim.run_for(SimDuration::from_millis(200));
        assert!(sim.host(a).tcp_established(ch).unwrap());
        let sh = sim.host_mut(b).accept(80).expect("accepted");

        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        sim.host_mut(a).tcp_write(ch, &data).unwrap();
        sim.run_for(SimDuration::from_secs(10));
        assert_eq!(drain_bytes(&mut sim, b, sh), data);
        // Round-trip estimate should reflect the 60 ms path.
        let srtt = sim.host(a).tcp_connection(ch).unwrap().srtt().unwrap();
        assert!(srtt.as_millis_f64() >= 59.0, "srtt={srtt}");
    }

    #[test]
    fn transfer_completes_despite_random_loss() {
        let mut sim = Sim::new(7);
        let a = sim.add_host("client");
        let b = sim.add_host("server");
        sim.link(
            a,
            b,
            LinkConfig::new(10_000_000, SimDuration::from_millis(30))
                .with_loss(LossConfig::Bernoulli { probability: 0.02 }),
        );
        sim.host_mut(b)
            .tcp_listen(80, TcpConfig::default(), SocketOptions::standard())
            .unwrap();
        let ch = sim.host_mut(a).tcp_connect(
            SocketAddr::new(b, 80),
            TcpConfig::default(),
            SocketOptions::standard(),
            SimTime::ZERO,
        );
        sim.run_for(SimDuration::from_millis(300));
        let sh = sim.host_mut(b).accept(80).expect("accepted");
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 83) as u8).collect();
        sim.host_mut(a).tcp_write(ch, &data).unwrap();
        sim.run_for(SimDuration::from_secs(120));
        assert_eq!(drain_bytes(&mut sim, b, sh), data);
        assert!(
            sim.host(a).tcp_stats(ch).unwrap().retransmissions > 0,
            "2% loss should force retransmissions"
        );
    }

    #[test]
    fn udp_datagrams_flow_through_the_simulator() {
        let (mut sim, a, b) = basic_sim();
        let sa = sim.host_mut(a).udp_bind(1111).unwrap();
        let sb = sim.host_mut(b).udp_bind(2222).unwrap();
        for i in 0..5u8 {
            sim.host_mut(a)
                .udp_send_to(sa, SocketAddr::new(b, 2222), &[i; 100])
                .unwrap();
        }
        sim.run_for(SimDuration::from_millis(100));
        let mut got = vec![];
        while let Some((from, data)) = sim.host_mut(b).udp_recv(sb).unwrap() {
            assert_eq!(from.node, a);
            got.push(data[0]);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        // And the reverse direction.
        sim.host_mut(b)
            .udp_send_to(sb, SocketAddr::new(a, 1111), b"pong")
            .unwrap();
        sim.run_for(SimDuration::from_millis(100));
        assert!(sim.host_mut(a).udp_recv(sa).unwrap().is_some());
    }

    #[test]
    fn traffic_routes_through_a_middlebox_node() {
        // client -- middlebox -- server, with the middlebox re-segmenting.
        let mut sim = Sim::new(3);
        let a = sim.add_host("client");
        let m = sim.add_middlebox("resegmenter", MiddleboxBehavior::Split { max_payload: 500 });
        let b = sim.add_host("server");
        sim.link(
            a,
            m,
            LinkConfig::new(10_000_000, SimDuration::from_millis(15)),
        );
        sim.link(
            m,
            b,
            LinkConfig::new(10_000_000, SimDuration::from_millis(15)),
        );
        // Routes through the middlebox.
        sim.add_route(a, b, m);
        sim.add_route(b, a, m);

        sim.host_mut(b)
            .tcp_listen(80, TcpConfig::default(), SocketOptions::standard())
            .unwrap();
        let ch = sim.host_mut(a).tcp_connect(
            SocketAddr::new(b, 80),
            TcpConfig::default(),
            SocketOptions::standard(),
            SimTime::ZERO,
        );
        sim.run_for(SimDuration::from_millis(300));
        let sh = sim.host_mut(b).accept(80).expect("accepted");
        let data: Vec<u8> = (0..30_000u32).map(|i| (i % 99) as u8).collect();
        sim.host_mut(a).tcp_write(ch, &data).unwrap();
        sim.run_for(SimDuration::from_secs(10));
        assert_eq!(drain_bytes(&mut sim, b, sh), data);
        assert!(
            sim.middlebox(m).stats().splits > 0,
            "segments larger than 500 B must have been split"
        );
    }

    #[test]
    fn run_until_stops_at_the_deadline() {
        let (mut sim, a, b) = basic_sim();
        let sa = sim.host_mut(a).udp_bind(1).unwrap();
        sim.host_mut(b).udp_bind(2).unwrap();
        sim.host_mut(a)
            .udp_send_to(sa, SocketAddr::new(b, 2), b"x")
            .unwrap();
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.now(), SimTime::from_millis(10));
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.now(), SimTime::from_millis(10));
    }
}
