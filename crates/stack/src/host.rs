//! A simulated end host: sockets, port demultiplexing, and a BSD-sockets-like
//! API (listen / connect / accept / read / write / setsockopt) over the
//! userspace TCP and UDP implementations.

use crate::addr::{SocketAddr, SocketHandle};
use crate::demux::TupleTable;
use crate::wire::TransportPacket;
use bytes::Bytes;
use minion_simnet::{NodeId, Packet, SimTime};
use minion_tcp::{
    ConnEvent, ConnStats, DeliveredChunk, Readiness, SocketOptions, TcpConfig, TcpConnection,
    TcpError, TcpState, WriteMeta,
};
use std::collections::{BTreeMap, VecDeque};

/// Errors from the host socket API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostError {
    /// The handle does not name a socket on this host.
    BadHandle,
    /// The operation applies to a different socket type.
    WrongSocketType,
    /// The port is already in use.
    PortInUse,
    /// The underlying TCP connection rejected the operation.
    Tcp(TcpError),
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::BadHandle => write!(f, "unknown socket handle"),
            HostError::WrongSocketType => write!(f, "operation not valid for this socket type"),
            HostError::PortInUse => write!(f, "port already in use"),
            HostError::Tcp(e) => write!(f, "tcp error: {e}"),
        }
    }
}

impl std::error::Error for HostError {}

impl From<TcpError> for HostError {
    fn from(e: TcpError) -> Self {
        HostError::Tcp(e)
    }
}

struct TcpSocket {
    conn: TcpConnection,
    remote: SocketAddr,
}

struct UdpSocket {
    local_port: u16,
    recv_queue: VecDeque<(SocketAddr, Bytes)>,
}

// A host holds a handful of sockets; the TCP variant's size is fine.
#[allow(clippy::large_enum_variant)]
enum Socket {
    Tcp(TcpSocket),
    Udp(UdpSocket),
}

struct Listener {
    config: TcpConfig,
    options: SocketOptions,
    /// Connections created by incoming SYNs, awaiting `accept()`.
    pending: VecDeque<SocketHandle>,
}

/// A simulated host with its own port space and sockets.
pub struct Host {
    node: NodeId,
    name: String,
    sockets: BTreeMap<SocketHandle, Socket>,
    listeners: BTreeMap<u16, Listener>,
    /// Demux table for established/opening TCP connections: an
    /// open-addressed `(local port, peer node, peer port)` map (see
    /// [`crate::demux`]), the per-segment hot path at engine load.
    tcp_tuples: TupleTable,
    udp_ports: BTreeMap<u16, SocketHandle>,
    next_handle: u32,
    next_ephemeral_port: u16,
    /// Packets waiting to be handed to the simulator.
    outbox: Vec<Packet>,
}

impl Host {
    /// Create a host bound to the given simulated node.
    pub fn new(node: NodeId, name: impl Into<String>) -> Self {
        Host {
            node,
            name: name.into(),
            sockets: BTreeMap::new(),
            listeners: BTreeMap::new(),
            tcp_tuples: TupleTable::new(),
            udp_ports: BTreeMap::new(),
            next_handle: 1,
            next_ephemeral_port: 40_000,
            outbox: Vec::new(),
        }
    }

    /// The node this host is attached to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The host's name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    fn alloc_handle(&mut self) -> SocketHandle {
        let h = SocketHandle(self.next_handle);
        self.next_handle += 1;
        h
    }

    fn alloc_ephemeral_port(&mut self) -> u16 {
        loop {
            let p = self.next_ephemeral_port;
            self.next_ephemeral_port = self.next_ephemeral_port.wrapping_add(1).max(40_000);
            let used = self.udp_ports.contains_key(&p)
                || self.listeners.contains_key(&p)
                || self.tcp_tuples.contains_local_port(p);
            if !used {
                return p;
            }
        }
    }

    // ------------------------------------------------------------------
    // TCP API
    // ------------------------------------------------------------------

    /// Start listening for TCP connections on `port`. Incoming connections
    /// inherit `config` and `options` and are surfaced via [`Host::accept`].
    pub fn tcp_listen(
        &mut self,
        port: u16,
        config: TcpConfig,
        options: SocketOptions,
    ) -> Result<(), HostError> {
        if self.listeners.contains_key(&port) {
            return Err(HostError::PortInUse);
        }
        self.listeners.insert(
            port,
            Listener {
                config,
                options,
                pending: VecDeque::new(),
            },
        );
        Ok(())
    }

    /// Open a TCP connection to `remote`, returning the socket handle. The
    /// SYN is emitted on the next poll.
    pub fn tcp_connect(
        &mut self,
        remote: SocketAddr,
        config: TcpConfig,
        options: SocketOptions,
        now: SimTime,
    ) -> SocketHandle {
        let local_port = self.alloc_ephemeral_port();
        let mut conn = TcpConnection::new(local_port, remote.port, config, options);
        conn.open(now);
        let handle = self.alloc_handle();
        self.tcp_tuples
            .insert((local_port, remote.node, remote.port), handle);
        self.sockets
            .insert(handle, Socket::Tcp(TcpSocket { conn, remote }));
        handle
    }

    /// Accept the next pending connection on a listening port, if any.
    /// The returned connection may still be completing its handshake.
    pub fn accept(&mut self, port: u16) -> Option<SocketHandle> {
        self.listeners.get_mut(&port)?.pending.pop_front()
    }

    fn tcp_socket_mut(&mut self, handle: SocketHandle) -> Result<&mut TcpSocket, HostError> {
        match self.sockets.get_mut(&handle) {
            Some(Socket::Tcp(t)) => Ok(t),
            Some(_) => Err(HostError::WrongSocketType),
            None => Err(HostError::BadHandle),
        }
    }

    fn tcp_socket(&self, handle: SocketHandle) -> Result<&TcpSocket, HostError> {
        match self.sockets.get(&handle) {
            Some(Socket::Tcp(t)) => Ok(t),
            Some(_) => Err(HostError::WrongSocketType),
            None => Err(HostError::BadHandle),
        }
    }

    /// Write data on a TCP socket.
    pub fn tcp_write(&mut self, handle: SocketHandle, data: &[u8]) -> Result<usize, HostError> {
        Ok(self.tcp_socket_mut(handle)?.conn.write(data)?)
    }

    /// Write data with uTCP metadata (priority / squash).
    pub fn tcp_write_meta(
        &mut self,
        handle: SocketHandle,
        data: &[u8],
        meta: WriteMeta,
    ) -> Result<usize, HostError> {
        Ok(self
            .tcp_socket_mut(handle)?
            .conn
            .write_with_meta(data, meta)?)
    }

    /// Read the next delivered chunk from a TCP socket.
    pub fn tcp_read(&mut self, handle: SocketHandle) -> Result<Option<DeliveredChunk>, HostError> {
        Ok(self.tcp_socket_mut(handle)?.conn.read())
    }

    /// Whether a TCP socket has data ready.
    pub fn tcp_readable(&self, handle: SocketHandle) -> Result<bool, HostError> {
        Ok(self.tcp_socket(handle)?.conn.readable())
    }

    /// Request an orderly close.
    pub fn tcp_close(&mut self, handle: SocketHandle) -> Result<(), HostError> {
        self.tcp_socket_mut(handle)?.conn.close();
        Ok(())
    }

    /// Change uTCP socket options (the `setsockopt` calls of §4).
    pub fn tcp_set_options(
        &mut self,
        handle: SocketHandle,
        options: SocketOptions,
    ) -> Result<(), HostError> {
        self.tcp_socket_mut(handle)?.conn.set_options(options);
        Ok(())
    }

    /// The connection's state.
    pub fn tcp_state(&self, handle: SocketHandle) -> Result<TcpState, HostError> {
        Ok(self.tcp_socket(handle)?.conn.state())
    }

    /// Whether the connection has completed its handshake.
    pub fn tcp_established(&self, handle: SocketHandle) -> Result<bool, HostError> {
        Ok(self.tcp_socket(handle)?.conn.is_established())
    }

    /// Connection statistics.
    pub fn tcp_stats(&self, handle: SocketHandle) -> Result<&ConnStats, HostError> {
        Ok(self.tcp_socket(handle)?.conn.stats())
    }

    /// Free space in the connection's send buffer.
    pub fn tcp_send_buffer_free(&self, handle: SocketHandle) -> Result<usize, HostError> {
        Ok(self.tcp_socket(handle)?.conn.send_buffer_free())
    }

    /// Bytes queued in the connection's send buffer (sent but unacknowledged
    /// plus not yet sent).
    pub fn tcp_send_buffer_len(&self, handle: SocketHandle) -> Result<usize, HostError> {
        Ok(self.tcp_socket(handle)?.conn.send_buffer_len())
    }

    /// The remote address of a TCP socket.
    pub fn tcp_peer(&self, handle: SocketHandle) -> Result<SocketAddr, HostError> {
        Ok(self.tcp_socket(handle)?.remote)
    }

    /// The local port of a TCP socket.
    pub fn tcp_local_port(&self, handle: SocketHandle) -> Result<u16, HostError> {
        Ok(self.tcp_socket(handle)?.conn.local_port())
    }

    /// Direct access to the underlying connection (used by experiment
    /// instrumentation; not part of the portable API).
    pub fn tcp_connection(&self, handle: SocketHandle) -> Result<&TcpConnection, HostError> {
        Ok(&self.tcp_socket(handle)?.conn)
    }

    // ------------------------------------------------------------------
    // UDP API
    // ------------------------------------------------------------------

    /// Bind a UDP socket to `port` (0 picks an ephemeral port).
    pub fn udp_bind(&mut self, port: u16) -> Result<SocketHandle, HostError> {
        let port = if port == 0 {
            self.alloc_ephemeral_port()
        } else {
            port
        };
        if self.udp_ports.contains_key(&port) {
            return Err(HostError::PortInUse);
        }
        let handle = self.alloc_handle();
        self.udp_ports.insert(port, handle);
        self.sockets.insert(
            handle,
            Socket::Udp(UdpSocket {
                local_port: port,
                recv_queue: VecDeque::new(),
            }),
        );
        Ok(handle)
    }

    /// The local port of a UDP socket.
    pub fn udp_local_port(&self, handle: SocketHandle) -> Result<u16, HostError> {
        match self.sockets.get(&handle) {
            Some(Socket::Udp(u)) => Ok(u.local_port),
            Some(_) => Err(HostError::WrongSocketType),
            None => Err(HostError::BadHandle),
        }
    }

    /// Send a UDP datagram to `remote`.
    pub fn udp_send_to(
        &mut self,
        handle: SocketHandle,
        remote: SocketAddr,
        data: &[u8],
    ) -> Result<(), HostError> {
        let local_port = self.udp_local_port(handle)?;
        let tp = TransportPacket::Udp {
            src_port: local_port,
            dst_port: remote.port,
            payload: Bytes::copy_from_slice(data),
        };
        let pkt = Packet::routed(self.node, remote.node, self.node, remote.node, tp.encode());
        self.outbox.push(pkt);
        Ok(())
    }

    /// Receive the next queued UDP datagram, if any.
    pub fn udp_recv(
        &mut self,
        handle: SocketHandle,
    ) -> Result<Option<(SocketAddr, Bytes)>, HostError> {
        match self.sockets.get_mut(&handle) {
            Some(Socket::Udp(u)) => Ok(u.recv_queue.pop_front()),
            Some(_) => Err(HostError::WrongSocketType),
            None => Err(HostError::BadHandle),
        }
    }

    // ------------------------------------------------------------------
    // Packet processing and polling
    // ------------------------------------------------------------------

    /// Process a packet delivered to this host.
    pub fn on_packet(&mut self, packet: &Packet, now: SimTime) {
        let _ = self.on_packet_demux(packet, now);
    }

    /// Process a packet delivered to this host, reporting which socket
    /// consumed it (the demultiplexing result).
    ///
    /// Event-driven drivers (the `minion-engine` runtime) use the returned
    /// handle to mark exactly one flow ready instead of rescanning every
    /// socket. A newly created connection (a SYN hitting a listener) returns
    /// its fresh handle; undeliverable packets return `None`.
    pub fn on_packet_demux(&mut self, packet: &Packet, now: SimTime) -> Option<SocketHandle> {
        let tp = TransportPacket::decode(&packet.payload)?;
        match tp {
            TransportPacket::Tcp(seg) => self.on_tcp_segment(seg, packet.origin, now),
            TransportPacket::Udp {
                src_port,
                dst_port,
                payload,
            } => {
                let &handle = self.udp_ports.get(&dst_port)?;
                if let Some(Socket::Udp(u)) = self.sockets.get_mut(&handle) {
                    u.recv_queue
                        .push_back((SocketAddr::new(packet.origin, src_port), payload));
                    Some(handle)
                } else {
                    None
                }
            }
        }
    }

    fn on_tcp_segment(
        &mut self,
        seg: minion_tcp::TcpSegment,
        from: NodeId,
        now: SimTime,
    ) -> Option<SocketHandle> {
        let key = (seg.dst_port, from, seg.src_port);
        if let Some(handle) = self.tcp_tuples.get(&key) {
            if let Some(Socket::Tcp(t)) = self.sockets.get_mut(&handle) {
                t.conn.on_segment(&seg, now);
                return Some(handle);
            }
            return None;
        }
        // No existing connection: maybe a SYN for a listening port.
        if seg.flags.syn && !seg.flags.ack {
            if let Some(listener) = self.listeners.get(&seg.dst_port) {
                let config = listener.config.clone();
                let options = listener.options;
                let mut conn = TcpConnection::new(seg.dst_port, seg.src_port, config, options);
                conn.listen();
                conn.on_segment(&seg, now);
                let handle = self.alloc_handle();
                let remote = SocketAddr::new(from, seg.src_port);
                self.tcp_tuples.insert(key, handle);
                self.sockets
                    .insert(handle, Socket::Tcp(TcpSocket { conn, remote }));
                self.listeners
                    .get_mut(&seg.dst_port)
                    .expect("listener exists")
                    .pending
                    .push_back(handle);
                return Some(handle);
            }
        }
        None
    }

    /// Poll all sockets for outgoing packets and timer work.
    pub fn poll(&mut self, now: SimTime) -> Vec<Packet> {
        let mut out = std::mem::take(&mut self.outbox);
        let node = self.node;
        for socket in self.sockets.values_mut() {
            if let Socket::Tcp(t) = socket {
                for seg in t.conn.poll(now) {
                    let tp = TransportPacket::Tcp(seg);
                    out.push(Packet::routed(
                        node,
                        t.remote.node,
                        node,
                        t.remote.node,
                        tp.encode(),
                    ));
                }
            }
        }
        out
    }

    /// Poll a single TCP socket for outgoing packets and timer work,
    /// appending the resulting packets to `out`.
    ///
    /// This is the per-flow half of [`Host::poll`]: an event-driven driver
    /// that knows which flows are ready (from readiness events and its timer
    /// wheel) polls exactly those, instead of sweeping every socket on the
    /// host. The caller supplies a reusable buffer so the hot path does not
    /// allocate per poll. Returns the number of packets produced.
    ///
    /// TCP sockets only: unlike [`Host::poll`], this does **not** drain the
    /// host's UDP outbox — a host driven exclusively through per-handle
    /// polls must not also be used for UDP sends (check
    /// [`Host::has_pending_output`] if in doubt).
    pub fn poll_handle_into(
        &mut self,
        handle: SocketHandle,
        now: SimTime,
        out: &mut Vec<Packet>,
    ) -> Result<usize, HostError> {
        let node = self.node;
        let t = self.tcp_socket_mut(handle)?;
        let before = out.len();
        for seg in t.conn.poll(now) {
            let tp = TransportPacket::Tcp(seg);
            out.push(Packet::routed(
                node,
                t.remote.node,
                node,
                t.remote.node,
                tp.encode(),
            ));
        }
        Ok(out.len() - before)
    }

    /// The earliest timer of a single TCP socket (engine wheel re-arming).
    pub fn next_timer_of(&self, handle: SocketHandle) -> Result<Option<SimTime>, HostError> {
        Ok(self.tcp_socket(handle)?.conn.next_timer())
    }

    /// Enable or disable edge-event recording on one connection (see
    /// [`minion_tcp::TcpConnection::set_event_interest`]).
    pub fn tcp_set_event_interest(
        &mut self,
        handle: SocketHandle,
        enabled: bool,
    ) -> Result<(), HostError> {
        self.tcp_socket_mut(handle)?
            .conn
            .set_event_interest(enabled);
        Ok(())
    }

    /// Drain the queued readiness events of one connection.
    pub fn tcp_take_events(&mut self, handle: SocketHandle) -> Result<Vec<ConnEvent>, HostError> {
        Ok(self.tcp_socket_mut(handle)?.conn.take_events())
    }

    /// Level-triggered readiness snapshot of one connection.
    pub fn tcp_readiness(&self, handle: SocketHandle) -> Result<Readiness, HostError> {
        Ok(self.tcp_socket(handle)?.conn.readiness())
    }

    /// The earliest timer across all sockets.
    pub fn next_timer(&self) -> Option<SimTime> {
        self.sockets
            .values()
            .filter_map(|s| match s {
                Socket::Tcp(t) => t.conn.next_timer(),
                Socket::Udp(_) => None,
            })
            .min()
    }

    /// Whether any socket has pending outbound packets queued.
    pub fn has_pending_output(&self) -> bool {
        !self.outbox.is_empty()
    }

    /// All TCP socket handles on this host (diagnostics / experiments).
    pub fn tcp_handles(&self) -> Vec<SocketHandle> {
        let mut v: Vec<SocketHandle> = self
            .sockets
            .iter()
            .filter(|(_, s)| matches!(s, Socket::Tcp(_)))
            .map(|(h, _)| *h)
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> Host {
        Host::new(NodeId(0), "h0")
    }

    #[test]
    fn udp_bind_and_port_conflicts() {
        let mut h = host();
        let a = h.udp_bind(5000).unwrap();
        assert_eq!(h.udp_local_port(a).unwrap(), 5000);
        assert_eq!(h.udp_bind(5000), Err(HostError::PortInUse));
        let b = h.udp_bind(0).unwrap();
        assert!(h.udp_local_port(b).unwrap() >= 40_000);
    }

    #[test]
    fn udp_send_produces_packet_and_recv_round_trips() {
        let mut sender = Host::new(NodeId(0), "a");
        let mut receiver = Host::new(NodeId(1), "b");
        let s = sender.udp_bind(1111).unwrap();
        let r = receiver.udp_bind(2222).unwrap();
        sender
            .udp_send_to(s, SocketAddr::new(NodeId(1), 2222), b"ping")
            .unwrap();
        let pkts = sender.poll(SimTime::ZERO);
        assert_eq!(pkts.len(), 1);
        receiver.on_packet(&pkts[0], SimTime::ZERO);
        let (from, data) = receiver.udp_recv(r).unwrap().unwrap();
        assert_eq!(from, SocketAddr::new(NodeId(0), 1111));
        assert_eq!(&data[..], b"ping");
        assert!(receiver.udp_recv(r).unwrap().is_none());
    }

    #[test]
    fn tcp_listen_rejects_duplicate_port() {
        let mut h = host();
        h.tcp_listen(80, TcpConfig::default(), SocketOptions::standard())
            .unwrap();
        assert_eq!(
            h.tcp_listen(80, TcpConfig::default(), SocketOptions::standard()),
            Err(HostError::PortInUse)
        );
    }

    #[test]
    fn bad_handles_are_rejected() {
        let mut h = host();
        let bogus = SocketHandle(999);
        assert_eq!(h.tcp_write(bogus, b"x"), Err(HostError::BadHandle));
        assert_eq!(h.tcp_readable(bogus), Err(HostError::BadHandle));
        assert_eq!(h.udp_recv(bogus), Err(HostError::BadHandle));
        let udp = h.udp_bind(0).unwrap();
        assert_eq!(h.tcp_write(udp, b"x"), Err(HostError::WrongSocketType));
    }

    #[test]
    fn demux_reports_consuming_socket_and_per_handle_poll_drives_handshake() {
        let mut client = Host::new(NodeId(0), "client");
        let mut server = Host::new(NodeId(1), "server");
        server
            .tcp_listen(80, TcpConfig::default(), SocketOptions::standard())
            .unwrap();
        let ch = client.tcp_connect(
            SocketAddr::new(NodeId(1), 80),
            TcpConfig::default(),
            SocketOptions::standard(),
            SimTime::ZERO,
        );
        client.tcp_set_event_interest(ch, true).unwrap();

        // Drive the handshake purely through the per-handle APIs.
        let mut t = SimTime::ZERO;
        let mut sh = None;
        let mut wire: Vec<Packet> = Vec::new();
        for _ in 0..6 {
            wire.clear();
            client.poll_handle_into(ch, t, &mut wire).unwrap();
            for p in &wire {
                let consumed = server.on_packet_demux(p, t);
                assert!(consumed.is_some(), "server must demux every segment");
                sh = consumed;
            }
            if let Some(sh) = sh {
                wire.clear();
                server.poll_handle_into(sh, t, &mut wire).unwrap();
                for p in &wire {
                    assert_eq!(client.on_packet_demux(p, t), Some(ch));
                }
            }
            t += minion_simnet::SimDuration::from_millis(10);
        }
        let sh = sh.expect("SYN created a server-side socket");
        assert_eq!(server.accept(80), Some(sh));
        assert!(client.tcp_established(ch).unwrap());
        assert!(server.tcp_established(sh).unwrap());
        assert!(client
            .tcp_take_events(ch)
            .unwrap()
            .contains(&minion_tcp::ConnEvent::Established));
        assert!(client.tcp_readiness(ch).unwrap().writable);
        assert!(client.next_timer_of(ch).is_ok());
        // Bad handles are rejected across the new APIs.
        let bogus = SocketHandle(999);
        let mut sink = Vec::new();
        assert_eq!(
            client.poll_handle_into(bogus, t, &mut sink),
            Err(HostError::BadHandle)
        );
        assert_eq!(client.next_timer_of(bogus), Err(HostError::BadHandle));
        assert_eq!(client.tcp_take_events(bogus), Err(HostError::BadHandle));
    }

    #[test]
    fn tcp_connect_accept_handshake_via_manual_packet_exchange() {
        let mut client = Host::new(NodeId(0), "client");
        let mut server = Host::new(NodeId(1), "server");
        server
            .tcp_listen(80, TcpConfig::default(), SocketOptions::standard())
            .unwrap();
        let ch = client.tcp_connect(
            SocketAddr::new(NodeId(1), 80),
            TcpConfig::default(),
            SocketOptions::standard(),
            SimTime::ZERO,
        );
        // Exchange packets back and forth for a few rounds.
        let mut t = SimTime::ZERO;
        for _ in 0..6 {
            for p in client.poll(t) {
                server.on_packet(&p, t);
            }
            for p in server.poll(t) {
                client.on_packet(&p, t);
            }
            t += minion_simnet::SimDuration::from_millis(10);
        }
        let sh = server.accept(80).expect("pending connection");
        assert!(client.tcp_established(ch).unwrap());
        assert!(server.tcp_established(sh).unwrap());
        assert!(server.accept(80).is_none(), "only one connection pending");

        // Data flows both ways.
        client.tcp_write(ch, b"hello server").unwrap();
        server.tcp_write(sh, b"hello client").unwrap();
        for _ in 0..6 {
            for p in client.poll(t) {
                server.on_packet(&p, t);
            }
            for p in server.poll(t) {
                client.on_packet(&p, t);
            }
            t += minion_simnet::SimDuration::from_millis(10);
        }
        assert_eq!(
            server.tcp_read(sh).unwrap().unwrap().data.as_ref(),
            b"hello server"
        );
        assert_eq!(
            client.tcp_read(ch).unwrap().unwrap().data.as_ref(),
            b"hello client"
        );
    }
}
