//! # minion-stack
//!
//! Simulated end hosts and the simulation driver for the Minion
//! reproduction: a BSD-sockets-like API (listen / connect / accept / read /
//! write / setsockopt) over the userspace TCP (`minion-tcp`) and a simple
//! UDP, port demultiplexing, transparent middleboxes that re-segment or
//! coalesce TCP streams, and prebuilt topologies matching the paper's
//! testbed (§7–§8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod demux;
pub mod host;
pub mod middlebox;
pub mod scenario;
pub mod sim;
pub mod wire;

pub use addr::{SocketAddr, SocketHandle};
pub use demux::{TableStats, TupleKey, TupleTable};
pub use host::{Host, HostError};
pub use middlebox::{Middlebox, MiddleboxBehavior, MiddleboxStats};
pub use scenario::{residential, two_hosts, BottleneckConfig, ResidentialConfig, TwoHostScenario};
pub use sim::Sim;
pub use wire::{TransportPacket, PROTO_TCP, PROTO_UDP};
