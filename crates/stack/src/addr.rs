//! Addressing: a socket address is a simulated node plus a port.

use minion_simnet::NodeId;
use std::fmt;

/// A (node, port) pair identifying one end of a connection.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SocketAddr {
    /// The simulated host.
    pub node: NodeId,
    /// The transport port on that host.
    pub port: u16,
}

impl SocketAddr {
    /// Construct an address.
    pub fn new(node: NodeId, port: u16) -> Self {
        SocketAddr { node, port }
    }
}

impl fmt::Debug for SocketAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

impl fmt::Display for SocketAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

/// Handle identifying a socket within one host.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SocketHandle(pub u32);

impl fmt::Debug for SocketHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sock#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let a = SocketAddr::new(NodeId(2), 443);
        assert_eq!(format!("{a}"), "n2:443");
        assert_eq!(format!("{:?}", SocketHandle(7)), "sock#7");
    }

    #[test]
    fn equality_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(SocketAddr::new(NodeId(1), 80));
        assert!(set.contains(&SocketAddr::new(NodeId(1), 80)));
        assert!(!set.contains(&SocketAddr::new(NodeId(1), 81)));
        assert!(!set.contains(&SocketAddr::new(NodeId(2), 80)));
    }
}
