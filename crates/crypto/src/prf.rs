//! The TLS 1.1-era pseudo-random function, used for the key schedule.
//!
//! TLS 1.0/1.1 define PRF as a combination of P_MD5 and P_SHA1; TLS 1.2
//! simplified this to P_SHA256. Since this reproduction's record layer is a
//! TLS-1.1-*style* layer (explicit IVs) rather than a bit-exact TLS
//! implementation, we use the P_SHA256 expansion — the structural properties
//! uTLS depends on (independent keys per direction, MAC keys separate from
//! encryption keys) are identical.

use crate::hmac::HmacSha256;

/// P_SHA256 data expansion (RFC 5246 §5) producing `out_len` bytes.
pub fn p_sha256(secret: &[u8], seed: &[u8], out_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(out_len);
    // A(0) = seed, A(i) = HMAC(secret, A(i-1))
    let mut a: Vec<u8> = seed.to_vec();
    while out.len() < out_len {
        let mut h = HmacSha256::new(secret);
        h.update(&a);
        a = h.finalize().to_vec();

        let mut h = HmacSha256::new(secret);
        h.update(&a);
        h.update(seed);
        let block = h.finalize();
        let take = (out_len - out.len()).min(block.len());
        out.extend_from_slice(&block[..take]);
    }
    out
}

/// The TLS PRF: expand `secret` with a label and seed.
pub fn prf(secret: &[u8], label: &str, seed: &[u8], out_len: usize) -> Vec<u8> {
    let mut label_seed = Vec::with_capacity(label.len() + seed.len());
    label_seed.extend_from_slice(label.as_bytes());
    label_seed.extend_from_slice(seed);
    p_sha256(secret, &label_seed, out_len)
}

/// The complete key block for one connection direction pair, mirroring the
/// TLS key expansion: client/server MAC keys followed by client/server
/// encryption keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyBlock {
    /// MAC key for records sent by the client.
    pub client_mac_key: [u8; 32],
    /// MAC key for records sent by the server.
    pub server_mac_key: [u8; 32],
    /// AES-128 key for records sent by the client.
    pub client_enc_key: [u8; 16],
    /// AES-128 key for records sent by the server.
    pub server_enc_key: [u8; 16],
}

impl KeyBlock {
    /// Derive a key block from a master secret and the two handshake nonces.
    pub fn derive(master_secret: &[u8], client_random: &[u8], server_random: &[u8]) -> KeyBlock {
        let mut seed = Vec::with_capacity(client_random.len() + server_random.len());
        seed.extend_from_slice(server_random);
        seed.extend_from_slice(client_random);
        let material = prf(master_secret, "key expansion", &seed, 32 + 32 + 16 + 16);
        let mut kb = KeyBlock {
            client_mac_key: [0; 32],
            server_mac_key: [0; 32],
            client_enc_key: [0; 16],
            server_enc_key: [0; 16],
        };
        kb.client_mac_key.copy_from_slice(&material[0..32]);
        kb.server_mac_key.copy_from_slice(&material[32..64]);
        kb.client_enc_key.copy_from_slice(&material[64..80]);
        kb.server_enc_key.copy_from_slice(&material[80..96]);
        kb
    }
}

/// Derive a master secret from a pre-shared key and the handshake nonces
/// (the reproduction uses a PSK handshake in place of public-key exchange;
/// see DESIGN.md).
pub fn master_secret(psk: &[u8], client_random: &[u8], server_random: &[u8]) -> [u8; 48] {
    let mut seed = Vec::with_capacity(client_random.len() + server_random.len());
    seed.extend_from_slice(client_random);
    seed.extend_from_slice(server_random);
    let material = prf(psk, "master secret", &seed, 48);
    let mut out = [0u8; 48];
    out.copy_from_slice(&material);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_length_is_exact() {
        for len in [0usize, 1, 31, 32, 33, 48, 96, 100, 1000] {
            assert_eq!(p_sha256(b"secret", b"seed", len).len(), len);
        }
    }

    #[test]
    fn deterministic_and_input_sensitive() {
        let a = prf(b"secret", "label", b"seed", 64);
        let b = prf(b"secret", "label", b"seed", 64);
        assert_eq!(a, b);
        assert_ne!(a, prf(b"secret2", "label", b"seed", 64));
        assert_ne!(a, prf(b"secret", "label2", b"seed", 64));
        assert_ne!(a, prf(b"secret", "label", b"seed2", 64));
    }

    #[test]
    fn prefix_property() {
        // Requesting a shorter output yields a prefix of the longer output.
        let long = p_sha256(b"s", b"x", 100);
        let short = p_sha256(b"s", b"x", 40);
        assert_eq!(&long[..40], &short[..]);
    }

    #[test]
    fn key_block_directional_keys_differ() {
        let ms = master_secret(b"pre-shared-key", b"client-random-32", b"server-random-32");
        let kb = KeyBlock::derive(&ms, b"client-random-32", b"server-random-32");
        assert_ne!(kb.client_mac_key, kb.server_mac_key);
        assert_ne!(kb.client_enc_key, kb.server_enc_key);
        // Stable across derivations.
        let kb2 = KeyBlock::derive(&ms, b"client-random-32", b"server-random-32");
        assert_eq!(kb, kb2);
    }

    #[test]
    fn master_secret_depends_on_nonces() {
        let a = master_secret(b"psk", b"cr1", b"sr1");
        let b = master_secret(b"psk", b"cr2", b"sr1");
        let c = master_secret(b"psk", b"cr1", b"sr2");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
