//! # minion-crypto
//!
//! From-scratch cryptographic primitives for the Minion reproduction's TLS
//! record layer (`minion-tls`): SHA-256, HMAC-SHA256, AES-128, CBC mode with
//! TLS-style padding, and the TLS PRF / key schedule.
//!
//! The paper's uTLS builds on OpenSSL; this reproduction avoids external
//! crypto dependencies (only the allowed offline crates are available) and
//! implements the primitives directly, validated against NIST / RFC test
//! vectors. The implementations favour clarity over speed: the CPU-cost
//! experiments (Figure 6) report *relative* costs (uTLS vs TLS on the same
//! primitives), which is the quantity the paper reports too.
//!
//! **Do not reuse this crate for production cryptography** — it has no
//! side-channel hardening.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod cbc;
pub mod hmac;
pub mod prf;
pub mod sha256;

pub use aes::Aes128;
pub use cbc::CbcError;
pub use hmac::{constant_time_eq, hmac_sha256, HmacSha256};
pub use prf::{master_secret, prf, KeyBlock};
pub use sha256::{sha256, Sha256};
