//! AES-128 CBC mode with TLS-style padding.
//!
//! TLS 1.1 block ciphers use an **explicit** per-record IV transmitted in
//! front of the ciphertext. That single design detail is what makes records
//! independently decryptable and therefore what uTLS leverages for
//! out-of-order delivery (paper §6.1). TLS 1.0 and earlier derive each
//! record's IV from the previous record's last ciphertext block ("chained"
//! IVs), which makes records interdependent; that legacy mode is provided
//! too so the uTLS negotiation logic can detect and refuse it.

use crate::aes::{Aes128, BLOCK_SIZE, KEY_SIZE};

/// Errors from CBC decryption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CbcError {
    /// Ciphertext length is not a positive multiple of the block size.
    BadLength,
    /// The TLS-style padding was inconsistent.
    BadPadding,
}

impl std::fmt::Display for CbcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CbcError::BadLength => write!(f, "ciphertext length not a multiple of block size"),
            CbcError::BadPadding => write!(f, "invalid padding"),
        }
    }
}

impl std::error::Error for CbcError {}

/// Apply TLS (RFC 5246 §6.2.3.2) padding: pad with `n` bytes each of value
/// `n`, where the padded length is a multiple of the block size and at least
/// one byte of padding is always added.
pub fn pad(data: &mut Vec<u8>) {
    let pad_len = BLOCK_SIZE - (data.len() % BLOCK_SIZE);
    let pad_byte = (pad_len - 1) as u8;
    data.extend(std::iter::repeat_n(pad_byte, pad_len));
}

/// Remove and validate TLS padding.
pub fn unpad(data: &mut Vec<u8>) -> Result<(), CbcError> {
    let Some(&last) = data.last() else {
        return Err(CbcError::BadPadding);
    };
    let pad_len = last as usize + 1;
    if pad_len > data.len() {
        return Err(CbcError::BadPadding);
    }
    let start = data.len() - pad_len;
    if data[start..].iter().any(|&b| b != last) {
        return Err(CbcError::BadPadding);
    }
    data.truncate(start);
    Ok(())
}

/// Encrypt `plaintext` (padding it first) under `key` with the given IV.
pub fn encrypt(key: &[u8; KEY_SIZE], iv: &[u8; BLOCK_SIZE], plaintext: &[u8]) -> Vec<u8> {
    let aes = Aes128::new(key);
    let mut data = plaintext.to_vec();
    pad(&mut data);
    let mut prev = *iv;
    for chunk in data.chunks_mut(BLOCK_SIZE) {
        let mut block = [0u8; BLOCK_SIZE];
        block.copy_from_slice(chunk);
        for i in 0..BLOCK_SIZE {
            block[i] ^= prev[i];
        }
        aes.encrypt_block(&mut block);
        chunk.copy_from_slice(&block);
        prev = block;
    }
    data
}

/// Decrypt CBC ciphertext and strip padding.
pub fn decrypt(
    key: &[u8; KEY_SIZE],
    iv: &[u8; BLOCK_SIZE],
    ciphertext: &[u8],
) -> Result<Vec<u8>, CbcError> {
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(BLOCK_SIZE) {
        return Err(CbcError::BadLength);
    }
    let aes = Aes128::new(key);
    let mut out = ciphertext.to_vec();
    let mut prev = *iv;
    for chunk in out.chunks_mut(BLOCK_SIZE) {
        let cipher_block: [u8; BLOCK_SIZE] = chunk.try_into().expect("exact chunk");
        let mut block = cipher_block;
        aes.decrypt_block(&mut block);
        for i in 0..BLOCK_SIZE {
            block[i] ^= prev[i];
        }
        chunk.copy_from_slice(&block);
        prev = cipher_block;
    }
    unpad(&mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &[u8; 16] = b"minion-tls-key-0";
    const IV: &[u8; 16] = b"explicit-iv-0000";

    #[test]
    fn roundtrip_various_lengths() {
        for len in [0usize, 1, 15, 16, 17, 31, 32, 100, 1000, 1447] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
            let ct = encrypt(KEY, IV, &plaintext);
            assert_eq!(ct.len() % BLOCK_SIZE, 0);
            assert!(ct.len() > plaintext.len(), "padding always added");
            let pt = decrypt(KEY, IV, &ct).unwrap();
            assert_eq!(pt, plaintext, "len={len}");
        }
    }

    #[test]
    fn nist_sp800_38a_cbc_vector() {
        // SP 800-38A F.2.1 CBC-AES128.Encrypt, first block (we add padding, so
        // compare only the first ciphertext block).
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let iv: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let plaintext: [u8; 16] = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        let ct = encrypt(&key, &iv, &plaintext);
        assert_eq!(
            &ct[..16],
            &[
                0x76, 0x49, 0xab, 0xac, 0x81, 0x19, 0xb2, 0x46, 0xce, 0xe9, 0x8e, 0x9b, 0x12, 0xe9,
                0x19, 0x7d,
            ]
        );
    }

    #[test]
    fn different_ivs_give_different_ciphertext() {
        let a = encrypt(KEY, b"iv-aaaaaaaaaaaa1", b"identical plaintext");
        let b = encrypt(KEY, b"iv-aaaaaaaaaaaa2", b"identical plaintext");
        assert_ne!(a, b);
    }

    #[test]
    fn decrypt_with_wrong_iv_fails_or_garbles() {
        let ct = encrypt(KEY, IV, b"some secret datagram");
        match decrypt(KEY, b"wrong-iv-0000000", &ct) {
            Ok(pt) => assert_ne!(pt, b"some secret datagram"),
            Err(e) => assert_eq!(e, CbcError::BadPadding),
        }
    }

    #[test]
    fn decrypt_rejects_bad_lengths() {
        assert_eq!(decrypt(KEY, IV, &[]), Err(CbcError::BadLength));
        assert_eq!(decrypt(KEY, IV, &[0u8; 17]), Err(CbcError::BadLength));
    }

    #[test]
    fn tampered_ciphertext_usually_fails_padding() {
        let mut ct = encrypt(KEY, IV, &[7u8; 64]);
        let last = ct.len() - 1;
        ct[last] ^= 0xFF;
        // Either padding fails or the plaintext is corrupted; both are fine
        // here because the record MAC is the real integrity check.
        if let Ok(pt) = decrypt(KEY, IV, &ct) {
            assert_ne!(pt, vec![7u8; 64]);
        }
    }

    #[test]
    fn padding_is_tls_style() {
        let mut v = vec![1u8, 2, 3];
        pad(&mut v);
        assert_eq!(v.len(), 16);
        assert!(v[3..].iter().all(|&b| b == 12));
        unpad(&mut v).unwrap();
        assert_eq!(v, vec![1, 2, 3]);

        // Exact multiple gets a full block of padding.
        let mut v = vec![0u8; 16];
        pad(&mut v);
        assert_eq!(v.len(), 32);
        assert!(v[16..].iter().all(|&b| b == 15));
    }

    #[test]
    fn unpad_rejects_inconsistent_padding() {
        let mut v = vec![1u8, 2, 3, 4, 2, 2];
        assert_eq!(unpad(&mut v), Err(CbcError::BadPadding));
        let mut v = vec![200u8];
        assert_eq!(unpad(&mut v), Err(CbcError::BadPadding));
        let mut empty: Vec<u8> = vec![];
        assert_eq!(unpad(&mut empty), Err(CbcError::BadPadding));
    }
}
