//! HMAC-SHA256 (RFC 2104) and a constant-time comparison helper.
//!
//! The TLS record layer MACs every record; uTLS additionally relies on the
//! MAC to *confirm guessed record boundaries and record numbers* in
//! out-of-order stream fragments (paper §6.1), so a correct and collision-
//! resistant MAC is central to the reproduction.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Incremental HMAC-SHA256.
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key_pad: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Create an HMAC context keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256::sha256(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            outer_key_pad: opad,
        }
    }

    /// Absorb message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produce the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key_pad);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA256.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = HmacSha256::new(key);
    h.update(message);
    h.finalize()
}

/// Constant-time equality comparison for MACs.
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 4231 test vectors for HMAC-SHA256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let key = b"minion key";
        let msg: Vec<u8> = (0..5000u32).map(|i| (i % 256) as u8).collect();
        let one_shot = hmac_sha256(key, &msg);
        let mut h = HmacSha256::new(key);
        for chunk in msg.chunks(97) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), one_shot);
    }

    #[test]
    fn tag_depends_on_key_and_message() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }

    #[test]
    fn constant_time_eq_behaviour() {
        assert!(constant_time_eq(b"same", b"same"));
        assert!(!constant_time_eq(b"same", b"sama"));
        assert!(!constant_time_eq(b"short", b"longer"));
        assert!(constant_time_eq(b"", b""));
    }
}
