//! The TLS record layer: header format, MAC-then-encrypt record protection,
//! and the distinction between chained-IV (TLS 1.0) and explicit-IV
//! (TLS 1.1) block ciphers that uTLS's out-of-order delivery hinges on
//! (paper §6.1).

use minion_crypto::cbc;
use minion_crypto::hmac::{constant_time_eq, HmacSha256};

/// TLS content type for handshake records.
pub const CONTENT_HANDSHAKE: u8 = 22;
/// TLS content type for application-data records.
pub const CONTENT_APPLICATION_DATA: u8 = 23;
/// Protocol version bytes for "TLS 1.1" (3, 2).
pub const VERSION_TLS11: (u8, u8) = (3, 2);
/// Protocol version bytes for "TLS 1.0" (3, 1).
pub const VERSION_TLS10: (u8, u8) = (3, 1);

/// Length of the record header on the wire.
pub const RECORD_HEADER_LEN: usize = 5;
/// Maximum record payload length accepted (as in TLS: 2^14 plus expansion).
pub const MAX_RECORD_LEN: usize = (1 << 14) + 2048;
/// Length of the record MAC (HMAC-SHA256).
pub const MAC_LEN: usize = 32;
/// AES block / explicit IV length.
pub const IV_LEN: usize = 16;

/// A parsed 5-byte record header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordHeader {
    /// Content type (handshake, application data, ...).
    pub content_type: u8,
    /// Protocol version (major, minor).
    pub version: (u8, u8),
    /// Length of the record body that follows the header.
    pub length: usize,
}

impl RecordHeader {
    /// Serialize to the 5-byte wire form.
    pub fn encode(&self) -> [u8; RECORD_HEADER_LEN] {
        let len = self.length as u16;
        [
            self.content_type,
            self.version.0,
            self.version.1,
            (len >> 8) as u8,
            (len & 0xFF) as u8,
        ]
    }

    /// Parse a 5-byte header. This performs **no validation** beyond length —
    /// any 5 bytes parse — because that is exactly the situation the uTLS
    /// receiver is in when scanning a fragment: it must guess and then verify
    /// with the MAC.
    pub fn decode(buf: &[u8]) -> Option<RecordHeader> {
        if buf.len() < RECORD_HEADER_LEN {
            return None;
        }
        Some(RecordHeader {
            content_type: buf[0],
            version: (buf[1], buf[2]),
            length: ((buf[3] as usize) << 8) | buf[4] as usize,
        })
    }

    /// Whether this header is *plausible* as a record header for the given
    /// version: known content type, matching version, and a sane length.
    /// Used by the uTLS scanner as the cheap pre-filter before the expensive
    /// MAC confirmation.
    pub fn is_plausible(&self, version: (u8, u8)) -> bool {
        (self.content_type == CONTENT_APPLICATION_DATA || self.content_type == CONTENT_HANDSHAKE)
            && self.version == version
            && self.length > 0
            && self.length <= MAX_RECORD_LEN
    }
}

/// The ciphersuites supported by the record layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CipherSuite {
    /// No encryption and no MAC (used only during the initial handshake).
    /// uTLS disables out-of-order delivery under this suite (§6.1).
    Null,
    /// AES-128-CBC with HMAC-SHA256, explicit per-record IV (TLS 1.1 style).
    /// Records are independently decryptable: this is the suite uTLS needs.
    Aes128CbcExplicitIv,
    /// AES-128-CBC with HMAC-SHA256, chained IV (TLS 1.0 style). Records
    /// depend on their predecessor's ciphertext and cannot be decrypted out
    /// of order.
    Aes128CbcChainedIv,
}

impl CipherSuite {
    /// Whether this suite allows records to be decrypted independently.
    pub fn supports_out_of_order(&self) -> bool {
        matches!(self, CipherSuite::Aes128CbcExplicitIv)
    }
}

/// Keys and state for protecting records in one direction.
#[derive(Clone, Debug)]
pub struct RecordProtection {
    suite: CipherSuite,
    enc_key: [u8; 16],
    mac_key: [u8; 32],
    version: (u8, u8),
    /// Chained-IV state (TLS 1.0 mode): last ciphertext block sent/received.
    chain_iv: [u8; IV_LEN],
}

/// Error returned when a record fails authentication or decryption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordError {
    /// The MAC did not verify (or padding/structure was invalid).
    BadRecord,
    /// The body is too short to contain IV + MAC.
    TooShort,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::BadRecord => write!(f, "record failed authentication"),
            RecordError::TooShort => write!(f, "record body too short"),
        }
    }
}

impl std::error::Error for RecordError {}

impl RecordProtection {
    /// Create record protection for one direction.
    pub fn new(
        suite: CipherSuite,
        enc_key: [u8; 16],
        mac_key: [u8; 32],
        version: (u8, u8),
    ) -> Self {
        RecordProtection {
            suite,
            enc_key,
            mac_key,
            version,
            chain_iv: [0x42; IV_LEN],
        }
    }

    /// The ciphersuite in use.
    pub fn suite(&self) -> CipherSuite {
        self.suite
    }

    /// The protocol version stamped into record headers.
    pub fn version(&self) -> (u8, u8) {
        self.version
    }

    /// Compute the record MAC over the TLS pseudo-header and plaintext.
    ///
    /// The pseudo-header includes the 64-bit per-record sequence number — the
    /// value the uTLS receiver must *predict* for out-of-order records.
    fn compute_mac(&self, record_number: u64, content_type: u8, plaintext: &[u8]) -> [u8; MAC_LEN] {
        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(&record_number.to_be_bytes());
        mac.update(&[content_type, self.version.0, self.version.1]);
        mac.update(&(plaintext.len() as u16).to_be_bytes());
        mac.update(plaintext);
        mac.finalize()
    }

    /// A deterministic explicit IV derived from the record number and key
    /// (a CSPRNG in real TLS; determinism keeps simulations reproducible and
    /// does not weaken the properties uTLS relies on).
    fn explicit_iv(&self, record_number: u64) -> [u8; IV_LEN] {
        let mut mac = HmacSha256::new(&self.enc_key);
        mac.update(b"explicit iv");
        mac.update(&record_number.to_be_bytes());
        let digest = mac.finalize();
        let mut iv = [0u8; IV_LEN];
        iv.copy_from_slice(&digest[..IV_LEN]);
        iv
    }

    /// Protect one record: returns the full wire bytes (header + body).
    pub fn seal(&mut self, record_number: u64, content_type: u8, plaintext: &[u8]) -> Vec<u8> {
        let body = match self.suite {
            CipherSuite::Null => plaintext.to_vec(),
            CipherSuite::Aes128CbcExplicitIv => {
                let mac = self.compute_mac(record_number, content_type, plaintext);
                let mut to_encrypt = plaintext.to_vec();
                to_encrypt.extend_from_slice(&mac);
                let iv = self.explicit_iv(record_number);
                let ciphertext = cbc::encrypt(&self.enc_key, &iv, &to_encrypt);
                let mut body = iv.to_vec();
                body.extend_from_slice(&ciphertext);
                body
            }
            CipherSuite::Aes128CbcChainedIv => {
                let mac = self.compute_mac(record_number, content_type, plaintext);
                let mut to_encrypt = plaintext.to_vec();
                to_encrypt.extend_from_slice(&mac);
                let iv = self.chain_iv;
                let ciphertext = cbc::encrypt(&self.enc_key, &iv, &to_encrypt);
                // Next record chains off this record's final ciphertext block.
                self.chain_iv
                    .copy_from_slice(&ciphertext[ciphertext.len() - IV_LEN..]);
                ciphertext
            }
        };
        let header = RecordHeader {
            content_type,
            version: self.version,
            length: body.len(),
        };
        let mut out = Vec::with_capacity(RECORD_HEADER_LEN + body.len());
        out.extend_from_slice(&header.encode());
        out.extend_from_slice(&body);
        out
    }

    /// Verify and decrypt one record body given its header and the record
    /// number to authenticate against. This is used both by the in-order
    /// receiver (which knows the record number) and by the uTLS receiver
    /// (which guesses it and treats failure as "wrong guess").
    pub fn open(
        &mut self,
        record_number: u64,
        header: &RecordHeader,
        body: &[u8],
    ) -> Result<Vec<u8>, RecordError> {
        if body.len() != header.length {
            return Err(RecordError::TooShort);
        }
        match self.suite {
            CipherSuite::Null => Ok(body.to_vec()),
            CipherSuite::Aes128CbcExplicitIv => {
                if body.len() < IV_LEN + MAC_LEN {
                    return Err(RecordError::TooShort);
                }
                let mut iv = [0u8; IV_LEN];
                iv.copy_from_slice(&body[..IV_LEN]);
                let plaintext_mac = cbc::decrypt(&self.enc_key, &iv, &body[IV_LEN..])
                    .map_err(|_| RecordError::BadRecord)?;
                if plaintext_mac.len() < MAC_LEN {
                    return Err(RecordError::BadRecord);
                }
                let (plaintext, mac) = plaintext_mac.split_at(plaintext_mac.len() - MAC_LEN);
                let expected = self.compute_mac(record_number, header.content_type, plaintext);
                if !constant_time_eq(mac, &expected) {
                    return Err(RecordError::BadRecord);
                }
                Ok(plaintext.to_vec())
            }
            CipherSuite::Aes128CbcChainedIv => {
                if body.len() < IV_LEN + MAC_LEN {
                    return Err(RecordError::TooShort);
                }
                let iv = self.chain_iv;
                let plaintext_mac =
                    cbc::decrypt(&self.enc_key, &iv, body).map_err(|_| RecordError::BadRecord)?;
                if plaintext_mac.len() < MAC_LEN {
                    return Err(RecordError::BadRecord);
                }
                let (plaintext, mac) = plaintext_mac.split_at(plaintext_mac.len() - MAC_LEN);
                let expected = self.compute_mac(record_number, header.content_type, plaintext);
                if !constant_time_eq(mac, &expected) {
                    return Err(RecordError::BadRecord);
                }
                self.chain_iv.copy_from_slice(&body[body.len() - IV_LEN..]);
                Ok(plaintext.to_vec())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn protection(suite: CipherSuite) -> (RecordProtection, RecordProtection) {
        let enc = *b"0123456789abcdef";
        let mac = [7u8; 32];
        (
            RecordProtection::new(suite, enc, mac, VERSION_TLS11),
            RecordProtection::new(suite, enc, mac, VERSION_TLS11),
        )
    }

    fn split(wire: &[u8]) -> (RecordHeader, &[u8]) {
        let h = RecordHeader::decode(wire).unwrap();
        (h, &wire[RECORD_HEADER_LEN..])
    }

    #[test]
    fn header_roundtrip_and_plausibility() {
        let h = RecordHeader {
            content_type: CONTENT_APPLICATION_DATA,
            version: VERSION_TLS11,
            length: 1234,
        };
        assert_eq!(RecordHeader::decode(&h.encode()), Some(h));
        assert!(h.is_plausible(VERSION_TLS11));
        assert!(!h.is_plausible(VERSION_TLS10));
        let bad = RecordHeader {
            content_type: 99,
            ..h
        };
        assert!(!bad.is_plausible(VERSION_TLS11));
        let too_long = RecordHeader {
            length: MAX_RECORD_LEN + 1,
            ..h
        };
        assert!(!too_long.is_plausible(VERSION_TLS11));
        assert!(RecordHeader::decode(&[1, 2, 3]).is_none());
    }

    #[test]
    fn explicit_iv_seal_open_roundtrip() {
        let (mut tx, mut rx) = protection(CipherSuite::Aes128CbcExplicitIv);
        for n in 0..10u64 {
            let msg = format!("record number {n}");
            let wire = tx.seal(n, CONTENT_APPLICATION_DATA, msg.as_bytes());
            let (h, body) = split(&wire);
            assert_eq!(h.length, body.len());
            let plain = rx.open(n, &h, body).unwrap();
            assert_eq!(plain, msg.as_bytes());
        }
    }

    #[test]
    fn explicit_iv_records_decrypt_out_of_order() {
        let (mut tx, mut rx) = protection(CipherSuite::Aes128CbcExplicitIv);
        let wires: Vec<Vec<u8>> = (0..5u64)
            .map(|n| tx.seal(n, CONTENT_APPLICATION_DATA, format!("msg{n}").as_bytes()))
            .collect();
        // Open in reverse order: must still verify.
        for n in (0..5u64).rev() {
            let (h, body) = split(&wires[n as usize]);
            assert_eq!(rx.open(n, &h, body).unwrap(), format!("msg{n}").as_bytes());
        }
    }

    #[test]
    fn chained_iv_records_fail_out_of_order() {
        let (mut tx, mut rx) = protection(CipherSuite::Aes128CbcChainedIv);
        let w0 = tx.seal(0, CONTENT_APPLICATION_DATA, b"first record");
        let w1 = tx.seal(1, CONTENT_APPLICATION_DATA, b"second record");
        // Skipping record 0 leaves the receiver's chain IV wrong for record 1.
        let (h1, b1) = split(&w1);
        assert!(rx.open(1, &h1, b1).is_err());
        // In order, both open fine.
        let (mut _tx2, mut rx2) = protection(CipherSuite::Aes128CbcChainedIv);
        let (h0, b0) = split(&w0);
        assert_eq!(rx2.open(0, &h0, b0).unwrap(), b"first record");
        let (h1, b1) = split(&w1);
        assert_eq!(rx2.open(1, &h1, b1).unwrap(), b"second record");
    }

    #[test]
    fn wrong_record_number_fails_mac() {
        let (mut tx, mut rx) = protection(CipherSuite::Aes128CbcExplicitIv);
        let wire = tx.seal(5, CONTENT_APPLICATION_DATA, b"tied to number five");
        let (h, body) = split(&wire);
        assert_eq!(rx.open(4, &h, body), Err(RecordError::BadRecord));
        assert_eq!(rx.open(6, &h, body), Err(RecordError::BadRecord));
        assert!(rx.open(5, &h, body).is_ok());
    }

    #[test]
    fn tampered_ciphertext_fails_mac() {
        let (mut tx, mut rx) = protection(CipherSuite::Aes128CbcExplicitIv);
        let mut wire = tx.seal(0, CONTENT_APPLICATION_DATA, b"integrity protected");
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        let (h, body) = split(&wire);
        assert_eq!(rx.open(0, &h, body), Err(RecordError::BadRecord));
    }

    #[test]
    fn wrong_content_type_fails_mac() {
        let (mut tx, mut rx) = protection(CipherSuite::Aes128CbcExplicitIv);
        let wire = tx.seal(0, CONTENT_APPLICATION_DATA, b"typed");
        let (mut h, body) = split(&wire);
        h.content_type = CONTENT_HANDSHAKE;
        assert_eq!(rx.open(0, &h, body), Err(RecordError::BadRecord));
    }

    #[test]
    fn null_suite_passes_plaintext() {
        let (mut tx, mut rx) = protection(CipherSuite::Null);
        let wire = tx.seal(0, CONTENT_HANDSHAKE, b"hello unprotected");
        let (h, body) = split(&wire);
        assert_eq!(rx.open(0, &h, body).unwrap(), b"hello unprotected");
        assert!(!CipherSuite::Null.supports_out_of_order());
        assert!(CipherSuite::Aes128CbcExplicitIv.supports_out_of_order());
        assert!(!CipherSuite::Aes128CbcChainedIv.supports_out_of_order());
    }

    #[test]
    fn record_expansion_is_bounded() {
        let (mut tx, _) = protection(CipherSuite::Aes128CbcExplicitIv);
        let payload = vec![0u8; 1400];
        let wire = tx.seal(0, CONTENT_APPLICATION_DATA, &payload);
        // Header + IV + padding + MAC: well under 10% for MTU-sized records.
        let overhead = wire.len() - payload.len();
        assert!(overhead <= RECORD_HEADER_LEN + IV_LEN + MAC_LEN + 16);
    }
}
