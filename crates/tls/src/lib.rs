//! # minion-tls
//!
//! A TLS-1.1-style record layer and the **uTLS** out-of-order receiver from
//! the Minion paper (§6): records are located in arbitrary stream fragments
//! by scanning for plausible 5-byte headers, their record numbers are
//! predicted from byte offsets, and every guess is confirmed by the record
//! MAC before delivery — producing a secure datagram service whose wire
//! format is unchanged from stream TLS.
//!
//! The handshake is a simplified pre-shared-key exchange (see DESIGN.md);
//! everything at and below the record layer — header format, explicit IVs,
//! MAC-then-encrypt, sequence-numbered MAC pseudo-header, ciphersuite
//! negotiation constraints — follows the TLS structure the paper relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod record;
pub mod session;
pub mod utls;

pub use record::{
    CipherSuite, RecordError, RecordHeader, RecordProtection, CONTENT_APPLICATION_DATA,
    CONTENT_HANDSHAKE, IV_LEN, MAC_LEN, MAX_RECORD_LEN, RECORD_HEADER_LEN, VERSION_TLS10,
    VERSION_TLS11,
};
pub use session::{Role, TlsConfig, TlsError, TlsSession};
pub use utls::{UtlsReceiver, UtlsRecord, UtlsStats};
