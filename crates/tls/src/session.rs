//! A TLS-style session: simplified PSK handshake, key schedule, and in-order
//! record protection — the baseline "stream TLS" that uTLS is compared
//! against, and the component that produces the wire bytes uTLS later
//! recovers out of order.
//!
//! The handshake replaces TLS's public-key exchange with a pre-shared-key
//! exchange (two `ClientHello`/`ServerHello`-style messages carrying random
//! nonces); see DESIGN.md for why this substitution preserves the behaviour
//! the paper evaluates. Everything downstream of the handshake — record
//! framing, MAC pseudo-header with an implicit record number, explicit IVs,
//! MAC-then-encrypt — follows the TLS 1.1 structure.

use crate::record::{
    CipherSuite, RecordHeader, RecordProtection, CONTENT_APPLICATION_DATA, CONTENT_HANDSHAKE,
    RECORD_HEADER_LEN, VERSION_TLS11,
};
use minion_crypto::prf::{master_secret, KeyBlock};
use minion_simnet::SimRng;

/// Configuration of a TLS session.
#[derive(Clone, Debug)]
pub struct TlsConfig {
    /// Ciphersuite negotiated for application data.
    pub suite: CipherSuite,
    /// Maximum plaintext bytes per application record.
    pub max_record_payload: usize,
    /// Protocol version advertised in record headers.
    pub version: (u8, u8),
}

impl Default for TlsConfig {
    fn default() -> Self {
        TlsConfig {
            suite: CipherSuite::Aes128CbcExplicitIv,
            max_record_payload: 16 * 1024,
            version: VERSION_TLS11,
        }
    }
}

/// Which side of the connection this session is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The connection initiator.
    Client,
    /// The connection acceptor.
    Server,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum HandshakeState {
    /// Client: hello not yet sent. Server: waiting for the client hello.
    Start,
    /// Client: hello sent, waiting for the server hello.
    WaitServerHello,
    /// Keys derived; application data may flow.
    Established,
}

/// Errors from the TLS session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlsError {
    /// Handshake data was malformed.
    BadHandshake,
    /// An application record failed authentication.
    BadRecord,
    /// Operation requires an established session.
    NotEstablished,
}

impl std::fmt::Display for TlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TlsError::BadHandshake => write!(f, "malformed handshake message"),
            TlsError::BadRecord => write!(f, "record failed authentication"),
            TlsError::NotEstablished => write!(f, "session not established"),
        }
    }
}

impl std::error::Error for TlsError {}

const HELLO_MAGIC: &[u8; 4] = b"MHLO";
const RANDOM_LEN: usize = 32;

/// A TLS session endpoint.
pub struct TlsSession {
    role: Role,
    config: TlsConfig,
    psk: Vec<u8>,
    state: HandshakeState,
    local_random: [u8; RANDOM_LEN],
    peer_random: Option<[u8; RANDOM_LEN]>,
    /// Handshake-phase (null) protection used before keys are derived.
    handshake_tx: RecordProtection,
    handshake_rx: RecordProtection,
    tx: Option<RecordProtection>,
    rx: Option<RecordProtection>,
    tx_record_number: u64,
    rx_record_number: u64,
    /// Reassembly buffer for in-order record parsing.
    inbuf: Vec<u8>,
    /// Bytes queued for transmission (handshake responses).
    outbuf: Vec<u8>,
    /// Number of incoming stream bytes consumed by the handshake; application
    /// records start at this stream offset (needed by the uTLS receiver).
    rx_handshake_bytes: u64,
    /// Number of outgoing stream bytes produced by the handshake.
    tx_handshake_bytes: u64,
}

impl TlsSession {
    fn new(role: Role, psk: &[u8], config: TlsConfig, seed: u64) -> Self {
        let mut rng = SimRng::new(seed).fork(match role {
            Role::Client => "tls-client",
            Role::Server => "tls-server",
        });
        let mut local_random = [0u8; RANDOM_LEN];
        rng.fill_bytes(&mut local_random);
        let null_tx = RecordProtection::new(CipherSuite::Null, [0; 16], [0; 32], config.version);
        let null_rx = RecordProtection::new(CipherSuite::Null, [0; 16], [0; 32], config.version);
        TlsSession {
            role,
            config,
            psk: psk.to_vec(),
            state: HandshakeState::Start,
            local_random,
            peer_random: None,
            handshake_tx: null_tx,
            handshake_rx: null_rx,
            tx: None,
            rx: None,
            tx_record_number: 0,
            rx_record_number: 0,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            rx_handshake_bytes: 0,
            tx_handshake_bytes: 0,
        }
    }

    /// Create a client session. The client hello is queued immediately and
    /// available from [`take_outgoing`](Self::take_outgoing).
    pub fn client(psk: &[u8], config: TlsConfig, seed: u64) -> Self {
        let mut s = TlsSession::new(Role::Client, psk, config, seed);
        let hello = s.make_hello();
        s.outbuf.extend_from_slice(&hello);
        s.tx_handshake_bytes = hello.len() as u64;
        s.state = HandshakeState::WaitServerHello;
        s
    }

    /// Create a server session, which waits for the client hello.
    pub fn server(psk: &[u8], config: TlsConfig, seed: u64) -> Self {
        TlsSession::new(Role::Server, psk, config, seed)
    }

    /// The session's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The negotiated ciphersuite.
    pub fn suite(&self) -> CipherSuite {
        self.config.suite
    }

    /// Whether the handshake has completed.
    pub fn is_established(&self) -> bool {
        self.state == HandshakeState::Established
    }

    /// Incoming stream offset at which application records begin.
    pub fn rx_app_start_offset(&self) -> u64 {
        self.rx_handshake_bytes
    }

    /// Outgoing stream offset at which application records begin.
    pub fn tx_app_start_offset(&self) -> u64 {
        self.tx_handshake_bytes
    }

    /// Number of application records sent so far.
    pub fn tx_record_count(&self) -> u64 {
        self.tx_record_number
    }

    /// Number of application records delivered in order so far.
    pub fn rx_record_count(&self) -> u64 {
        self.rx_record_number
    }

    fn make_hello(&mut self) -> Vec<u8> {
        let mut body = Vec::with_capacity(4 + RANDOM_LEN + 1);
        body.extend_from_slice(HELLO_MAGIC);
        body.extend_from_slice(&self.local_random);
        body.push(match self.config.suite {
            CipherSuite::Null => 0,
            CipherSuite::Aes128CbcExplicitIv => 1,
            CipherSuite::Aes128CbcChainedIv => 2,
        });
        self.handshake_tx.seal(0, CONTENT_HANDSHAKE, &body)
    }

    fn derive_keys(&mut self) {
        let (client_random, server_random) = match self.role {
            Role::Client => (self.local_random, self.peer_random.expect("peer random")),
            Role::Server => (self.peer_random.expect("peer random"), self.local_random),
        };
        let ms = master_secret(&self.psk, &client_random, &server_random);
        let kb = KeyBlock::derive(&ms, &client_random, &server_random);
        let (tx_enc, tx_mac, rx_enc, rx_mac) = match self.role {
            Role::Client => (
                kb.client_enc_key,
                kb.client_mac_key,
                kb.server_enc_key,
                kb.server_mac_key,
            ),
            Role::Server => (
                kb.server_enc_key,
                kb.server_mac_key,
                kb.client_enc_key,
                kb.client_mac_key,
            ),
        };
        self.tx = Some(RecordProtection::new(
            self.config.suite,
            tx_enc,
            tx_mac,
            self.config.version,
        ));
        self.rx = Some(RecordProtection::new(
            self.config.suite,
            rx_enc,
            rx_mac,
            self.config.version,
        ));
        self.state = HandshakeState::Established;
    }

    /// Clone of the receive-direction record protection, for handing to a
    /// [`crate::utls::UtlsReceiver`].
    pub fn rx_protection(&self) -> Option<RecordProtection> {
        self.rx.clone()
    }

    /// Feed bytes received in order from the transport.
    ///
    /// During the handshake this may queue response bytes (fetch them with
    /// [`take_outgoing`](Self::take_outgoing)). After establishment, complete
    /// application records are decrypted and returned by
    /// [`read_datagrams`](Self::read_datagrams).
    pub fn push_incoming(&mut self, data: &[u8]) -> Result<(), TlsError> {
        self.inbuf.extend_from_slice(data);
        self.process_handshake()
    }

    fn process_handshake(&mut self) -> Result<(), TlsError> {
        while self.state != HandshakeState::Established {
            let Some(header) = RecordHeader::decode(&self.inbuf) else {
                return Ok(());
            };
            if self.inbuf.len() < RECORD_HEADER_LEN + header.length {
                return Ok(());
            }
            if header.content_type != CONTENT_HANDSHAKE {
                return Err(TlsError::BadHandshake);
            }
            let body: Vec<u8> = self
                .inbuf
                .drain(..RECORD_HEADER_LEN + header.length)
                .skip(RECORD_HEADER_LEN)
                .collect();
            self.rx_handshake_bytes += (RECORD_HEADER_LEN + header.length) as u64;
            let plain = self
                .handshake_rx
                .open(0, &header, &body)
                .map_err(|_| TlsError::BadHandshake)?;
            if plain.len() < 4 + RANDOM_LEN + 1 || &plain[..4] != HELLO_MAGIC {
                return Err(TlsError::BadHandshake);
            }
            let mut random = [0u8; RANDOM_LEN];
            random.copy_from_slice(&plain[4..4 + RANDOM_LEN]);
            self.peer_random = Some(random);

            match (self.role, self.state) {
                (Role::Server, HandshakeState::Start) => {
                    let hello = self.make_hello();
                    self.tx_handshake_bytes = hello.len() as u64;
                    self.outbuf.extend_from_slice(&hello);
                    self.derive_keys();
                }
                (Role::Client, HandshakeState::WaitServerHello) => {
                    self.derive_keys();
                }
                _ => return Err(TlsError::BadHandshake),
            }
        }
        Ok(())
    }

    /// Take bytes queued for transmission (handshake messages).
    pub fn take_outgoing(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.outbuf)
    }

    /// Protect one application datagram as a single record, returning the
    /// wire bytes to write to the transport.
    pub fn seal_datagram(&mut self, data: &[u8]) -> Result<Vec<u8>, TlsError> {
        if self.state != HandshakeState::Established {
            return Err(TlsError::NotEstablished);
        }
        assert!(
            data.len() <= self.config.max_record_payload,
            "datagram exceeds the maximum record payload"
        );
        let tx = self.tx.as_mut().expect("established");
        let wire = tx.seal(self.tx_record_number, CONTENT_APPLICATION_DATA, data);
        self.tx_record_number += 1;
        Ok(wire)
    }

    /// Decrypt and return all complete application records available in the
    /// in-order receive buffer (standard TLS delivery).
    pub fn read_datagrams(&mut self) -> Result<Vec<Vec<u8>>, TlsError> {
        if self.state != HandshakeState::Established {
            return Ok(vec![]);
        }
        let mut out = Vec::new();
        while let Some(header) = RecordHeader::decode(&self.inbuf) {
            if self.inbuf.len() < RECORD_HEADER_LEN + header.length {
                break;
            }
            let body: Vec<u8> = self
                .inbuf
                .drain(..RECORD_HEADER_LEN + header.length)
                .skip(RECORD_HEADER_LEN)
                .collect();
            let rx = self.rx.as_mut().expect("established");
            let plain = rx
                .open(self.rx_record_number, &header, &body)
                .map_err(|_| TlsError::BadRecord)?;
            self.rx_record_number += 1;
            out.push(plain);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handshake(suite: CipherSuite) -> (TlsSession, TlsSession) {
        let config = TlsConfig {
            suite,
            ..TlsConfig::default()
        };
        let mut client = TlsSession::client(b"shared secret", config.clone(), 1);
        let mut server = TlsSession::server(b"shared secret", config, 2);
        let c_hello = client.take_outgoing();
        server.push_incoming(&c_hello).unwrap();
        let s_hello = server.take_outgoing();
        client.push_incoming(&s_hello).unwrap();
        assert!(client.is_established());
        assert!(server.is_established());
        (client, server)
    }

    #[test]
    fn handshake_establishes_both_sides() {
        let (client, server) = handshake(CipherSuite::Aes128CbcExplicitIv);
        assert_eq!(client.role(), Role::Client);
        assert_eq!(server.role(), Role::Server);
        assert!(client.rx_app_start_offset() > 0);
        assert_eq!(client.rx_app_start_offset(), server.tx_app_start_offset());
        assert_eq!(server.rx_app_start_offset(), client.tx_app_start_offset());
    }

    #[test]
    fn datagrams_roundtrip_in_order() {
        let (mut client, mut server) = handshake(CipherSuite::Aes128CbcExplicitIv);
        let mut wire = Vec::new();
        for i in 0..20u32 {
            let msg = format!("application datagram {i}");
            wire.extend_from_slice(&client.seal_datagram(msg.as_bytes()).unwrap());
        }
        // Deliver in odd-sized pieces to exercise record reassembly.
        for chunk in wire.chunks(313) {
            server.push_incoming(chunk).unwrap();
        }
        let got = server.read_datagrams().unwrap();
        assert_eq!(got.len(), 20);
        assert_eq!(got[7], b"application datagram 7");
        assert_eq!(server.rx_record_count(), 20);
    }

    #[test]
    fn both_directions_are_independent() {
        let (mut client, mut server) = handshake(CipherSuite::Aes128CbcExplicitIv);
        let c2s = client.seal_datagram(b"from client").unwrap();
        let s2c = server.seal_datagram(b"from server").unwrap();
        assert_ne!(c2s, s2c);
        server.push_incoming(&c2s).unwrap();
        client.push_incoming(&s2c).unwrap();
        assert_eq!(
            server.read_datagrams().unwrap(),
            vec![b"from client".to_vec()]
        );
        assert_eq!(
            client.read_datagrams().unwrap(),
            vec![b"from server".to_vec()]
        );
    }

    #[test]
    fn wrong_psk_causes_record_failure() {
        let config = TlsConfig::default();
        let mut client = TlsSession::client(b"secret A", config.clone(), 1);
        let mut server = TlsSession::server(b"secret B", config, 2);
        let c_hello = client.take_outgoing();
        server.push_incoming(&c_hello).unwrap();
        let s_hello = server.take_outgoing();
        client.push_incoming(&s_hello).unwrap();
        // The handshake itself completes (nonces are public), but the derived
        // keys differ, so the first protected record fails to authenticate.
        let wire = client.seal_datagram(b"secret message").unwrap();
        server.push_incoming(&wire).unwrap();
        assert_eq!(server.read_datagrams(), Err(TlsError::BadRecord));
    }

    #[test]
    fn seal_before_established_is_rejected() {
        let mut s = TlsSession::server(b"k", TlsConfig::default(), 3);
        assert_eq!(s.seal_datagram(b"x"), Err(TlsError::NotEstablished));
        assert!(!s.is_established());
    }

    #[test]
    fn chained_iv_suite_also_works_in_order() {
        let (mut client, mut server) = handshake(CipherSuite::Aes128CbcChainedIv);
        let mut wire = Vec::new();
        for i in 0..5u32 {
            wire.extend_from_slice(&client.seal_datagram(format!("m{i}").as_bytes()).unwrap());
        }
        server.push_incoming(&wire).unwrap();
        assert_eq!(server.read_datagrams().unwrap().len(), 5);
    }

    #[test]
    fn tls_bandwidth_overhead_is_under_ten_percent_for_mtu_records() {
        // The paper reports TLS adds up to 10% bandwidth overhead (headers,
        // IVs, MACs) and uTLS adds none beyond that.
        let (mut client, _server) = handshake(CipherSuite::Aes128CbcExplicitIv);
        let payload = vec![0u8; 1400];
        let wire = client.seal_datagram(&payload).unwrap();
        let overhead = (wire.len() - payload.len()) as f64 / payload.len() as f64;
        assert!(overhead < 0.10, "overhead={overhead}");
    }
}
