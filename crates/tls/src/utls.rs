//! uTLS: out-of-order record recovery from the unmodified TLS wire format
//! (paper §6).
//!
//! The receiver gets arbitrary fragments of the TCP byte stream (from uTCP's
//! unordered delivery) and must recover complete TLS records from them
//! without any framing help:
//!
//! 1. **Locate record headers** — scan the fragment for 5-byte sequences that
//!    are *plausible* headers (right content type, version, sane length).
//!    False positives are possible since ciphertext can contain anything.
//! 2. **Predict the record number** — the MAC covers an implicit per-record
//!    sequence number, but holes earlier in the stream hide how many records
//!    precede an out-of-order fragment. The receiver estimates the number
//!    from the byte offset and the running average record size, and tries a
//!    small window of adjacent candidates.
//! 3. **Confirm with the MAC** — a candidate (header position, record
//!    number) pair is accepted only if the record decrypts and its MAC
//!    verifies; the MAC's unforgeability makes accidental false positives as
//!    hard as deliberate forgeries.
//!
//! Records that cannot be confirmed out of order are still delivered later
//! in order, exactly as standard TLS would.

use crate::record::{RecordHeader, RecordProtection, RECORD_HEADER_LEN};
use std::collections::{BTreeMap, BTreeSet};

/// A record recovered by the uTLS receiver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UtlsRecord {
    /// The TLS record number confirmed by the MAC.
    pub record_number: u64,
    /// Stream offset (relative to the start of application data) of the
    /// record's header.
    pub stream_offset: u64,
    /// Whether the record was recovered out of order (ahead of a hole).
    pub out_of_order: bool,
    /// The decrypted payload.
    pub payload: Vec<u8>,
}

/// Counters describing the receiver's work, used by the Figure 6(b) CPU-cost
/// analysis and the prediction ablation bench.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UtlsStats {
    /// Plausible headers found while scanning out-of-order fragments.
    pub candidate_headers: u64,
    /// Decrypt+MAC attempts made to confirm candidates.
    pub mac_attempts: u64,
    /// Candidates rejected by the MAC (false positives or wrong number).
    pub rejected_candidates: u64,
    /// Records delivered out of order.
    pub out_of_order_delivered: u64,
    /// Records delivered in order.
    pub in_order_delivered: u64,
    /// Records whose number prediction needed a non-zero offset to succeed.
    pub prediction_misses: u64,
    /// Records that could not be recovered out of order at all (delivered
    /// later in order instead).
    pub prediction_failures: u64,
}

/// The out-of-order TLS record receiver.
pub struct UtlsReceiver {
    protection: RecordProtection,
    /// Fragment store: contiguous runs of the ciphertext stream, keyed by
    /// stream offset (relative to the start of application data).
    fragments: BTreeMap<u64, Vec<u8>>,
    /// Offsets of records already delivered (either path), to suppress
    /// duplicate delivery when holes later fill.
    delivered_offsets: BTreeSet<u64>,
    /// Stream offset up to which in-order processing has consumed records.
    in_order_offset: u64,
    /// Record number of the next in-order record.
    next_record_number: u64,
    /// Confirmed (offset → record number) anchors from out-of-order
    /// deliveries, used to improve later predictions.
    anchors: BTreeMap<u64, u64>,
    /// Exponentially-weighted average wire length of confirmed records.
    avg_record_wire_len: f64,
    /// How many candidate record numbers to try on each side of the estimate.
    prediction_window: u64,
    /// Whether out-of-order recovery is enabled (disabled for the null
    /// ciphersuite, §6.1).
    out_of_order_enabled: bool,
    stats: UtlsStats,
}

impl UtlsReceiver {
    /// Create a receiver from the session's receive-direction protection.
    ///
    /// `prediction_window` is the number of candidate record numbers tried on
    /// each side of the estimate (the paper's "may try several adjacent
    /// record numbers"); 8 is a good default.
    pub fn new(protection: RecordProtection, prediction_window: u64) -> Self {
        let out_of_order_enabled = protection.suite().supports_out_of_order();
        UtlsReceiver {
            protection,
            fragments: BTreeMap::new(),
            delivered_offsets: BTreeSet::new(),
            in_order_offset: 0,
            next_record_number: 0,
            anchors: BTreeMap::new(),
            avg_record_wire_len: 512.0,
            prediction_window,
            out_of_order_enabled,
            stats: UtlsStats::default(),
        }
    }

    /// Whether out-of-order recovery is active.
    pub fn out_of_order_enabled(&self) -> bool {
        self.out_of_order_enabled
    }

    /// Receiver statistics.
    pub fn stats(&self) -> &UtlsStats {
        &self.stats
    }

    /// Bytes currently buffered in the fragment store.
    pub fn buffered_bytes(&self) -> usize {
        self.fragments.values().map(|v| v.len()).sum()
    }

    /// Stream offset up to which records have been consumed in order.
    pub fn in_order_offset(&self) -> u64 {
        self.in_order_offset
    }

    /// Ingest a fragment of the application-data byte stream at the given
    /// offset (relative to the start of application data) and return every
    /// record that can now be delivered.
    pub fn on_fragment(&mut self, offset: u64, data: &[u8]) -> Vec<UtlsRecord> {
        if data.is_empty() {
            return vec![];
        }
        self.insert_fragment(offset, data);
        let mut out = Vec::new();
        self.process_in_order(&mut out);
        if self.out_of_order_enabled {
            self.process_out_of_order(&mut out);
        }
        out
    }

    fn insert_fragment(&mut self, offset: u64, data: &[u8]) {
        let mut start = offset;
        let mut buf = data.to_vec();
        if let Some((&pstart, pdata)) = self.fragments.range(..=start).next_back() {
            let pend = pstart + pdata.len() as u64;
            if pend >= start {
                let keep = (start - pstart) as usize;
                let mut merged = pdata[..keep].to_vec();
                merged.extend_from_slice(&buf);
                let new_end = start + buf.len() as u64;
                if pend > new_end {
                    merged.extend_from_slice(&pdata[(new_end - pstart) as usize..]);
                }
                start = pstart;
                buf = merged;
                self.fragments.remove(&pstart);
            }
        }
        let mut end = start + buf.len() as u64;
        // Not a `while let`: the range borrow must end before `remove()`.
        #[allow(clippy::while_let_loop)]
        loop {
            let Some((&sstart, sdata)) = self.fragments.range(start..).next() else {
                break;
            };
            if sstart > end {
                break;
            }
            let send = sstart + sdata.len() as u64;
            if send > end {
                let skip = (end - sstart) as usize;
                buf.extend_from_slice(&sdata[skip..]);
                end = send;
            }
            self.fragments.remove(&sstart);
        }
        self.fragments.insert(start, buf);
    }

    /// Contiguous data available at `offset`, if any.
    fn run_at(&self, offset: u64) -> Option<(u64, &[u8])> {
        let (&start, data) = self.fragments.range(..=offset).next_back()?;
        let end = start + data.len() as u64;
        if offset < end {
            Some((start, data))
        } else {
            None
        }
    }

    fn note_record_len(&mut self, wire_len: usize) {
        self.avg_record_wire_len = 0.875 * self.avg_record_wire_len + 0.125 * wire_len as f64;
    }

    /// Process records at the in-order point (standard TLS processing).
    fn process_in_order(&mut self, out: &mut Vec<UtlsRecord>) {
        loop {
            let Some((run_start, run)) = self.run_at(self.in_order_offset) else {
                return;
            };
            let local = (self.in_order_offset - run_start) as usize;
            let slice = &run[local..];
            let Some(header) = RecordHeader::decode(slice) else {
                return;
            };
            if slice.len() < RECORD_HEADER_LEN + header.length {
                return;
            }
            let body = slice[RECORD_HEADER_LEN..RECORD_HEADER_LEN + header.length].to_vec();
            let record_number = self.next_record_number;
            let offset = self.in_order_offset;
            let wire_len = RECORD_HEADER_LEN + header.length;
            let result = self.protection.open(record_number, &header, &body);
            match result {
                Ok(payload) => {
                    self.note_record_len(wire_len);
                    self.next_record_number += 1;
                    self.in_order_offset += wire_len as u64;
                    self.anchors.insert(offset, record_number);
                    if self.delivered_offsets.insert(offset) {
                        self.stats.in_order_delivered += 1;
                        out.push(UtlsRecord {
                            record_number,
                            stream_offset: offset,
                            out_of_order: false,
                            payload,
                        });
                    }
                }
                Err(_) => {
                    // An in-order record that fails its MAC is a genuine
                    // protocol error in TLS; surface nothing and stop (the
                    // owning endpoint decides whether to abort).
                    return;
                }
            }
        }
    }

    /// Estimate the record number for a header found at `offset`.
    fn estimate_record_number(&self, offset: u64) -> u64 {
        // Use the nearest confirmed anchor at or below the offset, falling
        // back to the in-order point.
        let (anchor_off, anchor_num) = self
            .anchors
            .range(..=offset)
            .next_back()
            .map(|(&o, &n)| {
                // The anchor's own record spans some bytes; predictions start
                // after it.
                (o, n)
            })
            .unwrap_or((self.in_order_offset, self.next_record_number));
        if offset <= anchor_off {
            return anchor_num;
        }
        let gap = (offset - anchor_off) as f64;
        let estimated_records = (gap / self.avg_record_wire_len).round() as u64;
        anchor_num + estimated_records.max(if anchor_off == offset { 0 } else { 1 })
    }

    /// Scan fragments beyond the in-order point for recoverable records.
    fn process_out_of_order(&mut self, out: &mut Vec<UtlsRecord>) {
        // Collect candidate (stream_offset, header, body) tuples first to
        // avoid borrowing issues, then confirm each.
        let mut candidates: Vec<(u64, RecordHeader, Vec<u8>)> = Vec::new();
        let version = self.protection.version();
        for (&run_start, run) in self
            .fragments
            .range((self.in_order_offset + 1).saturating_sub(1)..)
        {
            // Only runs strictly beyond the in-order point are out of order;
            // the run containing the in-order point was handled above.
            if run_start <= self.in_order_offset {
                continue;
            }
            let mut i = 0usize;
            while i + RECORD_HEADER_LEN <= run.len() {
                let stream_offset = run_start + i as u64;
                if self.delivered_offsets.contains(&stream_offset) {
                    // Already delivered: skip its whole body if we can parse it.
                    if let Some(h) = RecordHeader::decode(&run[i..]) {
                        i += RECORD_HEADER_LEN + h.length.min(run.len() - i - RECORD_HEADER_LEN);
                        continue;
                    }
                }
                let Some(header) = RecordHeader::decode(&run[i..]) else {
                    break;
                };
                if header.is_plausible(version)
                    && i + RECORD_HEADER_LEN + header.length <= run.len()
                {
                    self.stats.candidate_headers += 1;
                    let body =
                        run[i + RECORD_HEADER_LEN..i + RECORD_HEADER_LEN + header.length].to_vec();
                    candidates.push((stream_offset, header, body));
                    // Tentatively skip past this candidate record; if it turns
                    // out to be a false positive we lose the chance to find a
                    // header hidden inside it this round, but it will be
                    // recovered in order later (same trade-off as the paper).
                    i += RECORD_HEADER_LEN + header.length;
                } else {
                    i += 1;
                }
            }
        }

        for (stream_offset, header, body) in candidates {
            if self.delivered_offsets.contains(&stream_offset) {
                continue;
            }
            let estimate = self.estimate_record_number(stream_offset);
            let mut confirmed: Option<(u64, Vec<u8>)> = None;
            let mut tried = 0u64;
            // Try the estimate first, then alternate outward: +1, -1, +2, -2…
            let mut offsets: Vec<i64> = vec![0];
            for d in 1..=self.prediction_window as i64 {
                offsets.push(d);
                offsets.push(-d);
            }
            for d in offsets {
                let candidate_number = if d >= 0 {
                    estimate.saturating_add(d as u64)
                } else {
                    match estimate.checked_sub((-d) as u64) {
                        Some(n) => n,
                        None => continue,
                    }
                };
                // Out-of-order records are necessarily at or beyond the next
                // in-order record number.
                if candidate_number < self.next_record_number {
                    continue;
                }
                self.stats.mac_attempts += 1;
                tried += 1;
                match self.protection.open(candidate_number, &header, &body) {
                    Ok(payload) => {
                        confirmed = Some((candidate_number, payload));
                        if d != 0 {
                            self.stats.prediction_misses += 1;
                        }
                        break;
                    }
                    Err(_) => {
                        self.stats.rejected_candidates += 1;
                    }
                }
            }
            match confirmed {
                Some((record_number, payload)) => {
                    self.note_record_len(RECORD_HEADER_LEN + header.length);
                    self.anchors.insert(stream_offset, record_number);
                    self.delivered_offsets.insert(stream_offset);
                    self.stats.out_of_order_delivered += 1;
                    out.push(UtlsRecord {
                        record_number,
                        stream_offset,
                        out_of_order: true,
                        payload,
                    });
                }
                None => {
                    if tried > 0 {
                        self.stats.prediction_failures += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CipherSuite, CONTENT_APPLICATION_DATA, VERSION_TLS11};

    fn sender_and_receiver(window: u64) -> (RecordProtection, UtlsReceiver) {
        let enc = *b"utls-enc-key-16b";
        let mac = [9u8; 32];
        let tx = RecordProtection::new(CipherSuite::Aes128CbcExplicitIv, enc, mac, VERSION_TLS11);
        let rx = RecordProtection::new(CipherSuite::Aes128CbcExplicitIv, enc, mac, VERSION_TLS11);
        (tx, UtlsReceiver::new(rx, window))
    }

    /// Build a wire stream of `n` records and return (stream, record byte
    /// ranges, payloads).
    #[allow(clippy::type_complexity)]
    fn build_stream(
        tx: &mut RecordProtection,
        payload_lens: &[usize],
    ) -> (Vec<u8>, Vec<(u64, u64)>, Vec<Vec<u8>>) {
        let mut stream = Vec::new();
        let mut ranges = Vec::new();
        let mut payloads = Vec::new();
        for (n, &len) in payload_lens.iter().enumerate() {
            let payload: Vec<u8> = (0..len).map(|i| ((i + n * 7) % 256) as u8).collect();
            let wire = tx.seal(n as u64, CONTENT_APPLICATION_DATA, &payload);
            let start = stream.len() as u64;
            stream.extend_from_slice(&wire);
            ranges.push((start, stream.len() as u64));
            payloads.push(payload);
        }
        (stream, ranges, payloads)
    }

    #[test]
    fn in_order_delivery_works_like_tls() {
        let (mut tx, mut rx) = sender_and_receiver(4);
        let (stream, _, payloads) = build_stream(&mut tx, &[100, 200, 300]);
        let mut got = Vec::new();
        let mut offset = 0u64;
        for chunk in stream.chunks(97) {
            got.extend(rx.on_fragment(offset, chunk));
            offset += chunk.len() as u64;
        }
        assert_eq!(got.len(), 3);
        for (i, rec) in got.iter().enumerate() {
            assert_eq!(rec.record_number, i as u64);
            assert!(!rec.out_of_order);
            assert_eq!(rec.payload, payloads[i]);
        }
        assert_eq!(rx.stats().in_order_delivered, 3);
        assert_eq!(rx.stats().out_of_order_delivered, 0);
    }

    #[test]
    fn record_after_a_hole_is_recovered_out_of_order() {
        let (mut tx, mut rx) = sender_and_receiver(4);
        let (stream, ranges, payloads) = build_stream(&mut tx, &[500, 600, 700]);
        // Deliver record 0, skip record 1, deliver record 2's bytes.
        let r0 = &stream[ranges[0].0 as usize..ranges[0].1 as usize];
        let r2 = &stream[ranges[2].0 as usize..ranges[2].1 as usize];
        let first = rx.on_fragment(0, r0);
        assert_eq!(first.len(), 1);
        assert!(!first[0].out_of_order);
        let second = rx.on_fragment(ranges[2].0, r2);
        assert_eq!(second.len(), 1, "record 2 delivered despite the hole");
        assert!(second[0].out_of_order);
        assert_eq!(second[0].record_number, 2);
        assert_eq!(second[0].payload, payloads[2]);
        // Now the hole fills: record 1 arrives and is delivered in order,
        // and record 2 is NOT delivered again.
        let r1 = &stream[ranges[1].0 as usize..ranges[1].1 as usize];
        let third = rx.on_fragment(ranges[1].0, r1);
        assert_eq!(third.len(), 1);
        assert_eq!(third[0].record_number, 1);
        assert!(!third[0].out_of_order);
        assert_eq!(rx.stats().out_of_order_delivered, 1);
        assert_eq!(rx.stats().in_order_delivered, 2);
    }

    #[test]
    fn record_number_prediction_copes_with_many_hidden_records() {
        let (mut tx, mut rx) = sender_and_receiver(8);
        // Records of uniform size so the estimate is accurate even when many
        // records are hidden in the hole.
        let lens: Vec<usize> = vec![400; 12];
        let (stream, ranges, payloads) = build_stream(&mut tx, &lens);
        // Deliver the first two records, then skip records 2..9 and deliver
        // records 9..12.
        rx.on_fragment(0, &stream[..ranges[1].1 as usize]);
        let tail_start = ranges[9].0;
        let recs = rx.on_fragment(tail_start, &stream[tail_start as usize..]);
        assert_eq!(recs.len(), 3);
        for (i, rec) in recs.iter().enumerate() {
            assert_eq!(rec.record_number, 9 + i as u64);
            assert!(rec.out_of_order);
            assert_eq!(rec.payload, payloads[9 + i]);
        }
    }

    #[test]
    fn variable_record_sizes_may_need_nonzero_prediction_offset() {
        let (mut tx, mut rx) = sender_and_receiver(8);
        // Wildly varying sizes make the byte-offset estimate imprecise.
        let lens = vec![100, 1500, 90, 1400, 80, 1300, 70, 1200, 60];
        let (stream, ranges, payloads) = build_stream(&mut tx, &lens);
        rx.on_fragment(0, &stream[..ranges[0].1 as usize]);
        // Skip records 1..7, deliver 7 and 8.
        let tail_start = ranges[7].0;
        let recs = rx.on_fragment(tail_start, &stream[tail_start as usize..]);
        assert_eq!(recs.len(), 2, "both tail records recovered");
        assert_eq!(recs[0].record_number, 7);
        assert_eq!(recs[0].payload, payloads[7]);
        assert_eq!(recs[1].record_number, 8);
    }

    #[test]
    fn prediction_window_of_zero_limits_recovery() {
        let (mut tx, mut rx) = sender_and_receiver(0);
        // With a zero window only the exact estimate is tried; highly
        // variable record sizes then cause some failures (delivered later in
        // order), mirroring the paper's fallback behaviour.
        let lens = vec![100, 1500, 90, 1400, 80, 1300, 70, 1200, 60, 50];
        let (stream, ranges, _payloads) = build_stream(&mut tx, &lens);
        rx.on_fragment(0, &stream[..ranges[0].1 as usize]);
        let tail_start = ranges[8].0;
        let recs = rx.on_fragment(tail_start, &stream[tail_start as usize..]);
        // Recovery is not guaranteed; what matters is no misdelivery.
        for r in &recs {
            assert!(r.record_number >= 8);
        }
        // Whatever could not be recovered is accounted for.
        let total = recs.len() as u64 + rx.stats().prediction_failures;
        assert_eq!(total, 2);
        // Once the hole fills, everything arrives in order exactly once.
        let filled = rx.on_fragment(ranges[0].1, &stream[ranges[0].1 as usize..]);
        let all_numbers: std::collections::BTreeSet<u64> = filled
            .iter()
            .chain(recs.iter())
            .map(|r| r.record_number)
            .collect();
        assert_eq!(
            all_numbers.len(),
            9,
            "records 1..=9 all delivered exactly once"
        );
    }

    #[test]
    fn null_suite_disables_out_of_order_recovery() {
        let tx_keys = (*b"utls-enc-key-16b", [9u8; 32]);
        let mut tx = RecordProtection::new(CipherSuite::Null, tx_keys.0, tx_keys.1, VERSION_TLS11);
        let rx_prot = RecordProtection::new(CipherSuite::Null, tx_keys.0, tx_keys.1, VERSION_TLS11);
        let mut rx = UtlsReceiver::new(rx_prot, 4);
        assert!(!rx.out_of_order_enabled());
        let (stream, ranges, _) = build_stream(&mut tx, &[100, 100, 100]);
        rx.on_fragment(0, &stream[..ranges[0].1 as usize]);
        // A fragment after a hole is NOT delivered early under the null suite.
        let recs = rx.on_fragment(ranges[2].0, &stream[ranges[2].0 as usize..]);
        assert!(recs.is_empty());
    }

    #[test]
    fn corrupted_fragment_is_never_misdelivered() {
        let (mut tx, mut rx) = sender_and_receiver(4);
        let (stream, ranges, _) = build_stream(&mut tx, &[300, 300, 300]);
        rx.on_fragment(0, &stream[..ranges[0].1 as usize]);
        // Corrupt record 2's body and deliver it out of order: the MAC check
        // must reject it (no delivery), because accepting a corrupted or
        // forged record would be a security failure.
        let mut corrupted = stream[ranges[2].0 as usize..ranges[2].1 as usize].to_vec();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0xA5;
        let recs = rx.on_fragment(ranges[2].0, &corrupted);
        assert!(recs.is_empty());
        assert!(rx.stats().rejected_candidates > 0);
    }

    #[test]
    fn duplicate_fragments_do_not_duplicate_deliveries() {
        let (mut tx, mut rx) = sender_and_receiver(4);
        let (stream, ranges, _) = build_stream(&mut tx, &[250, 250]);
        let r0 = &stream[..ranges[0].1 as usize];
        let once = rx.on_fragment(0, r0);
        let again = rx.on_fragment(0, r0);
        assert_eq!(once.len(), 1);
        assert!(again.is_empty(), "duplicate data is not redelivered");
    }

    #[test]
    fn empty_fragment_is_ignored() {
        let (_, mut rx) = sender_and_receiver(4);
        assert!(rx.on_fragment(0, &[]).is_empty());
        assert_eq!(rx.buffered_bytes(), 0);
    }
}
