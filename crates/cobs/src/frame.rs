//! Record framing on top of COBS encoding.
//!
//! uCOBS frames each datagram as `0x00 <COBS(data)> 0x00`: a marker byte on
//! *both* ends (paper §5.3). The double marker is what lets a receiver that
//! holds only a fragment of the stream decide that a record is complete: a
//! record is any maximal run of non-marker bytes bracketed by two markers
//! with no holes in between.
//!
//! This module provides the sender-side framer and a scanner that extracts
//! complete records from a contiguous stream fragment, reporting each
//! record's position so the caller (the uCOBS endpoint) can avoid delivering
//! the same record twice. A conventional length-prefixed (TLV) framer is also
//! provided as the in-order baseline used by the paper's comparison
//! experiments.

use crate::encode::{decode, encode, CobsError, MARKER};

/// Frame one datagram for transmission: `marker || COBS(data) || marker`.
pub fn frame_datagram(data: &[u8]) -> Vec<u8> {
    let encoded = encode(data);
    let mut out = Vec::with_capacity(encoded.len() + 2);
    out.push(MARKER);
    out.extend_from_slice(&encoded);
    out.push(MARKER);
    out
}

/// The framing overhead in bytes for a datagram of the given content.
pub fn framing_overhead(data: &[u8]) -> usize {
    frame_datagram(data).len() - data.len()
}

/// A record recovered from a stream fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScannedRecord {
    /// Offset within the *fragment* of the record's leading marker byte.
    pub start: usize,
    /// Offset within the fragment one past the record's trailing marker byte.
    pub end: usize,
    /// The decoded datagram.
    pub payload: Vec<u8>,
}

/// Scan a contiguous stream fragment for complete, properly delimited
/// records.
///
/// `is_stream_start` indicates that the fragment begins at stream offset 0
/// (or, more generally, at a point known to be a record boundary), in which
/// case a record needs no leading marker inside the fragment. Records whose
/// COBS content fails to decode are skipped (this can only happen if the
/// sender is not a uCOBS sender).
pub fn scan_records(fragment: &[u8], is_stream_start: bool) -> Vec<ScannedRecord> {
    let mut records = Vec::new();
    let mut i = 0;

    // Position of the marker (or known boundary) that could open a record.
    let mut open: Option<usize> = if is_stream_start { Some(0) } else { None };
    // Skip a leading marker if the fragment starts with one.
    while i < fragment.len() {
        if fragment[i] == MARKER {
            // This marker closes any open record and opens a new one.
            if let Some(start) = open {
                let content_start = if fragment.get(start) == Some(&MARKER) {
                    start + 1
                } else {
                    start
                };
                if content_start < i {
                    if let Ok(payload) = decode(&fragment[content_start..i]) {
                        records.push(ScannedRecord {
                            start,
                            end: i + 1,
                            payload,
                        });
                    }
                }
            }
            open = Some(i);
        }
        i += 1;
    }
    records
}

/// Decode the content between two markers directly (helper for callers that
/// have already located the delimiters).
pub fn decode_record(content: &[u8]) -> Result<Vec<u8>, CobsError> {
    decode(content)
}

/// A simple length-prefixed (type-length-value style) framer: the baseline
/// framing the paper contrasts with (§5.1, §9). It supports only in-order
/// parsing because a length prefix cannot be located inside an arbitrary
/// stream fragment.
#[derive(Clone, Debug, Default)]
pub struct TlvFramer {
    buffer: Vec<u8>,
}

impl TlvFramer {
    /// New, empty framer.
    pub fn new() -> Self {
        TlvFramer::default()
    }

    /// Frame a datagram: 4-byte big-endian length followed by the payload.
    pub fn frame(data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + data.len());
        out.extend_from_slice(&(data.len() as u32).to_be_bytes());
        out.extend_from_slice(data);
        out
    }

    /// Feed received in-order bytes to the deframer.
    pub fn push(&mut self, data: &[u8]) {
        self.buffer.extend_from_slice(data);
    }

    /// Pop the next complete datagram, if one has fully arrived.
    pub fn pop(&mut self) -> Option<Vec<u8>> {
        if self.buffer.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes([
            self.buffer[0],
            self.buffer[1],
            self.buffer[2],
            self.buffer[3],
        ]) as usize;
        if self.buffer.len() < 4 + len {
            return None;
        }
        let payload = self.buffer[4..4 + len].to_vec();
        self.buffer.drain(..4 + len);
        Some(payload)
    }

    /// Bytes buffered awaiting a complete record.
    pub fn pending_bytes(&self) -> usize {
        self.buffer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_has_markers_on_both_ends() {
        let f = frame_datagram(b"hello");
        assert_eq!(*f.first().unwrap(), MARKER);
        assert_eq!(*f.last().unwrap(), MARKER);
        assert!(f[1..f.len() - 1].iter().all(|&b| b != MARKER));
    }

    #[test]
    fn scan_recovers_back_to_back_records() {
        let mut stream = Vec::new();
        let records: Vec<Vec<u8>> = (0..5).map(|i| vec![i as u8 + 1; 10 * (i + 1)]).collect();
        for r in &records {
            stream.extend_from_slice(&frame_datagram(r));
        }
        let scanned = scan_records(&stream, true);
        let payloads: Vec<Vec<u8>> = scanned.iter().map(|r| r.payload.clone()).collect();
        assert_eq!(payloads, records);
    }

    #[test]
    fn scan_mid_stream_fragment_skips_partial_head_and_tail() {
        let a = frame_datagram(b"record-a");
        let b = frame_datagram(b"record-b");
        let c = frame_datagram(b"record-c");
        let mut stream = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);
        stream.extend_from_slice(&c);
        // Take a fragment that cuts into the middle of records a and c.
        let fragment = &stream[3..stream.len() - 3];
        let scanned = scan_records(fragment, false);
        // Only record b is recoverable: a's head and c's tail are missing.
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].payload, b"record-b");
    }

    #[test]
    fn scan_positions_are_fragment_relative() {
        let a = frame_datagram(b"xyz");
        let b = frame_datagram(b"pqr");
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        let scanned = scan_records(&stream, true);
        assert_eq!(scanned.len(), 2);
        assert_eq!(scanned[0].start, 0);
        assert_eq!(&stream[scanned[0].start..scanned[0].end], &a[..]);
        // The second record's leading marker is shared with the first
        // record's trailing marker region; its end must cover b entirely.
        assert_eq!(scanned[1].end, stream.len());
    }

    #[test]
    fn scan_handles_datagrams_containing_zero_bytes() {
        let payload = vec![0u8, 1, 0, 2, 0, 0, 3];
        let framed = frame_datagram(&payload);
        let scanned = scan_records(&framed, true);
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].payload, payload);
    }

    #[test]
    fn scan_without_stream_start_needs_leading_marker() {
        let framed = frame_datagram(b"only");
        // Drop the leading marker and claim we are mid-stream: the record
        // cannot be recovered because its start cannot be trusted.
        let scanned = scan_records(&framed[1..], false);
        assert!(scanned.is_empty());
        // With the stream-start hint it can.
        let scanned = scan_records(&framed[1..], true);
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].payload, b"only");
    }

    #[test]
    fn empty_fragment_scans_to_nothing() {
        assert!(scan_records(&[], true).is_empty());
        assert!(scan_records(&[], false).is_empty());
    }

    #[test]
    fn framing_overhead_is_small() {
        // 3 bytes of overhead for a short record: two markers + one code byte.
        assert_eq!(framing_overhead(b"hello"), 3);
        // Under 0.5% + 2 markers for large records.
        let big = vec![0xAAu8; 10_000];
        assert!(framing_overhead(&big) <= 2 + 10_000 / 254 + 1);
    }

    #[test]
    fn tlv_framer_roundtrip_and_partial_delivery() {
        let mut deframer = TlvFramer::new();
        let a = TlvFramer::frame(b"alpha");
        let b = TlvFramer::frame(b"beta");
        // Deliver in awkward split points.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        deframer.push(&all[..3]);
        assert!(deframer.pop().is_none());
        deframer.push(&all[3..10]);
        assert_eq!(deframer.pop().unwrap(), b"alpha");
        assert!(deframer.pop().is_none());
        deframer.push(&all[10..]);
        assert_eq!(deframer.pop().unwrap(), b"beta");
        assert!(deframer.pop().is_none());
        assert_eq!(deframer.pending_bytes(), 0);
    }

    #[test]
    fn tlv_framer_empty_payload() {
        let mut d = TlvFramer::new();
        d.push(&TlvFramer::frame(b""));
        assert_eq!(d.pop().unwrap(), Vec::<u8>::new());
    }
}
