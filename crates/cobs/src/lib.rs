//! # minion-cobs
//!
//! Consistent Overhead Byte Stuffing (COBS) encoding and the uCOBS record
//! framing built on it (paper §5): each datagram is COBS-encoded (removing
//! all zero bytes at ≤0.4% expansion) and bracketed by a zero marker byte on
//! *both* ends, making records self-delimiting and recoverable from
//! out-of-order TCP stream fragments. A length-prefixed (TLV) framer is also
//! provided as the in-order baseline used in the paper's comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;
pub mod frame;

pub use encode::{decode, encode, max_encoded_len, overhead_ratio, CobsError, MARKER};
pub use frame::{
    decode_record, frame_datagram, framing_overhead, scan_records, ScannedRecord, TlvFramer,
};
