//! Consistent Overhead Byte Stuffing (COBS), Cheshire & Baker 1997.
//!
//! COBS re-encodes an arbitrary byte string so that it contains no zero
//! bytes, at a worst-case expansion of one byte per 254 (≈0.4%). uCOBS uses
//! the freed-up zero byte value as a record delimiter that can be recognised
//! anywhere in a TCP stream, which is what makes records self-delimiting and
//! recoverable from out-of-order stream fragments (paper §5).

/// The byte value COBS removes from the encoded output and uCOBS uses as the
/// record delimiter.
pub const MARKER: u8 = 0x00;

/// Maximum number of non-zero bytes covered by one COBS code byte.
const MAX_RUN: usize = 254;

/// Errors produced when decoding malformed COBS data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CobsError {
    /// The encoded data contained a zero byte, which is reserved for
    /// delimiters and never appears in well-formed COBS output.
    UnexpectedMarker,
    /// A code byte pointed past the end of the input.
    Truncated,
}

impl std::fmt::Display for CobsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CobsError::UnexpectedMarker => write!(f, "unexpected zero byte inside COBS data"),
            CobsError::Truncated => write!(f, "COBS data truncated"),
        }
    }
}

impl std::error::Error for CobsError {}

/// Worst-case encoded size for a payload of `len` bytes.
pub fn max_encoded_len(len: usize) -> usize {
    len + len / MAX_RUN + 1
}

/// COBS-encode `input`. The output contains no zero bytes.
pub fn encode(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(max_encoded_len(input.len()));
    let mut code_idx = out.len();
    out.push(0); // placeholder for the first code byte
    let mut code: u8 = 1;

    for &b in input {
        if b == MARKER {
            out[code_idx] = code;
            code_idx = out.len();
            out.push(0);
            code = 1;
        } else {
            out.push(b);
            code += 1;
            if code == 0xFF {
                out[code_idx] = code;
                code_idx = out.len();
                out.push(0);
                code = 1;
            }
        }
    }
    out[code_idx] = code;
    out
}

/// Decode COBS-encoded data produced by [`encode`].
pub fn decode(input: &[u8]) -> Result<Vec<u8>, CobsError> {
    let mut out = Vec::with_capacity(input.len());
    let mut i = 0;
    while i < input.len() {
        let code = input[i];
        if code == MARKER {
            return Err(CobsError::UnexpectedMarker);
        }
        let run = code as usize - 1;
        if i + 1 + run > input.len() {
            return Err(CobsError::Truncated);
        }
        for &b in &input[i + 1..i + 1 + run] {
            if b == MARKER {
                return Err(CobsError::UnexpectedMarker);
            }
            out.push(b);
        }
        i += 1 + run;
        // A maximal code byte (0xFF) does not imply a following zero.
        if code != 0xFF && i < input.len() {
            out.push(MARKER);
        }
    }
    Ok(out)
}

/// The bandwidth-overhead ratio of encoding `payload_len` bytes: encoded
/// length divided by original length.
pub fn overhead_ratio(payload: &[u8]) -> f64 {
    if payload.is_empty() {
        return 1.0;
    }
    encode(payload).len() as f64 / payload.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference examples from the COBS paper / Wikipedia.
    #[test]
    fn known_vectors() {
        assert_eq!(encode(&[]), vec![0x01]);
        assert_eq!(encode(&[0x00]), vec![0x01, 0x01]);
        assert_eq!(encode(&[0x00, 0x00]), vec![0x01, 0x01, 0x01]);
        assert_eq!(
            encode(&[0x11, 0x22, 0x00, 0x33]),
            vec![0x03, 0x11, 0x22, 0x02, 0x33]
        );
        assert_eq!(
            encode(&[0x11, 0x22, 0x33, 0x44]),
            vec![0x05, 0x11, 0x22, 0x33, 0x44]
        );
        assert_eq!(
            encode(&[0x11, 0x00, 0x00, 0x00]),
            vec![0x02, 0x11, 0x01, 0x01, 0x01]
        );
    }

    #[test]
    fn encoded_output_never_contains_zero() {
        let mut data = Vec::new();
        for i in 0..2000u32 {
            data.push((i % 7) as u8); // plenty of zeros
        }
        let enc = encode(&data);
        assert!(enc.iter().all(|&b| b != MARKER));
    }

    #[test]
    fn roundtrip_various_sizes() {
        for len in [0usize, 1, 2, 253, 254, 255, 256, 508, 509, 1000, 4096] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 256) as u8).collect();
            let enc = encode(&data);
            let dec = decode(&enc).expect("valid encoding");
            assert_eq!(dec, data, "roundtrip failed for len={len}");
        }
    }

    #[test]
    fn roundtrip_all_zeros_and_no_zeros() {
        let zeros = vec![0u8; 1000];
        assert_eq!(decode(&encode(&zeros)).unwrap(), zeros);
        let nonzeros = vec![7u8; 1000];
        assert_eq!(decode(&encode(&nonzeros)).unwrap(), nonzeros);
    }

    #[test]
    fn worst_case_overhead_is_under_half_percent() {
        // Long zero-free payloads hit the 1-in-254 worst case.
        let data = vec![0xABu8; 100_000];
        let ratio = overhead_ratio(&data);
        assert!(ratio <= 1.004 + 1e-4, "ratio={ratio}");
        assert!(encode(&data).len() <= max_encoded_len(data.len()));
    }

    #[test]
    fn decode_rejects_embedded_zero() {
        assert_eq!(decode(&[0x02, 0x00]), Err(CobsError::UnexpectedMarker));
        assert_eq!(decode(&[0x00, 0x01]), Err(CobsError::UnexpectedMarker));
    }

    #[test]
    fn decode_rejects_truncation() {
        assert_eq!(decode(&[0x05, 0x11, 0x22]), Err(CobsError::Truncated));
        let full = encode(&[0x11u8; 300]);
        assert_eq!(decode(&full[..full.len() - 1]), Err(CobsError::Truncated));
    }

    #[test]
    fn empty_input_decodes_to_empty() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<u8>::new());
        assert_eq!(decode(&[]).unwrap(), Vec::<u8>::new());
    }
}
