//! Run the 1024-flow acceptance scenario twice (the determinism gate) and
//! print its one-line summary.
//!
//! ```sh
//! cargo run --release -p minion-engine --example smoke1k
//! ```

fn main() {
    let t0 = std::time::Instant::now();
    let report = minion_engine::verify_load(&minion_engine::LoadScenario::smoke_1k());
    println!("{}", report.summary());
    println!("wall: {:?} (two verified runs)", t0.elapsed());
}
