//! A hierarchical timer wheel for multiplexing thousands of connection
//! timers.
//!
//! The naive driver asks every connection for its next timer on every event
//! (`O(flows)` per event — exactly what `stack::Sim::next_event_time` does).
//! The wheel replaces that scan with `O(1)` scheduling and near-`O(1)`
//! next-deadline queries, in the style of the kernel timer wheel and tokio's
//! timer driver:
//!
//! * **Levels.** [`LEVELS`] levels of [`SLOTS`] slots each; a slot at level
//!   `L` spans `SLOTS^L` ticks (one tick = one microsecond, the simulator's
//!   native resolution, so level-0 expiry times are *exact*). An entry lives
//!   at the level where its deadline's slot path first diverges from the
//!   current time's — guaranteeing it is cascaded down exactly when the
//!   wheel's notion of "now" enters its slot.
//! * **Occupancy bitmaps.** Each level keeps a `u64` bitmap of non-empty
//!   slots, so finding the next occupied slot is a couple of bit operations
//!   rather than a scan, and the driver can jump virtual time directly to the
//!   next deadline.
//! * **Lazy cancellation.** Rescheduling or cancelling only updates the
//!   `armed` map; the superseded slot entry is discarded when its slot
//!   drains. TCP re-arms its RTO on every ACK, so cheap rescheduling is the
//!   common case that matters.
//!
//! Determinism: expiries are reported in `(deadline, key)` order, making the
//! wheel's behaviour independent of insertion history.

use minion_simnet::SimTime;
use std::collections::BTreeMap;

/// Slots per level (64, so occupancy fits one `u64` bitmap).
pub const SLOTS: usize = 64;
/// Number of levels. Six 64-slot levels of 1 µs ticks give a horizon of
/// `64^6` µs ≈ 19.5 hours, far beyond any transport timer (max RTO 60 s).
pub const LEVELS: usize = 6;

const SLOT_BITS: u32 = 6;
/// Ticks covered by the whole wheel.
const HORIZON: u64 = 1 << (SLOT_BITS * LEVELS as u32);

#[derive(Clone, Copy, Debug)]
struct Entry<K> {
    deadline: u64,
    key: K,
}

/// A hierarchical timer wheel over keys of type `K`.
///
/// Keys identify logical timers (the engine uses per-flow keys); scheduling a
/// key that is already armed reschedules it.
#[derive(Clone, Debug)]
pub struct TimerWheel<K> {
    /// Current time in ticks (µs). All armed deadlines are `> current` except
    /// transiently inside `advance`.
    current: u64,
    slots: Vec<Vec<Entry<K>>>,
    /// Per-level bitmap of non-empty slots (bit `s` set ⇔ `slot(level, s)`
    /// holds entries, possibly stale).
    occupied: [u64; LEVELS],
    /// The authoritative key → deadline map; slot entries not matching it are
    /// stale and dropped when their slot drains.
    armed: BTreeMap<K, u64>,
    /// Keys scheduled at or before `current` (fire on the next `advance`).
    immediate: Vec<Entry<K>>,
}

impl<K: Ord + Copy> Default for TimerWheel<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Copy> TimerWheel<K> {
    /// An empty wheel positioned at t = 0.
    pub fn new() -> Self {
        TimerWheel {
            current: 0,
            slots: (0..SLOTS * LEVELS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            armed: BTreeMap::new(),
            immediate: Vec::new(),
        }
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.armed.len()
    }

    /// Whether no timers are armed.
    pub fn is_empty(&self) -> bool {
        self.armed.is_empty()
    }

    /// The wheel's current position.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.current)
    }

    fn slot_index(level: usize, tick: u64) -> usize {
        level * SLOTS + ((tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
    }

    /// The level at which a future deadline must be stored: the highest slot
    /// group in which it differs from `current`.
    fn level_for(&self, deadline: u64) -> usize {
        debug_assert!(deadline > self.current);
        let diverge = deadline ^ self.current;
        ((63 - diverge.leading_zeros()) / SLOT_BITS) as usize
    }

    fn insert(&mut self, deadline: u64, key: K) {
        if deadline <= self.current {
            self.immediate.push(Entry { deadline, key });
            return;
        }
        // Deadlines beyond the horizon park at the wheel's farthest slot and
        // re-insert when it drains (they cascade toward their true deadline).
        let capped = deadline.min(self.current + HORIZON - 1);
        let level = self.level_for(capped).min(LEVELS - 1);
        let idx = Self::slot_index(level, capped);
        self.slots[idx].push(Entry { deadline, key });
        self.occupied[level] |= 1 << (idx - level * SLOTS);
    }

    /// Arm (or re-arm) `key` to fire at `deadline`. A deadline at or before
    /// the wheel's current position fires on the next [`advance`].
    ///
    /// [`advance`]: Self::advance
    pub fn schedule(&mut self, key: K, deadline: SimTime) {
        let deadline = deadline.as_micros();
        self.armed.insert(key, deadline);
        self.insert(deadline, key);
    }

    /// Disarm `key`. The stale slot entry, if any, is dropped lazily.
    pub fn cancel(&mut self, key: K) {
        self.armed.remove(&key);
    }

    /// The armed deadline of `key`, if any.
    pub fn deadline_of(&self, key: K) -> Option<SimTime> {
        self.armed.get(&key).map(|&d| SimTime::from_micros(d))
    }

    /// A time at or before the earliest armed deadline, or `None` when no
    /// timers are armed.
    ///
    /// Level-0 results are exact. Higher-level results are conservative (the
    /// start of the next occupied slot): advancing to the returned time
    /// cascades the slot so the next query refines it, which is how an
    /// event-driven caller converges on exact deadlines in `O(levels)` hops
    /// instead of scanning every timer.
    pub fn next_wake(&self) -> Option<SimTime> {
        if self.armed.is_empty() {
            return None;
        }
        if !self.immediate.is_empty() {
            return Some(SimTime::from_micros(self.current));
        }
        for level in 0..LEVELS {
            let cur_slot =
                ((self.current >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as u32;
            // Slots strictly after the current one at this level; earlier
            // slots belong to the next rotation, which a higher level covers.
            let later = self.occupied[level] & !(u64::MAX >> (63 - cur_slot)) & !(1 << cur_slot);
            if later != 0 {
                let s = later.trailing_zeros() as u64;
                let span = 1u64 << (SLOT_BITS * level as u32);
                let base = self.current & !((span << SLOT_BITS) - 1);
                let slot_start = base + s * span;
                if level == 0 {
                    // Exact: every entry in a level-0 slot shares its tick.
                    return Some(SimTime::from_micros(slot_start));
                }
                return Some(SimTime::from_micros(slot_start.max(self.current + 1)));
            }
        }
        // All remaining timers sit in slots at or before the current path
        // (i.e. the next rotation of some level). The next interesting moment
        // is the next slot boundary of the smallest level that wraps.
        for level in 0..LEVELS {
            if self.occupied[level] != 0 {
                let span = 1u64 << (SLOT_BITS * level as u32);
                let next_boundary = (self.current / span + 1) * span;
                return Some(SimTime::from_micros(next_boundary));
            }
        }
        None
    }

    /// Advance the wheel to `now`, appending every key whose armed deadline
    /// is `<= now` to `expired` in `(deadline, key)` order. Returns the
    /// number of keys expired.
    pub fn advance(&mut self, now: SimTime, expired: &mut Vec<K>) -> usize {
        let target = now.as_micros();
        debug_assert!(target >= self.current, "time cannot move backwards");
        let mut due: Vec<Entry<K>> = Vec::new();

        // Immediately-due keys (scheduled at or before the then-current time).
        let mut i = 0;
        while i < self.immediate.len() {
            if self.immediate[i].deadline <= target {
                due.push(self.immediate.swap_remove(i));
            } else {
                i += 1;
            }
        }

        while self.current < target {
            let Some(next) = self.next_wake() else {
                self.current = target;
                break;
            };
            let next = next.as_micros().max(self.current + 1);
            if next > target {
                self.current = target;
                break;
            }
            self.current = next;
            // Drain every slot on the current path whose position changed:
            // level 0 always (its slot == the current tick), higher levels
            // only at their boundaries (a cascade).
            for level in 0..LEVELS {
                let span_bits = SLOT_BITS * level as u32;
                if level > 0 && self.current & ((1u64 << span_bits) - 1) != 0 {
                    break; // Not at this level's slot boundary: no cascade.
                }
                let idx = Self::slot_index(level, self.current);
                if self.slots[idx].is_empty() {
                    continue;
                }
                self.occupied[level] &= !(1 << (idx - level * SLOTS));
                let entries = std::mem::take(&mut self.slots[idx]);
                for e in entries {
                    match self.armed.get(&e.key) {
                        Some(&d) if d == e.deadline => {
                            if d <= self.current {
                                due.push(e);
                            } else {
                                // Re-insert: either a cascade toward a lower
                                // level or a parked beyond-horizon entry.
                                self.insert(d, e.key);
                            }
                        }
                        _ => {} // Stale (rescheduled or cancelled): drop.
                    }
                }
            }
        }

        due.sort_unstable_by_key(|e| (e.deadline, e.key));
        let mut fired = 0;
        for e in due {
            // Re-check: an earlier expiry in this batch cannot re-arm (the
            // caller hasn't run yet), but immediate entries may duplicate a
            // slot entry after a reschedule; the map is authoritative.
            if self.armed.get(&e.key) == Some(&e.deadline) {
                self.armed.remove(&e.key);
                expired.push(e.key);
                fired += 1;
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(t: u64) -> SimTime {
        SimTime::from_micros(t)
    }

    fn advance_collect(w: &mut TimerWheel<u32>, to: u64) -> Vec<u32> {
        let mut out = Vec::new();
        w.advance(us(to), &mut out);
        out
    }

    #[test]
    fn single_timer_fires_exactly_once_at_its_deadline() {
        let mut w = TimerWheel::new();
        w.schedule(1u32, us(500));
        // Conservative: a wake estimate never overshoots the deadline.
        let wake = w.next_wake().expect("armed");
        assert!(wake <= us(500) && wake > us(0), "wake={wake}");
        assert!(advance_collect(&mut w, 499).is_empty());
        assert_eq!(advance_collect(&mut w, 500), vec![1]);
        assert!(w.is_empty());
        assert_eq!(w.next_wake(), None);
        assert!(advance_collect(&mut w, 10_000).is_empty());
    }

    #[test]
    fn expiry_order_is_deadline_then_key() {
        let mut w = TimerWheel::new();
        w.schedule(3u32, us(100));
        w.schedule(1u32, us(100));
        w.schedule(2u32, us(50));
        assert_eq!(advance_collect(&mut w, 100), vec![2, 1, 3]);
    }

    #[test]
    fn reschedule_moves_the_deadline() {
        let mut w = TimerWheel::new();
        w.schedule(7u32, us(100));
        w.schedule(7u32, us(10_000)); // re-arm later; old entry goes stale
        assert!(advance_collect(&mut w, 5_000).is_empty());
        assert_eq!(w.len(), 1);
        assert_eq!(advance_collect(&mut w, 10_000), vec![7]);

        // And re-arming earlier fires at the earlier time.
        w.schedule(8u32, us(50_000));
        w.schedule(8u32, us(12_000));
        assert_eq!(w.deadline_of(8), Some(us(12_000)));
        assert_eq!(advance_collect(&mut w, 12_000), vec![8]);
        assert!(advance_collect(&mut w, 60_000).is_empty());
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut w = TimerWheel::new();
        w.schedule(1u32, us(100));
        w.schedule(2u32, us(100));
        w.cancel(1);
        assert_eq!(w.len(), 1);
        assert_eq!(advance_collect(&mut w, 200), vec![2]);
    }

    #[test]
    fn deadlines_across_level_boundaries_are_exact() {
        // Deadlines straddling 64, 64^2, 64^3 tick boundaries must cascade
        // down and fire at their exact microsecond.
        let deadlines = [
            63u64, 64, 65, 4_095, 4_096, 4_097, 262_143, 262_144, 262_145, 16_777_216,
        ];
        let mut w = TimerWheel::new();
        for (i, &d) in deadlines.iter().enumerate() {
            w.schedule(i as u32, us(d));
        }
        let mut fired: Vec<(u64, u32)> = Vec::new();
        let mut t = 0;
        while !w.is_empty() {
            let wake = w.next_wake().unwrap().as_micros();
            assert!(wake > t, "next_wake must make progress");
            t = wake;
            let mut out = Vec::new();
            w.advance(us(t), &mut out);
            for k in out {
                fired.push((t, k));
            }
        }
        let got: Vec<(u64, u32)> = deadlines
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i as u32))
            .collect();
        let mut expect = got.clone();
        expect.sort_unstable();
        assert_eq!(fired, expect, "each timer fires exactly at its deadline");
    }

    #[test]
    fn jumping_far_past_many_deadlines_fires_them_all() {
        let mut w = TimerWheel::new();
        for k in 0..100u32 {
            w.schedule(k, us(1 + (k as u64) * 977));
        }
        let fired = advance_collect(&mut w, 1_000_000);
        assert_eq!(fired.len(), 100);
        assert!(w.is_empty());
        // Deadline-sorted order.
        let mut sorted = fired.clone();
        sorted.sort_unstable();
        assert_eq!(fired, sorted);
    }

    #[test]
    fn immediate_deadline_fires_on_next_advance() {
        let mut w = TimerWheel::new();
        advance_collect(&mut w, 1_000);
        w.schedule(5u32, us(1_000)); // == current
        w.schedule(6u32, us(10)); // in the past
        assert_eq!(w.next_wake(), Some(us(1_000)));
        assert_eq!(advance_collect(&mut w, 1_000), vec![6, 5]);
    }

    #[test]
    fn beyond_horizon_deadline_parks_and_still_fires() {
        let mut w = TimerWheel::new();
        let far = HORIZON + 12_345;
        w.schedule(9u32, us(far));
        assert!(advance_collect(&mut w, HORIZON - 1).is_empty());
        let mut fired = Vec::new();
        let mut guard = 0;
        while !w.is_empty() {
            let wake = w.next_wake().unwrap();
            w.advance(wake, &mut fired);
            guard += 1;
            assert!(guard < 100, "parked entry must converge quickly");
        }
        assert_eq!(fired, vec![9]);
        assert!(w.now().as_micros() >= far);
    }

    #[test]
    fn next_wake_is_never_later_than_any_deadline() {
        // Pseudo-random schedule/advance interleaving; the wake estimate must
        // stay conservative and every timer must fire exactly at its deadline.
        let mut w = TimerWheel::new();
        let mut expected: Vec<(u64, u32)> = Vec::new();
        let mut fired: Vec<(u64, u32)> = Vec::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut t: u64 = 0;
        for k in 0..200u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let d = t + 1 + (x % 300_000);
            w.schedule(k, us(d));
            expected.push((d, k));
            // Every few insertions, advance to the next wake point.
            if k % 3 == 0 {
                while let Some(wake) = w.next_wake() {
                    if wake.as_micros() > t + 50_000 {
                        break;
                    }
                    for (d2, _) in &expected {
                        if *d2 > t && *d2 < wake.as_micros() {
                            panic!("wake {wake} skipped deadline {d2}");
                        }
                    }
                    t = wake.as_micros();
                    let mut out = Vec::new();
                    w.advance(us(t), &mut out);
                    for key in out {
                        fired.push((t, key));
                    }
                }
            }
        }
        let mut out = Vec::new();
        w.advance(us(u32::MAX as u64), &mut out);
        for key in out {
            let d = expected.iter().find(|&&(_, k)| k == key).unwrap().0;
            fired.push((d, key));
        }
        fired.sort_unstable();
        expected.sort_unstable();
        assert_eq!(fired, expected, "every timer fires at its exact deadline");
    }

    #[test]
    fn two_identical_runs_expire_identically() {
        let run = || {
            let mut w = TimerWheel::new();
            let mut log = Vec::new();
            for k in 0..64u32 {
                w.schedule(k, us(10 + (k as u64 * 37) % 500));
            }
            while let Some(wake) = w.next_wake() {
                let t = wake.as_micros();
                let mut out = Vec::new();
                w.advance(wake, &mut out);
                for k in &out {
                    log.push((t, *k));
                    if *k % 2 == 0 {
                        w.schedule(*k + 1000, us(t + 31));
                    }
                }
                if log.len() > 200 {
                    break;
                }
            }
            log
        };
        assert_eq!(run(), run());
    }
}
