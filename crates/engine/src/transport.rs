//! The transport abstraction behind the load scenarios: packet I/O and time
//! as a trait, so the same scenario driver runs against the deterministic
//! simulator or a real kernel stack.
//!
//! A [`Transport`] hides everything backend-specific behind a small,
//! readiness-driven surface: open client flows toward the scenario's server,
//! write/read bytes, and pump an event loop that reports accepts and
//! readable/writable edges. Two implementations exist:
//!
//! * [`SimTransport`] (here) — wraps the deterministic [`Engine`] and the
//!   simnet world. Its behaviour (and therefore every report produced over
//!   it) is byte-identical to driving the engine directly: the trait calls
//!   map 1:1 onto the engine calls the scenario driver used to make, in the
//!   same order.
//! * `OsTransport` (`minion-osnet`) — drives real nonblocking kernel
//!   sockets over loopback through an epoll reactor, with a monotonic
//!   [`Clock`](crate::Clock) feeding wall-clock microseconds into the same
//!   driver loop. Determinism is *not* promised there; the OS backend gates
//!   on liveness and goodput envelopes instead.
//!
//! Time flows through [`Transport::now`]: virtual microseconds for sim,
//! monotonic microseconds since transport creation for the OS backend. The
//! scenario driver never asks which one it is.

use crate::metrics::EngineMetrics;
use crate::runtime::{Engine, EngineHostId, FlowId};
use crate::scenario::{LoadScenario, LOAD_PORT};
use bytes::Bytes;
use minion_obs::PhaseProfile;
use minion_simnet::{LinkConfig, SimDuration, SimTime};
use minion_stack::SocketAddr;
use minion_tcp::{ConnEvent, SocketOptions, TcpConfig};

/// One delivered piece of a flow's byte stream.
#[derive(Clone, Debug)]
pub struct TransportChunk {
    /// Stream offset of the first byte.
    pub offset: u64,
    /// The bytes.
    pub data: Bytes,
    /// Whether the chunk arrived in stream order (kernel TCP always does;
    /// uTCP receivers may deliver out of order).
    pub in_order: bool,
}

/// Sender-side statistics of one flow, as far as the backend can observe
/// them (the OS backend cannot see kernel retransmissions and reports
/// zeros).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportFlowStats {
    /// Data-segment retransmissions.
    pub retransmissions: u64,
    /// Fast-retransmit (recovery-entry) events.
    pub fast_retransmits: u64,
    /// Retransmission timeouts fired.
    pub rto_fires: u64,
}

/// Packet I/O and time behind the load-scenario driver.
///
/// The driver's contract:
///
/// 1. [`connect`](Transport::connect) every flow, then immediately offer its
///    stream via [`write`](Transport::write) (which may accept a prefix, or
///    nothing while the flow is still connecting);
/// 2. loop: [`step`](Transport::step), then drain
///    [`take_accepted`](Transport::take_accepted) /
///    [`take_writable`](Transport::take_writable) (flush pending writes) /
///    [`take_readable`](Transport::take_readable) (read each flow to
///    exhaustion — edge-triggered backends rely on it);
/// 3. [`close`](Transport::close) every flow and
///    [`finish`](Transport::finish) the teardown.
pub trait Transport {
    /// Backend tag for labels/reports: `"sim"` or `"os"`.
    fn backend(&self) -> &'static str;

    /// Current time: virtual for sim, monotonic-since-creation for OS.
    fn now(&self) -> SimTime;

    /// Open one client flow toward the scenario's server. Returns the flow
    /// and its pairing key (the client's ephemeral port), which
    /// [`take_accepted`](Transport::take_accepted) echoes from the server
    /// side so the driver can pair the two endpoints of a connection.
    fn connect(&mut self) -> (FlowId, u64);

    /// Offer bytes on a flow; returns how many were accepted (possibly 0 —
    /// a connecting or flow-blocked socket). The driver keeps a cursor and
    /// retries on writable edges.
    fn write(&mut self, flow: FlowId, data: &[u8]) -> usize;

    /// The next delivered chunk on a flow, or `None` when drained
    /// (edge-triggered backends require the driver to read until `None`).
    fn read(&mut self, flow: FlowId) -> Option<TransportChunk>;

    /// Request an orderly close (FIN) of a flow.
    fn close(&mut self, flow: FlowId);

    /// Process pending work and advance time. Returns `false` once nothing
    /// further can happen (sim: no scheduled events; OS: transport drained).
    fn step(&mut self) -> bool;

    /// Server-side flows accepted since the last call, each with the peer's
    /// pairing key (the client's ephemeral port).
    fn take_accepted(&mut self) -> Vec<(FlowId, u64)>;

    /// Flows with a readable edge since the last call, in event order.
    fn take_readable(&mut self) -> Vec<FlowId>;

    /// Flows with a writable edge since the last call (connect completion
    /// or send-buffer space reopening), in event order.
    fn take_writable(&mut self) -> Vec<FlowId>;

    /// Connection lifecycle edges (established, retransmit, RTO fired,
    /// closed) since the last call, in event order. Backends that cannot
    /// observe them (kernel TCP hides its retransmissions) return nothing.
    fn take_lifecycle(&mut self) -> Vec<(FlowId, minion_tcp::ConnEvent)> {
        Vec::new()
    }

    /// Wall-clock phase profile of the backend's event loop (engine
    /// flush/dispatch/timers on sim; epoll wait/dispatch on os). Profiling
    /// only — never deterministic, never part of the byte-identity gates.
    fn phases(&self) -> PhaseProfile {
        PhaseProfile::default()
    }

    /// Sender-side stats of a flow.
    fn flow_stats(&self, flow: FlowId) -> TransportFlowStats;

    /// Sender-side congestion-control window telemetry of a flow
    /// (cwnd/ssthresh trajectory + recovery histograms). Backends that
    /// cannot observe the kernel's window (the OS backend) return an empty
    /// recorder.
    fn flow_cc_obs(&self, _flow: FlowId) -> minion_obs::CcObs {
        minion_obs::CcObs::default()
    }

    /// Aggregate runtime counters (events, packets/syscalls, bytes).
    fn metrics(&self) -> EngineMetrics;

    /// Total syscalls issued (OS backend; sim has none).
    fn syscalls(&self) -> u64 {
        0
    }

    /// Drive connection teardown (FIN exchanges) to quiescence.
    fn finish(&mut self);
}

/// The simulator-backed [`Transport`]: the engine, two hosts, one
/// asymmetric link, exactly as the pre-trait load scenario built them.
pub struct SimTransport {
    engine: Engine,
    client: EngineHostId,
    server_addr: SocketAddr,
    tcp_config: TcpConfig,
    readable: Vec<FlowId>,
    writable: Vec<FlowId>,
    lifecycle: Vec<(FlowId, ConnEvent)>,
}

impl SimTransport {
    /// Build the two-host world of `scenario`: client and server hosts, the
    /// shared bottleneck link (loss on the data direction only), a listening
    /// uTCP/TCP socket on [`LOAD_PORT`], and auto-registration of accepted
    /// flows.
    pub fn new(scenario: &LoadScenario) -> Self {
        let mut engine = Engine::new(scenario.seed);
        let client = engine.add_host("client");
        let server = engine.add_host("server");
        let delay = SimDuration::from_micros(scenario.rtt_ms * 1000 / 2);
        let toward = LinkConfig::new(scenario.rate_bps, delay)
            .with_queue_bytes(scenario.queue_bytes)
            .with_loss(scenario.loss.clone());
        let back = LinkConfig::new(scenario.rate_bps, delay).with_queue_bytes(scenario.queue_bytes);
        engine.link_asymmetric(client, server, toward, back);

        let receiver_opts = if scenario.receiver_utcp {
            SocketOptions::unordered_receive_only()
        } else {
            SocketOptions::standard()
        };
        let tcp_config = TcpConfig::default().with_cc(scenario.cc);
        engine
            .host_mut(server)
            .tcp_listen(LOAD_PORT, tcp_config.clone(), receiver_opts)
            .expect("listen on a fresh host");
        engine.set_auto_register(server, true);
        let server_addr = SocketAddr::new(engine.node_of(server), LOAD_PORT);
        SimTransport {
            engine,
            client,
            server_addr,
            tcp_config,
            readable: Vec::new(),
            writable: Vec::new(),
            lifecycle: Vec::new(),
        }
    }

    /// Borrow the underlying engine (tests and instrumentation).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Split the engine's edge events into the readable/writable queues the
    /// trait exposes. The remaining edges (`Established`, `Retransmit`,
    /// `RtoFired`, `Closed`) carry no driver *work*, but they are exactly
    /// what the observability layer traces, so they queue separately for
    /// [`Transport::take_lifecycle`].
    fn pump_events(&mut self) {
        for (f, ev) in self.engine.take_events() {
            match ev {
                ConnEvent::Readable => self.readable.push(f),
                ConnEvent::Writable => self.writable.push(f),
                other => self.lifecycle.push((f, other)),
            }
        }
    }
}

impl Transport for SimTransport {
    fn backend(&self) -> &'static str {
        "sim"
    }

    fn now(&self) -> SimTime {
        self.engine.now()
    }

    fn connect(&mut self) -> (FlowId, u64) {
        let now = self.engine.now();
        let handle = self.engine.host_mut(self.client).tcp_connect(
            self.server_addr,
            self.tcp_config.clone(),
            SocketOptions::standard(),
            now,
        );
        let client_port = self
            .engine
            .host_mut(self.client)
            .tcp_local_port(handle)
            .expect("fresh TCP socket");
        let id = self.engine.register_flow(self.client, handle);
        (id, u64::from(client_port))
    }

    fn write(&mut self, flow: FlowId, data: &[u8]) -> usize {
        self.engine
            .flow_write(flow, data)
            .expect("flow handle is a valid TCP socket")
    }

    fn read(&mut self, flow: FlowId) -> Option<TransportChunk> {
        self.engine.flow_read(flow).map(|c| TransportChunk {
            offset: c.offset,
            data: c.data,
            in_order: c.in_order,
        })
    }

    fn close(&mut self, flow: FlowId) {
        self.engine.flow_close(flow);
    }

    fn step(&mut self) -> bool {
        self.engine.step()
    }

    fn take_accepted(&mut self) -> Vec<(FlowId, u64)> {
        self.engine
            .take_accepted()
            .into_iter()
            .map(|sf| {
                let peer = self.engine.flow_peer(sf);
                (sf, u64::from(peer.port))
            })
            .collect()
    }

    fn take_readable(&mut self) -> Vec<FlowId> {
        self.pump_events();
        std::mem::take(&mut self.readable)
    }

    fn take_writable(&mut self) -> Vec<FlowId> {
        self.pump_events();
        std::mem::take(&mut self.writable)
    }

    fn take_lifecycle(&mut self) -> Vec<(FlowId, ConnEvent)> {
        self.pump_events();
        std::mem::take(&mut self.lifecycle)
    }

    fn phases(&self) -> PhaseProfile {
        self.engine.phases().clone()
    }

    fn flow_stats(&self, flow: FlowId) -> TransportFlowStats {
        let stats = self.engine.flow_stats(flow);
        TransportFlowStats {
            retransmissions: stats.retransmissions,
            fast_retransmits: stats.fast_retransmits,
            rto_fires: stats.timeouts,
        }
    }

    fn flow_cc_obs(&self, flow: FlowId) -> minion_obs::CcObs {
        self.engine.flow_cc_obs(flow)
    }

    fn metrics(&self) -> EngineMetrics {
        *self.engine.metrics()
    }

    fn finish(&mut self) {
        // Drive the FIN/TIME-WAIT exchanges of every closed flow.
        self.engine.run_for(SimDuration::from_secs(8));
    }
}
