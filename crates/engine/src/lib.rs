//! # minion-engine
//!
//! The deterministic multi-flow event runtime: the substrate that lets the
//! Minion reproduction scale from one connection per experiment to the
//! ROADMAP's "heavy traffic" regime of hundreds-to-thousands of concurrent
//! uTCP flows, while staying bit-reproducible under a seed.
//!
//! Components, bottom-up:
//!
//! * [`TimerWheel`] — a hierarchical timer wheel (six 64-slot levels at
//!   microsecond resolution, occupancy bitmaps, lazy cancellation) replacing
//!   the `O(flows)` every-socket timer scan with `O(1)` re-arming.
//! * [`BufferPool`] — a recycling byte-buffer pool that keeps per-flow
//!   payload staging off the allocator and reports **allocs/flow**.
//! * [`Engine`] — the event loop: batched packet dispatch from the simulated
//!   network ([`minion_simnet::World::drain_due_into`]), per-socket
//!   demultiplexing ([`minion_stack::Host::on_packet_demux`]), readiness
//!   events ([`minion_tcp::ConnEvent`]) instead of lockstep sweeps, and
//!   wheel-driven timers.
//! * [`LoadScenario`] — N concurrent flows over one shared link, asserting
//!   exactly-once delivery and per-stream order per flow; [`verify_load`]
//!   adds the two-run byte-identical-metrics determinism gate. The 1024-flow
//!   acceptance scenario is [`LoadScenario::smoke_1k`], and
//!   `cargo run --release -p minion-bench --bin load_engine` emits its
//!   metrics as `BENCH_engine.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod obs;
pub mod pool;
pub mod runtime;
pub mod scenario;
pub mod transport;
pub mod wheel;

pub use clock::{Clock, MonotonicClock, VirtualClock};
pub use metrics::{fnv1a, EngineMetrics, FlowMetrics, LoadReport, FNV_OFFSET_BASIS};
pub use obs::{LoadObs, TraceFilter, LOAD_COUNTER_NAMES, LOAD_GAUGE_NAMES};
pub use pool::{BufferPool, PoolStats};
pub use runtime::{Engine, EngineHostId, FlowId, ENGINE_PHASES};
pub use scenario::{verify_load, verify_load_sharded, LoadScenario, LOAD_PORT, SHARD_FLOWS};
pub use transport::{SimTransport, Transport, TransportChunk, TransportFlowStats};
pub use wheel::TimerWheel;

// Re-export the observability primitives so downstream crates (osnet,
// testkit, bench) reach them through the engine without a direct
// `minion-obs` dependency.
pub use minion_obs::{
    merge_stream_files, Absorb, CcObs, Counter, CounterSet, CwndSample, DelayDigest, FilteredSink,
    FlowDelayMap, Gauge, GaugeSet, Histogram, KindSet, MergedStream, NonDeterministic,
    PhaseProfile, StreamSink, StreamStats, Tee, TraceEvent, TraceKind, TracePredicate, TraceRing,
    TraceSink, DEFAULT_TRACE_CAP,
};
