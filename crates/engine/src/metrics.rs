//! Per-flow and aggregate metrics of an engine run.
//!
//! Everything here is integer-valued and `Eq`-comparable: the determinism
//! acceptance check is *byte-identical metrics across two runs of the same
//! seed*, which only works if no floating-point accumulation sneaks in.
//! Derived rates (goodput in bits/s, events per second) are computed as
//! integers from the raw counters.

use crate::obs::LoadObs;
use crate::pool::PoolStats;
use minion_obs::{Absorb, NonDeterministic, PhaseProfile};

// The single canonical fingerprint function (the determinism gates compare
// these values across crates, so there must be exactly one definition — it
// lives in `minion_simnet::hash`, below every consumer; re-exported here
// under the names the engine's consumers have always used).
pub use minion_simnet::{fnv1a, FNV_OFFSET_BASIS};

/// Aggregate runtime counters kept by [`crate::Engine`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Event-loop iterations.
    pub steps: u64,
    /// Packets handed to hosts (arrival dispatches).
    pub packets_delivered: u64,
    /// Packets offered to the network by flow polls.
    pub packets_sent: u64,
    /// Wire bytes (payload + framing) of offered packets.
    pub bytes_sent: u64,
    /// Offered packets dropped by loss models or queue overflow.
    pub packets_dropped: u64,
    /// Timer-wheel expiries dispatched.
    pub timer_fires: u64,
    /// Per-flow polls executed (each may emit several segments).
    pub flow_polls: u64,
}

impl EngineMetrics {
    /// Total dispatched events (arrivals + timer fires).
    pub fn events(&self) -> u64 {
        self.packets_delivered + self.timer_fires
    }
}

/// Sharded runs merge the per-shard engines' counters by shard index
/// (see [`minion_obs::Absorb`] for the laws the merge upholds).
impl Absorb for EngineMetrics {
    fn absorb(&mut self, other: &EngineMetrics) {
        self.steps += other.steps;
        self.packets_delivered += other.packets_delivered;
        self.packets_sent += other.packets_sent;
        self.bytes_sent += other.bytes_sent;
        self.packets_dropped += other.packets_dropped;
        self.timer_fires += other.timer_fires;
        self.flow_polls += other.flow_polls;
    }
}

/// What one flow did over a whole load scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowMetrics {
    /// Flow index within the scenario (0-based).
    pub flow: u32,
    /// Application payload bytes fully delivered (after reassembly).
    pub bytes_delivered: u64,
    /// Framed records fully delivered.
    pub records_delivered: u64,
    /// Delivery chunks that arrived out of order (uTCP receivers only).
    pub chunks_out_of_order: u64,
    /// Sender-side data-segment retransmissions.
    pub retransmissions: u64,
    /// Sender-side fast-retransmit (recovery-entry) events.
    pub fast_retransmits: u64,
    /// Sender-side retransmission timeouts.
    pub rto_fires: u64,
    /// Virtual time (µs) at which the flow's stream was complete.
    pub completion_us: u64,
    /// Order-sensitive FNV-1a fingerprint of the reassembled stream.
    pub fingerprint: u64,
}

/// The full, deterministic result of one load scenario run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadReport {
    /// Scenario label (axes summary).
    pub label: String,
    /// Scenario seed.
    pub seed: u64,
    /// Number of concurrent flows.
    pub flows: u64,
    /// Records sent across all flows.
    pub records_sent: u64,
    /// Records fully delivered across all flows.
    pub records_delivered: u64,
    /// Application payload bytes delivered across all flows.
    pub total_bytes: u64,
    /// Virtual time (µs) at which the last flow completed.
    pub completion_us: u64,
    /// Aggregate goodput in bits per virtual second.
    pub goodput_bps: u64,
    /// Dispatched events per virtual second.
    pub events_per_sim_sec: u64,
    /// [`crate::BufferPool`] allocations per thousand flows (integer, ×1000
    /// so the report stays `Eq`-comparable). This measures the pool's
    /// effectiveness at keeping payload staging off the allocator — near
    /// zero when recycling works — not a whole-process allocation count
    /// (segment vectors and delivered chunks are outside it).
    pub allocs_per_flow_milli: u64,
    /// Engine runtime counters, snapshotted at the end of the load phase
    /// (the FIN/TIME-WAIT close-out is excluded so rates describe the load).
    pub engine: EngineMetrics,
    /// Buffer-pool counters.
    pub pool: PoolStats,
    /// Deterministic observability: delivery-delay / RTO / pool-dwell
    /// histograms, event counters, and the lifecycle trace ring — all
    /// covered by the byte-identity gates.
    pub obs: LoadObs,
    /// Wall-clock phase profile of the backend's event loop. **Not**
    /// deterministic (it times real CPU work), so it rides inside
    /// [`NonDeterministic`] — invisible to `==`, visible to humans.
    pub phases: NonDeterministic<PhaseProfile>,
    /// Per-flow metrics, indexed by flow.
    pub per_flow: Vec<FlowMetrics>,
}

impl LoadReport {
    /// Derived: allocations per flow as a float (for display only).
    pub fn allocs_per_flow(&self) -> f64 {
        self.allocs_per_flow_milli as f64 / 1000.0
    }

    /// A compact one-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{}: {}/{} records, {} B in {:.1} ms, goodput {:.2} Mbit/s, \
             {} events ({}/sim-s), {:.2} allocs/flow",
            self.label,
            self.records_delivered,
            self.records_sent,
            self.total_bytes,
            self.completion_us as f64 / 1000.0,
            self.goodput_bps as f64 / 1e6,
            self.engine.events(),
            self.events_per_sim_sec,
            self.allocs_per_flow(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_metrics_absorb_is_associative_and_order_stable() {
        let mk = |k: u64| EngineMetrics {
            steps: k,
            packets_delivered: 2 * k,
            packets_sent: 3 * k,
            bytes_sent: 100 * k,
            packets_dropped: k / 2,
            timer_fires: k + 1,
            flow_polls: 5 * k,
        };
        let (a, b, c) = (mk(1), mk(10), mk(100));
        let mut left = a;
        left.absorb(&b);
        left.absorb(&c);
        let mut bc = b;
        bc.absorb(&c);
        let mut right = a;
        right.absorb(&bc);
        assert_eq!(left, right, "associative");
        let mut id = EngineMetrics::default();
        id.absorb(&a);
        assert_eq!(id, a, "default is a left identity");
        // Order-stability: folding the same shard slice twice gives the
        // same bytes (merge_ordered is the canonical shard loop).
        let parts = [a, b, c];
        assert_eq!(
            minion_obs::merge_ordered::<EngineMetrics, _>(parts.iter()),
            minion_obs::merge_ordered::<EngineMetrics, _>(parts.iter()),
        );
    }

    #[test]
    fn events_sums_arrivals_and_timers() {
        let m = EngineMetrics {
            packets_delivered: 10,
            timer_fires: 3,
            ..Default::default()
        };
        assert_eq!(m.events(), 13);
    }

    #[test]
    fn report_summary_mentions_key_figures() {
        let r = LoadReport {
            label: "x".into(),
            seed: 1,
            flows: 2,
            records_sent: 4,
            records_delivered: 4,
            total_bytes: 1000,
            completion_us: 2_000,
            goodput_bps: 4_000_000,
            events_per_sim_sec: 500,
            allocs_per_flow_milli: 1_500,
            engine: EngineMetrics::default(),
            pool: PoolStats::default(),
            obs: LoadObs::default(),
            phases: NonDeterministic::default(),
            per_flow: vec![],
        };
        let s = r.summary();
        assert!(s.contains("4/4 records"));
        assert!(s.contains("4.00 Mbit/s"));
        assert!(s.contains("1.50 allocs/flow"));
        assert_eq!(r.allocs_per_flow(), 1.5);
    }
}
