//! Load-scenario observability: what the paper actually argues about.
//!
//! The existing [`LoadReport`](crate::LoadReport) counters say how much got
//! through and how fast in aggregate; [`LoadObs`] says *when each record
//! arrived* — the per-record delivery-delay distribution that separates
//! ordered TCP (head-of-line blocking inflates the tail) from uTCP
//! (unordered delivery keeps later records out of earlier losses' shadow).
//! It bundles:
//!
//! * [`Histogram`]s — delivery delay (send-enqueue → app-deliver), RTO wait
//!   (per-timer arm → fire), and buffer-pool dwell, all in nanoseconds of
//!   backend time (virtual on sim, monotonic on os);
//! * a [`CounterSet`]/[`GaugeSet`] over fixed slot names (see
//!   [`LOAD_COUNTER_NAMES`]);
//! * a [`TraceRing`] of per-flow lifecycle events (SYN, first byte, record
//!   delivery, retransmit, RTO, FIN), dumpable as JSONL via
//!   `load_engine --trace-out`.
//!
//! Everything merges via [`Absorb`] in shard order, so a sharded run's
//! `LoadObs` is byte-identical to the serial merge at any thread count —
//! the same discipline the rest of the report already obeys.

use crate::metrics::{fnv1a, FNV_OFFSET_BASIS};
use minion_obs::{
    Absorb, CcObs, CounterSet, FlowDelayMap, GaugeSet, Histogram, KindSet, StreamStats, TraceEvent,
    TraceRing,
};

/// Counter slots of [`LoadObs::counters`] (fixed at compile time so sharded
/// and serial registries always line up slot for slot).
pub const LOAD_COUNTER_NAMES: &[&str] = &[
    "records_enqueued",
    "records_delivered",
    "chunks_delivered",
    "chunks_out_of_order",
    "retransmit_edges",
    "rto_edges",
];

/// Slot: records fully handed to the transport's send buffer.
pub const C_RECORDS_ENQUEUED: usize = 0;
/// Slot: records whose full byte range reached the application.
pub const C_RECORDS_DELIVERED: usize = 1;
/// Slot: delivery chunks read from the transport.
pub const C_CHUNKS_DELIVERED: usize = 2;
/// Slot: delivery chunks that arrived out of stream order.
pub const C_CHUNKS_OUT_OF_ORDER: usize = 3;
/// Slot: retransmission edges observed (consecutive duplicates collapse in
/// the connection's event queue, so this undercounts dense bursts; the exact
/// per-flow count lives in `FlowMetrics::retransmissions`).
pub const C_RETRANSMIT_EDGES: usize = 4;
/// Slot: RTO-fired edges observed.
pub const C_RTO_EDGES: usize = 5;

/// Gauge slots of [`LoadObs::gauges`].
pub const LOAD_GAUGE_NAMES: &[&str] = &["coverage_ranges_high_water"];

/// Slot: most disjoint coverage ranges any flow's receive stream held at
/// once — a direct measure of how fragmented unordered delivery got.
pub const G_COVERAGE_RANGES_HIGH_WATER: usize = 0;

/// Deterministic observability of one load-scenario run (or shard).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadObs {
    /// Per-record delivery delay: send-enqueue → app-deliver, nanoseconds.
    pub delivery_delay: Histogram,
    /// RTO wait: how long each fired retransmission timer was armed
    /// (arm → fire, nanoseconds) — the realized timeout, including backoff.
    pub rto_wait: Histogram,
    /// Buffer-pool dwell of send-stream buffers (take → give), nanoseconds.
    pub pool_dwell: Histogram,
    /// Event counters over [`LOAD_COUNTER_NAMES`].
    pub counters: CounterSet,
    /// High-water marks over [`LOAD_GAUGE_NAMES`].
    pub gauges: GaugeSet,
    /// Lifecycle trace, bounded to the last
    /// [`DEFAULT_TRACE_CAP`](minion_obs::DEFAULT_TRACE_CAP) events.
    pub trace: TraceRing,
    /// Per-flow trace admission filter + admitted/suppressed accounting.
    pub trace_filter: TraceFilter,
    /// Accounting of the zero-drop streaming sink, when the run spilled
    /// its trace to a file (all-zero otherwise). The sink itself holds an
    /// OS writer and never enters this mergeable state — only its
    /// deterministic counters do.
    pub stream: StreamStats,
    /// Per-flow delivery-delay digests: who owns the tail, not just how
    /// fat it is.
    pub flow_delay: FlowDelayMap,
    /// Congestion-control window telemetry merged over the run's client
    /// flows, in flow order.
    pub cc_obs: CcObs,
}

impl Default for LoadObs {
    fn default() -> Self {
        LoadObs {
            delivery_delay: Histogram::new(),
            rto_wait: Histogram::new(),
            pool_dwell: Histogram::new(),
            counters: CounterSet::new(LOAD_COUNTER_NAMES),
            gauges: GaugeSet::new(LOAD_GAUGE_NAMES),
            trace: TraceRing::default(),
            trace_filter: TraceFilter::default(),
            stream: StreamStats::default(),
            flow_delay: FlowDelayMap::default(),
            cc_obs: CcObs::default(),
        }
    }
}

impl Absorb for LoadObs {
    fn absorb(&mut self, other: &Self) {
        self.delivery_delay.absorb(&other.delivery_delay);
        self.rto_wait.absorb(&other.rto_wait);
        self.pool_dwell.absorb(&other.pool_dwell);
        self.counters.absorb(&other.counters);
        self.gauges.absorb(&other.gauges);
        self.trace.absorb(&other.trace);
        self.trace_filter.absorb(&other.trace_filter);
        self.stream.absorb(&other.stream);
        self.flow_delay.absorb(&other.flow_delay);
        self.cc_obs.absorb(&other.cc_obs);
    }
}

/// Flow × kind trace admission: when focused on one flow and/or a kind
/// slice, only matching events enter the trace sinks, so a 1k-flow run
/// can trace a single flow (or just the `retransmit,rto` recovery
/// events) at full granularity without drowning the bounded ring. Counts
/// what it admits and suppresses so filtered dumps stay honest about
/// coverage. The scenario driver applies the predicate through
/// `minion_obs::FilteredSink`; this struct is the mergeable *record* of
/// the predicate config plus its accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct TraceFilter {
    /// Global flow index to focus on; `None` admits every flow.
    pub flow: Option<u32>,
    /// Kinds to admit; `KindSet::all()` (the default) admits every kind.
    pub kinds: KindSet,
    /// Events that passed the filter.
    pub admitted: u64,
    /// Events rejected by the focus.
    pub suppressed: u64,
}

impl TraceFilter {
    /// A filter focused on one global flow index (`None` admits all).
    pub fn focused(flow: Option<u32>) -> Self {
        TraceFilter {
            flow,
            ..TraceFilter::default()
        }
    }

    /// A filter over both predicate axes.
    pub fn sliced(flow: Option<u32>, kinds: KindSet) -> Self {
        TraceFilter {
            flow,
            kinds,
            ..TraceFilter::default()
        }
    }

    /// Decide (and count) whether `ev` enters the trace ring.
    pub fn admit(&mut self, ev: &TraceEvent) -> bool {
        let ok = self.flow.is_none_or(|f| f == ev.flow) && self.kinds.contains(ev.kind);
        if ok {
            self.admitted += 1;
        } else {
            self.suppressed += 1;
        }
        ok
    }
}

impl Absorb for TraceFilter {
    /// Counters add; the predicate config must agree. A pristine filter
    /// (nothing counted) adopts `other`'s config so `TraceFilter::default()`
    /// is a true merge identity; all shards of one scenario inherit the
    /// same predicate, so mismatched non-pristine configs are a bug — loudly.
    fn absorb(&mut self, other: &Self) {
        if self.admitted == 0 && self.suppressed == 0 {
            self.flow = other.flow;
            self.kinds = other.kinds;
        } else if other.admitted != 0 || other.suppressed != 0 {
            assert_eq!(
                self.flow, other.flow,
                "merging trace filters with different focus"
            );
            assert_eq!(
                self.kinds, other.kinds,
                "merging trace filters with different kind slices"
            );
        }
        self.admitted += other.admitted;
        self.suppressed += other.suppressed;
    }
}

impl LoadObs {
    /// Offer a lifecycle event to the trace ring through the per-flow
    /// filter: suppressed events are counted, admitted ones recorded.
    pub fn trace_event(&mut self, ev: TraceEvent) {
        if self.trace_filter.admit(&ev) {
            self.trace.push(ev);
        }
    }

    /// Order-sensitive FNV-1a fingerprint of the trace ring's event stream
    /// (the compact form the determinism gates compare).
    pub fn trace_fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET_BASIS;
        for ev in self.trace.events() {
            fnv1a(&mut h, &ev.t_ns.to_be_bytes());
            fnv1a(&mut h, &ev.flow.to_be_bytes());
            fnv1a(&mut h, &ev.seq.to_be_bytes());
            fnv1a(&mut h, ev.kind.as_str().as_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minion_obs::{TraceEvent, TraceKind};

    fn sample(base: u64) -> LoadObs {
        let mut o = LoadObs::default();
        o.delivery_delay.record(base + 1_000);
        o.rto_wait.record(base + 2_000);
        o.pool_dwell.record(0);
        o.counters.inc(C_RECORDS_DELIVERED);
        o.gauges.observe(G_COVERAGE_RANGES_HIGH_WATER, base);
        let ev = TraceEvent {
            t_ns: base,
            flow: base as u32,
            seq: 0,
            kind: TraceKind::Syn,
        };
        if o.trace_filter.admit(&ev) {
            o.trace.push(ev);
        }
        o.cc_obs.record_window(base, 14_400, 7_200);
        o.cc_obs.record_recovery(base + 500, 7_200);
        o
    }

    #[test]
    fn absorb_is_associative_with_default_identity() {
        let (a, b, c) = (sample(1), sample(2), sample(3));
        let mut left = a.clone();
        left.absorb(&b);
        left.absorb(&c);
        let mut bc = b.clone();
        bc.absorb(&c);
        let mut right = a.clone();
        right.absorb(&bc);
        assert_eq!(left, right, "associative");
        let mut id = LoadObs::default();
        id.absorb(&a);
        assert_eq!(id, a, "default ⊕ a == a");
        let mut back = a.clone();
        back.absorb(&LoadObs::default());
        assert_eq!(back, a, "a ⊕ default == a");
    }

    #[test]
    fn trace_filter_admits_only_the_focused_flow_and_counts() {
        let mut f = TraceFilter::focused(Some(7));
        let mk = |flow: u32| TraceEvent {
            t_ns: 1,
            flow,
            seq: 0,
            kind: TraceKind::Syn,
        };
        assert!(f.admit(&mk(7)));
        assert!(!f.admit(&mk(8)));
        assert!(!f.admit(&mk(0)));
        assert_eq!((f.admitted, f.suppressed), (1, 2));
        let mut open = TraceFilter::focused(None);
        assert!(open.admit(&mk(8)));
        assert_eq!((open.admitted, open.suppressed), (1, 0));
    }

    #[test]
    fn trace_filter_slices_by_kind_and_flow_together() {
        use minion_obs::KindSet;
        let mut f = TraceFilter::sliced(
            Some(7),
            KindSet::of(&[TraceKind::Retransmit, TraceKind::RtoFired]),
        );
        let mk = |flow: u32, kind: TraceKind| TraceEvent {
            t_ns: 1,
            flow,
            seq: 0,
            kind,
        };
        assert!(f.admit(&mk(7, TraceKind::Retransmit)));
        assert!(!f.admit(&mk(7, TraceKind::Syn)), "kind outside the slice");
        assert!(!f.admit(&mk(8, TraceKind::Retransmit)), "flow out of focus");
        assert_eq!((f.admitted, f.suppressed), (1, 2));
    }

    #[test]
    #[should_panic(expected = "different kind slices")]
    fn trace_filter_absorb_rejects_mismatched_kind_slices() {
        use minion_obs::KindSet;
        let mut a = TraceFilter::sliced(None, KindSet::of(&[TraceKind::Retransmit]));
        let mut b = TraceFilter::sliced(None, KindSet::of(&[TraceKind::Syn]));
        let ev = TraceEvent {
            t_ns: 1,
            flow: 1,
            seq: 0,
            kind: TraceKind::Retransmit,
        };
        a.admit(&ev);
        b.admit(&ev);
        a.absorb(&b);
    }

    #[test]
    fn trace_filter_absorb_is_associative_and_order_stable() {
        let mk = |adm: u64, sup: u64| {
            let mut f = TraceFilter::focused(Some(3));
            f.admitted = adm;
            f.suppressed = sup;
            f
        };
        let (a, b, c) = (mk(1, 2), mk(3, 4), mk(5, 6));
        let mut left = a;
        left.absorb(&b);
        left.absorb(&c);
        let mut bc = b;
        bc.absorb(&c);
        let mut right = a;
        right.absorb(&bc);
        assert_eq!(left, right, "associative");
        assert_eq!((left.admitted, left.suppressed), (9, 12));
        // order-stability: counters are commutative sums, so shard order
        // cannot change the merged value
        let mut rev = c;
        rev.absorb(&b);
        rev.absorb(&a);
        assert_eq!(rev, left);
        // pristine identity adopts the focus
        let mut id = TraceFilter::default();
        id.absorb(&a);
        assert_eq!(id, a);
        let mut back = a;
        back.absorb(&TraceFilter::default());
        assert_eq!(back, a);
    }

    #[test]
    #[should_panic(expected = "different focus")]
    fn trace_filter_absorb_rejects_mismatched_focus() {
        let mut a = TraceFilter::focused(Some(1));
        let mut b = TraceFilter::focused(Some(2));
        let ev = TraceEvent {
            t_ns: 1,
            flow: 1,
            seq: 0,
            kind: TraceKind::Syn,
        };
        a.admit(&ev);
        b.admit(&ev);
        a.absorb(&b);
    }

    #[test]
    fn trace_fingerprint_is_order_sensitive() {
        let mut ab = sample(1);
        ab.absorb(&sample(2));
        let mut ba = sample(2);
        ba.absorb(&sample(1));
        assert_ne!(ab.trace_fingerprint(), ba.trace_fingerprint());
        assert_eq!(ab.trace_fingerprint(), ab.clone().trace_fingerprint());
        assert_eq!(LoadObs::default().trace_fingerprint(), FNV_OFFSET_BASIS);
    }
}
