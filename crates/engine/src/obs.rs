//! Load-scenario observability: what the paper actually argues about.
//!
//! The existing [`LoadReport`](crate::LoadReport) counters say how much got
//! through and how fast in aggregate; [`LoadObs`] says *when each record
//! arrived* — the per-record delivery-delay distribution that separates
//! ordered TCP (head-of-line blocking inflates the tail) from uTCP
//! (unordered delivery keeps later records out of earlier losses' shadow).
//! It bundles:
//!
//! * [`Histogram`]s — delivery delay (send-enqueue → app-deliver), RTO fire
//!   latency (connect → RTO), and buffer-pool dwell, all in nanoseconds of
//!   backend time (virtual on sim, monotonic on os);
//! * a [`CounterSet`]/[`GaugeSet`] over fixed slot names (see
//!   [`LOAD_COUNTER_NAMES`]);
//! * a [`TraceRing`] of per-flow lifecycle events (SYN, first byte, record
//!   delivery, retransmit, RTO, FIN), dumpable as JSONL via
//!   `load_engine --trace-out`.
//!
//! Everything merges via [`Absorb`] in shard order, so a sharded run's
//! `LoadObs` is byte-identical to the serial merge at any thread count —
//! the same discipline the rest of the report already obeys.

use crate::metrics::{fnv1a, FNV_OFFSET_BASIS};
use minion_obs::{Absorb, CounterSet, GaugeSet, Histogram, TraceRing};

/// Counter slots of [`LoadObs::counters`] (fixed at compile time so sharded
/// and serial registries always line up slot for slot).
pub const LOAD_COUNTER_NAMES: &[&str] = &[
    "records_enqueued",
    "records_delivered",
    "chunks_delivered",
    "chunks_out_of_order",
    "retransmit_edges",
    "rto_edges",
];

/// Slot: records fully handed to the transport's send buffer.
pub const C_RECORDS_ENQUEUED: usize = 0;
/// Slot: records whose full byte range reached the application.
pub const C_RECORDS_DELIVERED: usize = 1;
/// Slot: delivery chunks read from the transport.
pub const C_CHUNKS_DELIVERED: usize = 2;
/// Slot: delivery chunks that arrived out of stream order.
pub const C_CHUNKS_OUT_OF_ORDER: usize = 3;
/// Slot: retransmission edges observed (consecutive duplicates collapse in
/// the connection's event queue, so this undercounts dense bursts; the exact
/// per-flow count lives in `FlowMetrics::retransmissions`).
pub const C_RETRANSMIT_EDGES: usize = 4;
/// Slot: RTO-fired edges observed.
pub const C_RTO_EDGES: usize = 5;

/// Gauge slots of [`LoadObs::gauges`].
pub const LOAD_GAUGE_NAMES: &[&str] = &["coverage_ranges_high_water"];

/// Slot: most disjoint coverage ranges any flow's receive stream held at
/// once — a direct measure of how fragmented unordered delivery got.
pub const G_COVERAGE_RANGES_HIGH_WATER: usize = 0;

/// Deterministic observability of one load-scenario run (or shard).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadObs {
    /// Per-record delivery delay: send-enqueue → app-deliver, nanoseconds.
    pub delivery_delay: Histogram,
    /// RTO fire latency: flow connect → RTO fire, nanoseconds.
    pub rto_wait: Histogram,
    /// Buffer-pool dwell of send-stream buffers (take → give), nanoseconds.
    pub pool_dwell: Histogram,
    /// Event counters over [`LOAD_COUNTER_NAMES`].
    pub counters: CounterSet,
    /// High-water marks over [`LOAD_GAUGE_NAMES`].
    pub gauges: GaugeSet,
    /// Lifecycle trace, bounded to the last
    /// [`DEFAULT_TRACE_CAP`](minion_obs::DEFAULT_TRACE_CAP) events.
    pub trace: TraceRing,
}

impl Default for LoadObs {
    fn default() -> Self {
        LoadObs {
            delivery_delay: Histogram::new(),
            rto_wait: Histogram::new(),
            pool_dwell: Histogram::new(),
            counters: CounterSet::new(LOAD_COUNTER_NAMES),
            gauges: GaugeSet::new(LOAD_GAUGE_NAMES),
            trace: TraceRing::default(),
        }
    }
}

impl Absorb for LoadObs {
    fn absorb(&mut self, other: &Self) {
        self.delivery_delay.absorb(&other.delivery_delay);
        self.rto_wait.absorb(&other.rto_wait);
        self.pool_dwell.absorb(&other.pool_dwell);
        self.counters.absorb(&other.counters);
        self.gauges.absorb(&other.gauges);
        self.trace.absorb(&other.trace);
    }
}

impl LoadObs {
    /// Order-sensitive FNV-1a fingerprint of the trace ring's event stream
    /// (the compact form the determinism gates compare).
    pub fn trace_fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET_BASIS;
        for ev in self.trace.events() {
            fnv1a(&mut h, &ev.t_ns.to_be_bytes());
            fnv1a(&mut h, &ev.flow.to_be_bytes());
            fnv1a(&mut h, &ev.seq.to_be_bytes());
            fnv1a(&mut h, ev.kind.as_str().as_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minion_obs::{TraceEvent, TraceKind};

    fn sample(base: u64) -> LoadObs {
        let mut o = LoadObs::default();
        o.delivery_delay.record(base + 1_000);
        o.rto_wait.record(base + 2_000);
        o.pool_dwell.record(0);
        o.counters.inc(C_RECORDS_DELIVERED);
        o.gauges.observe(G_COVERAGE_RANGES_HIGH_WATER, base);
        o.trace.push(TraceEvent {
            t_ns: base,
            flow: base as u32,
            seq: 0,
            kind: TraceKind::Syn,
        });
        o
    }

    #[test]
    fn absorb_is_associative_with_default_identity() {
        let (a, b, c) = (sample(1), sample(2), sample(3));
        let mut left = a.clone();
        left.absorb(&b);
        left.absorb(&c);
        let mut bc = b.clone();
        bc.absorb(&c);
        let mut right = a.clone();
        right.absorb(&bc);
        assert_eq!(left, right, "associative");
        let mut id = LoadObs::default();
        id.absorb(&a);
        assert_eq!(id, a, "default ⊕ a == a");
        let mut back = a.clone();
        back.absorb(&LoadObs::default());
        assert_eq!(back, a, "a ⊕ default == a");
    }

    #[test]
    fn trace_fingerprint_is_order_sensitive() {
        let mut ab = sample(1);
        ab.absorb(&sample(2));
        let mut ba = sample(2);
        ba.absorb(&sample(1));
        assert_ne!(ab.trace_fingerprint(), ba.trace_fingerprint());
        assert_eq!(ab.trace_fingerprint(), ab.clone().trace_fingerprint());
        assert_eq!(LoadObs::default().trace_fingerprint(), FNV_OFFSET_BASIS);
    }
}
