//! A shared buffer pool for per-flow payload staging.
//!
//! Driving a thousand flows allocates furiously if every record build, read
//! chunk, and reassembly step takes a fresh `Vec`: the allocator becomes the
//! hot path. The pool recycles byte buffers instead, and counts what it does
//! so the load harness can report **allocs/flow** — the metric the bench
//! trajectory tracks (`BENCH_engine.json`).
//!
//! Deliberately simple: single-threaded (the whole simulator is), LIFO free
//! list (the most recently returned buffer is the warmest), bounded retention
//! so a burst does not pin memory forever.

/// Allocation statistics of a [`BufferPool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers created fresh because the free list was empty.
    pub allocations: u64,
    /// Buffers handed out from the free list (an allocation avoided).
    pub reuses: u64,
    /// Buffers returned to the pool.
    pub returns: u64,
    /// Buffers dropped on return because the free list was full.
    pub discarded: u64,
    /// Largest number of buffers simultaneously outstanding.
    pub high_water: u64,
}

/// Sharded runs merge their per-shard pools' counters by shard index;
/// `high_water` sums because the pools are disjoint and may be live
/// concurrently. See [`minion_obs::Absorb`] for the merge laws.
impl minion_obs::Absorb for PoolStats {
    fn absorb(&mut self, other: &PoolStats) {
        self.allocations += other.allocations;
        self.reuses += other.reuses;
        self.returns += other.returns;
        self.discarded += other.discarded;
        self.high_water += other.high_water;
    }
}

impl PoolStats {
    /// Fraction of checkouts served without allocating, in `[0, 1]`.
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.allocations + self.reuses;
        if total == 0 {
            0.0
        } else {
            self.reuses as f64 / total as f64
        }
    }
}

/// A recycling pool of `Vec<u8>` buffers.
#[derive(Clone, Debug)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    /// Capacity given to freshly allocated buffers.
    default_capacity: usize,
    /// Maximum buffers kept on the free list.
    max_retained: usize,
    outstanding: u64,
    stats: PoolStats,
}

impl BufferPool {
    /// A pool whose fresh buffers reserve `default_capacity` bytes and which
    /// retains at most `max_retained` returned buffers.
    pub fn new(default_capacity: usize, max_retained: usize) -> Self {
        BufferPool {
            free: Vec::new(),
            default_capacity,
            max_retained,
            outstanding: 0,
            stats: PoolStats::default(),
        }
    }

    /// Check out an empty buffer (recycled when possible).
    pub fn take(&mut self) -> Vec<u8> {
        self.outstanding += 1;
        self.stats.high_water = self.stats.high_water.max(self.outstanding);
        match self.free.pop() {
            Some(mut buf) => {
                self.stats.reuses += 1;
                buf.clear();
                buf
            }
            None => {
                self.stats.allocations += 1;
                Vec::with_capacity(self.default_capacity)
            }
        }
    }

    /// Return a buffer to the pool.
    pub fn give(&mut self, buf: Vec<u8>) {
        self.outstanding = self.outstanding.saturating_sub(1);
        self.stats.returns += 1;
        if self.free.len() < self.max_retained {
            self.free.push(buf);
        } else {
            self.stats.discarded += 1;
        }
    }

    /// Buffers currently on the free list.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Buffers currently checked out.
    pub fn outstanding(&self) -> u64 {
        self.outstanding
    }

    /// Pool statistics.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_recycled() {
        let mut p = BufferPool::new(64, 8);
        let mut a = p.take();
        a.extend_from_slice(b"data");
        p.give(a);
        let b = p.take();
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert!(b.capacity() >= 4, "capacity survives recycling");
        assert_eq!(p.stats().allocations, 1);
        assert_eq!(p.stats().reuses, 1);
        assert!((p.stats().reuse_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn retention_is_bounded() {
        let mut p = BufferPool::new(16, 2);
        let bufs: Vec<_> = (0..4).map(|_| p.take()).collect();
        assert_eq!(p.stats().high_water, 4);
        for b in bufs {
            p.give(b);
        }
        assert_eq!(p.idle(), 2);
        assert_eq!(p.stats().discarded, 2);
        assert_eq!(p.outstanding(), 0);
    }

    #[test]
    fn empty_pool_reports_zero_ratio() {
        let p = BufferPool::new(16, 2);
        assert_eq!(p.stats().reuse_ratio(), 0.0);
    }

    #[test]
    fn stats_absorb_is_associative_with_default_identity() {
        use minion_obs::Absorb;
        let mk = |k: u64| PoolStats {
            allocations: k,
            reuses: 2 * k,
            returns: 3 * k,
            discarded: k / 3,
            high_water: k,
        };
        let (a, b, c) = (mk(1), mk(7), mk(50));
        let mut left = a;
        left.absorb(&b);
        left.absorb(&c);
        let mut bc = b;
        bc.absorb(&c);
        let mut right = a;
        right.absorb(&bc);
        assert_eq!(left, right, "associative");
        assert_eq!(left.high_water, 58, "disjoint pools' high water sums");
        let mut id = PoolStats::default();
        id.absorb(&a);
        assert_eq!(id, a, "default is a left identity");
    }
}
